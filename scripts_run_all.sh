#!/bin/bash
# Regenerates every table and figure into results/.
set -u
cd /root/repo
BINS="fig01_dw_randomness fig03_compressed_size fig05_bitflip_delta fig06_size_change_prob \
fig07_block_size_series fig10_lifetime fig11_size_cdf fig12_tolerated_errors \
fig13_lifetime_cov25 table03_workloads table04_months perf_overhead \
ablation_heuristic ablation_ecc ablation_rotation ablation_flip_n_write \
ablation_secded ablation_mlc ablation_interline_wl ablation_window_step energy_writes \
compressor_comparison metadata_rates mix_study fig09_montecarlo"
cargo build -q --release -p pcm-bench 2>/dev/null

# Verification gate: the fault-injection churn matrix and the differential
# replay-vs-engine oracle (see DESIGN.md "Verification") must pass before
# any figures are regenerated. A mismatch aborts the whole run non-zero.
echo "== verify =="
mkdir -p results
if ! /usr/bin/timeout 3000 cargo run -q --release --bin pcm-verify -- "$@" > results/verify.txt 2>&1; then
  echo "   VERIFY FAILED (see results/verify.txt)" >&2
  tail -n 20 results/verify.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/verify.txt) lines)"

for b in $BINS; do
  echo "== $b =="
  /usr/bin/timeout 3000 cargo run -q -p pcm-bench --release --bin $b -- "$@" > results/$b.txt 2>&1
  echo "   done ($(wc -l < results/$b.txt) lines)"
done
