#!/bin/bash
# Regenerates every table and figure into results/ via the experiment
# registry (`pcm-lab run-all`); there is no per-experiment binary list to
# maintain — registering an Experiment is enough to be picked up here.
#
# Flags consumed by this script (everything else — --quick, --seed N,
# --apps a,b,c — is passed through to `pcm-lab run-all`):
#   --bench-smoke   run the hot-path bench harness in smoke mode (seconds,
#                   for the CI gate) instead of the full calibrated run
#   --diff          after regenerating, re-run `pcm-lab diff` against the
#                   freshly written results/ and fail non-zero on drift
set -u
cd /root/repo

# Warnings are errors for everything the gate builds below.
export RUSTFLAGS="-D warnings"

# Split our own flags from the passthrough args: pcm-lab aborts on flags
# it doesn't know. pcm-verify only understands --seed, so that is the one
# experiment option it also receives.
BENCH_SMOKE=0
RUN_DIFF=0
EXPECT_SEED=0
PASSTHROUGH=()
VERIFY_ARGS=()
for arg in "$@"; do
  if [ "$EXPECT_SEED" = 1 ]; then
    VERIFY_ARGS+=("$arg")
    PASSTHROUGH+=("$arg")
    EXPECT_SEED=0
    continue
  fi
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    --diff) RUN_DIFF=1 ;;
    --seed) EXPECT_SEED=1; VERIFY_ARGS+=("$arg"); PASSTHROUGH+=("$arg") ;;
    *) PASSTHROUGH+=("$arg") ;;
  esac
done
set -- ${PASSTHROUGH[@]+"${PASSTHROUGH[@]}"}

mkdir -p results

# Style gate: formatting drift fails the run before anything expensive.
echo "== fmt check =="
if ! cargo fmt --all --check > results/fmt.txt 2>&1; then
  echo "   FMT CHECK FAILED (run 'cargo fmt'; see results/fmt.txt)" >&2
  tail -n 20 results/fmt.txt >&2
  exit 1
fi
echo "   ok"

# Static-analysis gate: determinism & hygiene lints (DESIGN.md §11) run
# before anything expensive is built. pcm-audit is dependency-free, so
# this compiles in seconds even on a cold target/. Fails non-zero on any
# finding not covered by audit-baseline.toml; --quick does not skip it.
echo "== audit =="
if ! /usr/bin/timeout 600 cargo run -q --release -p pcm-audit --bin pcm-audit > results/audit.txt 2>&1; then
  echo "   AUDIT FAILED (see results/audit.txt)" >&2
  tail -n 30 results/audit.txt >&2
  exit 1
fi
# Machine-readable twin of the report above: the same scan, emitted as
# JSON for tooling (and diffed by artifact-sync, so it cannot go stale).
if ! /usr/bin/timeout 600 cargo run -q --release -p pcm-audit --bin pcm-audit -- --json > results/audit.json 2>&1; then
  echo "   AUDIT --json FAILED (see results/audit.json)" >&2
  tail -n 30 results/audit.json >&2
  exit 1
fi
echo "   ok ($(wc -l < results/audit.txt) lines)"

cargo build -q --release -p pcm-bench 2>/dev/null

# Verification gate: the fault-injection churn matrix and the differential
# replay-vs-engine oracle (see DESIGN.md "Verification") must pass before
# any figures are regenerated. A mismatch aborts the whole run non-zero.
echo "== verify =="
if ! /usr/bin/timeout 3000 cargo run -q --release --bin pcm-verify -- ${VERIFY_ARGS[@]+"${VERIFY_ARGS[@]}"} > results/verify.txt 2>&1; then
  echo "   VERIFY FAILED (see results/verify.txt)" >&2
  tail -n 20 results/verify.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/verify.txt) lines)"

# Example smoke: the documented entry points must build and run.
echo "== examples =="
for ex in quickstart lifetime_campaign; do
  if ! /usr/bin/timeout 600 cargo run -q --release --example $ex -- --quick > results/example_$ex.txt 2>&1; then
    echo "   EXAMPLE $ex FAILED (see results/example_$ex.txt)" >&2
    tail -n 20 results/example_$ex.txt >&2
    exit 1
  fi
done
echo "   ok"

# Hot-path benchmark: full calibrated run refreshes BENCH_hotpath.json;
# --bench-smoke instead does a seconds-long sanity pass for the gate.
# Either way the fresh run is ratcheted against the committed report
# before overwriting it: checksum drift or a bench falling under the
# throughput floor fails the stage.
echo "== bench hotpath =="
if [ "$BENCH_SMOKE" = 1 ]; then
  BENCH_ARGS=(--smoke --out results/BENCH_hotpath_smoke.json
              --ratchet results/BENCH_hotpath_smoke.json)
else
  BENCH_ARGS=(--out BENCH_hotpath.json --ratchet BENCH_hotpath.json)
fi
if ! /usr/bin/timeout 3000 cargo run -q --release -p pcm-bench --bin pcm-bench-hotpath -- "${BENCH_ARGS[@]}" > results/bench_hotpath.txt 2>&1; then
  echo "   BENCH FAILED (see results/bench_hotpath.txt)" >&2
  tail -n 20 results/bench_hotpath.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/bench_hotpath.txt) lines)"

# Dual-build equivalence: the differential kernel rigs must pass with the
# `simd` feature compiled in, and a smoke bench of the scalar and vector
# builds must produce bit-identical checksums (DESIGN.md §13) — only the
# timing fields may differ between the two reports.
echo "== simd =="
if ! /usr/bin/timeout 3000 cargo test -q --release \
    -p pcm-util -p pcm-device -p pcm-compress --features pcm-util/simd \
    > results/simd_tests.txt 2>&1; then
  echo "   SIMD TESTS FAILED (see results/simd_tests.txt)" >&2
  tail -n 20 results/simd_tests.txt >&2
  exit 1
fi
if ! /usr/bin/timeout 3000 cargo run -q --release -p pcm-bench --bin pcm-bench-hotpath -- \
    --smoke --out results/simd_smoke_scalar.json > results/simd_bench.txt 2>&1; then
  echo "   SIMD BENCH (scalar build) FAILED (see results/simd_bench.txt)" >&2
  tail -n 20 results/simd_bench.txt >&2
  exit 1
fi
if ! /usr/bin/timeout 3000 cargo run -q --release -p pcm-bench --features pcm-util/simd \
    --bin pcm-bench-hotpath -- \
    --smoke --out results/simd_smoke_vector.json >> results/simd_bench.txt 2>&1; then
  echo "   SIMD BENCH (vector build) FAILED (see results/simd_bench.txt)" >&2
  tail -n 20 results/simd_bench.txt >&2
  exit 1
fi
if ! diff <(grep '"checksum"' results/simd_smoke_scalar.json) \
          <(grep '"checksum"' results/simd_smoke_vector.json) \
          > results/simd_checksums.txt 2>&1; then
  echo "   SIMD CHECKSUM DRIFT (scalar and vector builds disagree)" >&2
  tail -n 20 results/simd_checksums.txt >&2
  exit 1
fi
echo "   ok ($(grep -c '"checksum"' results/simd_smoke_scalar.json) checksums identical across builds)"

# Serve smoke: a short seeded daemon run must come up, serve the built-in
# open-loop generator in virtual time, report sane telemetry, and exit
# cleanly. The replay suite (tests/serve_replay.rs) owns the byte-identity
# guarantees; this stage guards the binary's end-to-end wiring.
echo "== serve =="
if ! /usr/bin/timeout 600 cargo run -q --release -p pcm-serve --bin pcm-serve -- \
    --seed 7 --shards 4 --duration 200000 > results/serve.txt 2>&1; then
  echo "   SERVE FAILED (see results/serve.txt)" >&2
  tail -n 20 results/serve.txt >&2
  exit 1
fi
if ! grep -q "pcm-serve telemetry @ cycle" results/serve.txt \
    || ! grep -q "wear_digests " results/serve.txt; then
  echo "   SERVE SMOKE MISSING TELEMETRY (see results/serve.txt)" >&2
  tail -n 20 results/serve.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/serve.txt) lines)"

# Rival-stack gate: the pluggable-scheme grid must push WoLFRaM and
# restricted coset coding end-to-end through the unmodified controller
# loop (DESIGN.md §14) before the full matrix regenerates. run-all
# refreshes the same experiment at full scale afterwards; this quick pass
# fails fast if a registry stack stops composing.
echo "== rivals =="
if ! /usr/bin/timeout 600 cargo run -q --release -p pcm-bench --bin pcm-lab -- \
    run rival_lifetime --quick > results/rivals.txt 2>&1; then
  echo "   RIVALS FAILED (see results/rivals.txt)" >&2
  tail -n 20 results/rivals.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/rivals.txt) lines)"

# Experiment matrix: every registered experiment, deterministic order,
# results/<name>.txt + results/<name>.json.
echo "== experiments =="
if ! /usr/bin/timeout 36000 cargo run -q --release -p pcm-bench --bin pcm-lab -- \
    run-all --out-dir results "$@"; then
  echo "   RUN-ALL FAILED" >&2
  exit 1
fi

# Drift gate: re-run each tracked report at its recorded seed/scale and
# compare within the per-statistic tolerance bands.
if [ "$RUN_DIFF" = 1 ]; then
  echo "== diff =="
  if ! /usr/bin/timeout 36000 cargo run -q --release -p pcm-bench --bin pcm-lab -- diff; then
    echo "   DIFF FAILED (results/ drifted out of tolerance)" >&2
    exit 1
  fi
fi
