#!/bin/bash
# Regenerates every table and figure into results/.
#
# Flags consumed by this script (everything else is passed through to the
# figure/table binaries):
#   --bench-smoke   run the hot-path bench harness in smoke mode (seconds,
#                   for the CI gate) instead of the full calibrated run
set -u
cd /root/repo

# Warnings are errors for everything the gate builds below.
export RUSTFLAGS="-D warnings"

# Split our own flags from the passthrough args: the figure/table binaries
# abort on flags they don't know.
BENCH_SMOKE=0
PASSTHROUGH=()
for arg in "$@"; do
  case "$arg" in
    --bench-smoke) BENCH_SMOKE=1 ;;
    *) PASSTHROUGH+=("$arg") ;;
  esac
done
set -- ${PASSTHROUGH[@]+"${PASSTHROUGH[@]}"}

BINS="fig01_dw_randomness fig03_compressed_size fig05_bitflip_delta fig06_size_change_prob \
fig07_block_size_series fig10_lifetime fig11_size_cdf fig12_tolerated_errors \
fig13_lifetime_cov25 table03_workloads table04_months perf_overhead \
ablation_heuristic ablation_ecc ablation_rotation ablation_flip_n_write \
ablation_secded ablation_mlc ablation_interline_wl ablation_window_step energy_writes \
compressor_comparison metadata_rates mix_study fig09_montecarlo"

mkdir -p results

# Style gate: formatting drift fails the run before anything expensive.
echo "== fmt check =="
if ! cargo fmt --all --check > results/fmt.txt 2>&1; then
  echo "   FMT CHECK FAILED (run 'cargo fmt'; see results/fmt.txt)" >&2
  tail -n 20 results/fmt.txt >&2
  exit 1
fi
echo "   ok"

cargo build -q --release -p pcm-bench 2>/dev/null

# Verification gate: the fault-injection churn matrix and the differential
# replay-vs-engine oracle (see DESIGN.md "Verification") must pass before
# any figures are regenerated. A mismatch aborts the whole run non-zero.
echo "== verify =="
if ! /usr/bin/timeout 3000 cargo run -q --release --bin pcm-verify -- "$@" > results/verify.txt 2>&1; then
  echo "   VERIFY FAILED (see results/verify.txt)" >&2
  tail -n 20 results/verify.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/verify.txt) lines)"

# Example smoke: the documented entry points must build and run.
echo "== examples =="
for ex in quickstart lifetime_campaign; do
  if ! /usr/bin/timeout 600 cargo run -q --release --example $ex -- --quick > results/example_$ex.txt 2>&1; then
    echo "   EXAMPLE $ex FAILED (see results/example_$ex.txt)" >&2
    tail -n 20 results/example_$ex.txt >&2
    exit 1
  fi
done
echo "   ok"

# Hot-path benchmark: full calibrated run refreshes BENCH_hotpath.json;
# --bench-smoke instead does a seconds-long sanity pass for the gate.
echo "== bench hotpath =="
if [ "$BENCH_SMOKE" = 1 ]; then
  BENCH_ARGS=(--smoke --out results/BENCH_hotpath_smoke.json)
else
  BENCH_ARGS=(--out BENCH_hotpath.json)
fi
if ! /usr/bin/timeout 3000 cargo run -q --release -p pcm-bench --bin pcm-bench-hotpath -- "${BENCH_ARGS[@]}" > results/bench_hotpath.txt 2>&1; then
  echo "   BENCH FAILED (see results/bench_hotpath.txt)" >&2
  tail -n 20 results/bench_hotpath.txt >&2
  exit 1
fi
echo "   ok ($(wc -l < results/bench_hotpath.txt) lines)"

for b in $BINS; do
  echo "== $b =="
  /usr/bin/timeout 3000 cargo run -q -p pcm-bench --release --bin $b -- "$@" > results/$b.txt 2>&1
  echo "   done ($(wc -l < results/$b.txt) lines)"
done
