//! The deterministic fault-injection + differential verification harness,
//! end to end (DESIGN.md "Verification").
//!
//! The full two-endurance oracle matrix runs in the `verify` stage of
//! `scripts_run_all.sh` (`pcm-verify`); this suite keeps a fast
//! representative slice in the tier-1 tests: the churn matrix over every
//! SystemKind × EccChoice, fault-plan realization through the functional
//! stack, resurrection accounting, and a two-endurance oracle sample.

use collab_pcm::core::verify::{
    churn_lines, churn_memory, run_all, run_oracle, ChurnData, OracleConfig, VerifyConfig,
};
use collab_pcm::core::{EccChoice, SystemConfig, SystemKind, WearChoice};
use collab_pcm::trace::SpecApp;
use collab_pcm::util::FaultPlan;

/// Every SystemKind × EccChoice combination survives fault-planned line
/// churn and low-endurance whole-memory churn with all integrity and
/// accounting assertions on.
#[test]
fn churn_matrix_is_green() {
    let cfg = VerifyConfig {
        churn_only: true,
        memory_writes: 2_000,
        ..Default::default()
    };
    let report = run_all(&cfg);
    assert_eq!(
        report.entries.len(),
        23,
        "4 systems x 5 ECC schemes + 3 wear schemes"
    );
    assert!(
        report.passed(),
        "failures:\n{}",
        report.failures().join("\n")
    );
}

/// Every registered wear scheme survives whole-memory churn under every
/// system kind, including the death/resurrection bookkeeping.
#[test]
fn wear_matrix_is_green() {
    for wear in WearChoice::ALL {
        for kind in [SystemKind::Comp, SystemKind::CompWF] {
            let sys = SystemConfig::new(kind)
                .with_endurance_mean(300.0)
                .with_wear(wear);
            let stats = churn_memory(&sys, 16, 3_000, 13).unwrap();
            assert!(stats.writes_checked > 1_000, "{kind}/{wear}: {stats:?}");
        }
    }
}

/// A seeded fault plan is realized exactly: position, count, and stuck-at
/// polarity all flow through `ManagedLine::with_faults` into reads.
#[test]
fn fault_plans_realize_position_density_and_polarity() {
    // SA-1 faults force ones into a zero line; SA-0 faults are invisible
    // on a zero line. Either way the ECC must mask them on read-back.
    for sa1 in [0.0, 1.0] {
        let plan = FaultPlan::with_count(99, 5, sa1);
        let sys = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(1e9);
        let stats = churn_lines(&sys, &plan, ChurnData::Mixed, 3, 48, 4).unwrap();
        assert_eq!(
            stats.deaths, 0,
            "5 faults are within ECP-6 capacity (sa1={sa1})"
        );
        assert!(stats.writes_checked >= 3 * 48);
    }
    // Determinism: the same plan yields the same per-line maps.
    let p = FaultPlan::density(7, 0.02, 0.5);
    for line in 0..4 {
        assert_eq!(p.for_line(line), p.for_line(line));
    }
}

/// Dead-block resurrection accounting: only Comp+WF revives lines, and at
/// churn endurance it demonstrably does.
#[test]
fn resurrection_accounting_by_system() {
    let wf = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(60.0);
    let stats = churn_memory(&wf, 16, 12_000, 31).unwrap();
    assert!(
        stats.deaths > 0,
        "churn endurance must kill lines: {stats:?}"
    );
    assert!(
        stats.resurrections > 0,
        "Comp+WF must revive some: {stats:?}"
    );

    for kind in [SystemKind::Baseline, SystemKind::Comp, SystemKind::CompW] {
        let sys = SystemConfig::new(kind).with_endurance_mean(60.0);
        let stats = churn_memory(&sys, 16, 6_000, 31).unwrap();
        assert_eq!(stats.resurrections, 0, "{kind} must never resurrect");
    }
}

/// The differential oracle sample: one sliding and one non-sliding system
/// at both verification endurance settings, non-default ECC included.
#[test]
fn oracle_sample_two_endurance_settings() {
    for mean in [250.0, 400.0] {
        for (kind, ecc) in [
            (SystemKind::CompWF, EccChoice::Ecp6),
            (SystemKind::Baseline, EccChoice::Safer32),
        ] {
            let sys = SystemConfig::new(kind)
                .with_endurance_mean(mean)
                .with_ecc(ecc);
            let report = run_oracle(&OracleConfig::new(sys, SpecApp::Milc, 77));
            assert!(report.passed(), "oracle mismatch:\n{}", report.describe());
        }
    }
}
