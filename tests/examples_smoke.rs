//! Smoke tests that build and run the runnable examples in `--quick` mode,
//! so the documented entry points can't rot as the APIs evolve.
//!
//! Each test shells out to `cargo run --example … -- --quick`; the outer
//! `cargo test` has already released the build lock by the time tests run,
//! so the nested invocation only pays an incremental build.

use std::process::Command;

fn run_example(name: &str) -> String {
    let out = Command::new(env!("CARGO"))
        .args(["run", "-q", "--example", name, "--", "--quick"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("cargo runs");
    assert!(
        out.status.success(),
        "example {name} failed with {}:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn quickstart_example_runs_quick() {
    let stdout = run_example("quickstart");
    assert!(
        stdout.contains("round-trip OK"),
        "unexpected output:\n{stdout}"
    );
    assert!(
        stdout.contains("memory health"),
        "unexpected output:\n{stdout}"
    );
}

#[test]
fn lifetime_campaign_example_runs_quick() {
    let stdout = run_example("lifetime_campaign");
    // One row per system, with the Comp+WF row present and normalized.
    assert!(
        stdout.contains("workload: milc"),
        "unexpected output:\n{stdout}"
    );
    assert!(stdout.contains("Comp+WF"), "unexpected output:\n{stdout}");
}
