//! Deterministic load-replay for the serve daemon: at a fixed seed, the
//! rendered telemetry snapshots and the final per-bank wear digests must
//! be byte-identical across repeated runs and across every shard count —
//! the serve-path analogue of `tests/thread_invariance.rs`. Shards are
//! pure execution width; only the seed and the simulated machine shape
//! (banks, lines, tenants) may influence results.

use collab_pcm::serve::protocol::{decode_response, encode_telemetry, encode_write, STATUS_OK};
use collab_pcm::serve::{Daemon, Engine, FrameDecoder, ServeConfig, TrafficGen};

const SEED: u64 = 0x5EED_2017;
const HORIZON: u64 = 300_000;

fn cfg(shards: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(SEED);
    cfg.shards = shards;
    cfg
}

/// One full batch run: returns (mid-run snapshot text, final snapshot
/// text, per-bank wear digests).
fn replay(shards: usize) -> (String, String, Vec<u64>) {
    let cfg = cfg(shards);
    let script = TrafficGen::new(&cfg).script_until(HORIZON);
    assert!(
        script.len() > 1000,
        "horizon produced {} writes",
        script.len()
    );
    let mut engine = Engine::new(cfg);
    let mid = script.len() / 2;
    engine.run_script(&script[..mid]);
    let mid_snapshot = engine.snapshot().render();
    engine.run_script(&script[mid..]);
    (
        mid_snapshot,
        engine.snapshot().render(),
        engine.wear_digests(),
    )
}

#[test]
fn replay_is_byte_identical_across_runs_and_shard_counts() {
    let base = replay(1);
    let again = replay(1);
    assert_eq!(base, again, "same seed, same shard count, different bytes");
    for shards in [2usize, 4, 7] {
        let got = replay(shards);
        assert_eq!(
            base.0, got.0,
            "mid-run telemetry drifted at shards={shards}"
        );
        assert_eq!(base.1, got.1, "final telemetry drifted at shards={shards}");
        assert_eq!(
            base.2, got.2,
            "per-bank wear digests drifted at shards={shards}"
        );
    }
}

#[test]
fn telemetry_reflects_real_traffic() {
    let (_, final_snapshot, digests) = replay(4);
    assert!(final_snapshot.contains("pcm-serve telemetry @ cycle"));
    // Every bank serves some share of a 60-tenant zipfian mix.
    for bank in 0..8 {
        assert!(
            final_snapshot.contains(&format!("\nbank {bank} writes ")),
            "bank {bank} row missing:\n{final_snapshot}"
        );
    }
    assert_eq!(digests.len(), 8);
    // Digests differ across banks: each bank saw different traffic and
    // drew different endurance.
    let first = digests[0];
    assert!(digests.iter().any(|&d| d != first));
}

#[test]
fn wire_driven_daemon_matches_engine_replay() {
    // The same script pushed through the full protocol stack (frames in,
    // responses out) must land the daemon in the same state as the batch
    // engine path.
    let config = cfg(1);
    let script = TrafficGen::new(&config).script_until(40_000);

    let mut engine = Engine::new(config.clone());
    engine.run_script(&script);

    let mut daemon = Daemon::new(config);
    let mut decoder = FrameDecoder::new();
    let mut wire = Vec::new();
    for w in &script {
        wire.extend(encode_write(w.at, w.tenant, w.line, &w.data));
    }
    wire.extend(encode_telemetry());
    let mut out = Vec::new();
    daemon.handle_bytes(&mut decoder, &wire, &mut out);

    // Walk to the final (telemetry) response.
    let mut rest = &out[..];
    let mut last = None;
    while let Some((status, body, used)) = decode_response(rest) {
        last = Some((status, body.to_vec()));
        rest = &rest[used..];
    }
    let (status, body) = last.expect("telemetry response present");
    assert_eq!(status, STATUS_OK);
    let text = String::from_utf8(body).expect("utf8 telemetry");
    assert_eq!(text, daemon.engine().snapshot().render());
    assert_eq!(
        daemon.engine().snapshot(),
        engine.snapshot(),
        "wire path and batch path disagree"
    );
    assert_eq!(daemon.engine().wear_digests(), engine.wear_digests());
}

#[test]
fn seed_changes_change_the_outcome() {
    // Guards against the degenerate "deterministic because constant"
    // failure mode: different seeds must produce different telemetry.
    let run = |seed: u64| {
        let mut c = ServeConfig::new(seed);
        c.shards = 2;
        let script = TrafficGen::new(&c).script_until(50_000);
        let mut engine = Engine::new(c);
        engine.run_script(&script);
        engine.snapshot().render()
    };
    assert_ne!(run(1), run(2));
}
