//! Cross-crate property tests: invariants that must hold for arbitrary
//! data, fault sets, and window placements.

use collab_pcm::compress::{compress_best, decompress, CompressedWrite};
use collab_pcm::core::line::{EccEngine, ManagedLine, Payload};
use collab_pcm::core::window;
use collab_pcm::core::EccChoice;
use collab_pcm::device::dw::diff_write;
use collab_pcm::util::Line512;
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

fn arb_weak_cells() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::btree_set(0usize..512, 0..6).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compression is lossless through the whole storage pipeline: write a
    /// line into a ManagedLine (with weak cells that die under it) and
    /// read back exactly, for every ECC engine.
    #[test]
    fn storage_pipeline_is_lossless(
        data in arb_line(),
        weak in arb_weak_cells(),
        offset in 0usize..64,
        ecc in prop::sample::select(vec![
            EccChoice::Ecp6,
            EccChoice::Safer32,
            EccChoice::Aegis17x31,
        ]),
    ) {
        let engine = EccEngine::new(ecc);
        let mut endurance = vec![u32::MAX; 512];
        for pos in weak {
            endurance[pos] = 0;
        }
        let mut line = ManagedLine::with_endurance(endurance);
        let c = compress_best(&data);
        line.write(&engine, Payload { method: c.method(), bytes: c.bytes() }, offset, true)
            .expect("at most 5 weak cells is within every scheme's guarantee");
        let (method, bytes) = line.read(&engine).expect("valid");
        let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
        prop_assert_eq!(back, data);
    }

    /// Window placement never disturbs cells outside the window, so the
    /// differential write of a re-placed payload flips nothing outside it.
    #[test]
    fn window_confines_flips(
        base in arb_line(),
        payload in prop::collection::vec(any::<u8>(), 1..=64),
        offset in 0usize..64,
    ) {
        let placed = window::place(&base, offset, &payload);
        let dw = diff_write(&base, &placed);
        let mask = window::window_mask(offset, payload.len());
        prop_assert!((dw.flip_mask() & !mask).is_zero(),
            "flips escaped the window");
        prop_assert_eq!(window::extract(&placed, offset, payload.len()), payload);
    }

    /// The best-of selector never loses to either component and never
    /// exceeds the uncompressed size.
    #[test]
    fn best_selector_is_optimal(data in arb_line()) {
        let best = compress_best(&data);
        prop_assert!(best.size() <= 64);
        if let Some(b) = collab_pcm::compress::bdi::compress(&data) {
            prop_assert!(best.size() <= b.size());
        }
        let f = collab_pcm::compress::fpc::compress(&data);
        if f.size() < 64 {
            prop_assert!(best.size() <= f.size());
        }
    }

    /// Differential-write flip counts are a metric: symmetric, zero iff
    /// equal, and triangle-inequality compliant.
    #[test]
    fn dw_flip_count_is_a_metric(a in arb_line(), b in arb_line(), c in arb_line()) {
        let ab = diff_write(&a, &b).flips();
        let ba = diff_write(&b, &a).flips();
        let bc = diff_write(&b, &c).flips();
        let ac = diff_write(&a, &c).flips();
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(diff_write(&a, &a).flips(), 0);
        prop_assert!(ac <= ab + bc);
    }
}
