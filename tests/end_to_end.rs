//! End-to-end integration: data integrity through the full stack
//! (compression → window → ECC → cells → wear-leveling) under churn and
//! wear, for all four systems and all three hard-error schemes.

use collab_pcm::core::{EccChoice, PcmMemory, SystemConfig, SystemKind, WriteError};
use collab_pcm::trace::{SpecApp, TraceGenerator};
use collab_pcm::util::{seeded_rng, Line512};
use rand::RngExt;
use std::collections::HashMap;

#[test]
fn every_system_round_trips_a_workload() {
    for kind in SystemKind::ALL {
        let cfg = SystemConfig::new(kind).with_endurance_mean(1e9);
        let mut memory = PcmMemory::new(cfg, 64, 3);
        let mut generator = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 64, 4);
        let mut expected = HashMap::new();
        for _ in 0..3_000 {
            let w = generator.next_write();
            memory
                .write(w.line, w.data)
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            expected.insert(w.line, w.data);
        }
        for (&line, &data) in &expected {
            assert_eq!(memory.read(line).unwrap(), data, "{kind}: line {line}");
        }
        let stats = memory.stats();
        assert_eq!(stats.demand_writes, 3_000);
        if kind.compresses() {
            assert!(stats.compressed_writes > 1_000, "{kind}: {stats:?}");
        }
    }
}

#[test]
fn every_scheme_round_trips_under_wear() {
    for ecc in [EccChoice::Ecp6, EccChoice::Safer32, EccChoice::Aegis17x31] {
        // Weak cells so faults actually appear during the test.
        let cfg = SystemConfig::new(SystemKind::CompWF)
            .with_endurance_mean(400.0)
            .with_ecc(ecc);
        let mut memory = PcmMemory::new(cfg, 16, 5);
        let mut generator = TraceGenerator::from_profile(SpecApp::Milc.profile(), 16, 6);
        let mut expected = HashMap::new();
        let mut failures = 0;
        for _ in 0..50_000 {
            let w = generator.next_write();
            match memory.write(w.line, w.data) {
                Ok(_) => {
                    expected.insert(w.line, w.data);
                }
                Err(WriteError::LineDead { .. }) => {
                    failures += 1;
                    expected.remove(&w.line);
                }
                Err(e) => panic!("{ecc:?}: unexpected {e}"),
            }
        }
        assert!(
            memory.stats().new_faults > 0,
            "{ecc:?}: the endurance was low enough that faults must appear"
        );
        for (&line, &data) in &expected {
            assert_eq!(memory.read(line).unwrap(), data, "{ecc:?}: line {line}");
        }
        // Comp+WF on milc tolerates plenty of faults before failing writes.
        let _ = failures;
    }
}

#[test]
fn compwf_keeps_data_correct_while_cells_die() {
    // The strongest integrity property: every successful write must read
    // back exactly, even while the line accumulates dozens of stuck cells.
    let cfg = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(500.0);
    let mut memory = PcmMemory::new(cfg, 2, 9);
    let mut rng = seeded_rng(10);
    let mut survived = 0u64;
    loop {
        let mut bytes = [0u8; 64];
        bytes[0] = rng.random();
        let data = Line512::from_bytes(&bytes);
        match memory.write(0, data) {
            Ok(_) => {
                survived += 1;
                assert_eq!(memory.read(0).unwrap(), data, "after {survived} writes");
            }
            Err(_) => break,
        }
        assert!(survived < 10_000_000, "test must terminate");
    }
    assert!(
        memory.stats().new_faults > 20,
        "expected deep fault tolerance, saw {} faults",
        memory.stats().new_faults
    );
    assert!(
        survived > 2_000,
        "CompWF should far outlive the 500-write cell endurance"
    );
}

#[test]
fn dead_fraction_progresses_to_failure() {
    let cfg = SystemConfig::new(SystemKind::Baseline).with_endurance_mean(150.0);
    let mut memory = PcmMemory::new(cfg, 16, 11);
    let mut generator = TraceGenerator::from_profile(SpecApp::Lbm.profile(), 16, 12);
    let mut writes = 0u64;
    while !memory.is_failed() && writes < 2_000_000 {
        let w = generator.next_write();
        let _ = memory.write(w.line, w.data);
        writes += 1;
    }
    assert!(
        memory.is_failed(),
        "baseline memory at 150-write endurance must fail"
    );
    assert!(memory.dead_fraction() >= 0.5);
}
