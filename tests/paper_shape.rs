//! Paper-shape assertions: the qualitative results the reproduction must
//! preserve (DESIGN.md §2, EXPERIMENTS.md).

use collab_pcm::core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use collab_pcm::core::{SystemConfig, SystemKind};
use collab_pcm::ecc::montecarlo::{failure_probability, MonteCarlo};
use collab_pcm::ecc::{Aegis, Ecp, Safer};
use collab_pcm::trace::SpecApp;
use collab_pcm::util::child_seed;

fn lifetime(kind: SystemKind, app: SpecApp) -> f64 {
    let system = SystemConfig::new(kind).with_endurance_mean(6_000.0);
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = 8;
    let mut cfg = CampaignConfig::new(line, child_seed(31, app as u64));
    cfg.lines = 32;
    run_campaign(&cfg).lifetime_writes() as f64
}

#[test]
fn fig10_shape_high_compressibility_wins_big() {
    // H apps: Comp+WF should deliver multiples; L apps barely move.
    let zeusmp = lifetime(SystemKind::CompWF, SpecApp::Zeusmp)
        / lifetime(SystemKind::Baseline, SpecApp::Zeusmp);
    let lbm =
        lifetime(SystemKind::CompWF, SpecApp::Lbm) / lifetime(SystemKind::Baseline, SpecApp::Lbm);
    assert!(zeusmp > 4.0, "zeusmp Comp+WF {zeusmp:.1}x");
    assert!(lbm < 2.5, "lbm Comp+WF {lbm:.1}x");
    assert!(zeusmp > lbm * 2.0, "H app must far outgain L app");
}

#[test]
fn fig10_shape_each_addition_helps_on_compressible_apps() {
    let app = SpecApp::Sjeng;
    let base = lifetime(SystemKind::Baseline, app);
    let comp = lifetime(SystemKind::Comp, app);
    let w = lifetime(SystemKind::CompW, app);
    let wf = lifetime(SystemKind::CompWF, app);
    assert!(
        w > comp,
        "intra-line WL must improve on naive compression ({w} vs {comp})"
    );
    assert!(
        wf >= w,
        "advanced fault handling must not hurt ({wf} vs {w})"
    );
    assert!(
        wf > base * 2.0,
        "sjeng Comp+WF must be a multiple of baseline"
    );
}

#[test]
fn fig9_shape_partition_schemes_and_small_windows_win() {
    let mc = MonteCarlo {
        injections: 2_000,
        seed: 17,
        threads: 0,
    };
    let ecp = Ecp::new(6);
    let safer = Safer::new(32);
    let aegis = Aegis::new(17, 31);
    // Window shrinkage monotonically helps (the paper's central claim).
    let p64 = failure_probability(&ecp, 64, 20, &mc);
    let p32 = failure_probability(&ecp, 32, 20, &mc);
    let p8 = failure_probability(&ecp, 8, 20, &mc);
    assert!(
        p64 > p32 && p32 > p8,
        "ECP-6 @20 faults: {p64} > {p32} > {p8}"
    );
    // Partition schemes beat pointers at equal window.
    let s32 = failure_probability(&safer, 32, 20, &mc);
    let a32 = failure_probability(&aegis, 32, 20, &mc);
    assert!(s32 < p32, "SAFER {s32} should beat ECP {p32}");
    assert!(a32 < p32, "Aegis {a32} should beat ECP {p32}");
}

#[test]
fn fig12_shape_compwf_tolerates_multiples_of_ecp6() {
    let system = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(5_000.0);
    let mut line = LineSimConfig::new(system, SpecApp::Milc.profile());
    line.sample_writes = 8;
    let mut cfg = CampaignConfig::new(line, 41);
    cfg.lines = 24;
    let wf = run_campaign(&cfg);
    let faults = wf.mean_faults_at_death.expect("lines died");
    assert!(
        faults > 14.0,
        "Comp+WF should tolerate >2x ECP-6's 7 faults per failed block, got {faults:.1}"
    );
}
