//! Cross-validation: the accelerated lifetime engine against direct
//! write-by-write replay through the functional memory (DESIGN.md §3.3).
//!
//! The two simulators share the cell/ECC/window machinery but differ in
//! abstraction: replay runs a real Zipf trace over a real Start-Gap
//! memory; the engine simulates exchangeable lines with segment-sampled
//! wear. At equal (small) endurance their lifetimes must agree to within a
//! small factor.

use collab_pcm::core::lifetime::{
    replay_to_failure, run_campaign, CampaignConfig, LineSimConfig, ReplayConfig,
};
use collab_pcm::core::{SystemConfig, SystemKind};
use collab_pcm::trace::SpecApp;

fn replay_lifetime(kind: SystemKind, app: SpecApp, mean: f64) -> f64 {
    let cfg = ReplayConfig {
        system: SystemConfig::new(kind).with_endurance_mean(mean),
        profile: app.profile(),
        lines: 16,
        max_writes: 30_000_000,
        seed: 21,
    };
    let r = replay_to_failure(&cfg);
    assert!(r.writes_to_failure.is_some(), "{kind} replay must reach 50% capacity");
    // Per-line demand writes, comparable with the engine's clock.
    r.lifetime_writes() as f64 / 16.0
}

fn engine_lifetime(kind: SystemKind, app: SpecApp, mean: f64) -> f64 {
    let system = SystemConfig::new(kind).with_endurance_mean(mean);
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = 16;
    let mut cfg = CampaignConfig::new(line, 22);
    cfg.lines = 48;
    let r = run_campaign(&cfg);
    r.lifetime_writes() as f64
}

#[test]
fn baseline_engine_matches_replay() {
    let mean = 400.0;
    let replay = replay_lifetime(SystemKind::Baseline, SpecApp::Lbm, mean);
    let engine = engine_lifetime(SystemKind::Baseline, SpecApp::Lbm, mean);
    let ratio = engine / replay;
    assert!(
        (0.3..=3.0).contains(&ratio),
        "engine {engine:.0} vs replay {replay:.0} per-line writes (ratio {ratio:.2})"
    );
}

#[test]
fn comp_engine_matches_replay() {
    let mean = 400.0;
    let replay = replay_lifetime(SystemKind::Comp, SpecApp::Milc, mean);
    let engine = engine_lifetime(SystemKind::Comp, SpecApp::Milc, mean);
    let ratio = engine / replay;
    assert!(
        (0.25..=4.0).contains(&ratio),
        "engine {engine:.0} vs replay {replay:.0} per-line writes (ratio {ratio:.2})"
    );
}

#[test]
fn engine_and_replay_agree_on_system_ordering() {
    // The decisive property: both simulators must rank the systems the
    // same way on a compressible workload.
    let mean = 400.0;
    let r_base = replay_lifetime(SystemKind::Baseline, SpecApp::Zeusmp, mean);
    let r_wf = replay_lifetime(SystemKind::CompWF, SpecApp::Zeusmp, mean);
    let e_base = engine_lifetime(SystemKind::Baseline, SpecApp::Zeusmp, mean);
    let e_wf = engine_lifetime(SystemKind::CompWF, SpecApp::Zeusmp, mean);
    assert!(r_wf > r_base * 1.5, "replay: WF {r_wf:.0} vs base {r_base:.0}");
    assert!(e_wf > e_base * 1.5, "engine: WF {e_wf:.0} vs base {e_base:.0}");
}
