//! Cross-validation: the accelerated lifetime engine against direct
//! write-by-write replay through the functional memory (DESIGN.md §3.3
//! and "Verification").
//!
//! The two simulators share the cell/ECC/window machinery but differ in
//! abstraction: replay runs a real Zipf trace over a real Start-Gap
//! memory; the engine simulates exchangeable lines with segment-sampled
//! wear. The differential oracle diffs them statistic by statistic
//! (per-physical-line lifetime, flips per write, faults at death) under
//! the calibrated tolerance bands — a tightening of this suite's original
//! single factor-of-3 lifetime check.

use collab_pcm::core::verify::{run_oracle, OracleConfig};
use collab_pcm::core::{SystemConfig, SystemKind};
use collab_pcm::trace::SpecApp;

fn check(kind: SystemKind, app: SpecApp, mean: f64) {
    let sys = SystemConfig::new(kind).with_endurance_mean(mean);
    let report = run_oracle(&OracleConfig::new(sys, app, 21));
    assert!(report.passed(), "oracle mismatch:\n{}", report.describe());
}

#[test]
fn baseline_engine_matches_replay() {
    check(SystemKind::Baseline, SpecApp::Lbm, 400.0);
}

#[test]
fn comp_engine_matches_replay() {
    check(SystemKind::Comp, SpecApp::Milc, 400.0);
}

#[test]
fn compwf_engine_matches_replay() {
    check(SystemKind::CompWF, SpecApp::Milc, 250.0);
}

#[test]
fn engine_and_replay_agree_on_system_ordering() {
    // The decisive property: both simulators must rank the systems the
    // same way on a compressible workload.
    let mean = 400.0;
    let replay_lifetime = |kind: SystemKind| {
        use collab_pcm::core::lifetime::{replay_to_failure, ReplayConfig};
        let cfg = ReplayConfig {
            system: SystemConfig::new(kind).with_endurance_mean(mean),
            profile: SpecApp::Zeusmp.profile(),
            lines: 16,
            max_writes: 30_000_000,
            seed: 21,
        };
        let r = replay_to_failure(&cfg);
        assert!(
            r.writes_to_failure.is_some(),
            "{kind} replay must reach 50% capacity"
        );
        r.lifetime_writes() as f64 / 16.0
    };
    let engine_lifetime = |kind: SystemKind| {
        use collab_pcm::core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
        let system = SystemConfig::new(kind).with_endurance_mean(mean);
        let mut line = LineSimConfig::new(system, SpecApp::Zeusmp.profile());
        line.sample_writes = 16;
        let mut cfg = CampaignConfig::new(line, 22);
        cfg.lines = 48;
        run_campaign(&cfg).lifetime_writes() as f64
    };
    let r_base = replay_lifetime(SystemKind::Baseline);
    let r_wf = replay_lifetime(SystemKind::CompWF);
    let e_base = engine_lifetime(SystemKind::Baseline);
    let e_wf = engine_lifetime(SystemKind::CompWF);
    assert!(
        r_wf > r_base * 1.5,
        "replay: WF {r_wf:.0} vs base {r_base:.0}"
    );
    assert!(
        e_wf > e_base * 1.5,
        "engine: WF {e_wf:.0} vs base {e_base:.0}"
    );
}
