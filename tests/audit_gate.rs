//! Gate-wiring test: `scripts_run_all.sh` must run the static-analysis
//! stage (`pcm-audit`) ahead of every build/run stage, and nothing may
//! gate it behind a flag like `--quick`. The audit crate's own
//! `gate-stages` rule checks the marker set; this test pins the ordering
//! from the outside so the two cannot drift together unnoticed.

fn gate_script() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/scripts_run_all.sh");
    std::fs::read_to_string(path).expect("scripts_run_all.sh exists")
}

#[test]
fn audit_stage_is_present_and_ordered_before_builds() {
    let script = gate_script();
    let audit = script
        .find("== audit ==")
        .expect("audit stage marker present");
    assert!(
        script.contains("-p pcm-audit"),
        "audit stage must invoke the pcm-audit binary"
    );
    let fmt = script
        .find("== fmt check ==")
        .expect("fmt stage marker present");
    let build = script
        .find("cargo build")
        .expect("gate builds the workspace");
    let verify = script.find("== verify ==").expect("verify stage present");
    assert!(fmt < audit, "fmt check should stay first");
    assert!(
        audit < build,
        "audit must run before the first cargo build so hygiene failures \
         abort the gate cheaply"
    );
    assert!(audit < verify, "audit must run before the verify sweep");
}

#[test]
fn serve_stage_is_present_ordered_and_checked() {
    let script = gate_script();
    let serve = script
        .find("== serve ==")
        .expect("serve stage marker present");
    assert!(
        script.contains("-p pcm-serve"),
        "serve stage must invoke the pcm-serve binary"
    );
    let stage_end = script
        .find("== experiments ==")
        .expect("experiments stage present");
    assert!(
        serve < stage_end,
        "serve smoke runs before the experiment matrix"
    );
    let audit = script.find("== audit ==").expect("audit stage present");
    assert!(audit < serve, "audit still gates the serve smoke");
    let stage = &script[serve..stage_end];
    for flag in ["--seed", "--shards", "--duration"] {
        assert!(
            stage.contains(flag),
            "serve smoke must pin {flag} for a reproducible run"
        );
    }
    assert!(
        stage.contains("pcm-serve telemetry @ cycle") && stage.contains("wear_digests "),
        "serve smoke must sanity-check the telemetry output"
    );
    assert!(
        stage.contains("exit 1"),
        "serve smoke failures must abort the gate non-zero"
    );
    assert!(
        !stage.contains("if [ \"$"),
        "serve stage must not be gated on a script flag:\n{stage}"
    );
}

#[test]
fn audit_stage_is_unconditional() {
    let script = gate_script();
    // The audit invocation must not sit behind any flag variable the way
    // the bench smoke toggle does: from the stage marker to the first
    // cargo build there is no `if [ "$...` guard.
    let audit = script.find("== audit ==").expect("audit stage present");
    let build = script.find("cargo build").expect("build present");
    let stage = &script[audit..build];
    assert!(
        !stage.contains("if [ \"$"),
        "audit stage must not be gated on a script flag:\n{stage}"
    );
    assert!(
        stage.contains("exit 1"),
        "audit failures must abort the gate non-zero"
    );
}

#[test]
fn audit_stage_emits_the_json_twin() {
    let script = gate_script();
    // The audit stage runs the scan twice: once for the human-readable
    // results/audit.txt, once as `--json` for results/audit.json — the
    // machine-readable artifact artifact-sync diffs against the tree.
    let audit = script.find("== audit ==").expect("audit stage present");
    let build = script.find("cargo build").expect("build present");
    let stage = &script[audit..build];
    assert!(
        stage.contains("--json > results/audit.json"),
        "audit stage must emit the JSON report into results/:\n{stage}"
    );
    assert!(
        stage.matches("exit 1").count() >= 2,
        "both audit invocations must abort the gate non-zero:\n{stage}"
    );
    let text = stage
        .find("results/audit.txt")
        .expect("text report present");
    let json = stage
        .find("--json > results/audit.json")
        .expect("json report present");
    assert!(
        text < json,
        "human-readable report runs first so its tail lands in gate logs"
    );
}

#[test]
fn simd_stage_runs_dual_build_and_compares_checksums() {
    let script = gate_script();
    let simd = script
        .find("== simd ==")
        .expect("simd stage marker present");
    let serve = script.find("== serve ==").expect("serve stage present");
    assert!(
        simd < serve,
        "dual-build equivalence runs before the serve smoke"
    );
    let bench = script
        .find("== bench hotpath ==")
        .expect("bench stage present");
    assert!(bench < simd, "the ratcheted bench stage runs first");
    let stage = &script[simd..serve];
    assert!(
        stage.contains("--features pcm-util/simd"),
        "simd stage must build the vector feature: tests and bench both"
    );
    assert!(
        stage.contains("cargo test"),
        "simd stage must re-run the differential test rigs with the feature on"
    );
    assert!(
        stage.contains(r#"grep '"checksum"'"#) && stage.contains("diff"),
        "simd stage must compare scalar- and vector-build bench checksums"
    );
    assert!(
        stage.matches("exit 1").count() >= 3,
        "every simd stage step must abort the gate non-zero"
    );
    assert!(
        !stage.contains("if [ \"$"),
        "simd stage must not be gated on a script flag:\n{stage}"
    );
}

#[test]
fn rivals_stage_is_present_ordered_and_unconditional() {
    let script = gate_script();
    let rivals = script
        .find("== rivals ==")
        .expect("rivals stage marker present");
    let serve = script.find("== serve ==").expect("serve stage present");
    let experiments = script
        .find("== experiments ==")
        .expect("experiments stage present");
    assert!(
        serve < rivals && rivals < experiments,
        "rival-stack gate runs between the serve smoke and the full matrix"
    );
    let stage = &script[rivals..experiments];
    assert!(
        stage.contains("run rival_lifetime --quick"),
        "rivals stage must drive the rival_lifetime grid through pcm-lab"
    );
    assert!(
        stage.contains("results/rivals.txt"),
        "rivals stage must leave its artifact in results/"
    );
    assert!(
        stage.contains("exit 1"),
        "rival-grid failures must abort the gate non-zero"
    );
    assert!(
        !stage.contains("if [ \"$"),
        "rivals stage must not be gated on a script flag:\n{stage}"
    );
}

#[test]
fn bench_stage_is_ratcheted_against_the_committed_reports() {
    let script = gate_script();
    let bench = script
        .find("== bench hotpath ==")
        .expect("bench stage present");
    let next = script.find("== simd ==").expect("simd stage present");
    let stage = &script[bench..next];
    assert!(
        stage.contains("--ratchet results/BENCH_hotpath_smoke.json"),
        "smoke bench must ratchet against the committed smoke report"
    );
    assert!(
        stage.contains("--ratchet BENCH_hotpath.json"),
        "full bench must ratchet against the committed calibrated report"
    );
}
