//! Thread-count invariance: every parallel estimator must produce
//! bit-identical results for any worker count at a fixed seed, because
//! work is seeded by item/chunk index, never by worker id (DESIGN.md
//! "Verification"). A drift here silently destroys reproducibility of
//! every published number.

use collab_pcm::core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use collab_pcm::core::{SystemConfig, SystemKind};
use collab_pcm::ecc::{failure_probability, Aegis, Ecp, MonteCarlo, Safer};
use collab_pcm::trace::SpecApp;

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    for kind in [SystemKind::Baseline, SystemKind::CompWF] {
        let system = SystemConfig::new(kind).with_endurance_mean(300.0);
        let mut line = LineSimConfig::new(system, SpecApp::Milc.profile());
        line.sample_writes = 16;
        let results: Vec<_> = [1usize, 2, 0]
            .into_iter()
            .map(|threads| {
                let mut cfg = CampaignConfig::new(line.clone(), 4242);
                cfg.lines = 24;
                cfg.threads = threads;
                run_campaign(&cfg)
            })
            .collect();
        assert_eq!(results[0], results[1], "{kind}: 1 thread vs 2 threads");
        assert_eq!(
            results[0], results[2],
            "{kind}: 1 thread vs available parallelism"
        );
    }
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    // Spans multiple chunks (CHUNK = 1024) so the work-stealing path with
    // interleaved chunk claims is actually exercised.
    let schemes: [(&str, &dyn collab_pcm::ecc::HardErrorScheme); 3] = [
        ("ecp6", &Ecp::new(6)),
        ("safer32", &Safer::new(32)),
        ("aegis", &Aegis::new(17, 31)),
    ];
    for (name, scheme) in schemes {
        let p: Vec<f64> = [1usize, 2, 0]
            .into_iter()
            .map(|threads| {
                let mc = MonteCarlo {
                    injections: 5_000,
                    seed: 0xC0FFEE,
                    threads,
                };
                failure_probability(scheme, 48, 9, &mc)
            })
            .collect();
        assert!(
            p[0].to_bits() == p[1].to_bits() && p[0].to_bits() == p[2].to_bits(),
            "{name}: thread counts disagree: {p:?}"
        );
    }
}

#[test]
fn campaign_thread_invariance_holds_when_lines_exceed_threads_unevenly() {
    // 7 lines over 2 threads: uneven striding, a classic seed-by-worker
    // regression trigger.
    let system = SystemConfig::new(SystemKind::Comp).with_endurance_mean(250.0);
    let mut line = LineSimConfig::new(system, SpecApp::Gcc.profile());
    line.sample_writes = 16;
    let run = |threads: usize| {
        let mut cfg = CampaignConfig::new(line.clone(), 77);
        cfg.lines = 7;
        cfg.threads = threads;
        run_campaign(&cfg)
    };
    let base = run(1);
    for threads in [2, 3, 0] {
        assert_eq!(base, run(threads), "threads={threads}");
    }
}
