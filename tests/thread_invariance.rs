//! Thread-count invariance: every parallel estimator must produce
//! bit-identical results for any worker count at a fixed seed, because
//! work is seeded by item/chunk index, never by worker id (DESIGN.md
//! "Verification"). A drift here silently destroys reproducibility of
//! every published number.

use collab_pcm::core::lifetime::{run_campaign, run_campaign_on, CampaignConfig, LineSimConfig};
use collab_pcm::core::{SystemConfig, SystemKind};
use collab_pcm::ecc::{failure_probability, Aegis, Ecp, MonteCarlo, Safer};
use collab_pcm::trace::SpecApp;
use collab_pcm::util::{child_seed, Pool};

/// A deterministic spin whose cost varies by orders of magnitude with the
/// job index — the static-striping worst case the work-stealing pool must
/// absorb without changing any result.
fn skewed_job(i: usize) -> u64 {
    let rounds = if i % 5 == 0 { 50_000 } else { 500 };
    let mut acc = child_seed(0xDEAD_BEEF, i as u64);
    for _ in 0..rounds {
        acc = acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    acc
}

#[test]
fn campaign_is_bit_identical_across_thread_counts() {
    for kind in [SystemKind::Baseline, SystemKind::CompWF] {
        let system = SystemConfig::new(kind).with_endurance_mean(300.0);
        let mut line = LineSimConfig::new(system, SpecApp::Milc.profile());
        line.sample_writes = 16;
        let results: Vec<_> = [1usize, 2, 0]
            .into_iter()
            .map(|threads| {
                let mut cfg = CampaignConfig::new(line.clone(), 4242);
                cfg.lines = 24;
                cfg.threads = threads;
                run_campaign(&cfg)
            })
            .collect();
        assert_eq!(results[0], results[1], "{kind}: 1 thread vs 2 threads");
        assert_eq!(
            results[0], results[2],
            "{kind}: 1 thread vs available parallelism"
        );
    }
}

#[test]
fn monte_carlo_is_bit_identical_across_thread_counts() {
    // Spans multiple chunks (CHUNK = 1024) so the work-stealing path with
    // interleaved chunk claims is actually exercised.
    let schemes: [(&str, &dyn collab_pcm::ecc::HardErrorScheme); 3] = [
        ("ecp6", &Ecp::new(6)),
        ("safer32", &Safer::new(32)),
        ("aegis", &Aegis::new(17, 31)),
    ];
    for (name, scheme) in schemes {
        let p: Vec<f64> = [1usize, 2, 0]
            .into_iter()
            .map(|threads| {
                let mc = MonteCarlo {
                    injections: 5_000,
                    seed: 0xC0FFEE,
                    threads,
                };
                failure_probability(scheme, 48, 9, &mc)
            })
            .collect();
        assert!(
            p[0].to_bits() == p[1].to_bits() && p[0].to_bits() == p[2].to_bits(),
            "{name}: thread counts disagree: {p:?}"
        );
    }
}

#[test]
fn campaign_thread_invariance_holds_when_lines_exceed_threads_unevenly() {
    // 7 lines over 2 threads: uneven striding, a classic seed-by-worker
    // regression trigger.
    let system = SystemConfig::new(SystemKind::Comp).with_endurance_mean(250.0);
    let mut line = LineSimConfig::new(system, SpecApp::Gcc.profile());
    line.sample_writes = 16;
    let run = |threads: usize| {
        let mut cfg = CampaignConfig::new(line.clone(), 77);
        cfg.lines = 7;
        cfg.threads = threads;
        run_campaign(&cfg)
    };
    let base = run(1);
    for threads in [2, 3, 0] {
        assert_eq!(base, run(threads), "threads={threads}");
    }
}

#[test]
fn pool_map_is_bit_identical_across_worker_counts_under_skewed_costs() {
    // 33 jobs, chunk size 1 and 3, every 5th job ~100× the cost of its
    // neighbours: whichever worker absorbs the heavy tail, the collected
    // vector must be identical byte for byte.
    for chunk in [1usize, 3] {
        let run = |workers: usize| Pool::new(workers).map_indexed(33, chunk, skewed_job);
        let base = run(1);
        for workers in [2, 4, 7] {
            assert_eq!(base, run(workers), "workers={workers} chunk={chunk}");
        }
    }
}

#[test]
fn campaign_stats_are_byte_identical_for_any_pool_width() {
    // The pool-aware entry point (`run_campaign_on`) with explicit pools of
    // every width, not just the config-resolved path.
    let system = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(300.0);
    let mut line = LineSimConfig::new(system, SpecApp::Milc.profile());
    line.sample_writes = 16;
    let mut cfg = CampaignConfig::new(line, 4242);
    cfg.lines = 23; // prime: never divides evenly over the worker counts
    let base = run_campaign_on(&Pool::new(1), &cfg);
    for workers in [2, 4, 7] {
        assert_eq!(
            base,
            run_campaign_on(&Pool::new(workers), &cfg),
            "workers={workers}"
        );
    }
}

#[test]
fn run_ordered_streams_in_submission_order_under_skewed_costs() {
    // `pcm-lab run-all` consumes reports through `run_ordered`; its output
    // ordering (and therefore the on-disk result files) must match the
    // registry order for every `--jobs` value even when early jobs finish
    // last.
    for workers in [1usize, 2, 4, 7] {
        let mut seen = Vec::new();
        Pool::new(workers).run_ordered(19, skewed_job, |i, v| seen.push((i, v)));
        let want: Vec<(usize, u64)> = (0..19).map(|i| (i, skewed_job(i))).collect();
        assert_eq!(seen, want, "workers={workers}");
    }
}
