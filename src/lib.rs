//! # collab-pcm
//!
//! A full reproduction of *"Exploring the Potential for Collaborative Data
//! Compression and Hard-Error Tolerance in PCM Memories"* (Jadidi et al.,
//! DSN 2017) as a Rust workspace.
//!
//! The paper stores LLC write-backs compressed in PCM so bit flips confine
//! to a small *compression window*, then collaborates that window with
//! differential writes, intra-line wear-leveling and partition-based
//! hard-error tolerance — tolerating ~3× more stuck-at faults per line and
//! extending lifetime 4.3× on average over a DW + Start-Gap + ECP-6
//! baseline.
//!
//! This facade crate re-exports every subsystem:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`util`] | `pcm-util` | 512-bit lines, fault maps, stats, samplers |
//! | [`compress`] | `pcm-compress` | BDI, FPC, best-of selector |
//! | [`ecc`] | `pcm-ecc` | ECP, SAFER, Aegis, Monte-Carlo harness |
//! | [`device`] | `pcm-device` | cells/endurance, differential writes, DIMM timing |
//! | [`wear`] | `pcm-wear` | Start-Gap, intra-line rotation |
//! | [`trace`] | `pcm-trace` | synthetic SPEC-like workload generation |
//! | [`core`] | `pcm-core` | the compression-window controller + lifetime engine |
//! | [`serve`] | `pcm-serve` | the online daemon: wire protocol, sharded banks, telemetry |
//!
//! # Quickstart
//!
//! ```
//! use collab_pcm::core::{PcmMemory, SystemConfig, SystemKind};
//! use collab_pcm::util::Line512;
//!
//! let cfg = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(1e5);
//! let mut memory = PcmMemory::new(cfg, 64, 2026);
//! let data = Line512::from_fn(|i| i % 3 == 0);
//! memory.write(17, data)?;
//! assert_eq!(memory.read(17)?, data);
//! # Ok::<(), collab_pcm::core::WriteError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! binaries that regenerate every table and figure of the paper.

pub use pcm_compress as compress;
pub use pcm_core as core;
pub use pcm_device as device;
pub use pcm_ecc as ecc;
pub use pcm_serve as serve;
pub use pcm_trace as trace;
pub use pcm_util as util;
pub use pcm_wear as wear;
