//! `pcm-verify` — the deterministic verification sweep.
//!
//! Runs the fault-injection churn harness and the replay-vs-engine
//! differential oracle over every `SystemKind` × hard-error-scheme
//! combination at two endurance settings, plus a whole-memory churn pass
//! per registered inter-line wear scheme (see DESIGN.md "Verification"),
//! printing one block per combination and exiting non-zero on any
//! mismatch — the `verify` stage of `scripts_run_all.sh`.
//!
//! ```text
//! pcm-verify [--seed N] [--churn-only] [--quiet]
//! ```

use collab_pcm::core::verify::{run_all, VerifyConfig};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = VerifyConfig::default();
    let mut quiet = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--churn-only" => cfg.churn_only = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: pcm-verify [--seed N] [--churn-only] [--quiet]");
                return;
            }
            other => die(&format!("unknown option '{other}'")),
        }
        i += 1;
    }

    // pcm-audit: allow(wallclock) — progress reporting only, never a Report
    let start = std::time::Instant::now();
    let report = run_all(&cfg);
    for entry in &report.entries {
        let verdict = if entry.passed() { "ok" } else { "FAIL" };
        match &entry.churn {
            Ok(s) => {
                if !quiet {
                    println!(
                        "{:8} / {:11} / {:9} churn: {} writes, {} slides, {} deaths, {} revived [{verdict}]",
                        entry.kind.to_string(),
                        entry.ecc.to_string(),
                        entry.wear.to_string(),
                        s.writes_checked,
                        s.slides,
                        s.deaths,
                        s.resurrections,
                    );
                }
            }
            Err(e) => println!(
                "{:8} / {:11} / {:9} churn FAIL: {e}",
                entry.kind.to_string(),
                entry.ecc.to_string(),
                entry.wear.to_string()
            ),
        }
        for o in &entry.oracles {
            if !quiet || !o.passed() {
                println!("{}", o.describe());
            }
        }
    }
    let failures = report.failures();
    println!(
        "verify: {} combinations, {} failures, {:.1}s (seed {})",
        report.entries.len(),
        failures.len(),
        start.elapsed().as_secs_f64(),
        cfg.seed
    );
    if !failures.is_empty() {
        exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("pcm-verify: {msg}");
    exit(2)
}
