//! `pcm-sim` — the workspace's command-line front end.
//!
//! ```text
//! pcm-sim lifetime   --app milc --system compwf [--lines 96] [--endurance 2e4] [--cov 0.15] [--ecc ecp6]
//! pcm-sim montecarlo --scheme safer32 --window 32 --errors 24 [--injections 10000]
//! pcm-sim compress   --app gcc [--writes 10000]
//! pcm-sim stress     --app milc --system compwf [--lines 64] [--writes 50000] [--endurance 1e4]
//! pcm-sim trace      --app milc --out trace.bin [--writes 10000] [--lines 256]
//! pcm-sim replay     --in trace.bin --system baseline [--endurance 1e4]
//! ```
//!
//! Every subcommand accepts `--seed N` (default 2017) and prints a short,
//! tab-separated report.

use collab_pcm::compress::compress_best;
use collab_pcm::core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use collab_pcm::core::registry::{parse_ecc, parse_kind, parse_wear};
use collab_pcm::core::{EccChoice, PcmMemory, SystemConfig, SystemKind, WearChoice};
use collab_pcm::ecc::montecarlo::{failure_probability, MonteCarlo};
use collab_pcm::trace::calibrate::compression_stats;
use collab_pcm::trace::{profile::ALL_APPS, SpecApp, Trace, TraceGenerator};
use std::collections::HashMap;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage("missing subcommand");
    };
    let opts = Opts::parse(rest);
    match command.as_str() {
        "lifetime" => lifetime(&opts),
        "montecarlo" => montecarlo(&opts),
        "compress" => compress(&opts),
        "stress" => stress(&opts),
        "trace" => trace(&opts),
        "replay" => replay(&opts),
        "--help" | "-h" | "help" => usage(""),
        other => usage(&format!("unknown subcommand '{other}'")),
    }
}

/// Parsed flag set (stringly typed; each subcommand pulls what it needs).
struct Opts {
    flags: HashMap<String, String>,
}

impl Opts {
    fn parse(args: &[String]) -> Self {
        let mut flags = HashMap::new();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let Some(name) = flag.strip_prefix("--") else {
                usage(&format!("expected a --flag, got '{flag}'"));
            };
            let Some(value) = it.next() else {
                usage(&format!("--{name} needs a value"));
            };
            flags.insert(name.to_string(), value.clone());
        }
        Opts { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.get(name) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad value for --{name}"))),
        }
    }

    fn seed(&self) -> u64 {
        self.num("seed", 2017)
    }

    fn app(&self) -> SpecApp {
        let name = self
            .get("app")
            .unwrap_or_else(|| usage("--app is required"));
        ALL_APPS
            .iter()
            .copied()
            .find(|a| a.name().eq_ignore_ascii_case(name))
            .unwrap_or_else(|| usage(&format!("unknown app '{name}'")))
    }

    fn system(&self) -> SystemKind {
        parse_kind(self.get("system").unwrap_or("compwf")).unwrap_or_else(|e| usage(&e))
    }

    fn ecc(&self) -> EccChoice {
        parse_ecc(self.get("ecc").unwrap_or("ecp6")).unwrap_or_else(|e| usage(&e))
    }

    fn wear(&self) -> WearChoice {
        parse_wear(self.get("wear").unwrap_or("startgap")).unwrap_or_else(|e| usage(&e))
    }

    fn system_config(&self) -> SystemConfig {
        SystemConfig::new(self.system())
            .with_endurance_mean(self.num("endurance", 2e4))
            .with_endurance_cov(self.num("cov", 0.15))
            .with_ecc(self.ecc())
            .with_wear(self.wear())
    }
}

fn lifetime(opts: &Opts) {
    let app = opts.app();
    let mut line = LineSimConfig::new(opts.system_config(), app.profile());
    line.sample_writes = opts.num("samples", 16u32);
    let mut cfg = CampaignConfig::new(line, opts.seed());
    cfg.lines = opts.num("lines", 96usize);
    let r = run_campaign(&cfg);
    println!("app\t{}", app.name());
    println!("system\t{}", opts.system());
    println!("lifetime_writes_per_line\t{}", r.lifetime_writes());
    if let Some((lo, hi)) = r.half_capacity_ci {
        println!("lifetime_ci90\t[{lo}, {hi}]");
    }
    println!("mean_flips_per_write\t{:.1}", r.mean_flips_per_write);
    println!(
        "faults_at_death_mean\t{:.1}",
        r.mean_faults_at_death.unwrap_or(0.0)
    );
    println!("lines_revived\t{:.0}%", 100.0 * r.lines_revived);
    println!(
        "months_at_1e7\t{:.1}",
        r.months(app.profile().wpki, 1e7 / opts.num("endurance", 2e4))
    );
}

fn montecarlo(opts: &Opts) {
    let scheme = opts.ecc().scheme();
    let window: usize = opts.num("window", 32);
    let errors: usize = opts.num("errors", 16);
    let mc = MonteCarlo {
        injections: opts.num("injections", 10_000usize),
        seed: opts.seed(),
        threads: 0,
    };
    let p = failure_probability(scheme, window, errors, &mc);
    println!("scheme\t{}", scheme.name());
    println!("window_bytes\t{window}");
    println!("errors\t{errors}");
    println!("failure_probability\t{p:.4}");
}

fn compress(opts: &Opts) {
    let app = opts.app();
    let mut generator = TraceGenerator::from_profile(app.profile(), 512, opts.seed());
    let stats = compression_stats(&mut generator, opts.num("writes", 10_000usize));
    println!("app\t{}", app.name());
    println!("bdi_mean_bytes\t{:.1}", stats.bdi_mean);
    println!("fpc_mean_bytes\t{:.1}", stats.fpc_mean);
    println!("best_mean_bytes\t{:.1}", stats.best_mean);
    println!("compression_ratio\t{:.2}", stats.cr);
    println!("uncompressed_fraction\t{:.2}", stats.uncompressed_fraction);
}

fn stress(opts: &Opts) {
    let app = opts.app();
    let lines: u64 = opts.num("lines", 64);
    let writes: u64 = opts.num("writes", 50_000);
    let mut memory = PcmMemory::new(
        opts.system_config()
            .with_endurance_mean(opts.num("endurance", 1e4)),
        lines,
        opts.seed(),
    );
    let mut generator = TraceGenerator::from_profile(app.profile(), lines, opts.seed() ^ 1);
    let mut failed_writes = 0u64;
    for _ in 0..writes {
        let w = generator.next_write();
        if memory.write(w.line, w.data).is_err() {
            failed_writes += 1;
        }
        if memory.is_failed() {
            break;
        }
    }
    let s = memory.stats();
    println!("demand_writes\t{}", s.demand_writes);
    println!("failed_writes\t{failed_writes}");
    println!("gap_moves\t{}", s.gap_moves);
    println!("total_flips\t{}", s.total_flips);
    println!("cells_stuck\t{}", s.new_faults);
    println!("compressed_writes\t{}", s.compressed_writes);
    println!("resurrections\t{}", s.resurrections);
    println!("dead_fraction\t{:.3}", memory.dead_fraction());
}

fn trace(opts: &Opts) {
    let app = opts.app();
    let out = opts
        .get("out")
        .unwrap_or_else(|| usage("--out is required"));
    let lines: u64 = opts.num("lines", 256);
    let writes: usize = opts.num("writes", 10_000);
    let mut generator = TraceGenerator::from_profile(app.profile(), lines, opts.seed());
    let trace = generator.generate(writes);
    std::fs::write(out, trace.to_bytes()).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out}: {e}");
        exit(1);
    });
    println!("wrote\t{out}");
    println!("records\t{}", trace.len());
    println!("bytes\t{}", 8 + trace.len() * 72);
}

fn replay(opts: &Opts) {
    let input = opts.get("in").unwrap_or_else(|| usage("--in is required"));
    let bytes = std::fs::read(input).unwrap_or_else(|e| {
        eprintln!("error: cannot read {input}: {e}");
        exit(1);
    });
    let trace = Trace::from_bytes(&bytes).unwrap_or_else(|e| {
        eprintln!("error: malformed trace: {e}");
        exit(1);
    });
    let lines = trace
        .iter()
        .map(|r| r.line)
        .max()
        .map(|m| m + 1)
        .unwrap_or(2)
        .max(2);
    let mut memory = PcmMemory::new(
        opts.system_config()
            .with_endurance_mean(opts.num("endurance", 1e4)),
        lines,
        opts.seed(),
    );
    let mut failed = 0u64;
    let mut compressed_bytes = 0u64;
    for r in &trace {
        compressed_bytes += compress_best(&r.data).size() as u64;
        if memory.write(r.line, r.data).is_err() {
            failed += 1;
        }
    }
    let s = memory.stats();
    println!("records\t{}", trace.len());
    println!("failed_writes\t{failed}");
    println!("total_flips\t{}", s.total_flips);
    println!(
        "mean_cr\t{:.2}",
        compressed_bytes as f64 / (trace.len() as f64 * 64.0)
    );
    println!("dead_fraction\t{:.3}", memory.dead_fraction());
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "pcm-sim — DSN'17 collaborative-compression PCM simulator\n\n\
         subcommands:\n\
         \x20 lifetime   --app APP [--system S] [--lines N] [--endurance E] [--cov C] [--ecc E]\n\
         \x20 montecarlo [--ecc E] [--window B] [--errors K] [--injections N]\n\
         \x20 compress   --app APP [--writes N]\n\
         \x20 stress     --app APP [--system S] [--lines N] [--writes N] [--endurance E]\n\
         \x20 trace      --app APP --out FILE [--writes N] [--lines N]\n\
         \x20 replay     --in FILE [--system S] [--endurance E]\n\n\
         systems: baseline | comp | compw | compwf\n\
         ecc:     ecp6 | ecpN | safer32 | aegis | secded | coset\n\
         wear:    startgap | secref | wolfram  (--wear, default startgap)\n\
         apps:    {}",
        ALL_APPS.map(|a| a.name()).join(" ")
    );
    exit(if msg.is_empty() { 0 } else { 2 });
}
