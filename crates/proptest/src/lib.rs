//! A self-contained, deterministic property-testing engine with the
//! `proptest` API surface this workspace uses.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this minimal engine: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`/`prop_flat_map`, `any::<T>()`, [`Just`], ranges, tuples,
//! `prop::collection::{vec, btree_set}`, `prop::array::uniform8`,
//! `prop::sample::select`, and the `prop_assert*` macros.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports its *case seed* instead;
//!   re-running with `PROPTEST_SEED=<seed> PROPTEST_CASES=1` reproduces
//!   exactly that input (the full generated values are also printed).
//! * **Deterministic by default.** Case seeds derive from a fixed base
//!   seed and the test name, so CI failures reproduce locally without any
//!   environment capture.
//!
//! # Examples
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! (The generated function carries `#[test]`, so the doctest only checks
//! that the macro expansion compiles; the real runs happen under
//! `cargo test`.)

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value from the RNG.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Discards generated values failing the predicate (bounded
        /// retries, then keeps the last value regardless — this engine
        /// never rejects a whole case).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            _whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut last = self.inner.generate(rng);
            for _ in 0..100 {
                if (self.f)(&last) {
                    break;
                }
                last = self.inner.generate(rng);
            }
            last
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn ObjectSafeStrategy<Value = T>>);

    /// Object-safe core of [`Strategy`].
    trait ObjectSafeStrategy {
        type Value: Debug;
        fn generate_obj(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> ObjectSafeStrategy for S {
        type Value = S::Value;
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_obj(rng)
        }
    }

    /// A uniformly random choice among alternative strategies (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    #[derive(Clone)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T: Debug> Union<T> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Generation panics if `alternatives` is empty.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            Union(alternatives)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::seq::IndexedRandom;
            self.0
                .choose(rng)
                .expect("union over no alternatives")
                .generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform over the full domain of `T` (see [`any`]).
    #[derive(Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: rand::Random + Debug> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::RngExt;
            rng.random()
        }
    }

    /// Uniform over the full domain of `T` (`[0, 1)` for floats).
    pub fn any<T: rand::Random + Debug>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::RngExt;
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// An inclusive size band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..=self.hi)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length falls in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord + Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates don't grow the set; bound the attempts so sparse
            // domains cannot loop forever (the set may come up short, which
            // upstream proptest also permits within its size band).
            for _ in 0..target * 10 + 20 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    /// A `BTreeSet` whose cardinality falls in `size` (best effort on
    /// sparse domains).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord + Debug,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// See [`uniform8`].
    #[derive(Debug, Clone)]
    pub struct Uniform8<S>(S);

    impl<S: Strategy> Strategy for Uniform8<S> {
        type Value = [S::Value; 8];

        fn generate(&self, rng: &mut TestRng) -> [S::Value; 8] {
            std::array::from_fn(|_| self.0.generate(rng))
        }
    }

    /// An `[T; 8]` with each element drawn from `elem`.
    pub fn uniform8<S: Strategy>(elem: S) -> Uniform8<S> {
        Uniform8(elem)
    }
}

pub mod sample {
    //! Sampling from explicit value lists.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::seq::IndexedRandom;
    use std::fmt::Debug;

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + Debug>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.choose(rng).expect("select over empty list").clone()
        }
    }

    /// A uniformly random element of `options`.
    ///
    /// # Panics
    ///
    /// Generation panics if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        Select(options)
    }
}

pub mod test_runner {
    //! Case scheduling, seeding, and failure reporting.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies.
    pub type TestRng = StdRng;

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Stable 64-bit FNV-1a over the test name: the per-test seed base.
    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Derives the deterministic seed of one case.
    pub fn case_seed(base: u64, case: u32) -> u64 {
        base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Runs `cases` deterministic cases of `body`.
    ///
    /// `body` receives the case RNG and returns `Err(message)` on a
    /// `prop_assert*` failure; panics propagate. Either way the failure
    /// report names the case seed — rerun just that input with
    /// `PROPTEST_SEED=<seed> PROPTEST_CASES=1 cargo test <name>`.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok());
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse::<u32>().ok())
            .unwrap_or(config.cases);
        let base = env_seed.unwrap_or_else(|| fnv1a(name));
        for case in 0..cases {
            // With an explicit PROPTEST_SEED the seed is used *directly*
            // (case 0), so a printed seed reproduces its exact input.
            let seed = if env_seed.is_some() && case == 0 {
                base
            } else {
                case_seed(base, case)
            };
            let mut rng = TestRng::seed_from_u64(seed);
            if let Err(msg) = body(&mut rng) {
                // pcm-audit: allow(panic-macro) — the shim reports case failure by panicking; that is its contract with the test harness
                panic!(
                    "proptest '{name}' failed at case {case}/{cases} (seed {seed}): {msg}\n\
                     reproduce with: PROPTEST_SEED={seed} PROPTEST_CASES=1"
                );
            }
        }
    }
}

/// `prop::` namespace, as re-exported by the prelude.
pub mod prop {
    pub use crate::array;
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Just, Strategy};
pub use test_runner::ProptestConfig;

/// A strategy choosing uniformly among the listed alternative strategies
/// (all must generate the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

/// Declares property tests: each `fn` runs its body over generated inputs.
///
/// Supports the upstream syntax subset `#![proptest_config(expr)]`
/// followed by `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                { $body }
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in -4i64..=4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 1..=64),
            s in prop::collection::btree_set(0u16..512, 0..6),
            words in prop::array::uniform8(any::<u64>()),
        ) {
            prop_assert!((1..=64).contains(&v.len()));
            prop_assert!(s.len() < 6);
            prop_assert_eq!(words.len(), 8);
        }

        #[test]
        fn combinators_compose(
            pair in (any::<u64>(), prop::collection::vec(-8i64..8, 3)).prop_map(|(a, b)| (a, b)),
            nested in prop::collection::btree_set(0u16..64, 0..=4).prop_flat_map(|s| {
                let n = s.len();
                (Just(s), prop::collection::vec(any::<bool>(), n))
            }),
            pick in prop::sample::select(vec![1u8, 3, 7]),
        ) {
            prop_assert_eq!(pair.1.len(), 3);
            prop_assert_eq!(nested.0.len(), nested.1.len());
            prop_assert!([1u8, 3, 7].contains(&pick));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(crate::any::<u64>(), 0..10);
        let a = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(9));
        let b = strat.generate(&mut crate::test_runner::TestRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "reproduce with")]
    fn failures_report_seed() {
        crate::test_runner::run(&ProptestConfig::with_cases(3), "always_fails", |_| {
            Err("boom".to_string())
        });
    }
}
