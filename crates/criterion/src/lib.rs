//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The offline build cannot fetch the real criterion, so this crate keeps
//! the workspace's `benches/` compiling and runnable: each benchmark runs
//! a short calibrated loop and prints a single median-time line. There is
//! no statistical analysis, HTML report, or baseline comparison — for real
//! measurements, point the workspace dependency back at crates.io.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `bdi/zero-line`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-element throughput annotation (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Runs closures under timing; handed to benchmark bodies.
pub struct Bencher {
    iters: u64,
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, first calibrating an iteration count so the
    /// measured batch lasts at least ~5 ms.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                self.iters = iters;
                self.median_ns = elapsed.as_nanos() as f64 / iters as f64;
                return;
            }
            iters = iters.saturating_mul(4);
        }
    }
}

fn report(id: &str, bencher: &Bencher) {
    println!("bench: {id:<48} {:>12.1} ns/iter ({} iters)", bencher.median_ns, bencher.iters);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; not reported.
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness self-calibrates.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness self-calibrates.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, median_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Benchmarks `f` under `group/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { iters: 0, median_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op; groups report as they run).
    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Accepted for API compatibility; this harness self-calibrates.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; this harness self-calibrates.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 0, median_ns: 0.0 };
        f(&mut b);
        report(&id.to_string(), &b);
        self
    }

    /// Benchmarks a function with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { iters: 0, median_ns: 0.0 };
        f(&mut b, input);
        report(&id.to_string(), &b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), _criterion: self }
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
