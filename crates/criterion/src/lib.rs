//! Minimal stand-in for the `criterion` benchmark harness.
//!
//! The offline build cannot fetch the real criterion, so this crate keeps
//! the workspace's `benches/` compiling and runnable: each benchmark runs a
//! calibrated batch several times and reports the median and MAD (median
//! absolute deviation) of the per-iteration time. There is no HTML report
//! or baseline comparison — for full statistics, point the workspace
//! dependency back at crates.io.
//!
//! Beyond the drop-in `criterion` API, the shim exposes the measurements
//! programmatically: [`Criterion::results`] returns one [`BenchResult`] per
//! completed benchmark, which `pcm-bench-hotpath` uses to emit
//! `BENCH_hotpath.json`.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `bdi/zero-line`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration work annotation, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The measurements of one completed benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full id, `group/function/parameter`.
    pub id: String,
    /// Iterations per measured batch.
    pub iters: u64,
    /// Median per-iteration time over the measured batches.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration time.
    pub mad_ns: f64,
    /// Work per iteration, when annotated via [`Throughput`].
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Throughput units per second (bytes or elements, per the
    /// annotation); `None` without an annotation or measurement.
    pub fn per_second(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Bytes(b) => b,
            Throughput::Elements(e) => e,
        };
        if self.median_ns > 0.0 {
            Some(units as f64 * 1e9 / self.median_ns)
        } else {
            None
        }
    }
}

/// Measurement knobs shared by the harness and groups.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Minimum wall time of one calibrated batch.
    batch_target: Duration,
    /// Measured batches per benchmark (median/MAD sample count).
    batches: usize,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            batch_target: Duration::from_millis(5),
            batches: 5,
        }
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Runs closures under timing; handed to benchmark bodies.
pub struct Bencher {
    settings: Settings,
    iters: u64,
    median_ns: f64,
    mad_ns: f64,
}

impl Bencher {
    fn new(settings: Settings) -> Self {
        Bencher {
            settings,
            iters: 0,
            median_ns: 0.0,
            mad_ns: 0.0,
        }
    }

    /// Times `routine`: calibrates an iteration count so one batch lasts at
    /// least the configured target, then measures the batch repeatedly and
    /// records the median and MAD of the per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut samples: Vec<f64> = Vec::with_capacity(self.settings.batches);
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.settings.batch_target || iters >= 1 << 20 {
                samples.push(elapsed.as_nanos() as f64 / iters as f64);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        for _ in 1..self.settings.batches.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let med = median(&samples);
        let mut devs: Vec<f64> = samples.iter().map(|s| (s - med).abs()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        self.iters = iters;
        self.median_ns = med;
        self.mad_ns = median(&devs);
    }
}

fn report(id: &str, bencher: &Bencher) {
    println!(
        "bench: {id:<48} {:>12.1} ns/iter (±{:.1} MAD, {} iters × {} batches)",
        bencher.median_ns,
        bencher.mad_ns,
        bencher.iters,
        bencher.settings.batches.max(1)
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    settings: Settings,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with per-iteration work.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of measured batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.batches = n.max(1);
        self
    }

    /// Sets the minimum wall time of one calibrated batch for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.batch_target = d;
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher::new(self.settings);
        f(&mut b);
        report(&id, &b);
        self.criterion.results.push(BenchResult {
            id,
            iters: b.iters,
            median_ns: b.median_ns,
            mad_ns: b.mad_ns,
            throughput: self.throughput,
        });
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmarks `f` under `group/id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group (no-op; groups report as they run).
    pub fn finish(self) {}
}

/// The harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Accepted for API compatibility; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.batches = n.max(1);
        self
    }

    /// Sets the minimum wall time of one calibrated batch.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.batch_target = d;
        self
    }

    /// The measurements of every benchmark run so far, in order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher::new(self.settings);
        f(&mut b);
        report(&id, &b);
        self.results.push(BenchResult {
            id,
            iters: b.iters,
            median_ns: b.median_ns,
            mad_ns: b.mad_ns,
            throughput: None,
        });
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks a function with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            settings,
            criterion: self,
        }
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(7));
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn results_are_collected_with_throughput() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_micros(200));
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("ten", |b| b.iter(|| (0..10u64).sum::<u64>()));
        g.finish();
        let rs = c.results();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, "noop");
        assert!(rs[0].throughput.is_none() && rs[0].per_second().is_none());
        assert_eq!(rs[1].id, "g/ten");
        assert!(rs[1].median_ns > 0.0);
        assert!(rs[1].mad_ns >= 0.0);
        assert!(rs[1].per_second().unwrap() > 0.0);
        assert!(rs[1].iters >= 1);
    }

    #[test]
    fn median_of_samples() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
    }
}
