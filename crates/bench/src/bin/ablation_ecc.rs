//! Ablation: Comp+WF under ECP-6, SAFER-32, and Aegis 17×31.

use pcm_bench::experiments::ablation::ecc_ablation;
use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Ablation: hard-error scheme under Comp+WF (lifetime in per-line writes)");
    println!("app\tECP-6\tSAFER-32\tAegis\tECP_faults\tSAFER_faults\tAegis_faults");
    for app in &opts.apps {
        let rows = ecc_ablation(*app, scale, opts.seed);
        println!(
            "{}\t{}\t{}\t{}\t{:.1}\t{:.1}\t{:.1}",
            app.name(),
            rows[0].1.lifetime_writes(),
            rows[1].1.lifetime_writes(),
            rows[2].1.lifetime_writes(),
            rows[0].1.mean_faults_at_death.unwrap_or(0.0),
            rows[1].1.mean_faults_at_death.unwrap_or(0.0),
            rows[2].1.mean_faults_at_death.unwrap_or(0.0),
        );
    }
}
