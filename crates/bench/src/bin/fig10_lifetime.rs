//! Fig. 10: lifetime of Comp, Comp+W, and Comp+WF normalized to the
//! baseline (DW + Start-Gap + ECP-6) system.

use pcm_bench::experiments::lifetime::{fig10_app, Scale};
use pcm_bench::Options;
use pcm_core::SystemKind;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Fig 10: normalized lifetime (x baseline)");
    println!("app\tComp\tComp+W\tComp+WF");
    let mut sums = [0.0f64; 3];
    for app in &opts.apps {
        let l = fig10_app(*app, scale, opts.seed);
        let row = [
            l.normalized(SystemKind::Comp),
            l.normalized(SystemKind::CompW),
            l.normalized(SystemKind::CompWF),
        ];
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
        for (s, r) in sums.iter_mut().zip(row) {
            *s += r;
        }
    }
    let n = opts.apps.len() as f64;
    println!(
        "Average\t{:.2}\t{:.2}\t{:.2}",
        sums[0] / n,
        sums[1] / n,
        sums[2] / n
    );
    println!("# paper averages: Comp 1.35x, Comp+W 3.2x, Comp+WF 4.3x");
    for (label, sum) in ["Comp", "Comp+W", "Comp+WF"].iter().zip(sums) {
        println!("# {label:8} {}", pcm_bench::plot::bar(sum / n, 5.0, 40));
    }
}
