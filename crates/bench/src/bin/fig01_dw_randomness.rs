//! Fig. 1: distribution of updated bits for consecutive writes to one
//! 64-byte block of gobmk under differential writes.

use pcm_bench::experiments::compression::fig01_flip_series;
use pcm_bench::Options;
use pcm_trace::SpecApp;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 60 } else { 200 };
    let series = fig01_flip_series(SpecApp::Gobmk, writes, opts.seed);
    println!("# Fig 1: DW bit flips per consecutive write (gobmk, one block)");
    println!("write\tflips");
    for (i, f) in series.iter().enumerate() {
        println!("{i}\t{f}");
    }
    let mean = series.iter().sum::<u32>() as f64 / series.len() as f64;
    let max = series.iter().max().unwrap();
    let min = series.iter().min().unwrap();
    println!("# mean {mean:.1}, min {min}, max {max} of 512 cells");
    let as_f64: Vec<f64> = series.iter().map(|&f| f as f64).collect();
    println!(
        "# shape: {}",
        pcm_bench::plot::sparkline(&pcm_bench::plot::downsample(&as_f64, 64))
    );
}
