//! Fig. 11: CDF of the per-address maximum compressed size (gcc vs milc).

use pcm_bench::experiments::compression::fig11_cdf;
use pcm_bench::Options;
use pcm_trace::SpecApp;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 8_000 } else { 40_000 };
    println!("# Fig 11: CDF of per-address max compressed size");
    println!("size\tgcc\tmilc");
    let gcc = fig11_cdf(SpecApp::Gcc, writes, opts.seed);
    let milc = fig11_cdf(SpecApp::Milc, writes, opts.seed);
    for size in (0..=64).step_by(4) {
        println!(
            "{size}\t{:.2}\t{:.2}",
            gcc.fraction_le(size as f64),
            milc.fraction_le(size as f64)
        );
    }
    println!("# paper: ~80% of milc addresses stay below 25B; gcc spreads 25-64B");
}
