//! Compressor study: BDI vs FPC vs the best-of selector vs a trained FVC
//! dictionary, per workload — the design-space the paper's §III selector
//! sits in. FVC needs persistent dictionary state, which is why the
//! paper's controller prefers the stateless BDI/FPC pair.

use pcm_bench::Options;
use pcm_compress::{bdi, compress_best, fpc, FvcDictionary};
use pcm_trace::TraceGenerator;
use pcm_util::child_seed;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 2_000 } else { 10_000 };
    println!("# Mean compressed size (bytes): BDI / FPC / BEST / FVC-64");
    println!("app\tBDI\tFPC\tBEST\tFVC");
    for app in &opts.apps {
        let seed = child_seed(opts.seed, *app as u64);
        // Train FVC on a separate warmup stream of the same workload.
        let mut warmup = TraceGenerator::from_profile(app.profile(), 256, seed ^ 1);
        let training: Vec<_> = (0..2_000).map(|_| warmup.next_write().data).collect();
        let dict = FvcDictionary::train(training.iter(), 64);

        let mut generator = TraceGenerator::from_profile(app.profile(), 256, seed);
        let (mut b, mut f, mut best, mut v) = (0usize, 0usize, 0usize, 0usize);
        for _ in 0..writes {
            let data = generator.next_write().data;
            b += bdi::compress(&data).map(|c| c.size()).unwrap_or(64);
            f += fpc::compress(&data).size().min(64);
            best += compress_best(&data).size();
            v += dict.compress(&data).size_bytes().min(64);
        }
        let n = writes as f64;
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            app.name(),
            b as f64 / n,
            f as f64 / n,
            best as f64 / n,
            v as f64 / n
        );
    }
}
