//! `pcm-lab`: the single entry point to the experiment registry.
//!
//! * `pcm-lab list` — every experiment with its paper anchor and scale,
//! * `pcm-lab run <name…> [--format text|tsv|json]` — run and print,
//! * `pcm-lab run-all [--jobs N] [--out-dir DIR]` — run the whole
//!   registry (thread-pool workers, deterministic output order) and write
//!   `results/<name>.txt` + `results/<name>.json`,
//! * `pcm-lab diff [--dir DIR] [name…]` — re-run each tracked report at
//!   its recorded seed/scale and compare within per-statistic tolerance
//!   bands, exiting non-zero on any mismatch.
//!
//! All run commands also accept the standard experiment options
//! (`--quick`, `--seed N`, `--apps a,b,c`).

use pcm_bench::cli::{lookup_app, CliError, Options, USAGE};
use pcm_bench::report::{diff_reports, merge_reports};
use pcm_bench::{find, run_timed, Report, REGISTRY};
use pcm_util::{child_seed, Pool};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> String {
    format!(
        "usage: pcm-lab <command> [args]\n\
         \n\
         commands:\n\
         \x20 list                         list every registered experiment\n\
         \x20 run <name…> [--format F] [--seeds N] [--shard I/K] [--jobs N]\n\
         \x20                              run experiments, print to stdout (F: text|tsv|json);\n\
         \x20                              --seeds fans each one over N derived seeds on the job\n\
         \x20                              pool and merges the reports into mean ± 95% CI rows\n\
         \x20 run-all [--jobs N] [--out-dir DIR]\n\
         \x20                              run the whole registry, write DIR/<name>.txt|.json\n\
         \x20 diff [--dir DIR] [name…]     re-run tracked reports, compare within tolerances\n\
         \n\
         experiment options (run, run-all): {USAGE}\n\
         diff re-runs each experiment at the seed/scale recorded in its tracked report."
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "list" => cmd_list(rest),
        "run" => cmd_run(rest),
        "run-all" => cmd_run_all(rest),
        "diff" => cmd_diff(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command '{other}'\n\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Splits a command's arguments into its own `(flag, value)` pairs, bare
/// experiment names, and the pass-through experiment options.
fn split_args(
    args: &[String],
    value_flags: &[&str],
) -> Result<(Vec<(String, String)>, Vec<String>, Options), String> {
    let mut own = Vec::new();
    let mut names = Vec::new();
    let mut opt_args = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if value_flags.contains(&arg.as_str()) {
            let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
            own.push((arg.clone(), v.clone()));
        } else if matches!(arg.as_str(), "--seed" | "--apps") {
            opt_args.push(arg.clone());
            if let Some(v) = it.next() {
                opt_args.push(v.clone());
            }
        } else if arg.starts_with('-') {
            // --quick, --help, and anything unknown: Options::parse decides.
            opt_args.push(arg.clone());
        } else {
            names.push(arg.clone());
        }
    }
    let opts = Options::parse(opt_args).map_err(|e| match e {
        CliError::Help => usage(),
        CliError::Invalid(msg) => format!("error: {msg}\n\n{}", usage()),
    })?;
    Ok((own, names, opts))
}

fn resolve(names: &[String]) -> Result<Vec<&'static dyn pcm_bench::Experiment>, String> {
    names
        .iter()
        .map(|n| {
            find(n).ok_or_else(|| {
                format!("unknown experiment '{n}' (see `pcm-lab list` for the registry)")
            })
        })
        .collect()
}

fn cmd_list(args: &[String]) -> Result<(), String> {
    let (_, names, _) = split_args(args, &[])?;
    if !names.is_empty() {
        return Err(format!("list takes no experiment names, got {names:?}"));
    }
    println!("{} experiments registered:\n", REGISTRY.len());
    for e in REGISTRY {
        println!("{:24} {:10} {}", e.name(), e.anchor(), e.description());
        println!(
            "{:24} {:10} scale: {} (quick: {})",
            "",
            "",
            e.scale_summary(false),
            e.scale_summary(true)
        );
    }
    Ok(())
}

/// Parses a `--shard I/K` value (0-based shard `I` of `K`).
fn parse_shard(value: &str) -> Result<(usize, usize), String> {
    let (i, k) = value
        .split_once('/')
        .ok_or_else(|| format!("--shard needs the form I/K, got '{value}'"))?;
    let i: usize = i
        .parse()
        .map_err(|_| format!("bad shard index in '{value}'"))?;
    let k: usize = k
        .parse()
        .ok()
        .filter(|&k| k >= 1)
        .ok_or_else(|| format!("bad shard count in '{value}'"))?;
    if i >= k {
        return Err(format!("shard index {i} out of range for {k} shard(s)"));
    }
    Ok((i, k))
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (own, names, opts) = split_args(args, &["--format", "--seeds", "--shard", "--jobs"])?;
    let mut format = "text".to_string();
    let mut seeds: Option<usize> = None;
    let mut shard = (0usize, 1usize);
    let mut shard_given = false;
    let mut jobs = 0usize; // 0: let the pool resolve available parallelism
    for (flag, value) in own {
        match flag.as_str() {
            "--format" => format = value,
            "--seeds" => {
                seeds = Some(
                    value
                        .parse()
                        .ok()
                        .filter(|&n: &usize| n >= 1)
                        .ok_or_else(|| {
                            format!("--seeds needs a positive integer, got '{value}'")
                        })?,
                );
            }
            "--shard" => {
                shard = parse_shard(&value)?;
                shard_given = true;
            }
            "--jobs" => {
                jobs = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got '{value}'"))?;
            }
            _ => unreachable!(),
        }
    }
    if !matches!(format.as_str(), "text" | "tsv" | "json") {
        return Err(format!("unknown format '{format}' (text|tsv|json)"));
    }
    if shard_given && seeds.is_none() {
        return Err("--shard only makes sense with --seeds".into());
    }
    if names.is_empty() {
        return Err(format!(
            "run needs at least one experiment name\n\n{}",
            usage()
        ));
    }
    let emit = |report: &Report| match format.as_str() {
        "text" => print!("{}", report.to_text()),
        "tsv" => print!("{}", report.to_tsv()),
        "json" => print!("{}", report.to_json()),
        _ => unreachable!(),
    };
    let experiments = resolve(&names)?;
    let Some(seeds) = seeds else {
        for exp in experiments {
            emit(&run_timed(exp, &opts));
        }
        return Ok(());
    };

    // Multi-seed fan-out: seed stream `j` of the campaign is always
    // `child_seed(opts.seed, j)`, and `--shard I/K` keeps streams with
    // `j % K == I` — so the union of the K shards is exactly the unsharded
    // seed list and every shard is reproducible in isolation.
    let (shard_idx, shard_count) = shard;
    let streams: Vec<usize> = (0..seeds)
        .filter(|j| j % shard_count == shard_idx)
        .collect();
    if streams.is_empty() {
        return Err(format!(
            "shard {shard_idx}/{shard_count} is empty for --seeds {seeds}"
        ));
    }
    let pool = Pool::new(jobs);
    for exp in experiments {
        let reports = pool.map_indexed(streams.len(), 1, |si| {
            let run_opts = Options {
                seed: child_seed(opts.seed, streams[si] as u64),
                ..opts.clone()
            };
            run_timed(exp, &run_opts)
        });
        let mut merged = merge_reports(&reports)?;
        merged.note(format!(
            "seed streams {:?} of 0..{seeds} (shard {shard_idx}/{shard_count}) from base seed {}",
            streams, opts.seed
        ));
        emit(&merged);
    }
    Ok(())
}

fn cmd_run_all(args: &[String]) -> Result<(), String> {
    let (own, names, opts) = split_args(args, &["--jobs", "--out-dir"])?;
    if !names.is_empty() {
        return Err(format!("run-all takes no experiment names, got {names:?}"));
    }
    let mut jobs = 0usize; // 0: let the pool resolve available parallelism
    let mut out_dir: Option<PathBuf> = None;
    for (flag, value) in own {
        match flag.as_str() {
            "--jobs" => {
                jobs = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got '{value}'"))?;
            }
            "--out-dir" => out_dir = Some(PathBuf::from(value)),
            _ => unreachable!(),
        }
    }
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir:?}: {e}"))?;
    }

    let n = REGISTRY.len();
    let total_start = std::time::Instant::now();

    // Experiments drain from the shared pool; the consumer prints (and
    // writes files) in registry order so the output is deterministic
    // regardless of which worker finishes first. Campaigns inside an
    // experiment see `Pool::in_worker()` and run serially — the outer pool
    // already owns the machine's parallelism.
    let mut write_err: Option<String> = None;
    Pool::new(jobs).run_ordered(
        n,
        |i| run_timed(REGISTRY[i], &opts),
        |i, report| {
            println!(
                "[{:2}/{n}] {:24} {:>9.1} ms  {}",
                i + 1,
                REGISTRY[i].name(),
                report.manifest.wall_ms,
                report.summary()
            );
            if let Some(dir) = &out_dir {
                if write_err.is_none() {
                    write_err = write_report(dir, &report).err();
                }
            }
        },
    );
    if let Some(e) = write_err {
        return Err(e);
    }

    println!(
        "{n} experiments in {:.1} s{}",
        total_start.elapsed().as_secs_f64(),
        out_dir
            .as_deref()
            .map(|d| format!(", reports in {}", d.display()))
            .unwrap_or_default()
    );
    Ok(())
}

fn write_report(dir: &Path, report: &Report) -> Result<(), String> {
    let name = &report.manifest.experiment;
    for (ext, payload) in [("txt", report.to_text()), ("json", report.to_json())] {
        let path = dir.join(format!("{name}.{ext}"));
        std::fs::write(&path, payload).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> Result<(), String> {
    let (own, names, opts) = split_args(args, &["--dir"])?;
    if opts != Options::default() {
        return Err(
            "diff takes its seed/scale/apps from each tracked report's manifest; \
             --quick/--seed/--apps are not accepted"
                .into(),
        );
    }
    let mut dir = PathBuf::from("results");
    for (flag, value) in own {
        if flag == "--dir" {
            dir = PathBuf::from(value);
        }
    }
    let targets = if names.is_empty() {
        REGISTRY.to_vec()
    } else {
        resolve(&names)?
    };

    let mut failures = Vec::new();
    for exp in targets {
        let path = dir.join(format!("{}.json", exp.name()));
        let tracked = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {path:?}: {e}"))
            .and_then(|text| {
                Report::from_json(&text).map_err(|e| format!("cannot parse {path:?}: {e}"))
            });
        let tracked = match tracked {
            Ok(t) => t,
            Err(msg) => {
                println!("FAIL {msg}");
                failures.push(exp.name().to_string());
                continue;
            }
        };
        // Reproduce the tracked run: same seed, same scale, same apps.
        let apps: Result<Vec<_>, _> = tracked
            .manifest
            .apps
            .iter()
            .map(|a| lookup_app(a))
            .collect();
        let apps = match apps {
            Ok(apps) => apps,
            Err(e) => {
                println!("FAIL {}: bad tracked app list: {e}", exp.name());
                failures.push(exp.name().to_string());
                continue;
            }
        };
        let run_opts = Options {
            quick: tracked.manifest.quick,
            seed: tracked.manifest.seed,
            apps,
        };
        let fresh = run_timed(exp, &run_opts);
        let diff = diff_reports(&tracked, &fresh);
        if diff.passed() {
            println!(
                "ok   {:24} {} statistic(s) within tolerance ({:.1} ms)",
                exp.name(),
                diff.compared,
                fresh.manifest.wall_ms
            );
        } else {
            println!("FAIL {}", diff.describe());
            failures.push(exp.name().to_string());
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} experiment(s) out of tolerance: {}",
            failures.len(),
            failures.join(", ")
        ))
    }
}
