//! Ablation: SECDED vs ECP-6 as the hard-error scheme (paper §II-C) and
//! the ECP-strength storage tradeoff (§V.A.5).
//!
//! Two claims are checked: (1) SECDED's one-error-per-word limit retires
//! PCM lines as soon as faults start clustering, so a SECDED baseline dies
//! far earlier than the ECP-6 baseline; (2) matching Comp+WF's tolerated
//! fault depth with brute-force ECP would need many more entries — a ~40%
//! storage increase the paper deems impractical.

use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;
use pcm_core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use pcm_core::{EccChoice, SystemConfig, SystemKind};
use pcm_util::child_seed;

fn lifetime(
    kind: SystemKind,
    ecc: EccChoice,
    app: pcm_trace::SpecApp,
    scale: Scale,
    seed: u64,
) -> (u64, f64) {
    let system = SystemConfig::new(kind)
        .with_endurance_mean(scale.endurance_mean)
        .with_ecc(ecc);
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = scale.sample_writes;
    let mut cfg = CampaignConfig::new(line, seed);
    cfg.lines = scale.lines;
    let r = run_campaign(&cfg);
    (r.lifetime_writes(), r.mean_faults_at_death.unwrap_or(0.0))
}

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);

    println!("# Part 1: SECDED vs ECP-6 baseline (lifetime in per-line writes)");
    println!("app\tSECDED\tECP-6\tECP6/SECDED");
    for app in &opts.apps {
        let seed = child_seed(opts.seed, *app as u64);
        let (secded, _) = lifetime(SystemKind::Baseline, EccChoice::Secded, *app, scale, seed);
        let (ecp, _) = lifetime(SystemKind::Baseline, EccChoice::Ecp6, *app, scale, seed);
        println!(
            "{}\t{}\t{}\t{:.2}",
            app.name(),
            secded,
            ecp,
            ecp as f64 / secded as f64
        );
    }

    println!("\n# Part 2: ECP strength needed to match Comp+WF (milc)");
    println!("config\tmetadata_bits\tlifetime\tfaults@death");
    let app = pcm_trace::SpecApp::Milc;
    for n in [2u8, 4, 6, 8, 12, 16, 20] {
        let (l, f) = lifetime(
            SystemKind::Baseline,
            EccChoice::EcpN(n),
            app,
            scale,
            child_seed(opts.seed, 50 + n as u64),
        );
        println!("Baseline ECP-{n}\t{}\t{}\t{:.1}", n as u32 * 10 + 1, l, f);
    }
    let (l, f) = lifetime(
        SystemKind::CompWF,
        EccChoice::Ecp6,
        app,
        scale,
        child_seed(opts.seed, 99),
    );
    println!("Comp+WF ECP-6\t61\t{l}\t{f:.1}");
    println!("# paper: sustaining Comp+WF's error depth with plain ECP needs ~40% more storage");
}
