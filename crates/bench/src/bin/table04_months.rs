//! Table IV: final lifetime in months, Baseline vs Comp+WF, scaled back to
//! the paper's 10^7 endurance and 4 GB / 16-core machine.

use pcm_bench::experiments::lifetime::{fig10_app, table4_row, Scale};
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Table IV: lifetime in months");
    println!("app\tBaseline\tComp+WF\tratio");
    let mut base_sum = 0.0;
    let mut wf_sum = 0.0;
    for app in &opts.apps {
        let l = fig10_app(*app, scale, opts.seed);
        let row = table4_row(*app, &l, scale);
        println!(
            "{}\t{:.1}\t{:.1}\t{:.2}",
            app.name(),
            row.baseline,
            row.compwf,
            row.compwf / row.baseline
        );
        base_sum += row.baseline;
        wf_sum += row.compwf;
    }
    let n = opts.apps.len() as f64;
    println!(
        "Avg\t{:.1}\t{:.1}\t{:.2}",
        base_sum / n,
        wf_sum / n,
        wf_sum / base_sum
    );
    println!("# paper: baseline avg 22 months, Comp+WF avg 79 months");
}
