//! Ablation: inter-line wear-leveling quality — Start-Gap vs
//! Security-Refresh vs none, measured as the spread of per-physical-line
//! write counts under a Zipf-skewed demand stream.
//!
//! A perfect leveler drives the coefficient of variation of per-line
//! writes toward zero; without leveling it equals the Zipf skew.

use pcm_bench::Options;
use pcm_trace::TraceGenerator;
use pcm_util::child_seed;
use pcm_util::stats::{mean, std_dev};
use pcm_wear::{SecurityRefresh, StartGap};

fn spread(counts: &[f64]) -> f64 {
    std_dev(counts) / mean(counts).max(1e-9)
}

fn main() {
    let opts = Options::from_args();
    let lines = 64u64;
    let writes = if opts.quick { 200_000 } else { 1_000_000 };
    println!(
        "# Per-physical-line write-count CoV under a Zipf stream ({writes} writes, {lines} lines)"
    );
    println!("app\tnone\tstart_gap\tsecurity_refresh");
    for app in &opts.apps {
        let seed = child_seed(opts.seed, *app as u64);
        let mut generator = TraceGenerator::from_profile(app.profile(), lines, seed);
        let stream: Vec<u64> = (0..writes).map(|_| generator.next_write().line).collect();

        let mut none = vec![0f64; lines as usize];
        for &l in &stream {
            none[l as usize] += 1.0;
        }

        let mut sg = StartGap::new(lines, 100);
        let mut sg_counts = vec![0f64; lines as usize + 1];
        for &l in &stream {
            sg_counts[sg.map(l) as usize] += 1.0;
            if let Some(mv) = sg.on_write() {
                sg_counts[mv.to as usize] += 1.0; // the gap copy is a write
            }
        }

        let mut sr = SecurityRefresh::new(lines, 100, seed);
        let mut sr_counts = vec![0f64; lines as usize];
        for &l in &stream {
            sr_counts[sr.map(l) as usize] += 1.0;
            if let Some(swap) = sr.on_write() {
                if swap.a != swap.b {
                    sr_counts[swap.a as usize] += 1.0;
                    sr_counts[swap.b as usize] += 1.0;
                }
            }
        }

        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}",
            app.name(),
            spread(&none),
            spread(&sg_counts),
            spread(&sr_counts)
        );
    }
    println!("# both levelers should push CoV far below the unleveled stream");
}
