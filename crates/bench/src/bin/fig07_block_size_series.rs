//! Fig. 7: compressed-size series of consecutive writes to three blocks of
//! bzip2 (volatile) and hmmer (stable).

use pcm_bench::experiments::compression::fig07_series;
use pcm_bench::Options;
use pcm_trace::SpecApp;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 30 } else { 80 };
    for app in [SpecApp::Bzip2, SpecApp::Hmmer] {
        println!(
            "# Fig 7: compressed sizes over consecutive writes ({})",
            app.name()
        );
        println!("write\tblock1\tblock2\tblock3");
        let series = fig07_series(app, 3, writes, opts.seed);
        for (i, ((a, b), c)) in series[0].iter().zip(&series[1]).zip(&series[2]).enumerate() {
            println!("{i}\t{a}\t{b}\t{c}");
        }
        for (blk, s) in series.iter().enumerate() {
            let as_f64: Vec<f64> = s.iter().map(|&v| v as f64).collect();
            println!(
                "# block{} shape: {}",
                blk + 1,
                pcm_bench::plot::sparkline(&as_f64)
            );
        }
    }
}
