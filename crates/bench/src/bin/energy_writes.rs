//! Write-energy comparison: uncompressed vs compressed storage per
//! workload (the paper's §I / §III-A.1 energy motivation, quantified).

use pcm_bench::Options;
use pcm_compress::compress_best;
use pcm_device::dw::diff_write;
use pcm_device::EnergyModel;
use pcm_trace::BlockStream;
use pcm_util::{child_seed, Line512};

fn main() {
    let opts = Options::from_args();
    let (blocks, writes) = if opts.quick { (16, 60) } else { (64, 150) };
    let e = EnergyModel::paper();
    println!("# Write energy per 64B write-back (pJ), DW chip-level writes");
    println!("app\tuncompressed\tcompressed\tsaving%");
    for app in &opts.apps {
        let mut plain_total = 0.0;
        let mut comp_total = 0.0;
        let mut n = 0u64;
        for b in 0..blocks {
            let mut stream = BlockStream::new(app.profile(), child_seed(opts.seed, b));
            let mut plain = stream.current();
            let mut comp_line = Line512::zero().with_bytes_at(0, compress_best(&plain).bytes());
            for _ in 0..writes {
                let data = stream.next_data();
                plain_total += e.write_energy_pj(&diff_write(&plain, &data));
                let c = compress_best(&data);
                let target = comp_line.with_bytes_at(0, c.bytes());
                comp_total += e.write_energy_pj(&diff_write(&comp_line, &target));
                plain = data;
                comp_line = target;
                n += 1;
            }
        }
        let (p, c) = (plain_total / n as f64, comp_total / n as f64);
        println!(
            "{}\t{:.0}\t{:.0}\t{:.1}",
            app.name(),
            p,
            c,
            100.0 * (1.0 - c / p)
        );
    }
}
