//! Ablation: SLC vs MLC-2 cells (the paper's footnote 1: the approach
//! applies to both, and matters *more* for MLC's lower endurance).
//!
//! MLC halves the cell count per line and drops endurance an order of
//! magnitude; when a cell dies, both of its bits freeze, so faults arrive
//! in adjacent pairs — harder for partitioning schemes, easier for a
//! sliding window that simply avoids the byte.

use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;
use pcm_core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use pcm_core::{SystemConfig, SystemKind};
use pcm_device::CellTech;
use pcm_util::child_seed;

fn normalized(app: pcm_trace::SpecApp, tech: CellTech, scale: Scale, seed: u64) -> (f64, f64) {
    let run = |kind| {
        let system = SystemConfig::new(kind)
            .with_tech(tech)
            .with_endurance_mean(scale.endurance_mean);
        let mut line = LineSimConfig::new(system, app.profile());
        line.sample_writes = scale.sample_writes;
        let mut cfg = CampaignConfig::new(line, seed);
        cfg.lines = scale.lines;
        run_campaign(&cfg)
    };
    let base = run(SystemKind::Baseline);
    let wf = run(SystemKind::CompWF);
    (
        wf.normalized_against(&base),
        wf.mean_faults_at_death.unwrap_or(0.0),
    )
}

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Ablation: Comp+WF normalized lifetime, SLC vs MLC-2 cells");
    println!("app\tSLC\tMLC-2\tSLC_faults\tMLC_faults");
    for app in &opts.apps {
        let seed = child_seed(opts.seed, *app as u64);
        let (slc, slc_f) = normalized(*app, CellTech::Slc, scale, seed);
        let (mlc, mlc_f) = normalized(*app, CellTech::Mlc2, scale, seed);
        println!("{}\t{slc:.2}\t{mlc:.2}\t{slc_f:.1}\t{mlc_f:.1}", app.name());
    }
}
