//! Hot-path benchmark harness: measures `compress_best`, the `Line512`
//! kernels, `simulate_line`, and end-to-end campaigns, then writes
//! `BENCH_hotpath.json` (DESIGN.md §9).

use pcm_bench::hotpath::{run, HotpathOptions};

fn main() {
    let opts = HotpathOptions::from_args();
    let report = run(&opts);
    let json = report.to_json(true);
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!(
        "wrote {} ({} benches, {} campaigns)",
        opts.out,
        report.benches.len(),
        report.campaigns.len()
    );
}
