//! Hot-path benchmark harness: measures `compress_best`, the `Line512`
//! kernels, `simulate_line`, and end-to-end campaigns, then writes
//! `BENCH_hotpath.json` (DESIGN.md §9). With `--ratchet TRACKED.json` the
//! fresh run is compared against a tracked report: checksum drift fails
//! immediately, while a benchmark below its throughput floor is
//! re-measured up to [`MAX_RERUNS`] more times (best reading wins) before
//! the slowdown fails the process — the gate runs on shared machines, and
//! a noisy reading deserves a second look where a changed result never
//! does.

use pcm_bench::hotpath::{run, HotpathOptions};
use pcm_bench::ratchet::{check_with_reruns, RatchetOutcome, TrackedReport, MAX_RERUNS};

fn main() {
    let opts = HotpathOptions::from_args();
    // Read the tracked report up front: `--ratchet` may point at the same
    // path as `--out` (ratchet against the committed report, then refresh
    // it), so the old contents must be captured before the write below.
    let tracked = opts.ratchet.as_ref().map(|path| {
        let tracked_json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read tracked report {path}: {e}"));
        TrackedReport::parse(&tracked_json)
            .unwrap_or_else(|e| panic!("cannot parse tracked report {path}: {e}"))
    });
    let mut report = run(&opts);
    let outcome: Option<RatchetOutcome> = tracked.as_ref().map(|tracked| {
        check_with_reruns(&mut report, tracked, opts.ratchet_min, MAX_RERUNS, |slow| {
            println!(
                "ratchet: re-measuring {} below-floor bench(es): {}",
                slow.len(),
                slow.join(", ")
            );
            run(&opts)
        })
    });
    // Written after the retry loop so the refreshed report carries the
    // best reading per bench, not the noisy first attempt.
    let json = report.to_json(true);
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!(
        "wrote {} ({} benches, {} campaigns)",
        opts.out,
        report.benches.len(),
        report.campaign_count()
    );
    if let (Some(path), Some(outcome)) = (&opts.ratchet, &outcome) {
        for line in &outcome.lines {
            println!("{line}");
        }
        if !outcome.passed() {
            eprintln!(
                "ratchet FAILED against {path}: {} of {} checks",
                outcome.failures.len(),
                outcome.lines.len()
            );
            std::process::exit(1);
        }
        println!("ratchet ok against {path}");
    }
}
