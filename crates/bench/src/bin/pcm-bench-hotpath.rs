//! Hot-path benchmark harness: measures `compress_best`, the `Line512`
//! kernels, `simulate_line`, and end-to-end campaigns, then writes
//! `BENCH_hotpath.json` (DESIGN.md §9). With `--ratchet TRACKED.json` the
//! fresh run is compared against a tracked report: checksum drift or a
//! ratcheted benchmark below the throughput floor fails the process.

use pcm_bench::hotpath::{run, HotpathOptions};
use pcm_bench::ratchet::{check, TrackedReport};

fn main() {
    let opts = HotpathOptions::from_args();
    // Read the tracked report up front: `--ratchet` may point at the same
    // path as `--out` (ratchet against the committed report, then refresh
    // it), so the old contents must be captured before the write below.
    let tracked = opts.ratchet.as_ref().map(|path| {
        let tracked_json = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read tracked report {path}: {e}"));
        TrackedReport::parse(&tracked_json)
            .unwrap_or_else(|e| panic!("cannot parse tracked report {path}: {e}"))
    });
    let report = run(&opts);
    let json = report.to_json(true);
    std::fs::write(&opts.out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", opts.out));
    println!(
        "wrote {} ({} benches, {} campaigns)",
        opts.out,
        report.benches.len(),
        report.campaigns.len()
    );
    if let (Some(path), Some(tracked)) = (&opts.ratchet, &tracked) {
        let outcome = check(&report, tracked, opts.ratchet_min);
        for line in &outcome.lines {
            println!("{line}");
        }
        if !outcome.passed() {
            eprintln!(
                "ratchet FAILED against {path}: {} of {} checks",
                outcome.failures.len(),
                outcome.lines.len()
            );
            std::process::exit(1);
        }
        println!("ratchet ok against {path}");
    }
}
