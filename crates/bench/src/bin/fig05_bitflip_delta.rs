//! Fig. 5: percentage of write-backs with increased / untouched (±5%) /
//! decreased bit flips after compression.

use pcm_bench::experiments::compression::fig05_flip_delta;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let (blocks, writes) = if opts.quick { (24, 60) } else { (96, 150) };
    println!("# Fig 5: flip-count change of compressed vs uncompressed storage");
    println!("app\tincreased%\tuntouched%\tdecreased%");
    for app in &opts.apps {
        let d = fig05_flip_delta(*app, blocks, writes, opts.seed);
        println!(
            "{}\t{:.0}\t{:.0}\t{:.0}",
            app.name(),
            100.0 * d.increased,
            100.0 * d.untouched,
            100.0 * d.decreased
        );
    }
}
