//! Extension study: multiprogrammed workload mixes.
//!
//! The paper runs homogeneous 16-copy workloads; consolidated machines
//! interleave programs, so a physical line alternates between compressible
//! and incompressible hosts — the regime dead-block resurrection was built
//! for. This study pairs a highly-compressible app with an incompressible
//! one at several ratios.

use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;
use pcm_core::lifetime::{run_mixed_campaign, WorkloadMix};
use pcm_core::{SystemConfig, SystemKind};
use pcm_trace::SpecApp;
use pcm_util::child_seed;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Mix study: Comp+WF lifetime (per-line writes) for milc/lbm blends");
    println!("milc:lbm\tBaseline\tComp+WF\tnormalized");
    for (a, b) in [
        (1.0f64, 0.0f64),
        (3.0, 1.0),
        (1.0, 1.0),
        (1.0, 3.0),
        (0.0, 1.0),
    ] {
        let mut entries = Vec::new();
        if a > 0.0 {
            entries.push((SpecApp::Milc.profile(), a));
        }
        if b > 0.0 {
            entries.push((SpecApp::Lbm.profile(), b));
        }
        let mix = WorkloadMix::new(entries);
        let seed = child_seed(opts.seed, (a * 10.0 + b) as u64);
        let base = run_mixed_campaign(
            SystemConfig::new(SystemKind::Baseline).with_endurance_mean(scale.endurance_mean),
            &mix,
            scale.lines,
            scale.sample_writes,
            seed,
        );
        let wf = run_mixed_campaign(
            SystemConfig::new(SystemKind::CompWF).with_endurance_mean(scale.endurance_mean),
            &mix,
            scale.lines,
            scale.sample_writes,
            seed,
        );
        println!(
            "{a}:{b}\t{}\t{}\t{:.2}",
            base.lifetime_writes(),
            wf.lifetime_writes(),
            wf.normalized_against(&base)
        );
    }
    println!("# gains should degrade smoothly from pure-milc to pure-lbm");
}
