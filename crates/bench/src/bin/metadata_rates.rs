//! Metadata update rates (paper §III-B): the per-line metadata fields
//! change far less often than the data, so metadata cell wear is a
//! non-issue. The paper claims the start pointer changes every ~2^10
//! writes to a line and the coding bits every 4–5 writes.

use pcm_bench::Options;
use pcm_compress::compress_best;
use pcm_core::line::{EccEngine, ManagedLine, Payload};
use pcm_core::{EccChoice, SystemConfig, SystemKind};
use pcm_trace::BlockStream;
use pcm_util::child_seed;
use pcm_wear::IntraLineLeveler;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 20_000 } else { 100_000 };
    let cfg = SystemConfig::new(SystemKind::CompWF);
    println!("# Metadata update intervals (writes between changes), Comp+WF");
    println!("app\twrites\tstart_ptr_every\tencoding_every\tsize_every");
    for app in &opts.apps {
        let engine = EccEngine::new(EccChoice::Ecp6);
        let mut line = ManagedLine::with_endurance(vec![u32::MAX; 512]);
        let mut leveler = IntraLineLeveler::new(cfg.rotation_period as u32, 1);
        let mut stream = BlockStream::new(app.profile(), child_seed(opts.seed, *app as u64));
        for _ in 0..writes {
            let data = stream.next_data();
            let c = compress_best(&data);
            line.write(
                &engine,
                Payload {
                    method: c.method(),
                    bytes: c.bytes(),
                },
                leveler.offset(),
                true,
            )
            .expect("healthy line");
            leveler.note_write();
        }
        let m = line.meta_updates();
        let every = |n: u64| {
            if n == 0 {
                "never".to_string()
            } else {
                format!("{:.0}", m.writes as f64 / n as f64)
            }
        };
        println!(
            "{}\t{}\t{}\t{}\t{}",
            app.name(),
            m.writes,
            every(m.start_pointer),
            every(m.encoding),
            every(m.size)
        );
    }
    println!("# paper: start pointer ~ every 2^10 line writes; coding bits every 4-5 writes");
}
