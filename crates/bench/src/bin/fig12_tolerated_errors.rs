//! Fig. 12: average number of faulty cells in a failed 512-bit block under
//! Comp+WF (baseline ECP-6 dies at 7).

use pcm_bench::experiments::lifetime::{fig10_app, Scale};
use pcm_bench::Options;
use pcm_core::SystemKind;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Fig 12: mean faulty cells per failed block (Comp+WF)");
    println!("app\tfaults/event\tfaults/final\tbaseline");
    let mut events = Vec::new();
    for app in &opts.apps {
        let l = fig10_app(*app, scale, opts.seed);
        let wf = l.result(SystemKind::CompWF);
        let base = l.result(SystemKind::Baseline);
        let e = wf.mean_faults_at_death.unwrap_or(0.0);
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}",
            app.name(),
            e,
            wf.mean_final_death_faults.unwrap_or(0.0),
            base.mean_faults_at_death.unwrap_or(0.0)
        );
        events.push(e);
    }
    println!(
        "# average {:.1} faults per failed block (paper: ~3x the ECP-6 baseline of 7)",
        pcm_util::stats::mean(&events)
    );
}
