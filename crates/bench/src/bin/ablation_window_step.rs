//! Ablation: window-placement granularity under Comp+WF.
//!
//! A byte-granular start pointer costs 6 metadata bits; coarser grids (2,
//! 4, 8 bytes) save pointer bits but give the fault-dodging search fewer
//! places to put the window. This quantifies the lifetime cost of each
//! step — the design-space point behind the paper's choice of a 6-bit
//! pointer.

use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;
use pcm_core::lifetime::{run_campaign, CampaignConfig, LineSimConfig};
use pcm_core::{SystemConfig, SystemKind};
use pcm_util::child_seed;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Ablation: Comp+WF lifetime (per-line writes) vs window placement step");
    println!("app\tstep1(6b ptr)\tstep2(5b)\tstep4(4b)\tstep8(3b)");
    for app in &opts.apps {
        print!("{}", app.name());
        for step in [1usize, 2, 4, 8] {
            let system = SystemConfig::new(SystemKind::CompWF)
                .with_endurance_mean(scale.endurance_mean)
                .with_window_step(step);
            let mut line = LineSimConfig::new(system, app.profile());
            line.sample_writes = scale.sample_writes;
            let mut cfg = CampaignConfig::new(line, child_seed(opts.seed, *app as u64));
            cfg.lines = scale.lines;
            print!("\t{}", run_campaign(&cfg).lifetime_writes());
        }
        println!();
    }
}
