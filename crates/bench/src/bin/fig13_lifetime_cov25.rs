//! Fig. 13: Comp+WF lifetime normalized to baseline under higher process
//! variation (endurance CoV 0.25).

use pcm_bench::experiments::lifetime::{fig13_app, Scale};
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Fig 13: Comp+WF normalized lifetime at CoV 0.25");
    println!("app\tComp+WF");
    let mut sum = 0.0;
    for app in &opts.apps {
        let (base, wf) = fig13_app(*app, scale, opts.seed);
        let norm = wf.normalized_against(&base);
        println!("{}\t{:.2}", app.name(), norm);
        sum += norm;
    }
    println!("Average\t{:.2}", sum / opts.apps.len() as f64);
}
