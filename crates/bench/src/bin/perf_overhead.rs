//! §V.B: read-latency and end-to-end overhead of decompression.

use pcm_bench::experiments::perf::perf_app;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    println!("# Section V.B: performance overhead of decompression");
    println!("app\tread_lat(cyc)\tqueueing\tcomp_reads%\tdecomp(ns)\tread_lat+%\tslowdown%");
    let mut worst_read = 0.0f64;
    let mut worst_slow = 0.0f64;
    for app in &opts.apps {
        let r = perf_app(*app, opts.quick, opts.seed);
        println!(
            "{}\t{:.1}\t{:.1}\t{:.0}\t{:.2}\t{:.2}\t{:.3}",
            app.name(),
            r.base_read_latency_cycles,
            r.read_queueing_cycles,
            100.0 * r.compressed_read_fraction,
            r.avg_decompression_ns,
            r.read_latency_increase_pct,
            r.slowdown_pct
        );
        worst_read = worst_read.max(r.read_latency_increase_pct);
        worst_slow = worst_slow.max(r.slowdown_pct);
    }
    println!("# worst read-latency increase {worst_read:.2}% (paper: up to ~2%), worst slowdown {worst_slow:.3}% (paper: < 0.3%)");
}
