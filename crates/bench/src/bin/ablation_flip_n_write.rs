//! Ablation: Flip-N-Write vs plain differential writes (chip-level flips).

use pcm_bench::experiments::ablation::flip_n_write_ablation;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 500 } else { 4_000 };
    println!("# Ablation: mean flips per 64B write, DW vs Flip-N-Write (64-bit chunks)");
    println!("app\tDW\tFNW\tsaving%");
    for app in &opts.apps {
        let c = flip_n_write_ablation(*app, writes, opts.seed);
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}",
            app.name(),
            c.dw_flips,
            c.fnw_flips,
            100.0 * (1.0 - c.fnw_flips / c.dw_flips.max(1e-9))
        );
    }
}
