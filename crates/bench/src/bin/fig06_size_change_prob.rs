//! Fig. 6: probability that two consecutive writes to the same block have
//! different compressed sizes.

use pcm_bench::experiments::compression::fig06_size_change;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 4_000 } else { 20_000 };
    println!("# Fig 6: P(consecutive writes change compressed size)");
    println!("app\tprobability");
    for app in &opts.apps {
        println!(
            "{}\t{:.2}",
            app.name(),
            fig06_size_change(*app, writes, opts.seed)
        );
    }
}
