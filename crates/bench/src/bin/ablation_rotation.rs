//! Ablation: intra-line rotation period under Comp+W.

use pcm_bench::experiments::ablation::rotation_ablation;
use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Ablation: rotation period (writes per line between 1-byte rotations), Comp+W");
    println!("app\t256\t1024\t4096\t16384");
    for app in &opts.apps {
        let rows = rotation_ablation(*app, scale, opts.seed);
        print!("{}", app.name());
        for (_, r) in &rows {
            print!("\t{}", r.lifetime_writes());
        }
        println!();
    }
}
