//! Fig. 9: failure probability of a block vs. fault count and compressed
//! size for ECP-6, SAFER-32, and Aegis 17×31 (Monte-Carlo injection).

use pcm_bench::experiments::montecarlo::{faults_at_half, fig09};
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    // The paper uses 100k injections; 30k keeps the full sweep tractable
    // on one core while leaving the curves visually identical.
    let injections = if opts.quick { 3_000 } else { 30_000 };
    let surfaces = fig09(injections, opts.seed, opts.quick);
    for surface in &surfaces {
        println!(
            "# Fig 9: failure probability — {} ({injections} injections)",
            surface.scheme
        );
        print!("errors");
        for w in &surface.windows {
            print!("\t{w}B");
        }
        println!();
        for (e, &errors) in surface.errors.iter().enumerate() {
            print!("{errors}");
            for w in 0..surface.windows.len() {
                print!("\t{:.3}", surface.probabilities[w][e]);
            }
            println!();
        }
        if let Some(f) = faults_at_half(surface, 32) {
            println!("# {}: ~{f} faults tolerable at 32B window, p=0.5 (paper: ECP 18 / SAFER 38 / Aegis 41)", surface.scheme);
        }
    }
}
