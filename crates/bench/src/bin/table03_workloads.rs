//! Table III: workload characteristics — WPKI (model input) and the
//! realized compression ratio of the synthetic trace.

use pcm_bench::Options;
use pcm_trace::calibrate::calibrate;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 3_000 } else { 12_000 };
    println!("# Table III: workload characteristics");
    println!("app\tWPKI\tCR(target)\tCR(realized)\tclass");
    for app in &opts.apps {
        let p = app.profile();
        let c = calibrate(&p, 512, opts.seed ^ (*app as u64), writes);
        println!(
            "{}\t{:.2}\t{:.2}\t{:.2}\t{}",
            app.name(),
            p.wpki,
            p.target_cr,
            c.realized_cr,
            p.class
        );
    }
}
