//! Fig. 3: average compressed data size for BDI, FPC, and best-of-two.

use pcm_bench::experiments::compression::fig03_sizes;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let writes = if opts.quick { 2_000 } else { 20_000 };
    println!("# Fig 3: average compressed size (bytes) per workload");
    println!("app\tBDI\tFPC\tBEST\tCR");
    let mut crs = Vec::new();
    for app in &opts.apps {
        let s = fig03_sizes(*app, writes, opts.seed);
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.2}",
            app.name(),
            s.bdi_mean,
            s.fpc_mean,
            s.best_mean,
            s.cr
        );
        crs.push(s.cr);
    }
    println!(
        "# average CR {:.2} (paper: 0.43)",
        pcm_util::stats::mean(&crs)
    );
}
