//! Ablation: the Fig. 8 compression heuristic on/off and its Threshold2
//! sweep, under Comp+WF.

use pcm_bench::experiments::ablation::heuristic_ablation;
use pcm_bench::experiments::lifetime::Scale;
use pcm_bench::Options;

fn main() {
    let opts = Options::from_args();
    let scale = Scale::from_quick(opts.quick);
    println!("# Ablation: Fig. 8 heuristic under Comp+WF (lifetime in per-line writes)");
    println!("app\tnaive\tT2=8\tT2=16\tT2=24\tnaive_flips\tT2=16_flips");
    for app in &opts.apps {
        let h = heuristic_ablation(*app, scale, opts.seed);
        let t2 = |i: usize| h.with_heuristic[i].1.lifetime_writes();
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.1}",
            app.name(),
            h.naive.lifetime_writes(),
            t2(0),
            t2(1),
            t2(2),
            h.naive.mean_flips_per_write,
            h.with_heuristic[1].1.mean_flips_per_write
        );
    }
    println!("# finding: with byte-exact DW, alternating layouts costs more flips than the heuristic saves");
}
