//! The experiment registry: every figure, table, and ablation the harness
//! can reproduce, behind one trait and one static list.
//!
//! Each entry is a unit struct (defined next to its computation in
//! [`crate::experiments`]) implementing [`Experiment`]; `pcm-lab` drives
//! the whole matrix through [`REGISTRY`] — `list` prints it, `run` and
//! `run-all` execute entries, `diff` re-runs them against tracked
//! reports. Adding an experiment means implementing the trait and adding
//! one line here; the completeness test in `tests/registry.rs` fails if a
//! binary exists without a registry entry.

use crate::cli::Options;
use crate::experiments::{ablation, compression, lifetime, montecarlo, perf, rivals, serve};
use crate::report::{Manifest, Report};

/// One reproducible experiment: a paper figure, table, or ablation.
pub trait Experiment: Sync {
    /// Registry name (`fig10_lifetime`, …); doubles as the results stem.
    fn name(&self) -> &'static str;

    /// One-line description for `pcm-lab list`.
    fn description(&self) -> &'static str;

    /// Paper anchor (`Fig. 10`, `Table IV`, `ablation`, `§V.B`).
    fn anchor(&self) -> &'static str;

    /// Human summary of the scale knobs at the given `--quick` setting.
    fn scale_summary(&self, quick: bool) -> String;

    /// Runs the experiment and returns its typed report. `wall_ms` is
    /// left at zero; [`run_timed`] stamps it.
    fn run(&self, opts: &Options) -> Report;

    /// The manifest every implementation starts its report from.
    fn manifest(&self, opts: &Options) -> Manifest {
        Manifest {
            experiment: self.name().into(),
            anchor: self.anchor().into(),
            seed: opts.seed,
            quick: opts.quick,
            apps: opts.apps.iter().map(|a| a.name().to_string()).collect(),
            wall_ms: 0.0,
        }
    }
}

/// Every experiment the harness knows, in presentation order (figures,
/// tables, sections, extension studies, ablations).
pub static REGISTRY: &[&dyn Experiment] = &[
    &compression::Fig01DwRandomness,
    &compression::Fig03CompressedSize,
    &compression::Fig05BitflipDelta,
    &compression::Fig06SizeChangeProb,
    &compression::Fig07BlockSizeSeries,
    &montecarlo::Fig09Montecarlo,
    &lifetime::Fig10Lifetime,
    &compression::Fig11SizeCdf,
    &lifetime::Fig12ToleratedErrors,
    &lifetime::Fig13LifetimeCov25,
    &compression::Table03Workloads,
    &lifetime::Table04Months,
    &perf::PerfOverhead,
    &perf::MetadataRates,
    &compression::EnergyWrites,
    &compression::CompressorComparison,
    &lifetime::MixStudy,
    &serve::ServeThroughput,
    &rivals::RivalLifetime,
    &ablation::AblationHeuristic,
    &ablation::AblationEcc,
    &ablation::AblationSecded,
    &ablation::AblationRotation,
    &ablation::AblationWindowStep,
    &ablation::AblationFlipNWrite,
    &ablation::AblationInterlineWl,
    &ablation::AblationMlc,
];

/// Looks an experiment up by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().copied().find(|e| e.name() == name)
}

/// Runs an experiment and stamps the wall-clock into its manifest.
pub fn run_timed(exp: &dyn Experiment, opts: &Options) -> Report {
    let start = std::time::Instant::now();
    let mut report = exp.run(opts);
    report.manifest.wall_ms = start.elapsed().as_secs_f64() * 1e3;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_findable() {
        let mut names: Vec<_> = REGISTRY.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate registry names");
        for e in REGISTRY {
            assert!(find(e.name()).is_some());
            assert!(!e.description().is_empty());
            assert!(!e.anchor().is_empty());
            assert!(!e.scale_summary(true).is_empty());
        }
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn manifest_reflects_options() {
        let opts = Options {
            quick: true,
            seed: 99,
            apps: vec![pcm_trace::SpecApp::Milc],
        };
        let exp = find("fig10_lifetime").unwrap();
        let m = exp.manifest(&opts);
        assert_eq!(m.experiment, "fig10_lifetime");
        assert_eq!(m.seed, 99);
        assert!(m.quick);
        assert_eq!(m.apps, vec!["milc".to_string()]);
        assert_eq!(m.wall_ms, 0.0);
    }
}
