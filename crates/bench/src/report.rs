//! Typed experiment reports: the artifact every registry experiment
//! returns, with shared emitters and a tolerance-banded diff.
//!
//! A [`Report`] is a [`Manifest`] (which experiment, at what seed/scale,
//! over which apps, how long it took) plus [`Table`]s, [`Series`], and
//! free-form notes. Three emitters render every report identically across
//! the whole experiment matrix:
//!
//! * [`Report::to_text`] — the human format written to
//!   `results/<name>.txt` (tables, sparklines, bars, notes),
//! * [`Report::to_tsv`] — long-format TSV (`table\ttitle\trow\tcol\tvalue`)
//!   for awk/join pipelines across experiments,
//! * [`Report::to_json`] — the machine format written to
//!   `results/<name>.json`, parsed back by [`Report::from_json`].
//!
//! Every column and series carries a [`Tolerance`] — exact, an absolute
//! epsilon, or a [`RatioBand`] reusing the verify harness's tolerance
//! machinery — and [`diff_reports`] compares a fresh run against a tracked
//! report statistic by statistic under those bands. `pcm-lab diff` (and
//! the `--diff` stage of `scripts_run_all.sh`) is exactly that comparison
//! over every tracked file. The vendored `serde` facade is a no-op, so
//! JSON emission and parsing are hand-rolled here, mirroring
//! `BENCH_hotpath.json`; the derive attributes stay in place for a future
//! swap back to crates.io serde.

use crate::plot;
pub use pcm_core::verify::RatioBand;
use serde::{Deserialize, Serialize};

/// Run provenance carried by every report: which experiment produced it,
/// at what seed and scale, over which workloads, and how long it took.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Registry name of the experiment (`fig10_lifetime`, …).
    pub experiment: String,
    /// Paper anchor (`Fig. 10`, `Table IV`, `ablation`).
    pub anchor: String,
    /// Campaign seed the run used.
    pub seed: u64,
    /// Whether the reduced `--quick` scale was used.
    pub quick: bool,
    /// Workload names evaluated, in run order.
    pub apps: Vec<String>,
    /// Wall-clock milliseconds of the experiment's `run` call. Ignored by
    /// [`diff_reports`].
    pub wall_ms: f64,
}

/// One table cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// An exact integer (counts, per-line writes).
    Int(i64),
    /// A float rendered at a fixed precision (value, decimal places).
    Num(f64, usize),
    /// Free text (workload classes, config labels).
    Text(String),
}

impl Value {
    /// Renders the cell the way every emitter prints it.
    pub fn render(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Num(v, p) => format!("{v:.p$}"),
            Value::Text(s) => s.clone(),
        }
    }

    /// The cell as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Num(v, _) => Some(*v),
            Value::Text(_) => None,
        }
    }
}

/// How much a statistic may drift between a tracked report and a fresh
/// run before `pcm-lab diff` fails.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Tolerance {
    /// Rendered values must match byte for byte.
    Exact,
    /// `fresh / tracked` must land in the band (zero only matches zero).
    Ratio(RatioBand),
    /// `|fresh - tracked|` must not exceed the epsilon.
    Abs(f64),
}

impl Tolerance {
    /// Whether a fresh value is acceptable against the tracked one.
    ///
    /// Non-numeric (or mixed) pairs fall back to exact rendered-text
    /// comparison regardless of the tolerance.
    pub fn accepts(&self, tracked: &Value, fresh: &Value) -> bool {
        match (tracked.as_f64(), fresh.as_f64()) {
            (Some(t), Some(f)) => match self {
                Tolerance::Exact => tracked.render() == fresh.render(),
                Tolerance::Ratio(band) => band.check(t, f).1,
                Tolerance::Abs(eps) => (t - f).abs() <= *eps,
            },
            _ => tracked.render() == fresh.render(),
        }
    }

    /// Serialized form (`exact`, `ratio:lo:hi`, `abs:eps`).
    pub fn encode(&self) -> String {
        match self {
            Tolerance::Exact => "exact".into(),
            Tolerance::Ratio(b) => format!("ratio:{}:{}", b.lo, b.hi),
            Tolerance::Abs(e) => format!("abs:{e}"),
        }
    }

    /// Parses the serialized form.
    pub fn decode(s: &str) -> Result<Tolerance, String> {
        if s == "exact" {
            return Ok(Tolerance::Exact);
        }
        if let Some(rest) = s.strip_prefix("ratio:") {
            let (lo, hi) = rest
                .split_once(':')
                .ok_or_else(|| format!("malformed ratio tolerance '{s}'"))?;
            let lo: f64 = lo.parse().map_err(|_| format!("bad ratio lo in '{s}'"))?;
            let hi: f64 = hi.parse().map_err(|_| format!("bad ratio hi in '{s}'"))?;
            return Ok(Tolerance::Ratio(RatioBand::new(lo, hi)));
        }
        if let Some(rest) = s.strip_prefix("abs:") {
            let eps: f64 = rest.parse().map_err(|_| format!("bad abs eps in '{s}'"))?;
            return Ok(Tolerance::Abs(eps));
        }
        Err(format!("unknown tolerance '{s}'"))
    }
}

/// A table column: a header plus the diff tolerance of its statistic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    /// Column header.
    pub name: String,
    /// Acceptance policy applied by [`diff_reports`].
    pub tol: Tolerance,
}

impl Column {
    /// A column whose values must reproduce exactly.
    pub fn exact(name: &str) -> Column {
        Column {
            name: name.into(),
            tol: Tolerance::Exact,
        }
    }

    /// A column accepting `fresh/tracked` ratios in `lo..=hi`.
    pub fn ratio(name: &str, lo: f64, hi: f64) -> Column {
        Column {
            name: name.into(),
            tol: Tolerance::Ratio(RatioBand::new(lo, hi)),
        }
    }

    /// A column accepting absolute drift up to `eps`.
    pub fn abs(name: &str, eps: f64) -> Column {
        Column {
            name: name.into(),
            tol: Tolerance::Abs(eps),
        }
    }
}

/// One labelled table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Row label (usually a workload name).
    pub label: String,
    /// One value per table column.
    pub values: Vec<Value>,
}

/// A titled table: the unit the paper's figures and tables map onto.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title, printed as the `# …` header.
    pub title: String,
    /// Header of the label column (`app`, `config`, `write`, …).
    pub label: String,
    /// Columns with their diff tolerances.
    pub columns: Vec<Column>,
    /// Rows, in emission order.
    pub rows: Vec<Row>,
}

impl Table {
    /// An empty table with the given title, label header, and columns.
    pub fn new(title: &str, label: &str, columns: Vec<Column>) -> Table {
        Table {
            title: title.into(),
            label: label.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<Value>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match column count in table '{}'",
            self.title
        );
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }
}

/// How a series renders in the text emitter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SeriesStyle {
    /// A sparkline of the (downsampled) values.
    Spark,
    /// One labelled horizontal bar per value.
    Bars,
}

/// A named numeric series: a figure's *shape*, rendered by the text
/// emitter as a sparkline or labelled bars (the `plot` module is an
/// emitter concern now).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series name.
    pub name: String,
    /// Rendering style.
    pub style: SeriesStyle,
    /// Per-value labels ([`SeriesStyle::Bars`]); empty for sparklines.
    pub labels: Vec<String>,
    /// The values.
    pub values: Vec<f64>,
    /// Decimal places used when emitting the values.
    pub prec: usize,
    /// Bar-scale maximum; defaults to the series maximum when `None`.
    pub max: Option<f64>,
    /// Acceptance policy applied by [`diff_reports`].
    pub tol: Tolerance,
}

impl Series {
    /// A sparkline series.
    pub fn spark(name: &str, values: Vec<f64>, prec: usize, tol: Tolerance) -> Series {
        Series {
            name: name.into(),
            style: SeriesStyle::Spark,
            labels: Vec::new(),
            values,
            prec,
            max: None,
            tol,
        }
    }

    /// A labelled bar series scaled to `max`.
    ///
    /// # Panics
    ///
    /// Panics if the label and value counts differ.
    pub fn bars(
        name: &str,
        labels: &[&str],
        values: Vec<f64>,
        max: f64,
        prec: usize,
        tol: Tolerance,
    ) -> Series {
        assert_eq!(labels.len(), values.len(), "bars need one label per value");
        Series {
            name: name.into(),
            style: SeriesStyle::Bars,
            labels: labels.iter().map(|s| s.to_string()).collect(),
            values,
            prec,
            max: Some(max),
            tol,
        }
    }
}

/// The artifact every registry experiment returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Run provenance.
    pub manifest: Manifest,
    /// Tables, in emission order.
    pub tables: Vec<Table>,
    /// Shape series, in emission order.
    pub series: Vec<Series>,
    /// Free-form findings (`# …` lines in the text emitter).
    pub notes: Vec<String>,
}

impl Report {
    /// An empty report for the given manifest.
    pub fn new(manifest: Manifest) -> Report {
        Report {
            manifest,
            tables: Vec::new(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// One-line content summary for progress output.
    pub fn summary(&self) -> String {
        let rows: usize = self.tables.iter().map(|t| t.rows.len()).sum();
        format!(
            "{} table(s), {} row(s), {} series, {} note(s)",
            self.tables.len(),
            rows,
            self.series.len(),
            self.notes.len()
        )
    }

    // ----------------------------------------------------------------- text

    /// Renders the human format (tables, sparklines, bars, notes).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                s.push('\n');
            }
            s.push_str(&format!("# {}\n", t.title));
            s.push_str(&t.label);
            for c in &t.columns {
                s.push('\t');
                s.push_str(&c.name);
            }
            s.push('\n');
            for row in &t.rows {
                s.push_str(&row.label);
                for v in &row.values {
                    s.push('\t');
                    s.push_str(&v.render());
                }
                s.push('\n');
            }
        }
        for series in &self.series {
            match series.style {
                SeriesStyle::Spark => {
                    let shape = plot::sparkline(&plot::downsample(&series.values, 64));
                    s.push_str(&format!("# {}: {shape}\n", series.name));
                }
                SeriesStyle::Bars => {
                    s.push_str(&format!("# {}\n", series.name));
                    let max = series
                        .max
                        .unwrap_or_else(|| series.values.iter().cloned().fold(f64::MIN, f64::max));
                    for (label, &v) in series.labels.iter().zip(&series.values) {
                        s.push_str(&format!("# {:8} {}\n", label, plot::bar(v, max, 40)));
                    }
                }
            }
        }
        for note in &self.notes {
            s.push_str(&format!("# {note}\n"));
        }
        s
    }

    // ------------------------------------------------------------------ tsv

    /// Renders long-format TSV: one `table`/`series`/`note` record per
    /// line, with the experiment name in the first field so outputs from
    /// several experiments concatenate cleanly.
    pub fn to_tsv(&self) -> String {
        let mut s = format!(
            "# experiment={} anchor={} seed={} quick={} apps={}\n",
            self.manifest.experiment,
            self.manifest.anchor,
            self.manifest.seed,
            self.manifest.quick,
            self.manifest.apps.join(",")
        );
        for t in &self.tables {
            for row in &t.rows {
                for (c, v) in t.columns.iter().zip(&row.values) {
                    s.push_str(&format!(
                        "{}\ttable\t{}\t{}\t{}\t{}\n",
                        self.manifest.experiment,
                        t.title,
                        row.label,
                        c.name,
                        v.render()
                    ));
                }
            }
        }
        for series in &self.series {
            for (i, &v) in series.values.iter().enumerate() {
                let label = series
                    .labels
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| i.to_string());
                s.push_str(&format!(
                    "{}\tseries\t{}\t{}\t{:.p$}\n",
                    self.manifest.experiment,
                    series.name,
                    label,
                    v,
                    p = series.prec
                ));
            }
        }
        for note in &self.notes {
            s.push_str(&format!("{}\tnote\t{}\n", self.manifest.experiment, note));
        }
        s
    }

    // ----------------------------------------------------------------- json

    /// Renders the machine format parsed back by [`Report::from_json`].
    pub fn to_json(&self) -> String {
        let m = &self.manifest;
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"pcm-lab/v1\",\n");
        s.push_str("  \"manifest\": {\n");
        s.push_str(&format!(
            "    \"experiment\": {},\n",
            json_str(&m.experiment)
        ));
        s.push_str(&format!("    \"anchor\": {},\n", json_str(&m.anchor)));
        s.push_str(&format!("    \"seed\": {},\n", m.seed));
        s.push_str(&format!("    \"quick\": {},\n", m.quick));
        let apps: Vec<String> = m.apps.iter().map(|a| json_str(a)).collect();
        s.push_str(&format!("    \"apps\": [{}],\n", apps.join(", ")));
        s.push_str(&format!("    \"wall_ms\": {:.1}\n", m.wall_ms));
        s.push_str("  },\n");
        s.push_str("  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\n");
            s.push_str(&format!("      \"title\": {},\n", json_str(&t.title)));
            s.push_str(&format!("      \"label\": {},\n", json_str(&t.label)));
            let cols: Vec<String> = t
                .columns
                .iter()
                .map(|c| {
                    format!(
                        "{{\"name\": {}, \"tol\": {}}}",
                        json_str(&c.name),
                        json_str(&c.tol.encode())
                    )
                })
                .collect();
            s.push_str(&format!("      \"columns\": [{}],\n", cols.join(", ")));
            s.push_str("      \"rows\": [");
            for (j, row) in t.rows.iter().enumerate() {
                s.push_str(if j == 0 { "\n" } else { ",\n" });
                let vals: Vec<String> = row.values.iter().map(json_value).collect();
                s.push_str(&format!(
                    "        {{\"label\": {}, \"values\": [{}]}}",
                    json_str(&row.label),
                    vals.join(", ")
                ));
            }
            s.push_str("\n      ]\n    }");
        }
        s.push_str("\n  ],\n");
        s.push_str("  \"series\": [");
        for (i, series) in self.series.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str("    {\n");
            s.push_str(&format!("      \"name\": {},\n", json_str(&series.name)));
            s.push_str(&format!(
                "      \"style\": {},\n",
                json_str(match series.style {
                    SeriesStyle::Spark => "spark",
                    SeriesStyle::Bars => "bars",
                })
            ));
            let labels: Vec<String> = series.labels.iter().map(|l| json_str(l)).collect();
            s.push_str(&format!("      \"labels\": [{}],\n", labels.join(", ")));
            let vals: Vec<String> = series
                .values
                .iter()
                .map(|&v| json_num(v, series.prec))
                .collect();
            s.push_str(&format!("      \"values\": [{}],\n", vals.join(", ")));
            s.push_str(&format!("      \"prec\": {},\n", series.prec));
            match series.max {
                Some(m) => s.push_str(&format!("      \"max\": {},\n", json_num(m, 2))),
                None => s.push_str("      \"max\": null,\n"),
            }
            s.push_str(&format!(
                "      \"tol\": {}\n",
                json_str(&series.tol.encode())
            ));
            s.push_str("    }");
        }
        s.push_str("\n  ],\n");
        let notes: Vec<String> = self.notes.iter().map(|n| json_str(n)).collect();
        s.push_str(&format!("  \"notes\": [{}]\n", notes.join(", ")));
        s.push_str("}\n");
        s
    }

    /// Parses a report emitted by [`Report::to_json`].
    pub fn from_json(text: &str) -> Result<Report, String> {
        let json = Json::parse(text)?;
        let schema = json.field("schema")?.str("schema")?;
        if schema != "pcm-lab/v1" {
            return Err(format!("unsupported schema '{schema}'"));
        }
        let m = json.field("manifest")?;
        let manifest = Manifest {
            experiment: m.field("experiment")?.str("experiment")?.to_string(),
            anchor: m.field("anchor")?.str("anchor")?.to_string(),
            seed: m.field("seed")?.num("seed")? as u64,
            quick: m.field("quick")?.bool("quick")?,
            apps: m
                .field("apps")?
                .arr("apps")?
                .iter()
                .map(|a| a.str("app").map(str::to_string))
                .collect::<Result<_, _>>()?,
            wall_ms: m.field("wall_ms")?.num("wall_ms")?,
        };
        let mut tables = Vec::new();
        for t in json.field("tables")?.arr("tables")? {
            let mut columns = Vec::new();
            for c in t.field("columns")?.arr("columns")? {
                columns.push(Column {
                    name: c.field("name")?.str("column name")?.to_string(),
                    tol: Tolerance::decode(c.field("tol")?.str("column tol")?)?,
                });
            }
            let mut table = Table::new(
                t.field("title")?.str("title")?,
                t.field("label")?.str("label")?,
                columns,
            );
            for row in t.field("rows")?.arr("rows")? {
                let label = row.field("label")?.str("row label")?.to_string();
                let values: Vec<Value> = row
                    .field("values")?
                    .arr("row values")?
                    .iter()
                    .map(Json::to_value)
                    .collect::<Result<_, _>>()?;
                if values.len() != table.columns.len() {
                    return Err(format!(
                        "row '{label}' has {} values for {} columns",
                        values.len(),
                        table.columns.len()
                    ));
                }
                table.rows.push(Row { label, values });
            }
            tables.push(table);
        }
        let mut series = Vec::new();
        for v in json.field("series")?.arr("series")? {
            let style = match v.field("style")?.str("series style")? {
                "spark" => SeriesStyle::Spark,
                "bars" => SeriesStyle::Bars,
                other => return Err(format!("unknown series style '{other}'")),
            };
            series.push(Series {
                name: v.field("name")?.str("series name")?.to_string(),
                style,
                labels: v
                    .field("labels")?
                    .arr("series labels")?
                    .iter()
                    .map(|l| l.str("series label").map(str::to_string))
                    .collect::<Result<_, _>>()?,
                values: v
                    .field("values")?
                    .arr("series values")?
                    .iter()
                    .map(|x| x.num("series value"))
                    .collect::<Result<_, _>>()?,
                prec: v.field("prec")?.num("series prec")? as usize,
                max: match v.field("max")? {
                    Json::Null => None,
                    other => Some(other.num("series max")?),
                },
                tol: Tolerance::decode(v.field("tol")?.str("series tol")?)?,
            });
        }
        let notes = json
            .field("notes")?
            .arr("notes")?
            .iter()
            .map(|n| n.str("note").map(str::to_string))
            .collect::<Result<_, _>>()?;
        Ok(Report {
            manifest,
            tables,
            series,
            notes,
        })
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64, prec: usize) -> String {
    if v.is_finite() {
        format!("{v:.prec$}")
    } else {
        // Not representable as a JSON number; parses back as Text.
        json_str(&v.to_string())
    }
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Num(n, p) => json_num(*n, *p),
        Value::Text(t) => json_str(t),
    }
}

// ------------------------------------------------------------------ parser

/// A parsed JSON value. Numbers keep their raw token so the precision a
/// report was emitted with survives the round trip.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(String),
    Bool(bool),
    Null,
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn field(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field '{key}'")),
            _ => Err(format!("expected object while reading '{key}'")),
        }
    }

    fn str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(format!("{what}: expected string")),
        }
    }

    fn num(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(tok) => tok.parse().map_err(|_| format!("{what}: bad number {tok}")),
            _ => Err(format!("{what}: expected number")),
        }
    }

    fn bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            _ => Err(format!("{what}: expected bool")),
        }
    }

    fn arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            _ => Err(format!("{what}: expected array")),
        }
    }

    /// Maps a JSON scalar onto a table [`Value`], inferring integer vs
    /// fixed-precision float from the raw token ("12" vs "12.0").
    fn to_value(&self) -> Result<Value, String> {
        match self {
            Json::Str(s) => Ok(Value::Text(s.clone())),
            Json::Num(tok) => {
                if let Some(dot) = tok.find('.') {
                    let prec = tok.len() - dot - 1;
                    let v: f64 = tok.parse().map_err(|_| format!("bad number {tok}"))?;
                    Ok(Value::Num(v, prec))
                } else if tok.contains(['e', 'E']) {
                    let v: f64 = tok.parse().map_err(|_| format!("bad number {tok}"))?;
                    Ok(Value::Num(v, 0))
                } else {
                    tok.parse()
                        .map(Value::Int)
                        .map_err(|_| format!("bad integer {tok}"))
                }
            }
            other => Err(format!("cell must be a scalar, got {other:?}")),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') if self.literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err("unterminated string".into());
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or("unterminated escape")?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-UTF-8 number token at byte {start}"))?;
        tok.parse::<f64>()
            .map_err(|_| format!("bad number '{tok}' at byte {start}"))?;
        Ok(Json::Num(tok.to_string()))
    }
}

// ------------------------------------------------------------------- diff

/// One out-of-tolerance statistic found by [`diff_reports`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffFinding {
    /// Where the mismatch is (`table 'x' row 'y' col 'z'`).
    pub location: String,
    /// The tracked value.
    pub tracked: String,
    /// The freshly computed value.
    pub fresh: String,
    /// The tolerance that rejected the pair.
    pub tolerance: String,
}

/// The outcome of diffing one fresh report against its tracked twin.
#[derive(Debug, Clone)]
pub struct ReportDiff {
    /// Experiment name.
    pub experiment: String,
    /// Statistics compared.
    pub compared: usize,
    /// Out-of-tolerance statistics (empty means the diff passed).
    pub findings: Vec<DiffFinding>,
}

impl ReportDiff {
    /// `true` when every statistic agreed within tolerance.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable description, one line per finding.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{}: {} statistic(s) compared, {} out of tolerance",
            self.experiment,
            self.compared,
            self.findings.len()
        );
        for f in &self.findings {
            out.push_str(&format!(
                "\n  {}: tracked {} vs fresh {} ({})",
                f.location, f.tracked, f.fresh, f.tolerance
            ));
        }
        out
    }
}

/// Compares a fresh report against a tracked one statistic by statistic
/// under the tracked report's tolerance bands.
///
/// The fresh report is canonicalized through its own JSON emission first,
/// so fixed-precision rounding applies to both sides identically; the
/// tracked side's tolerances govern, so regenerating a report never
/// loosens the gate retroactively. `wall_ms` is ignored.
pub fn diff_reports(tracked: &Report, fresh: &Report) -> ReportDiff {
    let fresh = Report::from_json(&fresh.to_json()).expect("fresh report must round-trip");
    let mut compared = 0usize;
    let mut findings = Vec::new();
    let mut mismatch = |location: &str, tracked: String, fresh: String, tolerance: &str| {
        findings.push(DiffFinding {
            location: location.to_string(),
            tracked,
            fresh,
            tolerance: tolerance.to_string(),
        });
    };

    // Manifest: everything except wall-clock must match exactly, or the
    // two runs are not comparable at all.
    let tm = &tracked.manifest;
    let fm = &fresh.manifest;
    for (what, t, f) in [
        ("manifest experiment", &tm.experiment, &fm.experiment),
        ("manifest anchor", &tm.anchor, &fm.anchor),
        ("manifest seed", &tm.seed.to_string(), &fm.seed.to_string()),
        (
            "manifest quick",
            &tm.quick.to_string(),
            &fm.quick.to_string(),
        ),
        ("manifest apps", &tm.apps.join(","), &fm.apps.join(",")),
    ] {
        if t != f {
            mismatch(what, t.clone(), f.clone(), "exact");
        }
    }

    if tracked.tables.len() != fresh.tables.len() {
        mismatch(
            "table count",
            tracked.tables.len().to_string(),
            fresh.tables.len().to_string(),
            "exact",
        );
    }
    for (t, f) in tracked.tables.iter().zip(&fresh.tables) {
        let loc = format!("table '{}'", t.title);
        if t.title != f.title {
            mismatch(&loc, t.title.clone(), f.title.clone(), "exact");
            continue;
        }
        let t_cols: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
        let f_cols: Vec<&str> = f.columns.iter().map(|c| c.name.as_str()).collect();
        if t_cols != f_cols || t.rows.len() != f.rows.len() {
            mismatch(
                &format!("{loc} shape"),
                format!("{} cols × {} rows", t_cols.len(), t.rows.len()),
                format!("{} cols × {} rows", f_cols.len(), f.rows.len()),
                "exact",
            );
            continue;
        }
        for (tr, fr) in t.rows.iter().zip(&f.rows) {
            if tr.label != fr.label {
                mismatch(
                    &format!("{loc} row label"),
                    tr.label.clone(),
                    fr.label.clone(),
                    "exact",
                );
                continue;
            }
            for (col, (tv, fv)) in t.columns.iter().zip(tr.values.iter().zip(&fr.values)) {
                compared += 1;
                if !col.tol.accepts(tv, fv) {
                    mismatch(
                        &format!("{loc} row '{}' col '{}'", tr.label, col.name),
                        tv.render(),
                        fv.render(),
                        &col.tol.encode(),
                    );
                }
            }
        }
    }

    if tracked.series.len() != fresh.series.len() {
        mismatch(
            "series count",
            tracked.series.len().to_string(),
            fresh.series.len().to_string(),
            "exact",
        );
    }
    for (t, f) in tracked.series.iter().zip(&fresh.series) {
        let loc = format!("series '{}'", t.name);
        if t.name != f.name || t.labels != f.labels || t.values.len() != f.values.len() {
            mismatch(
                &format!("{loc} shape"),
                format!("{} ({} values)", t.name, t.values.len()),
                format!("{} ({} values)", f.name, f.values.len()),
                "exact",
            );
            continue;
        }
        for (i, (&tv, &fv)) in t.values.iter().zip(&f.values).enumerate() {
            compared += 1;
            let (tv, fv) = (Value::Num(tv, t.prec), Value::Num(fv, t.prec));
            if !t.tol.accepts(&tv, &fv) {
                mismatch(
                    &format!("{loc} [{i}]"),
                    tv.render(),
                    fv.render(),
                    &t.tol.encode(),
                );
            }
        }
    }

    drop(mismatch);
    ReportDiff {
        experiment: tracked.manifest.experiment.clone(),
        compared,
        findings,
    }
}

// ------------------------------------------------------------------ merge

/// Merges per-seed [`Report`]s (same experiment, different seeds) into one
/// summary report: every numeric table cell becomes three columns — the
/// across-seed mean and a 95% bootstrap confidence interval — and every
/// series value becomes its across-seed mean. Text cells must agree across
/// seeds and pass through unchanged. This powers
/// `pcm-lab run --seeds N [--shard I/K]`.
///
/// The bootstrap is deterministic: a fixed-seed RNG resamples the per-seed
/// values with replacement 200 times, so the same seed set always yields
/// the same interval regardless of how the runs were scheduled.
pub fn merge_reports(reports: &[Report]) -> Result<Report, String> {
    let first = reports.first().ok_or("merge needs at least one report")?;
    for r in &reports[1..] {
        for (what, a, b) in [
            (
                "experiment",
                &first.manifest.experiment,
                &r.manifest.experiment,
            ),
            ("anchor", &first.manifest.anchor, &r.manifest.anchor),
        ] {
            if a != b {
                return Err(format!("cannot merge across {what}s: '{a}' vs '{b}'"));
            }
        }
        if first.manifest.quick != r.manifest.quick || first.manifest.apps != r.manifest.apps {
            return Err("cannot merge runs with different scale or app lists".into());
        }
    }

    let mut merged = Report::new(Manifest {
        wall_ms: reports.iter().map(|r| r.manifest.wall_ms).sum(),
        ..first.manifest.clone()
    });

    for (ti, t) in first.tables.iter().enumerate() {
        let peers: Vec<&Table> = reports
            .iter()
            .map(|r| {
                r.tables
                    .get(ti)
                    .filter(|p| table_shape_eq(t, p))
                    .ok_or_else(|| {
                        format!(
                            "table '{}' missing or shaped differently in seed {}",
                            t.title, r.manifest.seed
                        )
                    })
            })
            .collect::<Result<_, _>>()?;

        let mut columns = Vec::new();
        for (ci, c) in t.columns.iter().enumerate() {
            if column_is_numeric(t, ci) {
                columns.push(Column {
                    name: format!("{} mean", c.name),
                    tol: c.tol,
                });
                columns.push(Column {
                    name: format!("{} ci95 lo", c.name),
                    tol: c.tol,
                });
                columns.push(Column {
                    name: format!("{} ci95 hi", c.name),
                    tol: c.tol,
                });
            } else {
                columns.push(c.clone());
            }
        }
        let mut out = Table::new(&t.title, &t.label, columns);
        for (ri, row) in t.rows.iter().enumerate() {
            let mut values = Vec::new();
            for (ci, c) in t.columns.iter().enumerate() {
                let cells: Vec<&Value> = peers.iter().map(|p| &p.rows[ri].values[ci]).collect();
                if column_is_numeric(t, ci) {
                    let samples: Vec<f64> = cells
                        .iter()
                        .map(|v| v.as_f64().unwrap_or(f64::NAN))
                        .collect();
                    if samples.iter().any(|v| v.is_nan()) {
                        return Err(format!(
                            "table '{}' row '{}' col '{}' is numeric in some seeds only",
                            t.title, row.label, c.name
                        ));
                    }
                    let prec = merged_precision(&cells);
                    let (mean, lo, hi) = mean_and_ci(&samples);
                    values.push(Value::Num(mean, prec));
                    values.push(Value::Num(lo, prec));
                    values.push(Value::Num(hi, prec));
                } else {
                    for v in &cells[1..] {
                        if v.render() != cells[0].render() {
                            return Err(format!(
                                "table '{}' row '{}' col '{}' disagrees across seeds: '{}' vs '{}'",
                                t.title,
                                row.label,
                                c.name,
                                cells[0].render(),
                                v.render()
                            ));
                        }
                    }
                    values.push(cells[0].clone());
                }
            }
            out.push(row.label.clone(), values);
        }
        merged.tables.push(out);
    }

    for (si, s) in first.series.iter().enumerate() {
        let peers: Vec<&Series> = reports
            .iter()
            .map(|r| {
                r.series
                    .get(si)
                    .filter(|p| {
                        p.name == s.name && p.labels == s.labels && p.values.len() == s.values.len()
                    })
                    .ok_or_else(|| {
                        format!(
                            "series '{}' missing or shaped differently in seed {}",
                            s.name, r.manifest.seed
                        )
                    })
            })
            .collect::<Result<_, _>>()?;
        let mut mean = s.clone();
        for (i, v) in mean.values.iter_mut().enumerate() {
            *v = peers.iter().map(|p| p.values[i]).sum::<f64>() / peers.len() as f64;
        }
        merged.series.push(mean);
    }

    merged.note(format!(
        "merged {} seed run(s): {}; numeric cells are across-seed mean with 95% bootstrap CI",
        reports.len(),
        reports
            .iter()
            .map(|r| r.manifest.seed.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    Ok(merged)
}

fn table_shape_eq(a: &Table, b: &Table) -> bool {
    a.title == b.title
        && a.columns.len() == b.columns.len()
        && a.columns
            .iter()
            .zip(&b.columns)
            .all(|(x, y)| x.name == y.name)
        && a.rows.len() == b.rows.len()
        && a.rows.iter().zip(&b.rows).all(|(x, y)| x.label == y.label)
}

/// A column merges numerically when every one of its cells (in the shape
/// reference table) is numeric.
fn column_is_numeric(t: &Table, ci: usize) -> bool {
    !t.rows.is_empty() && t.rows.iter().all(|r| r.values[ci].as_f64().is_some())
}

/// Emission precision for a merged statistic: the widest precision seen
/// across seeds, with a floor of 2 so integer counts keep their fractional
/// mean.
fn merged_precision(cells: &[&Value]) -> usize {
    cells
        .iter()
        .map(|v| match v {
            Value::Num(_, p) => *p,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
        .max(2)
}

/// Across-sample mean plus a deterministic 95% bootstrap CI (200 fixed-seed
/// resamples of the per-seed values, percentile method).
fn mean_and_ci(samples: &[f64]) -> (f64, f64, f64) {
    use rand::RngExt;
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return (mean, mean, mean);
    }
    let mut rng = pcm_util::seeded_rng(0xC195_B007);
    let resamples = 200;
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += samples[rng.random_range(0..n)];
            }
            acc / n as f64
        })
        .collect();
    means.sort_unstable_by(|a, b| a.partial_cmp(b).expect("bootstrap means are finite"));
    (
        mean,
        means[resamples / 20],
        means[resamples - 1 - resamples / 20],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new(Manifest {
            experiment: "sample".into(),
            anchor: "Fig. 0".into(),
            seed: 7,
            quick: true,
            apps: vec!["milc".into(), "gcc".into()],
            wall_ms: 12.5,
        });
        let mut t = Table::new(
            "a \"quoted\" title with ×",
            "app",
            vec![
                Column::exact("count"),
                Column::ratio("mean", 0.9, 1.1),
                Column::abs("prob", 0.05),
                Column::exact("class"),
            ],
        );
        t.push(
            "milc",
            vec![
                Value::Int(42),
                Value::Num(1.25, 2),
                Value::Num(0.001, 3),
                Value::Text("COMP\tHIGH".into()),
            ],
        );
        t.push(
            "gcc",
            vec![
                Value::Int(-3),
                Value::Num(2.0, 1),
                Value::Num(0.0, 3),
                Value::Text("mixed".into()),
            ],
        );
        r.tables.push(t);
        r.series.push(Series::spark(
            "shape",
            vec![0.0, 1.5, 3.0],
            1,
            Tolerance::Ratio(RatioBand::new(0.8, 1.25)),
        ));
        r.series.push(Series::bars(
            "averages",
            &["Comp", "Comp+W"],
            vec![1.2, 3.4],
            5.0,
            2,
            Tolerance::Exact,
        ));
        r.note("a finding with \\ and \" in it");
        r
    }

    #[test]
    fn json_round_trip_is_identical() {
        let r = sample();
        let json = r.to_json();
        let parsed = Report::from_json(&json).expect("parse back");
        assert_eq!(parsed.to_json(), json);
        assert_eq!(parsed.manifest, r.manifest);
        assert_eq!(parsed.notes, r.notes);
        assert_eq!(parsed.series, r.series);
    }

    #[test]
    fn value_precision_survives_round_trip() {
        let json = sample().to_json();
        let parsed = Report::from_json(&json).unwrap();
        // Num(2.0, 1) must come back as "2.0", not collapse to Int(2).
        assert_eq!(parsed.tables[0].rows[1].values[1].render(), "2.0");
        assert_eq!(parsed.tables[0].rows[0].values[0], Value::Int(42));
    }

    #[test]
    fn diff_passes_on_self() {
        let r = sample();
        let d = diff_reports(&r, &r);
        assert!(d.passed(), "{}", d.describe());
        assert_eq!(d.compared, 8 + 5);
    }

    #[test]
    fn diff_honors_ratio_band() {
        let tracked = sample();
        let mut fresh = sample();
        // Within the 0.9..1.1 band: accepted.
        fresh.tables[0].rows[0].values[1] = Value::Num(1.30, 2);
        assert!(diff_reports(&tracked, &fresh).passed());
        // Outside: rejected.
        fresh.tables[0].rows[0].values[1] = Value::Num(1.60, 2);
        let d = diff_reports(&tracked, &fresh);
        assert!(!d.passed());
        assert_eq!(d.findings.len(), 1);
        assert!(d.findings[0].location.contains("col 'mean'"));
    }

    #[test]
    fn diff_honors_abs_and_exact() {
        let tracked = sample();
        let mut fresh = sample();
        fresh.tables[0].rows[1].values[2] = Value::Num(0.04, 3); // |0.04| <= 0.05
        assert!(diff_reports(&tracked, &fresh).passed());
        fresh.tables[0].rows[1].values[2] = Value::Num(0.2, 3);
        assert!(!diff_reports(&tracked, &fresh).passed());

        let mut fresh = sample();
        fresh.tables[0].rows[0].values[0] = Value::Int(43);
        assert!(!diff_reports(&tracked, &fresh).passed());
    }

    #[test]
    fn diff_catches_shape_changes() {
        let tracked = sample();
        let mut fresh = sample();
        fresh.manifest.seed = 8;
        assert!(!diff_reports(&tracked, &fresh).passed());

        let mut fresh = sample();
        fresh.tables[0].rows.pop();
        assert!(!diff_reports(&tracked, &fresh).passed());

        let mut fresh = sample();
        fresh.series.pop();
        assert!(!diff_reports(&tracked, &fresh).passed());
    }

    #[test]
    fn wall_clock_is_ignored_by_diff() {
        let tracked = sample();
        let mut fresh = sample();
        fresh.manifest.wall_ms = 99_999.0;
        assert!(diff_reports(&tracked, &fresh).passed());
    }

    #[test]
    fn tolerance_codec() {
        for tol in [
            Tolerance::Exact,
            Tolerance::Ratio(RatioBand::new(0.5, 2.0)),
            Tolerance::Abs(0.125),
        ] {
            assert_eq!(Tolerance::decode(&tol.encode()).unwrap(), tol);
        }
        assert!(Tolerance::decode("bogus").is_err());
        assert!(Tolerance::decode("ratio:1").is_err());
    }

    #[test]
    fn text_emitter_renders_tables_series_notes() {
        let text = sample().to_text();
        assert!(text.contains("# a \"quoted\" title with ×"));
        assert!(text.starts_with("# "));
        assert!(text.contains("app\tcount\tmean\tprob\tclass"));
        assert!(text.contains("milc\t42\t1.25\t0.001\tCOMP\tHIGH"));
        assert!(text.contains("# shape: "));
        assert!(text.contains("# Comp    "));
        assert!(text.contains("# a finding"));
    }

    #[test]
    fn tsv_emitter_is_long_format() {
        let tsv = sample().to_tsv();
        assert!(tsv.starts_with("# experiment=sample anchor=Fig. 0 seed=7 quick=true"));
        assert!(tsv.contains("sample\ttable\ta \"quoted\" title with ×\tmilc\tcount\t42\n"));
        assert!(tsv.contains("sample\tseries\taverages\tComp\t1.20\n"));
        assert!(tsv.contains("sample\tnote\t"));
    }

    #[test]
    fn merge_averages_numeric_cells_and_passes_text_through() {
        let a = sample();
        let mut b = sample();
        b.manifest.seed = 8;
        b.tables[0].rows[0].values[0] = Value::Int(44); // 42 in `a`
        b.series[0].values = vec![2.0, 1.5, 5.0]; // [0.0, 1.5, 3.0] in `a`
        let m = merge_reports(&[a, b]).expect("merge");
        let t = &m.tables[0];
        assert_eq!(
            t.columns.len(),
            3 * 3 + 1,
            "3 numeric cols expand, text stays"
        );
        assert_eq!(t.columns[0].name, "count mean");
        assert_eq!(t.columns[1].name, "count ci95 lo");
        assert_eq!(t.rows[0].values[0].render(), "43.00");
        // Text column rides along unchanged.
        assert_eq!(t.columns[9].name, "class");
        assert_eq!(t.rows[0].values[9].render(), "COMP\tHIGH");
        // Series become pointwise means.
        assert_eq!(m.series[0].values, vec![1.0, 1.5, 4.0]);
        assert_eq!(m.manifest.wall_ms, 25.0);
        assert!(m.notes.iter().any(|n| n.contains("merged 2 seed run(s)")));
    }

    #[test]
    fn merge_is_deterministic_and_bounds_bracket_the_mean() {
        let mut reports = Vec::new();
        for (seed, v) in [(1u64, 10.0), (2, 12.0), (3, 17.0), (4, 11.0)] {
            let mut r = sample();
            r.manifest.seed = seed;
            r.tables[0].rows[0].values[1] = Value::Num(v, 2);
            reports.push(r);
        }
        let m1 = merge_reports(&reports).expect("merge");
        let m2 = merge_reports(&reports).expect("merge");
        assert_eq!(m1.to_json(), m2.to_json(), "bootstrap must be seeded");
        let row = &m1.tables[0].rows[0];
        let (mean, lo, hi) = (
            row.values[3].as_f64().unwrap(),
            row.values[4].as_f64().unwrap(),
            row.values[5].as_f64().unwrap(),
        );
        assert_eq!(mean, 12.5);
        assert!(
            lo <= mean && mean <= hi,
            "CI [{lo}, {hi}] must bracket {mean}"
        );
        assert!(lo >= 10.0 && hi <= 17.0, "CI stays inside the sample range");
    }

    #[test]
    fn merge_rejects_incompatible_reports() {
        assert!(merge_reports(&[]).is_err());
        let a = sample();
        let mut b = sample();
        b.manifest.experiment = "other".into();
        assert!(merge_reports(&[a.clone(), b]).is_err());
        let mut b = sample();
        b.tables[0].rows.pop();
        assert!(merge_reports(&[a.clone(), b]).is_err());
        let mut b = sample();
        b.tables[0].rows[0].values[3] = Value::Text("different".into());
        assert!(merge_reports(&[a, b]).is_err());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{}").is_err());
        assert!(Report::from_json("{\"schema\": \"pcm-lab/v1\"").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }
}
