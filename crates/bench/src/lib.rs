//! Experiment harness: regenerates every table and figure of the DSN'17
//! paper from the workspace's simulators.
//!
//! Every experiment lives behind the [`registry`]: a unit struct in
//! [`experiments`] implements [`Experiment`] (name, description, paper
//! anchor, scale knobs) and returns a typed [`Report`] — tables, series,
//! and notes under a manifest carrying seed, scale, app list, and
//! wall-clock. Shared emitters render each report as human text, long
//! TSV, or JSON; [`report::diff_reports`] compares a fresh run against a
//! tracked report within per-statistic tolerance bands.
//!
//! The `pcm-lab` binary is the single entry point: `list` prints the
//! registry, `run <name…>` executes experiments, `run-all [--jobs N]`
//! regenerates the whole `results/` directory with deterministic output
//! ordering, and `diff` re-runs tracked reports at their recorded
//! seed/scale and gates on the tolerance bands. All run commands accept:
//!
//! * `--quick` — reduced sample sizes for smoke runs,
//! * `--seed N` — override the campaign seed,
//! * `--apps a,b,c` — restrict to a subset of the 15 SPEC workloads.
//!
//! The only other binary is `pcm-bench-hotpath`, the kernel benchmark
//! harness (DESIGN.md §9), which has its own options and output format.

pub mod cli;
pub mod experiments;
pub mod hotpath;
pub mod plot;
pub mod ratchet;
pub mod registry;
pub mod report;

pub use cli::Options;
pub use registry::{find, run_timed, Experiment, REGISTRY};
pub use report::Report;
