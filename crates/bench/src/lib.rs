//! Experiment harness: regenerates every table and figure of the DSN'17
//! paper from the workspace's simulators.
//!
//! Each `fig*`/`table*` binary under `src/bin/` prints the same rows or
//! series the paper reports; the heavy lifting lives in [`experiments`] so
//! integration tests can assert on the numbers. All binaries accept:
//!
//! * `--quick` — reduced sample sizes for smoke runs,
//! * `--seed N` — override the campaign seed,
//! * `--apps a,b,c` — restrict to a subset of the 15 SPEC workloads.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig01_dw_randomness` | Fig. 1 — DW bit flips per write are random |
//! | `fig03_compressed_size` | Fig. 3 — BDI vs FPC vs BEST sizes |
//! | `fig05_bitflip_delta` | Fig. 5 — flips increased/untouched/decreased |
//! | `fig06_size_change_prob` | Fig. 6 — consecutive-write size changes |
//! | `fig07_block_size_series` | Fig. 7 — per-block size over time |
//! | `fig09_montecarlo` | Fig. 9 — ECP/SAFER/Aegis failure probability |
//! | `fig10_lifetime` | Fig. 10 — normalized lifetime of Comp/W/WF |
//! | `fig11_size_cdf` | Fig. 11 — per-address max-size CDFs |
//! | `fig12_tolerated_errors` | Fig. 12 — faults tolerated per failed line |
//! | `fig13_lifetime_cov25` | Fig. 13 — Comp+WF at CoV 0.25 |
//! | `table03_workloads` | Table III — WPKI and realized CR |
//! | `table04_months` | Table IV — lifetime in months |
//! | `perf_overhead` | §V.B — decompression latency impact |
//! | `ablation_*` | design-choice sweeps (heuristic, ECC, rotation, FNW) |

pub mod cli;
pub mod experiments;
pub mod hotpath;
pub mod plot;

pub use cli::Options;
