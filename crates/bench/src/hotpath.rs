//! The `pcm-bench-hotpath` subsystem: measures the simulator's real hot
//! paths and emits machine-readable `BENCH_hotpath.json` so every PR
//! has a perf baseline to move (DESIGN.md §9).
//!
//! Measured paths:
//!
//! 1. `compress_best` throughput (lines/sec) over workload-shaped and
//!    random content,
//! 2. `Line512` kernels — XOR/popcount, windowed popcount, byte rotation,
//!    differential-write and Flip-N-Write encoding,
//! 3. `simulate_line` throughput (simulated demand writes/sec) per
//!    `SystemKind` × `EccChoice`, plus the lockstep batch driver pushing a
//!    full 64-lane wave through `simulate_line_batch` (`campaign/lockstep`),
//! 4. `pcm_util::Pool` scheduling (threads ∈ {1, 2, 4, 8}, balanced vs.
//!    skewed job cost),
//! 5. the serve engine's per-bank batched write path — a scripted traffic
//!    replay through `Engine::run_script` (`serve/bank_batch`),
//! 6. end-to-end campaign wall-clock.
//!
//! Every benchmark also folds its outputs into a seed-stable checksum, so
//! two runs with the same `--seed` must agree on every non-timing field —
//! the determinism regression test diffs exactly that (JSON with timing
//! lines stripped), and an optimized kernel that changes any observable
//! value is caught immediately.

use criterion::{Criterion, Throughput};
use pcm_core::lifetime::{
    run_campaign, simulate_line, simulate_line_batch, CampaignConfig, LineScratch, LineSimConfig,
};
use pcm_core::{EccChoice, SystemConfig, SystemKind};
use pcm_device::{diff_write, diff_write_batch, flip_n_write_batch, FlipNWrite};
use pcm_serve::{Engine, ServeConfig, TrafficGen};
use pcm_trace::{BlockStream, SpecApp};
use pcm_util::{child_seed, seeded_rng, simd, Line512, LineBatch64, Pool, BATCH_LANES, DATA_BYTES};
use std::time::{Duration, Instant};

/// Options of the `pcm-bench-hotpath` binary.
#[derive(Debug, Clone)]
pub struct HotpathOptions {
    /// Seconds-scale run for CI gates: tiny batches and campaigns.
    pub smoke: bool,
    /// Base seed for all generated content and simulations.
    pub seed: u64,
    /// Campaign worker threads; 0 selects available parallelism.
    pub threads: usize,
    /// Output path for the JSON report.
    pub out: String,
    /// Tracked report to ratchet against (see [`crate::ratchet`]); none
    /// skips the comparison.
    pub ratchet: Option<String>,
    /// Throughput floor factor for the ratchet comparison.
    pub ratchet_min: f64,
}

impl Default for HotpathOptions {
    fn default() -> Self {
        HotpathOptions {
            smoke: false,
            seed: 2017,
            threads: 0,
            out: "BENCH_hotpath.json".into(),
            ratchet: None,
            ratchet_min: crate::ratchet::DEFAULT_MIN_RATIO,
        }
    }
}

impl HotpathOptions {
    /// Parses `--smoke`, `--seed N`, `--threads N|auto`, `--out PATH` from
    /// the process arguments.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = HotpathOptions::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--smoke" => opts.smoke = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage("--seed needs an integer"));
                }
                "--threads" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    opts.threads = if v == "auto" {
                        0
                    } else {
                        v.parse()
                            .unwrap_or_else(|_| usage("--threads needs an integer or 'auto'"))
                    };
                }
                "--out" => {
                    opts.out = it.next().unwrap_or_else(|| usage("--out needs a path"));
                }
                "--ratchet" => {
                    opts.ratchet =
                        Some(it.next().unwrap_or_else(|| usage("--ratchet needs a path")));
                }
                "--ratchet-min" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--ratchet-min needs a value"));
                    opts.ratchet_min = v
                        .parse()
                        .ok()
                        .filter(|r: &f64| r.is_finite() && *r > 0.0)
                        .unwrap_or_else(|| usage("--ratchet-min needs a positive number"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        opts
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: pcm-bench-hotpath [--smoke] [--seed N] [--threads N|auto] [--out PATH] \
         [--ratchet TRACKED.json] [--ratchet-min F]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// One micro-benchmark in the report.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Benchmark id, `group/name`.
    pub id: String,
    /// What one throughput element is ("lines", "ops", "writes").
    pub unit: &'static str,
    /// Seed-stable checksum over the benchmark's outputs.
    pub checksum: u64,
    /// Iterations per measured batch.
    pub iters: u64,
    /// Median per-iteration nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of the per-iteration nanoseconds.
    pub mad_ns: f64,
    /// Throughput in `unit`s per second.
    pub per_second: Option<f64>,
}

/// One end-to-end campaign in the report.
#[derive(Debug, Clone)]
pub(crate) struct CampaignEntry {
    /// Campaign label, e.g. `campaign/CompWF/milc`.
    pub label: String,
    /// Wall-clock milliseconds of `run_campaign`.
    pub wall_ms: f64,
    /// Total simulated demand writes across all lines.
    pub demand_writes: u64,
    /// The campaign statistics (must be bit-identical across runs and
    /// thread counts).
    pub stats: pcm_core::lifetime::LifetimeResult,
}

/// The full report behind `BENCH_hotpath.json`.
#[derive(Debug, Clone)]
pub struct HotpathReport {
    /// Seed the run used.
    pub seed: u64,
    /// Whether this was a `--smoke` run.
    pub smoke: bool,
    /// Requested campaign threads (0 = auto).
    pub threads: usize,
    /// Measured batches per micro-benchmark.
    pub batches: usize,
    /// Micro-benchmarks, in run order.
    pub benches: Vec<BenchEntry>,
    /// End-to-end campaigns, in run order.
    pub(crate) campaigns: Vec<CampaignEntry>,
}

impl HotpathReport {
    /// Number of end-to-end campaign entries in the report.
    pub fn campaign_count(&self) -> usize {
        self.campaigns.len()
    }
}

fn mix(h: u64, v: u64) -> u64 {
    // SplitMix64 finalizer fold: order-sensitive, seed-stable.
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix_f64(h: u64, v: f64) -> u64 {
    mix(h, v.to_bits())
}

/// Workload-shaped lines: a few blocks from each of four SPEC profiles.
fn workload_lines(seed: u64, per_app: usize) -> Vec<Line512> {
    let mut lines = Vec::with_capacity(per_app * 4);
    for (i, app) in [SpecApp::Milc, SpecApp::Gcc, SpecApp::Sjeng, SpecApp::Lbm]
        .into_iter()
        .enumerate()
    {
        let mut stream = BlockStream::new(app.profile(), child_seed(seed, i as u64));
        for _ in 0..per_app {
            lines.push(stream.next_data());
        }
    }
    lines
}

fn record_checksum(r: &pcm_core::lifetime::LineRecord) -> u64 {
    let mut h = 0u64;
    h = mix(h, r.first_death.unwrap_or(u64::MAX));
    for &e in &r.events {
        h = mix(h, e);
    }
    h = mix(h, r.final_faults as u64);
    h = mix_f64(h, r.mean_flips_per_write);
    h = mix(h, r.demand_writes);
    h
}

fn stats_checksum(s: &pcm_core::lifetime::LifetimeResult) -> u64 {
    let mut h = 0u64;
    h = mix(h, s.writes_to_half_capacity.unwrap_or(u64::MAX));
    if let Some((lo, hi)) = s.half_capacity_ci {
        h = mix(mix(h, lo), hi);
    }
    h = mix_f64(h, s.mean_faults_at_death.unwrap_or(-1.0));
    h = mix_f64(h, s.mean_flips_per_write);
    h = mix_f64(h, s.lines_died);
    h = mix_f64(h, s.lines_revived);
    h
}

/// The linesim configurations measured: `SystemKind` × `EccChoice`.
fn linesim_matrix(smoke: bool) -> Vec<(SystemKind, EccChoice)> {
    let kinds: &[SystemKind] = if smoke {
        &[SystemKind::Baseline, SystemKind::CompWF]
    } else {
        &SystemKind::ALL
    };
    let eccs: &[EccChoice] = if smoke {
        &[EccChoice::Ecp6]
    } else {
        &[EccChoice::Ecp6, EccChoice::Safer32]
    };
    let mut out = Vec::new();
    for &kind in kinds {
        for &ecc in eccs {
            out.push((kind, ecc));
        }
    }
    out
}

/// Runs the full hot-path suite and returns the report.
pub fn run(opts: &HotpathOptions) -> HotpathReport {
    let (batch, batches) = if opts.smoke {
        (Duration::from_millis(2), 3)
    } else {
        (Duration::from_millis(100), 5)
    };
    let mut c = Criterion::default()
        .measurement_time(batch)
        .sample_size(batches);
    let mut entries: Vec<(&'static str, u64)> = Vec::new(); // (unit, checksum) per bench

    // --- 1. compress_best lines/sec ------------------------------------
    let per_app = if opts.smoke { 64 } else { 512 };
    let wl = workload_lines(opts.seed, per_app);
    let rl: Vec<Line512> = {
        let mut rng = seeded_rng(child_seed(opts.seed, 100));
        (0..wl.len()).map(|_| Line512::random(&mut rng)).collect()
    };
    for (name, lines) in [("workload", &wl), ("random", &rl)] {
        let checksum = lines.iter().fold(0u64, |h, l| {
            let c = pcm_compress::compress_best(l);
            mix(mix(h, c.method().encode_5bit() as u64), c.size() as u64)
        });
        let mut g = c.benchmark_group("compress_best");
        g.throughput(Throughput::Elements(lines.len() as u64));
        g.bench_function(name, |b| {
            b.iter(|| {
                lines
                    .iter()
                    .fold(0usize, |acc, l| acc + pcm_compress::compress_best(l).size())
            })
        });
        g.finish();
        entries.push(("lines", checksum));
    }

    // --- 2. Line512 kernels --------------------------------------------
    let pairs: Vec<(Line512, Line512)> = {
        let mut rng = seeded_rng(child_seed(opts.seed, 200));
        (0..64)
            .map(|_| (Line512::random(&mut rng), Line512::random(&mut rng)))
            .collect()
    };
    {
        let checksum = pairs
            .iter()
            .fold(0u64, |h, (a, b)| mix(h, a.hamming_distance(b) as u64));
        let mut g = c.benchmark_group("kernels");
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_function("xor_popcount", |b| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|(x, y)| x.hamming_distance(y))
                    .sum::<u32>()
            })
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let checksum = pairs.iter().enumerate().fold(0u64, |h, (i, (a, _))| {
            mix(
                h,
                a.count_ones_in((i * 7) % 300..(i * 7) % 300 + 200) as u64,
            )
        });
        let mut g = c.benchmark_group("kernels");
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_function("window_popcount", |b| {
            b.iter(|| {
                pairs
                    .iter()
                    .enumerate()
                    .map(|(i, (x, _))| x.count_ones_in((i * 7) % 300..(i * 7) % 300 + 200))
                    .sum::<u32>()
            })
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let checksum = pairs.iter().enumerate().fold(0u64, |h, (i, (a, _))| {
            mix(h, a.rotate_left_bytes(i % 64).words()[0])
        });
        let mut g = c.benchmark_group("kernels");
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_function("rotate_bytes", |b| {
            b.iter(|| {
                pairs.iter().enumerate().fold(0u64, |acc, (i, (x, _))| {
                    acc ^ x.rotate_left_bytes(i % 64).words()[0]
                })
            })
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let checksum = pairs
            .iter()
            .fold(0u64, |h, (a, b)| mix(h, diff_write(a, b).flips() as u64));
        let mut g = c.benchmark_group("kernels");
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_function("diff_write", |b| {
            b.iter(|| {
                pairs
                    .iter()
                    .map(|(x, y)| diff_write(x, y).flips())
                    .sum::<u32>()
            })
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let run_fnw = || {
            let mut fnw = FlipNWrite::new(8);
            let mut stored = Line512::zero();
            let mut flips = 0u32;
            for (_, data) in &pairs {
                let (next, f) = fnw.write(&stored, data);
                stored = next;
                flips += f;
            }
            (flips, stored)
        };
        let (flips, stored) = run_fnw();
        let checksum = mix(mix(0, flips as u64), stored.words()[0]);
        let mut g = c.benchmark_group("kernels");
        g.throughput(Throughput::Elements(pairs.len() as u64));
        g.bench_function("flip_n_write", |b| b.iter(run_fnw));
        g.finish();
        entries.push(("ops", checksum));
    }

    // --- 2b. SoA batch kernels -----------------------------------------
    // The same 64 line pairs, transposed once into `LineBatch64` lane
    // planes; each bench runs a whole-batch kernel per iteration, and each
    // checksum folds per-lane outputs in lane order so any divergence from
    // the per-line kernels above shows up as checksum drift.
    let batch_a = LineBatch64::from_lines(&pairs.iter().map(|(a, _)| *a).collect::<Vec<_>>());
    let batch_b = LineBatch64::from_lines(&pairs.iter().map(|(_, b)| *b).collect::<Vec<_>>());
    {
        let checksum = simd::batch_hamming(&batch_a, &batch_b)
            .iter()
            .fold(0u64, |h, &v| mix(h, v as u64));
        let mut g = c.benchmark_group("batch");
        g.throughput(Throughput::Elements(batch_a.len() as u64));
        g.bench_function("hamming", |b| {
            b.iter(|| simd::batch_hamming(&batch_a, &batch_b).iter().sum::<u32>())
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let checksum = simd::batch_window_popcount(&batch_a, 9, 48)
            .iter()
            .fold(0u64, |h, &v| mix(h, v as u64));
        let mut g = c.benchmark_group("batch");
        g.throughput(Throughput::Elements(batch_a.len() as u64));
        g.bench_function("window_popcount", |b| {
            b.iter(|| {
                simd::batch_window_popcount(&batch_a, 9, 48)
                    .iter()
                    .sum::<u32>()
            })
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let dw = diff_write_batch(&batch_a, &batch_b);
        let checksum = dw
            .flips()
            .iter()
            .zip(dw.sets())
            .fold(0u64, |h, (&f, s)| mix(mix(h, f as u64), s as u64));
        let mut g = c.benchmark_group("batch");
        g.throughput(Throughput::Elements(batch_a.len() as u64));
        g.bench_function("diff_write", |b| {
            b.iter(|| {
                diff_write_batch(&batch_a, &batch_b)
                    .flips()
                    .iter()
                    .sum::<u32>()
            })
        });
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let run_fnw_batch = || {
            let mut fnws = vec![FlipNWrite::new(8); batch_a.len()];
            let (stored, flips) = flip_n_write_batch(&mut fnws, &batch_a, &batch_b);
            let total: u32 = flips.iter().sum();
            (total, stored)
        };
        let (flips, stored) = run_fnw_batch();
        let checksum = (0..stored.len()).fold(mix(0, flips as u64), |h, lane| {
            mix(h, stored.lane(lane).words()[0])
        });
        let mut g = c.benchmark_group("batch");
        g.throughput(Throughput::Elements(batch_a.len() as u64));
        g.bench_function("flip_n_write", |b| b.iter(|| run_fnw_batch().0));
        g.finish();
        entries.push(("ops", checksum));
    }
    {
        let batch_w = LineBatch64::from_lines(&wl[..64.min(wl.len())]);
        let mut bufs = vec![[0u8; DATA_BYTES]; batch_w.len()];
        let checksum = pcm_compress::compress_best_batch_into(&batch_w, &mut bufs)
            .iter()
            .fold(0u64, |h, &(m, len)| {
                mix(mix(h, m.encode_5bit() as u64), len as u64)
            });
        let mut g = c.benchmark_group("batch");
        g.throughput(Throughput::Elements(batch_w.len() as u64));
        g.bench_function("compress_best", |b| {
            b.iter(|| {
                pcm_compress::compress_best_batch_into(&batch_w, &mut bufs)
                    .iter()
                    .map(|&(_, len)| len)
                    .sum::<usize>()
            })
        });
        g.finish();
        entries.push(("lines", checksum));
    }

    // --- 3. linesim writes/sec per SystemKind × EccChoice --------------
    let endurance = if opts.smoke { 300.0 } else { 2_000.0 };
    for (kind, ecc) in linesim_matrix(opts.smoke) {
        let system = SystemConfig::new(kind)
            .with_endurance_mean(endurance)
            .with_ecc(ecc);
        let cfg = LineSimConfig::new(system, SpecApp::Milc.profile());
        let seed = child_seed(opts.seed, 300);
        let rec = simulate_line(&cfg, seed);
        let checksum = record_checksum(&rec);
        let mut g = c.benchmark_group("linesim");
        g.throughput(Throughput::Elements(rec.demand_writes));
        g.bench_function(format!("{kind}/{ecc}"), |b| {
            b.iter(|| simulate_line(&cfg, seed).demand_writes)
        });
        g.finish();
        entries.push(("writes", checksum));
    }

    // --- 3b. campaign lockstep: one full wave through the batch driver -
    // The unit the campaign runner hands each worker: a chunk of seeds
    // driven through `simulate_line_batch` in lockstep. Smoke keeps the
    // wave partial (16 lanes); the full run measures a complete 64-lane
    // wave so lane-divergence cost is visible in the rate. The checksum
    // folds every record in lane order — byte-identity with the scalar
    // path is pinned separately by the differential tests, this pins the
    // batch driver's own outputs across commits.
    {
        let lanes = if opts.smoke { 16 } else { BATCH_LANES };
        let system = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(endurance);
        let cfg = LineSimConfig::new(system, SpecApp::Milc.profile());
        let seeds: Vec<u64> = (0..lanes)
            .map(|i| child_seed(opts.seed, 600 + i as u64))
            .collect();
        let mut scratch = LineScratch::new();
        let recs = simulate_line_batch(&cfg, &seeds, &mut scratch);
        let demand: u64 = recs.iter().map(|r| r.demand_writes).sum();
        let checksum = recs.iter().fold(0u64, |h, r| mix(h, record_checksum(r)));
        let mut g = c.benchmark_group("campaign");
        g.throughput(Throughput::Elements(demand));
        g.bench_function("lockstep", |b| {
            b.iter(|| {
                simulate_line_batch(&cfg, &seeds, &mut scratch)
                    .iter()
                    .map(|r| r.demand_writes)
                    .sum::<u64>()
            })
        });
        g.finish();
        entries.push(("writes", checksum));
    }

    // --- 4. scheduler: pool scaling, balanced vs. skewed job cost ------
    // Each job spins a deterministic LCG seeded by its index; the skewed
    // shape makes every 8th job 16× heavier — the static-striping worst
    // case. Checksums fold the pooled results in index order, so they must
    // agree across every thread count (scheduling invariance).
    let jobs = if opts.smoke { 32 } else { 256 };
    let base_rounds: u64 = if opts.smoke { 1_000 } else { 10_000 };
    let spin = |seed: u64, rounds: u64| {
        let mut acc = seed;
        for _ in 0..rounds {
            acc = acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
        }
        acc
    };
    let weights: [(&str, fn(usize) -> u64); 2] = [
        ("balanced", |_| 1),
        ("skewed", |i| if i % 8 == 0 { 16 } else { 1 }),
    ];
    for (shape, weight) in weights {
        for threads in [1usize, 2, 4, 8] {
            let pool = Pool::new(threads);
            let run_pool = || {
                pool.map_indexed(jobs, 1, |i| {
                    spin(child_seed(opts.seed, i as u64), base_rounds * weight(i))
                })
                .into_iter()
                .fold(0u64, mix)
            };
            let checksum = run_pool();
            let mut g = c.benchmark_group("scheduler");
            g.throughput(Throughput::Elements(jobs as u64));
            g.bench_function(format!("{shape}/t{threads}"), |b| b.iter(run_pool));
            g.finish();
            entries.push(("jobs", checksum));
        }
    }

    // --- 4b. serve: per-bank batched write path ------------------------
    // A scripted open-loop traffic burst replayed through the engine; one
    // shard keeps the measurement on the bank batch path itself rather
    // than pool spawn cost. Each iteration rebuilds the engine (bank
    // construction is a small fraction of the scripted write work) so
    // every replay starts from pristine wear state and the checksum — wear
    // digests plus snapshot counters — is iteration-invariant.
    {
        let mut scfg = ServeConfig::new(child_seed(opts.seed, 500));
        scfg.shards = 1;
        scfg.banks = 4;
        scfg.lines_per_bank = 32;
        scfg.mean_gap_cycles = 20.0;
        let horizon: u64 = if opts.smoke { 20_000 } else { 160_000 };
        let script = TrafficGen::new(&scfg).script_until(horizon);
        let run_serve = || {
            let mut engine = Engine::new(scfg.clone());
            engine.run_script(&script);
            engine
        };
        let engine = run_serve();
        let snap = engine.snapshot();
        let mut checksum = engine.wear_digests().iter().fold(0u64, |h, &d| mix(h, d));
        checksum = mix(checksum, snap.writes);
        checksum = mix(checksum, snap.faults);
        checksum = mix(checksum, snap.dead_lines);
        checksum = mix(mix(mix(checksum, snap.p50), snap.p99), snap.p999);
        checksum = mix_f64(checksum, snap.compressed_fraction);
        let mut g = c.benchmark_group("serve");
        g.throughput(Throughput::Elements(script.len() as u64));
        g.bench_function("bank_batch", |b| {
            b.iter(|| {
                run_serve()
                    .wear_digests()
                    .iter()
                    .fold(0u64, |h, &d| mix(h, d))
            })
        });
        g.finish();
        entries.push(("writes", checksum));
    }

    // --- micro-bench entries -------------------------------------------
    assert_eq!(
        c.results().len(),
        entries.len(),
        "bench/checksum bookkeeping out of sync"
    );
    let benches: Vec<BenchEntry> = c
        .results()
        .iter()
        .zip(&entries)
        .map(|(r, &(unit, checksum))| BenchEntry {
            id: r.id.clone(),
            unit,
            checksum,
            iters: r.iters,
            median_ns: r.median_ns,
            mad_ns: r.mad_ns,
            per_second: r.per_second(),
        })
        .collect();

    // --- 5. end-to-end campaign wall-clock -----------------------------
    let mut campaigns = Vec::new();
    for (kind, app) in [
        (SystemKind::Baseline, SpecApp::Lbm),
        (SystemKind::CompWF, SpecApp::Milc),
    ] {
        let system = SystemConfig::new(kind).with_endurance_mean(endurance);
        let mut line = LineSimConfig::new(system, app.profile());
        line.sample_writes = 16;
        let mut cfg = CampaignConfig::new(line, child_seed(opts.seed, 400));
        cfg.lines = if opts.smoke { 8 } else { 64 };
        cfg.threads = opts.threads;
        let start = Instant::now();
        let stats = run_campaign(&cfg);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        // Demand writes re-derived serially for the throughput figure.
        let demand_writes: u64 = (0..cfg.lines)
            .map(|i| simulate_line(&cfg.line, child_seed(cfg.seed, i as u64)).demand_writes)
            .sum();
        campaigns.push(CampaignEntry {
            label: format!("campaign/{kind}/{}", app.name()),
            wall_ms,
            demand_writes,
            stats,
        });
    }

    HotpathReport {
        seed: opts.seed,
        smoke: opts.smoke,
        threads: opts.threads,
        batches,
        benches,
        campaigns,
    }
}

fn json_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map(|x| x.to_string()).unwrap_or_else(|| "null".into())
}

fn json_opt_f64(v: Option<f64>) -> String {
    v.map(json_f64).unwrap_or_else(|| "null".into())
}

impl HotpathReport {
    /// Renders the report as pretty-printed JSON, one field per line.
    ///
    /// With `with_timing == false` every timing-dependent field (iters,
    /// median, MAD, throughput, wall-clock) is omitted; what remains must
    /// be byte-identical for two runs with the same seed, which is exactly
    /// what the determinism regression test asserts.
    pub fn to_json(&self, with_timing: bool) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"pcm-bench-hotpath/v1\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        if with_timing {
            s.push_str(&format!("  \"batches\": {},\n", self.batches));
        }
        s.push_str("  \"benches\": [\n");
        for (i, b) in self.benches.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"id\": \"{}\",\n", b.id));
            s.push_str(&format!("      \"unit\": \"{}\",\n", b.unit));
            if with_timing {
                s.push_str(&format!("      \"iters\": {},\n", b.iters));
                s.push_str(&format!(
                    "      \"median_ns\": {},\n",
                    json_f64(b.median_ns)
                ));
                s.push_str(&format!("      \"mad_ns\": {},\n", json_f64(b.mad_ns)));
                s.push_str(&format!(
                    "      \"per_second\": {},\n",
                    json_opt_f64(b.per_second)
                ));
            }
            s.push_str(&format!("      \"checksum\": {}\n", b.checksum));
            s.push_str(if i + 1 < self.benches.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ],\n");
        s.push_str("  \"campaigns\": [\n");
        for (i, e) in self.campaigns.iter().enumerate() {
            let st = &e.stats;
            s.push_str("    {\n");
            s.push_str(&format!("      \"label\": \"{}\",\n", e.label));
            if with_timing {
                s.push_str(&format!("      \"wall_ms\": {},\n", json_f64(e.wall_ms)));
            }
            s.push_str(&format!("      \"demand_writes\": {},\n", e.demand_writes));
            s.push_str(&format!("      \"checksum\": {},\n", stats_checksum(st)));
            s.push_str("      \"stats\": {\n");
            s.push_str(&format!(
                "        \"writes_to_half_capacity\": {},\n",
                json_opt_u64(st.writes_to_half_capacity)
            ));
            let ci = st
                .half_capacity_ci
                .map(|(lo, hi)| format!("[{lo}, {hi}]"))
                .unwrap_or_else(|| "null".into());
            s.push_str(&format!("        \"half_capacity_ci\": {ci},\n"));
            s.push_str(&format!(
                "        \"mean_faults_at_death\": {},\n",
                json_opt_f64(st.mean_faults_at_death)
            ));
            s.push_str(&format!(
                "        \"mean_final_death_faults\": {},\n",
                json_opt_f64(st.mean_final_death_faults)
            ));
            s.push_str(&format!(
                "        \"mean_flips_per_write\": {},\n",
                json_f64(st.mean_flips_per_write)
            ));
            s.push_str(&format!(
                "        \"lines_died\": {},\n",
                json_f64(st.lines_died)
            ));
            s.push_str(&format!(
                "        \"lines_revived\": {},\n",
                json_f64(st.lines_revived)
            ));
            s.push_str(&format!("        \"lines\": {},\n", st.lines));
            s.push_str(&format!("        \"horizon\": {}\n", st.horizon));
            s.push_str("      }\n");
            s.push_str(if i + 1 < self.campaigns.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse() {
        let o = HotpathOptions::parse(
            [
                "--smoke",
                "--seed",
                "7",
                "--threads",
                "2",
                "--out",
                "x.json",
            ]
            .map(String::from),
        );
        assert!(o.smoke);
        assert_eq!(o.seed, 7);
        assert_eq!(o.threads, 2);
        assert_eq!(o.out, "x.json");
        assert_eq!(o.ratchet, None);
        assert_eq!(o.ratchet_min, crate::ratchet::DEFAULT_MIN_RATIO);
        let auto = HotpathOptions::parse(["--threads", "auto"].map(String::from));
        assert_eq!(auto.threads, 0);
        let r = HotpathOptions::parse(
            ["--ratchet", "tracked.json", "--ratchet-min", "0.25"].map(String::from),
        );
        assert_eq!(r.ratchet.as_deref(), Some("tracked.json"));
        assert_eq!(r.ratchet_min, 0.25);
    }

    #[test]
    fn json_scalars() {
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(2.5), "2.5");
        assert_eq!(json_opt_u64(None), "null");
        assert_eq!(json_opt_f64(Some(1.0)), "1.0");
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(mix(0, 1), 2), mix(mix(0, 2), 1));
    }
}
