//! Minimal command-line options shared by every experiment binary.

use pcm_trace::{profile::ALL_APPS, SpecApp};

/// Options accepted by every harness binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Reduced sample sizes for smoke runs.
    pub quick: bool,
    /// Campaign seed.
    pub seed: u64,
    /// Workloads to evaluate (default: all 15).
    pub apps: Vec<SpecApp>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            seed: 2017,
            apps: ALL_APPS.to_vec(),
        }
    }
}

impl Options {
    /// Parses `--quick`, `--seed N`, and `--apps a,b,c` from the process
    /// arguments. Unknown flags abort with a usage message.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses options from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics on unknown flags, missing values, or unknown app names.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    let v = it.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage("--seed needs an integer"));
                }
                "--apps" => {
                    let v = it.next().unwrap_or_else(|| usage("--apps needs a list"));
                    opts.apps = v
                        .split(',')
                        .map(|name| {
                            ALL_APPS
                                .iter()
                                .copied()
                                .find(|a| a.name().eq_ignore_ascii_case(name.trim()))
                                .unwrap_or_else(|| usage(&format!("unknown app '{name}'")))
                        })
                        .collect();
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag '{other}'")),
            }
        }
        opts
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <binary> [--quick] [--seed N] [--apps astar,milc,...]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

/// Prints a header line for an experiment table.
pub fn header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = Options::parse(Vec::<String>::new());
        assert!(!o.quick);
        assert_eq!(o.apps.len(), 15);
    }

    #[test]
    fn parses_flags() {
        let o = Options::parse(["--quick", "--seed", "7", "--apps", "milc,gcc"].map(String::from));
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.apps, vec![SpecApp::Milc, SpecApp::Gcc]);
    }

    #[test]
    fn app_names_case_insensitive() {
        let o = Options::parse(["--apps", "CACTUSadm"].map(String::from));
        assert_eq!(o.apps, vec![SpecApp::CactusADM]);
    }
}
