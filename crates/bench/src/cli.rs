//! Command-line options shared by every registry experiment.

use pcm_trace::{profile::ALL_APPS, SpecApp};

/// Usage string shared by [`Options::from_args`] and `pcm-lab`.
pub const USAGE: &str = "[--quick] [--seed N] [--apps astar,milc,...]";

/// Options accepted by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Reduced sample sizes for smoke runs.
    pub quick: bool,
    /// Campaign seed.
    pub seed: u64,
    /// Workloads to evaluate (default: all 15).
    pub apps: Vec<SpecApp>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            seed: 2017,
            apps: ALL_APPS.to_vec(),
        }
    }
}

/// A rejected command line (or an explicit `--help` request).
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// `--help`/`-h` was passed; print usage and exit 0.
    Help,
    /// Anything else wrong with the arguments; print the message and the
    /// usage and exit 2.
    Invalid(String),
}

impl CliError {
    /// The process exit code the error conventionally maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Help => 0,
            CliError::Invalid(_) => 2,
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "help requested"),
            CliError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

/// Resolves a workload name case-insensitively.
pub fn lookup_app(name: &str) -> Result<SpecApp, CliError> {
    ALL_APPS
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(name.trim()))
        .ok_or_else(|| CliError::Invalid(format!("unknown app '{name}'")))
}

impl Options {
    /// Parses `--quick`, `--seed N`, and `--apps a,b,c` from the process
    /// arguments, printing usage and exiting on error or `--help`.
    pub fn from_args() -> Self {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
            if let CliError::Invalid(msg) = &e {
                eprintln!("error: {msg}");
            }
            eprintln!("usage: <binary> {USAGE}");
            std::process::exit(e.exit_code());
        })
    }

    /// Parses options from an explicit iterator.
    ///
    /// Unknown flags, missing or malformed values, and unknown app names
    /// are rejected with [`CliError::Invalid`]; `--help`/`-h` maps to
    /// [`CliError::Help`].
    pub fn parse<I>(args: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut opts = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Invalid("--seed needs a value".into()))?;
                    opts.seed = v
                        .parse()
                        .map_err(|_| CliError::Invalid("--seed needs an integer".into()))?;
                }
                "--apps" => {
                    let v = it
                        .next()
                        .ok_or_else(|| CliError::Invalid("--apps needs a list".into()))?;
                    opts.apps = v
                        .split(',')
                        .map(lookup_app)
                        .collect::<Result<Vec<_>, _>>()?;
                }
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::Invalid(format!("unknown flag '{other}'"))),
            }
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> + use<> {
        list.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn defaults() {
        let o = Options::parse(Vec::<String>::new()).unwrap();
        assert!(!o.quick);
        assert_eq!(o.apps.len(), 15);
        assert_eq!(o.seed, 2017);
    }

    #[test]
    fn parses_flags() {
        let o = Options::parse(args(&["--quick", "--seed", "7", "--apps", "milc,gcc"])).unwrap();
        assert!(o.quick);
        assert_eq!(o.seed, 7);
        assert_eq!(o.apps, vec![SpecApp::Milc, SpecApp::Gcc]);
    }

    #[test]
    fn app_names_case_insensitive() {
        let o = Options::parse(args(&["--apps", "CACTUSadm"])).unwrap();
        assert_eq!(o.apps, vec![SpecApp::CactusADM]);
    }

    #[test]
    fn unknown_flag_is_invalid() {
        let e = Options::parse(args(&["--frobnicate"])).unwrap_err();
        assert_eq!(e, CliError::Invalid("unknown flag '--frobnicate'".into()));
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn missing_values_are_invalid() {
        assert!(matches!(
            Options::parse(args(&["--seed"])),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            Options::parse(args(&["--apps"])),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            Options::parse(args(&["--seed", "twelve"])),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn unknown_app_is_invalid() {
        let e = Options::parse(args(&["--apps", "milc,nosuchapp"])).unwrap_err();
        assert_eq!(e, CliError::Invalid("unknown app 'nosuchapp'".into()));
    }

    #[test]
    fn help_is_not_an_error_exit() {
        let e = Options::parse(args(&["--help"])).unwrap_err();
        assert_eq!(e, CliError::Help);
        assert_eq!(e.exit_code(), 0);
        assert_eq!(Options::parse(args(&["-h"])).unwrap_err(), CliError::Help);
    }

    #[test]
    fn later_flags_override_earlier() {
        let o = Options::parse(args(&["--seed", "1", "--seed", "2"])).unwrap();
        assert_eq!(o.seed, 2);
    }
}
