//! Throughput regression ratchet for `pcm-bench-hotpath`.
//!
//! The bench harness has always pinned *correctness* across commits (the
//! determinism test diffs every non-timing field), but a kernel rewrite
//! can silently regress *speed* without tripping anything. The ratchet
//! closes that hole: `pcm-bench-hotpath --ratchet PATH` compares the run
//! it just produced against a tracked report (`BENCH_hotpath.json` or the
//! smoke-mode twin) and fails when a ratcheted benchmark falls below
//! `--ratchet-min` (default 0.5) of its tracked throughput, or when any
//! checksum drifts — a perf floor may move, a result never may.
//!
//! Only the kernel-shaped groups are ratcheted ([`RATCHET_PREFIXES`]):
//! `scheduler/*` and `compress_best/*` wobble with container load and the
//! campaign wall-clock entries are not micro-benchmarks. The
//! `campaign/lockstep` and `serve/bank_batch` micro-benchmarks *are*
//! ratcheted — they pin the batched campaign and serve write paths so the
//! lockstep win cannot silently regress. The floor factor is deliberately
//! loose — the gate runs on shared, noisy machines — so it catches
//! "accidentally deoptimized the hot loop 3×", not a 10% wobble.

use crate::hotpath::HotpathReport;

/// Benchmark id prefixes the ratchet enforces a throughput floor on.
pub const RATCHET_PREFIXES: [&str; 5] = ["linesim/", "kernels/", "batch/", "campaign/", "serve/"];

/// Default throughput floor: current must reach half the tracked rate.
pub const DEFAULT_MIN_RATIO: f64 = 0.5;

/// Maximum fresh readings [`check_with_reruns`] takes for a benchmark
/// that came in below its throughput floor.
pub const MAX_RERUNS: usize = 2;

/// One benchmark entry parsed back out of a tracked report.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedBench {
    /// Benchmark id, `group/name`.
    pub id: String,
    /// Seed-stable result checksum.
    pub checksum: u64,
    /// Tracked throughput, if the report carried timing fields.
    pub per_second: Option<f64>,
}

/// The subset of a tracked `BENCH_hotpath.json` the ratchet needs.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackedReport {
    /// Whether the tracked report was a `--smoke` run.
    pub smoke: bool,
    /// Benchmark entries in file order.
    pub benches: Vec<TrackedBench>,
}

impl TrackedReport {
    /// Parses the fields the ratchet needs from a report produced by
    /// `HotpathReport::to_json`. The format is line-oriented (one field
    /// per line), so this is a line scanner, not a general JSON parser:
    /// it keys off the `"id"` / `"per_second"` / `"checksum"` lines of
    /// the `benches` array and ignores the campaign entries (which carry
    /// `"label"` instead of `"id"`).
    pub fn parse(json: &str) -> Result<TrackedReport, String> {
        let mut smoke = None;
        let mut benches = Vec::new();
        let mut pending_id: Option<String> = None;
        let mut pending_per_second: Option<f64> = None;
        for (lineno, raw) in json.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("line {}: {msg}: {line}", lineno + 1);
            if let Some(rest) = line.strip_prefix("\"smoke\": ") {
                smoke = Some(match rest.trim_end_matches(',') {
                    "true" => true,
                    "false" => false,
                    _ => return Err(err("\"smoke\" is not a bool")),
                });
            } else if let Some(rest) = line.strip_prefix("\"id\": \"") {
                let id = rest
                    .strip_suffix("\",")
                    .or_else(|| rest.strip_suffix('"'))
                    .ok_or_else(|| err("unterminated \"id\" string"))?;
                pending_id = Some(id.to_string());
                pending_per_second = None;
            } else if let Some(rest) = line.strip_prefix("\"per_second\": ") {
                let v = rest.trim_end_matches(',');
                pending_per_second = if v == "null" {
                    None
                } else {
                    Some(v.parse().map_err(|_| err("bad \"per_second\" value"))?)
                };
            } else if let Some(rest) = line.strip_prefix("\"checksum\": ") {
                // Campaign checksums arrive with no pending id; skip them.
                if let Some(id) = pending_id.take() {
                    let checksum = rest
                        .trim_end_matches(',')
                        .parse()
                        .map_err(|_| err("bad \"checksum\" value"))?;
                    benches.push(TrackedBench {
                        id,
                        checksum,
                        per_second: pending_per_second.take(),
                    });
                }
            } else if line.starts_with("\"label\": ") {
                pending_id = None;
            }
        }
        let smoke = smoke.ok_or("tracked report has no \"smoke\" field")?;
        if benches.is_empty() {
            return Err("tracked report has no benchmark entries".into());
        }
        Ok(TrackedReport { smoke, benches })
    }
}

/// Result of a ratchet comparison: human-readable per-benchmark lines
/// plus the subset that constitutes failures.
#[derive(Debug, Clone, Default)]
pub struct RatchetOutcome {
    /// One line per ratcheted benchmark (pass or fail).
    pub lines: Vec<String>,
    /// Failure messages; empty means the ratchet passed.
    pub failures: Vec<String>,
    /// Ids of benchmarks that failed only on throughput — the retryable
    /// subset of [`failures`](Self::failures).
    pub slowdowns: Vec<String>,
}

impl RatchetOutcome {
    /// `true` when no ratcheted benchmark failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// `true` when every failure is a below-floor throughput reading —
    /// the only kind a rerun can legitimately fix. Checksum drift, a
    /// smoke-mode mismatch, or a missing benchmark means results (not
    /// noise) changed, so retrying would just mask the bug.
    pub fn retryable(&self) -> bool {
        !self.failures.is_empty() && self.failures.len() == self.slowdowns.len()
    }
}

fn ratcheted(id: &str) -> bool {
    RATCHET_PREFIXES.iter().any(|p| id.starts_with(p))
}

/// Compares a fresh report against a tracked one.
///
/// * smoke-mode flags must match (a smoke run against the full-scale
///   floor would pass or fail meaninglessly),
/// * every ratcheted benchmark present in both must keep its checksum
///   bit-identical and reach `min_ratio ×` the tracked throughput,
/// * a ratcheted benchmark that disappeared from the current run fails
///   (deleting a benchmark must move the tracked file, not skip the
///   floor); a new benchmark with no tracked floor is reported but
///   passes.
pub fn check(current: &HotpathReport, tracked: &TrackedReport, min_ratio: f64) -> RatchetOutcome {
    let mut out = RatchetOutcome::default();
    if current.smoke != tracked.smoke {
        out.failures.push(format!(
            "smoke-mode mismatch: current run smoke={}, tracked report smoke={}",
            current.smoke, tracked.smoke
        ));
        return out;
    }
    for b in current.benches.iter().filter(|b| ratcheted(&b.id)) {
        let Some(t) = tracked.benches.iter().find(|t| t.id == b.id) else {
            out.lines
                .push(format!("ratchet: {:<28} new benchmark, no floor yet", b.id));
            continue;
        };
        if b.checksum != t.checksum {
            let msg = format!(
                "ratchet: {:<28} CHECKSUM DRIFT {} != tracked {}",
                b.id, b.checksum, t.checksum
            );
            out.lines.push(msg.clone());
            out.failures.push(msg);
            continue;
        }
        match (b.per_second, t.per_second) {
            (Some(cur), Some(floor)) if floor > 0.0 => {
                let ratio = cur / floor;
                if ratio < min_ratio {
                    let msg = format!(
                        "ratchet: {:<28} SLOWDOWN {:.2}x of tracked ({:.3e}/s vs {:.3e}/s, floor {:.2}x)",
                        b.id, ratio, cur, floor, min_ratio
                    );
                    out.lines.push(msg.clone());
                    out.failures.push(msg);
                    out.slowdowns.push(b.id.clone());
                } else {
                    out.lines.push(format!(
                        "ratchet: {:<28} ok {:.2}x of tracked ({:.3e}/s)",
                        b.id, ratio, cur
                    ));
                }
            }
            _ => out.lines.push(format!(
                "ratchet: {:<28} checksum ok, no throughput to compare",
                b.id
            )),
        }
    }
    for t in tracked.benches.iter().filter(|t| ratcheted(&t.id)) {
        if !current.benches.iter().any(|b| b.id == t.id) {
            let msg = format!(
                "ratchet: {:<28} tracked benchmark missing from current run",
                t.id
            );
            out.lines.push(msg.clone());
            out.failures.push(msg);
        }
    }
    out
}

/// [`check`] with slowdown retries: a benchmark below its throughput
/// floor gets up to `max_reruns` fresh readings, keeping the best
/// `per_second` per bench, before the slowdown counts as a failure.
///
/// `rerun` re-measures the suite and is handed the below-floor ids (for
/// progress reporting; the measurement itself is a full fresh report so
/// the retried benches run under the same conditions as the first
/// attempt). `current` is updated in place with the best readings, so
/// the caller writes the merged report.
///
/// Two hard-fail cases skip the retry loop entirely:
///
/// * a first-attempt outcome that is not [`retryable`]
///   (`RatchetOutcome::retryable`) — checksum drift, smoke mismatch, or
///   a missing benchmark is a result change, not measurement noise;
/// * a rerun whose checksum disagrees with the first attempt's — that is
///   nondeterminism *within* one commit, strictly worse than drift
///   against the tracked report.
pub fn check_with_reruns<F>(
    current: &mut HotpathReport,
    tracked: &TrackedReport,
    min_ratio: f64,
    max_reruns: usize,
    mut rerun: F,
) -> RatchetOutcome
where
    F: FnMut(&[String]) -> HotpathReport,
{
    let mut outcome = check(current, tracked, min_ratio);
    for attempt in 1..=max_reruns {
        if outcome.passed() || !outcome.retryable() {
            break;
        }
        let slow = std::mem::take(&mut outcome.slowdowns);
        let fresh = rerun(&slow);
        for id in &slow {
            let cur = current.benches.iter_mut().find(|b| b.id == *id);
            let new = fresh.benches.iter().find(|b| b.id == *id);
            let (Some(cur), Some(new)) = (cur, new) else {
                continue;
            };
            if new.checksum != cur.checksum {
                let msg = format!(
                    "ratchet: {:<28} RERUN CHECKSUM DRIFT {} != first attempt {}",
                    id, new.checksum, cur.checksum
                );
                outcome.lines.push(msg.clone());
                outcome.failures.push(msg);
                return outcome;
            }
            if new.per_second > cur.per_second {
                *cur = new.clone();
            }
        }
        outcome = check(current, tracked, min_ratio);
        outcome.lines.push(format!(
            "ratchet: rerun {attempt}/{max_reruns} re-measured {} below-floor bench(es)",
            slow.len()
        ));
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hotpath::BenchEntry;

    fn entry(id: &str, checksum: u64, per_second: f64) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            unit: "ops",
            checksum,
            iters: 1,
            median_ns: 1.0,
            mad_ns: 0.0,
            per_second: Some(per_second),
        }
    }

    fn report(smoke: bool, benches: Vec<BenchEntry>) -> HotpathReport {
        HotpathReport {
            seed: 2017,
            smoke,
            threads: 0,
            batches: 1,
            benches,
            campaigns: Vec::new(),
        }
    }

    #[test]
    fn parse_round_trips_own_format() {
        let rep = report(
            true,
            vec![entry("kernels/a", 7, 100.0), entry("linesim/b", 9, 5.5)],
        );
        let tracked = TrackedReport::parse(&rep.to_json(true)).unwrap();
        assert!(tracked.smoke);
        assert_eq!(
            tracked.benches,
            vec![
                TrackedBench {
                    id: "kernels/a".into(),
                    checksum: 7,
                    per_second: Some(100.0),
                },
                TrackedBench {
                    id: "linesim/b".into(),
                    checksum: 9,
                    per_second: Some(5.5),
                },
            ]
        );
        // Timing-stripped reports parse too (no throughput floors).
        let no_timing = TrackedReport::parse(&rep.to_json(false)).unwrap();
        assert_eq!(no_timing.benches[0].per_second, None);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TrackedReport::parse("").is_err());
        assert!(TrackedReport::parse("{\n  \"smoke\": maybe,\n}\n").is_err());
        let no_benches = "{\n  \"smoke\": true,\n  \"benches\": []\n}\n";
        assert!(TrackedReport::parse(no_benches).is_err());
    }

    #[test]
    fn checksum_drift_fails_regardless_of_speed() {
        let cur = report(false, vec![entry("kernels/a", 1, 1e9)]);
        let tracked = TrackedReport {
            smoke: false,
            benches: vec![TrackedBench {
                id: "kernels/a".into(),
                checksum: 2,
                per_second: Some(1.0),
            }],
        };
        let out = check(&cur, &tracked, DEFAULT_MIN_RATIO);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("CHECKSUM DRIFT"), "{out:?}");
    }

    #[test]
    fn slowdown_below_floor_fails_and_above_passes() {
        let tracked = TrackedReport {
            smoke: false,
            benches: vec![TrackedBench {
                id: "linesim/x".into(),
                checksum: 3,
                per_second: Some(100.0),
            }],
        };
        let slow = report(false, vec![entry("linesim/x", 3, 49.0)]);
        assert!(!check(&slow, &tracked, 0.5).passed());
        let fine = report(false, vec![entry("linesim/x", 3, 51.0)]);
        assert!(check(&fine, &tracked, 0.5).passed());
    }

    #[test]
    fn unratcheted_groups_are_ignored() {
        let cur = report(false, vec![entry("scheduler/balanced/t1", 1, 1.0)]);
        let tracked = TrackedReport {
            smoke: false,
            benches: vec![TrackedBench {
                id: "scheduler/balanced/t1".into(),
                checksum: 99,
                per_second: Some(1e9),
            }],
        };
        let out = check(&cur, &tracked, DEFAULT_MIN_RATIO);
        assert!(out.passed(), "{out:?}");
        assert!(out.lines.is_empty());
    }

    fn tracked_one(id: &str, checksum: u64, per_second: f64) -> TrackedReport {
        TrackedReport {
            smoke: false,
            benches: vec![TrackedBench {
                id: id.into(),
                checksum,
                per_second: Some(per_second),
            }],
        }
    }

    #[test]
    fn rerun_recovers_a_noisy_slowdown() {
        let tracked = tracked_one("kernels/a", 7, 100.0);
        let mut cur = report(false, vec![entry("kernels/a", 7, 10.0)]);
        let mut calls = 0;
        let out = check_with_reruns(&mut cur, &tracked, 0.5, MAX_RERUNS, |slow| {
            calls += 1;
            assert_eq!(slow, ["kernels/a".to_string()]);
            report(false, vec![entry("kernels/a", 7, 90.0)])
        });
        assert!(out.passed(), "{out:?}");
        assert_eq!(calls, 1, "passing rerun must stop the retry loop");
        assert_eq!(cur.benches[0].per_second, Some(90.0), "best reading kept");
    }

    #[test]
    fn reruns_keep_the_best_reading_and_cap_at_max() {
        let tracked = tracked_one("kernels/a", 7, 100.0);
        let mut cur = report(false, vec![entry("kernels/a", 7, 10.0)]);
        let mut calls = 0;
        let readings = [20.0, 15.0]; // both still below the 50.0 floor
        let out = check_with_reruns(&mut cur, &tracked, 0.5, MAX_RERUNS, |_| {
            calls += 1;
            report(false, vec![entry("kernels/a", 7, readings[calls - 1])])
        });
        assert!(!out.passed());
        assert_eq!(calls, MAX_RERUNS);
        assert_eq!(cur.benches[0].per_second, Some(20.0), "best of 3 kept");
        assert!(out.failures[0].contains("SLOWDOWN"), "{out:?}");
    }

    #[test]
    fn checksum_drift_is_never_retried() {
        let tracked = tracked_one("kernels/a", 7, 100.0);
        // Drift AND a slowdown: the drift makes the outcome non-retryable.
        let mut cur = report(false, vec![entry("kernels/a", 8, 10.0)]);
        let out = check_with_reruns(&mut cur, &tracked, 0.5, MAX_RERUNS, |_| {
            panic!("drift must hard-fail without a rerun")
        });
        assert!(!out.passed());
        assert!(out.failures[0].contains("CHECKSUM DRIFT"), "{out:?}");
    }

    #[test]
    fn rerun_checksum_drift_hard_fails() {
        let tracked = tracked_one("kernels/a", 7, 100.0);
        let mut cur = report(false, vec![entry("kernels/a", 7, 10.0)]);
        let mut calls = 0;
        let out = check_with_reruns(&mut cur, &tracked, 0.5, MAX_RERUNS, |_| {
            calls += 1;
            report(false, vec![entry("kernels/a", 9, 90.0)])
        });
        assert!(!out.passed());
        assert_eq!(calls, 1, "intra-commit drift must stop the loop");
        assert!(
            out.failures
                .iter()
                .any(|f| f.contains("RERUN CHECKSUM DRIFT")),
            "{out:?}"
        );
        assert_eq!(
            cur.benches[0].per_second,
            Some(10.0),
            "a drifting reading must not be merged"
        );
    }

    #[test]
    fn smoke_mismatch_and_missing_bench_fail() {
        let tracked = TrackedReport {
            smoke: false,
            benches: vec![TrackedBench {
                id: "kernels/a".into(),
                checksum: 1,
                per_second: Some(1.0),
            }],
        };
        let smoke_run = report(true, vec![entry("kernels/a", 1, 1.0)]);
        assert!(!check(&smoke_run, &tracked, DEFAULT_MIN_RATIO).passed());
        let dropped = report(false, vec![]);
        let out = check(&dropped, &tracked, DEFAULT_MIN_RATIO);
        assert!(!out.passed());
        assert!(out.failures[0].contains("missing"), "{out:?}");
    }
}
