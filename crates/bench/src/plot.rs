//! Terminal plotting helpers: sparklines and horizontal bars for the
//! experiment binaries, so a figure's *shape* is visible without leaving
//! the terminal.

/// Unicode block ramp used by [`sparkline`].
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Renders a series as a one-line sparkline, scaled to its own min/max.
///
/// Empty input renders as an empty string; a constant series renders at
/// mid-height.
///
/// # Examples
///
/// ```
/// use pcm_bench::plot::sparkline;
///
/// let s = sparkline(&[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(s.chars().count(), 4);
/// assert!(s.starts_with('▁'));
/// assert!(s.ends_with('█'));
/// ```
pub fn sparkline(values: &[f64]) -> String {
    let Some((min, max)) = min_max(values) else {
        return String::new();
    };
    let span = max - min;
    values
        .iter()
        .map(|&v| {
            if span == 0.0 {
                RAMP[3]
            } else {
                let idx = ((v - min) / span * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.min(RAMP.len() - 1)]
            }
        })
        .collect()
}

/// Renders a horizontal bar of `width` cells, filled proportionally to
/// `value / max`.
///
/// # Panics
///
/// Panics if `max <= 0` or `width == 0`.
///
/// # Examples
///
/// ```
/// use pcm_bench::plot::bar;
///
/// assert_eq!(bar(5.0, 10.0, 10), "█████     ");
/// assert_eq!(bar(10.0, 10.0, 4), "████");
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    assert!(max > 0.0, "bar needs a positive maximum");
    assert!(width > 0, "bar needs a positive width");
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut out = String::with_capacity(width);
    for i in 0..width {
        out.push(if i < filled { '█' } else { ' ' });
    }
    out
}

/// Downsamples a series to at most `points` by averaging equal chunks
/// (plotting helper for long write series).
///
/// # Examples
///
/// ```
/// use pcm_bench::plot::downsample;
///
/// assert_eq!(downsample(&[1.0, 3.0, 5.0, 7.0], 2), vec![2.0, 6.0]);
/// assert_eq!(downsample(&[1.0], 4), vec![1.0]);
/// ```
pub fn downsample(values: &[f64], points: usize) -> Vec<f64> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    if values.len() <= points {
        return values.to_vec();
    }
    (0..points)
        .map(|i| {
            let lo = i * values.len() / points;
            let hi = ((i + 1) * values.len() / points).max(lo + 1);
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

fn min_max(values: &[f64]) -> Option<(f64, f64)> {
    let mut it = values.iter().copied();
    let first = it.next()?;
    let mut min = first;
    let mut max = first;
    for v in it {
        min = min.min(v);
        max = max.max(v);
    }
    Some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat.chars().count(), 3);
        assert!(flat.chars().all(|c| c == RAMP[3]));
        let ramp = sparkline(&[0.0, 7.0]);
        assert_eq!(ramp, "▁█");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(20.0, 10.0, 5), "█████");
        assert_eq!(bar(-1.0, 10.0, 5), "     ");
    }

    #[test]
    fn downsample_preserves_mean() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ds = downsample(&xs, 10);
        assert_eq!(ds.len(), 10);
        let orig_mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let ds_mean = ds.iter().sum::<f64>() / ds.len() as f64;
        assert!((orig_mean - ds_mean).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "positive maximum")]
    fn bar_rejects_zero_max() {
        bar(1.0, 0.0, 5);
    }
}
