//! Compression-behaviour experiments: Figs. 1, 3, 5, 6, 7, 11 and the CR
//! column of Table III.

use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Series, Table, Tolerance, Value};
use pcm_compress::{bdi, compress_best, fpc, FvcDictionary};
use pcm_device::dw::diff_write;
use pcm_device::EnergyModel;
use pcm_trace::calibrate::{
    block_size_series, calibrate, compression_stats, max_size_cdf, size_change_probability,
    CompressionStats,
};
use pcm_trace::{BlockStream, SpecApp, TraceGenerator};
use pcm_util::stats::Ecdf;
use pcm_util::{child_seed, Line512};
use serde::{Deserialize, Serialize};

/// Fig. 1: differential-write flips for consecutive writes to one block.
pub fn fig01_flip_series(app: SpecApp, writes: usize, seed: u64) -> Vec<u32> {
    let mut stream = BlockStream::new(app.profile(), seed);
    let mut prev = stream.current();
    (0..writes)
        .map(|_| {
            let next = stream.next_data();
            let flips = prev.hamming_distance(&next);
            prev = next;
            flips
        })
        .collect()
}

/// Fig. 3 row: average compressed sizes for one workload.
pub(crate) fn fig03_sizes(app: SpecApp, writes: usize, seed: u64) -> CompressionStats {
    let mut generator = TraceGenerator::from_profile(app.profile(), 512, seed);
    compression_stats(&mut generator, writes)
}

/// Fig. 5 row: fraction of write-backs whose flip count increased,
/// stayed within ±5%, or decreased after compression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct FlipDelta {
    /// Flips rose by more than 5%.
    pub increased: f64,
    /// Flips within ±5% of the uncompressed write.
    pub untouched: f64,
    /// Flips fell by more than 5%.
    pub decreased: f64,
}

/// Computes Fig. 5 for one workload: each block is stored twice — verbatim
/// and compressed (window at the line's low bytes) — and per write-back the
/// differential-write flip counts of the two layouts are compared.
pub(crate) fn fig05_flip_delta(
    app: SpecApp,
    blocks: usize,
    writes_per_block: usize,
    seed: u64,
) -> FlipDelta {
    let mut increased = 0u64;
    let mut untouched = 0u64;
    let mut decreased = 0u64;
    for b in 0..blocks {
        let mut stream = BlockStream::new(app.profile(), child_seed(seed, b as u64));
        let mut plain_line = stream.current();
        let mut comp_line = {
            let c = compress_best(&stream.current());
            Line512::zero().with_bytes_at(0, c.bytes())
        };
        for _ in 0..writes_per_block {
            let data = stream.next_data();
            let plain_flips = plain_line.hamming_distance(&data);
            let c = compress_best(&data);
            let comp_target = comp_line.with_bytes_at(0, c.bytes());
            let comp_flips = comp_line.hamming_distance(&comp_target);
            plain_line = data;
            comp_line = comp_target;
            let hi = plain_flips as f64 * 1.05;
            let lo = plain_flips as f64 * 0.95;
            if (comp_flips as f64) > hi {
                increased += 1;
            } else if (comp_flips as f64) < lo {
                decreased += 1;
            } else {
                untouched += 1;
            }
        }
    }
    let total = (increased + untouched + decreased) as f64;
    FlipDelta {
        increased: increased as f64 / total,
        untouched: untouched as f64 / total,
        decreased: decreased as f64 / total,
    }
}

/// Fig. 6 value: probability consecutive writes to a block change
/// compressed size.
pub(crate) fn fig06_size_change(app: SpecApp, writes: usize, seed: u64) -> f64 {
    let mut generator = TraceGenerator::from_profile(app.profile(), 64, seed);
    size_change_probability(&mut generator, writes)
}

/// Fig. 7: compressed-size series of consecutive writes to several blocks.
pub fn fig07_series(app: SpecApp, blocks: usize, writes: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut generator = TraceGenerator::from_profile(app.profile(), blocks as u64, seed);
    (0..blocks as u64)
        .map(|line| block_size_series(&mut generator, line, writes))
        .collect()
}

/// Fig. 11: per-address maximum compressed-size CDF.
pub(crate) fn fig11_cdf(app: SpecApp, writes: usize, seed: u64) -> Ecdf {
    let mut generator = TraceGenerator::from_profile(app.profile(), 256, seed);
    max_size_cdf(&mut generator, writes)
}

// --------------------------------------------------------- registry entries

/// Fig. 1 registry entry.
pub(crate) struct Fig01DwRandomness;

impl Experiment for Fig01DwRandomness {
    fn name(&self) -> &'static str {
        "fig01_dw_randomness"
    }

    fn description(&self) -> &'static str {
        "DW bit flips per consecutive write are random (gobmk, one block)"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 1"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 60 } else { 200 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 60 } else { 200 };
        let series = fig01_flip_series(SpecApp::Gobmk, writes, opts.seed);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 1: DW bit flips per consecutive write (gobmk, one block)",
            "write",
            vec![Column::exact("flips")],
        );
        for (i, &f) in series.iter().enumerate() {
            t.push(i.to_string(), vec![Value::Int(f as i64)]);
        }
        r.tables.push(t);
        let as_f64: Vec<f64> = series.iter().map(|&f| f as f64).collect();
        let mean = as_f64.iter().sum::<f64>() / as_f64.len() as f64;
        let max = series.iter().max().expect("series has at least one write");
        let min = series.iter().min().expect("series has at least one write");
        r.series
            .push(Series::spark("shape", as_f64, 1, Tolerance::Exact));
        r.note(format!("mean {mean:.1}, min {min}, max {max} of 512 cells"));
        r
    }
}

/// Fig. 3 registry entry.
pub(crate) struct Fig03CompressedSize;

impl Experiment for Fig03CompressedSize {
    fn name(&self) -> &'static str {
        "fig03_compressed_size"
    }

    fn description(&self) -> &'static str {
        "average compressed size per workload: BDI vs FPC vs best-of-two"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 3"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 2_000 } else { 20_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 2_000 } else { 20_000 };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 3: average compressed size (bytes) per workload",
            "app",
            vec![
                Column::ratio("BDI", 0.98, 1.02),
                Column::ratio("FPC", 0.98, 1.02),
                Column::ratio("BEST", 0.98, 1.02),
                Column::abs("CR", 0.02),
            ],
        );
        let mut crs = Vec::new();
        for app in &opts.apps {
            let s = fig03_sizes(*app, writes, opts.seed);
            t.push(
                app.name(),
                vec![
                    Value::Num(s.bdi_mean, 1),
                    Value::Num(s.fpc_mean, 1),
                    Value::Num(s.best_mean, 1),
                    Value::Num(s.cr, 2),
                ],
            );
            crs.push(s.cr);
        }
        r.tables.push(t);
        r.note(format!(
            "average CR {:.2} (paper: 0.43)",
            pcm_util::stats::mean(&crs)
        ));
        r
    }
}

/// Fig. 5 registry entry.
pub(crate) struct Fig05BitflipDelta;

impl Experiment for Fig05BitflipDelta {
    fn name(&self) -> &'static str {
        "fig05_bitflip_delta"
    }

    fn description(&self) -> &'static str {
        "share of write-backs with increased/untouched/decreased flips after compression"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 5"
    }

    fn scale_summary(&self, quick: bool) -> String {
        let (blocks, writes) = if quick { (24, 60) } else { (96, 150) };
        format!("blocks={blocks} writes/block={writes}")
    }

    fn run(&self, opts: &Options) -> Report {
        let (blocks, writes) = if opts.quick { (24, 60) } else { (96, 150) };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 5: flip-count change of compressed vs uncompressed storage",
            "app",
            vec![
                Column::abs("increased%", 3.0),
                Column::abs("untouched%", 3.0),
                Column::abs("decreased%", 3.0),
            ],
        );
        for app in &opts.apps {
            let d = fig05_flip_delta(*app, blocks, writes, opts.seed);
            t.push(
                app.name(),
                vec![
                    Value::Num(100.0 * d.increased, 0),
                    Value::Num(100.0 * d.untouched, 0),
                    Value::Num(100.0 * d.decreased, 0),
                ],
            );
        }
        r.tables.push(t);
        r
    }
}

/// Fig. 6 registry entry.
pub(crate) struct Fig06SizeChangeProb;

impl Experiment for Fig06SizeChangeProb {
    fn name(&self) -> &'static str {
        "fig06_size_change_prob"
    }

    fn description(&self) -> &'static str {
        "probability that consecutive writes change a block's compressed size"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 6"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 4_000 } else { 20_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 4_000 } else { 20_000 };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 6: P(consecutive writes change compressed size)",
            "app",
            vec![Column::abs("probability", 0.02)],
        );
        for app in &opts.apps {
            t.push(
                app.name(),
                vec![Value::Num(fig06_size_change(*app, writes, opts.seed), 2)],
            );
        }
        r.tables.push(t);
        r
    }
}

/// Fig. 7 registry entry.
pub(crate) struct Fig07BlockSizeSeries;

impl Experiment for Fig07BlockSizeSeries {
    fn name(&self) -> &'static str {
        "fig07_block_size_series"
    }

    fn description(&self) -> &'static str {
        "compressed-size series of consecutive writes (bzip2 volatile, hmmer stable)"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 7"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 30 } else { 80 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 30 } else { 80 };
        let mut r = Report::new(self.manifest(opts));
        for app in [SpecApp::Bzip2, SpecApp::Hmmer] {
            let series = fig07_series(app, 3, writes, opts.seed);
            let mut t = Table::new(
                &format!(
                    "Fig 7: compressed sizes over consecutive writes ({})",
                    app.name()
                ),
                "write",
                vec![
                    Column::exact("block1"),
                    Column::exact("block2"),
                    Column::exact("block3"),
                ],
            );
            for (i, ((a, b), c)) in series[0].iter().zip(&series[1]).zip(&series[2]).enumerate() {
                t.push(
                    i.to_string(),
                    vec![
                        Value::Int(*a as i64),
                        Value::Int(*b as i64),
                        Value::Int(*c as i64),
                    ],
                );
            }
            r.tables.push(t);
            for (blk, s) in series.iter().enumerate() {
                let as_f64: Vec<f64> = s.iter().map(|&v| v as f64).collect();
                r.series.push(Series::spark(
                    &format!("{} block{} shape", app.name(), blk + 1),
                    as_f64,
                    0,
                    Tolerance::Exact,
                ));
            }
        }
        r
    }
}

/// Fig. 11 registry entry.
pub(crate) struct Fig11SizeCdf;

impl Experiment for Fig11SizeCdf {
    fn name(&self) -> &'static str {
        "fig11_size_cdf"
    }

    fn description(&self) -> &'static str {
        "CDF of the per-address maximum compressed size (gcc vs milc)"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 11"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 8_000 } else { 40_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 8_000 } else { 40_000 };
        let gcc = fig11_cdf(SpecApp::Gcc, writes, opts.seed);
        let milc = fig11_cdf(SpecApp::Milc, writes, opts.seed);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 11: CDF of per-address max compressed size",
            "size",
            vec![Column::abs("gcc", 0.03), Column::abs("milc", 0.03)],
        );
        for size in (0..=64).step_by(4) {
            t.push(
                size.to_string(),
                vec![
                    Value::Num(gcc.fraction_le(size as f64), 2),
                    Value::Num(milc.fraction_le(size as f64), 2),
                ],
            );
        }
        r.tables.push(t);
        r.note("paper: ~80% of milc addresses stay below 25B; gcc spreads 25-64B");
        r
    }
}

/// Table III registry entry.
pub(crate) struct Table03Workloads;

impl Experiment for Table03Workloads {
    fn name(&self) -> &'static str {
        "table03_workloads"
    }

    fn description(&self) -> &'static str {
        "workload characteristics: WPKI and realized compression ratio"
    }

    fn anchor(&self) -> &'static str {
        "Table III"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 3_000 } else { 12_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 3_000 } else { 12_000 };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Table III: workload characteristics",
            "app",
            vec![
                Column::exact("WPKI"),
                Column::exact("CR(target)"),
                Column::abs("CR(realized)", 0.03),
                Column::exact("class"),
            ],
        );
        for app in &opts.apps {
            let p = app.profile();
            let c = calibrate(&p, 512, opts.seed ^ (*app as u64), writes);
            t.push(
                app.name(),
                vec![
                    Value::Num(p.wpki, 2),
                    Value::Num(p.target_cr, 2),
                    Value::Num(c.realized_cr, 2),
                    Value::Text(p.class.to_string()),
                ],
            );
        }
        r.tables.push(t);
        r
    }
}

/// Write-energy registry entry (§I / §III-A.1 motivation).
pub(crate) struct EnergyWrites;

impl Experiment for EnergyWrites {
    fn name(&self) -> &'static str {
        "energy_writes"
    }

    fn description(&self) -> &'static str {
        "write energy per 64B write-back: uncompressed vs compressed storage"
    }

    fn anchor(&self) -> &'static str {
        "§III-A.1"
    }

    fn scale_summary(&self, quick: bool) -> String {
        let (blocks, writes) = if quick { (16, 60) } else { (64, 150) };
        format!("blocks={blocks} writes/block={writes}")
    }

    fn run(&self, opts: &Options) -> Report {
        let (blocks, writes) = if opts.quick { (16, 60) } else { (64, 150) };
        let e = EnergyModel::paper();
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Write energy per 64B write-back (pJ), DW chip-level writes",
            "app",
            vec![
                Column::ratio("uncompressed", 0.98, 1.02),
                Column::ratio("compressed", 0.98, 1.02),
                Column::abs("saving%", 2.0),
            ],
        );
        for app in &opts.apps {
            let mut plain_total = 0.0;
            let mut comp_total = 0.0;
            let mut n = 0u64;
            for b in 0..blocks {
                let mut stream = BlockStream::new(app.profile(), child_seed(opts.seed, b));
                let mut plain = stream.current();
                let mut comp_line = Line512::zero().with_bytes_at(0, compress_best(&plain).bytes());
                for _ in 0..writes {
                    let data = stream.next_data();
                    plain_total += e.write_energy_pj(&diff_write(&plain, &data));
                    let c = compress_best(&data);
                    let target = comp_line.with_bytes_at(0, c.bytes());
                    comp_total += e.write_energy_pj(&diff_write(&comp_line, &target));
                    plain = data;
                    comp_line = target;
                    n += 1;
                }
            }
            let (p, c) = (plain_total / n as f64, comp_total / n as f64);
            t.push(
                app.name(),
                vec![
                    Value::Num(p, 0),
                    Value::Num(c, 0),
                    Value::Num(100.0 * (1.0 - c / p), 1),
                ],
            );
        }
        r.tables.push(t);
        r
    }
}

/// Compressor-comparison registry entry (§III design space).
pub(crate) struct CompressorComparison;

impl Experiment for CompressorComparison {
    fn name(&self) -> &'static str {
        "compressor_comparison"
    }

    fn description(&self) -> &'static str {
        "mean compressed size: BDI vs FPC vs best-of vs a trained FVC dictionary"
    }

    fn anchor(&self) -> &'static str {
        "§III"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 2_000 } else { 10_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 2_000 } else { 10_000 };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Mean compressed size (bytes): BDI / FPC / BEST / FVC-64",
            "app",
            vec![
                Column::ratio("BDI", 0.98, 1.02),
                Column::ratio("FPC", 0.98, 1.02),
                Column::ratio("BEST", 0.98, 1.02),
                Column::ratio("FVC", 0.98, 1.02),
            ],
        );
        for app in &opts.apps {
            let seed = child_seed(opts.seed, *app as u64);
            // Train FVC on a separate warmup stream of the same workload.
            let mut warmup = TraceGenerator::from_profile(app.profile(), 256, seed ^ 1);
            let training: Vec<_> = (0..2_000).map(|_| warmup.next_write().data).collect();
            let dict = FvcDictionary::train(training.iter(), 64);

            let mut generator = TraceGenerator::from_profile(app.profile(), 256, seed);
            let (mut b, mut f, mut best, mut v) = (0usize, 0usize, 0usize, 0usize);
            for _ in 0..writes {
                let data = generator.next_write().data;
                b += bdi::compress(&data).map(|c| c.size()).unwrap_or(64);
                f += fpc::compress(&data).size().min(64);
                best += compress_best(&data).size();
                v += dict.compress(&data).size_bytes().min(64);
            }
            let n = writes as f64;
            t.push(
                app.name(),
                vec![
                    Value::Num(b as f64 / n, 1),
                    Value::Num(f as f64 / n, 1),
                    Value::Num(best as f64 / n, 1),
                    Value::Num(v as f64 / n, 1),
                ],
            );
        }
        r.tables.push(t);
        r.note("FVC needs persistent dictionary state; the controller prefers the stateless pair");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_series_is_random_looking() {
        let series = fig01_flip_series(SpecApp::Gobmk, 200, 3);
        assert_eq!(series.len(), 200);
        // The paper's point: flips vary widely write to write.
        let max = *series.iter().max().unwrap();
        let min = *series.iter().min().unwrap();
        assert!(max > min + 50, "flip series should vary, got {min}..{max}");
    }

    #[test]
    fn fig05_fractions_sum_to_one() {
        let d = fig05_flip_delta(SpecApp::Milc, 16, 50, 4);
        assert!((d.increased + d.untouched + d.decreased - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig05_low_cr_apps_see_more_increases_than_high_cr() {
        let gems = fig05_flip_delta(SpecApp::GemsFDTD, 24, 60, 4);
        let cactus = fig05_flip_delta(SpecApp::CactusADM, 24, 60, 4);
        assert!(
            gems.increased > cactus.increased,
            "GemsFDTD {:.2} should exceed cactusADM {:.2}",
            gems.increased,
            cactus.increased
        );
        assert!(cactus.decreased + cactus.untouched > 0.8);
    }

    #[test]
    fn fig07_has_requested_shape() {
        let series = fig07_series(SpecApp::Bzip2, 3, 40, 9);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|s| s.len() == 40));
    }
}
