//! Compression-behaviour experiments: Figs. 1, 3, 5, 6, 7, 11 and the CR
//! column of Table III.

use pcm_compress::compress_best;
use pcm_trace::calibrate::{
    block_size_series, compression_stats, max_size_cdf, size_change_probability, CompressionStats,
};
use pcm_trace::{BlockStream, SpecApp, TraceGenerator};
use pcm_util::stats::Ecdf;
use pcm_util::{child_seed, Line512};
use serde::{Deserialize, Serialize};

/// Fig. 1: differential-write flips for consecutive writes to one block.
pub fn fig01_flip_series(app: SpecApp, writes: usize, seed: u64) -> Vec<u32> {
    let mut stream = BlockStream::new(app.profile(), seed);
    let mut prev = stream.current();
    (0..writes)
        .map(|_| {
            let next = stream.next_data();
            let flips = prev.hamming_distance(&next);
            prev = next;
            flips
        })
        .collect()
}

/// Fig. 3 row: average compressed sizes for one workload.
pub fn fig03_sizes(app: SpecApp, writes: usize, seed: u64) -> CompressionStats {
    let mut generator = TraceGenerator::from_profile(app.profile(), 512, seed);
    compression_stats(&mut generator, writes)
}

/// Fig. 5 row: fraction of write-backs whose flip count increased,
/// stayed within ±5%, or decreased after compression.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlipDelta {
    /// Flips rose by more than 5%.
    pub increased: f64,
    /// Flips within ±5% of the uncompressed write.
    pub untouched: f64,
    /// Flips fell by more than 5%.
    pub decreased: f64,
}

/// Computes Fig. 5 for one workload: each block is stored twice — verbatim
/// and compressed (window at the line's low bytes) — and per write-back the
/// differential-write flip counts of the two layouts are compared.
pub fn fig05_flip_delta(
    app: SpecApp,
    blocks: usize,
    writes_per_block: usize,
    seed: u64,
) -> FlipDelta {
    let mut increased = 0u64;
    let mut untouched = 0u64;
    let mut decreased = 0u64;
    for b in 0..blocks {
        let mut stream = BlockStream::new(app.profile(), child_seed(seed, b as u64));
        let mut plain_line = stream.current();
        let mut comp_line = {
            let c = compress_best(&stream.current());
            Line512::zero().with_bytes_at(0, c.bytes())
        };
        for _ in 0..writes_per_block {
            let data = stream.next_data();
            let plain_flips = plain_line.hamming_distance(&data);
            let c = compress_best(&data);
            let comp_target = comp_line.with_bytes_at(0, c.bytes());
            let comp_flips = comp_line.hamming_distance(&comp_target);
            plain_line = data;
            comp_line = comp_target;
            let hi = plain_flips as f64 * 1.05;
            let lo = plain_flips as f64 * 0.95;
            if (comp_flips as f64) > hi {
                increased += 1;
            } else if (comp_flips as f64) < lo {
                decreased += 1;
            } else {
                untouched += 1;
            }
        }
    }
    let total = (increased + untouched + decreased) as f64;
    FlipDelta {
        increased: increased as f64 / total,
        untouched: untouched as f64 / total,
        decreased: decreased as f64 / total,
    }
}

/// Fig. 6 value: probability consecutive writes to a block change
/// compressed size.
pub fn fig06_size_change(app: SpecApp, writes: usize, seed: u64) -> f64 {
    let mut generator = TraceGenerator::from_profile(app.profile(), 64, seed);
    size_change_probability(&mut generator, writes)
}

/// Fig. 7: compressed-size series of consecutive writes to several blocks.
pub fn fig07_series(app: SpecApp, blocks: usize, writes: usize, seed: u64) -> Vec<Vec<usize>> {
    let mut generator = TraceGenerator::from_profile(app.profile(), blocks as u64, seed);
    (0..blocks as u64)
        .map(|line| block_size_series(&mut generator, line, writes))
        .collect()
}

/// Fig. 11: per-address maximum compressed-size CDF.
pub fn fig11_cdf(app: SpecApp, writes: usize, seed: u64) -> Ecdf {
    let mut generator = TraceGenerator::from_profile(app.profile(), 256, seed);
    max_size_cdf(&mut generator, writes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_series_is_random_looking() {
        let series = fig01_flip_series(SpecApp::Gobmk, 200, 3);
        assert_eq!(series.len(), 200);
        // The paper's point: flips vary widely write to write.
        let max = *series.iter().max().unwrap();
        let min = *series.iter().min().unwrap();
        assert!(max > min + 50, "flip series should vary, got {min}..{max}");
    }

    #[test]
    fn fig05_fractions_sum_to_one() {
        let d = fig05_flip_delta(SpecApp::Milc, 16, 50, 4);
        assert!((d.increased + d.untouched + d.decreased - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig05_low_cr_apps_see_more_increases_than_high_cr() {
        let gems = fig05_flip_delta(SpecApp::GemsFDTD, 24, 60, 4);
        let cactus = fig05_flip_delta(SpecApp::CactusADM, 24, 60, 4);
        assert!(
            gems.increased > cactus.increased,
            "GemsFDTD {:.2} should exceed cactusADM {:.2}",
            gems.increased,
            cactus.increased
        );
        assert!(cactus.decreased + cactus.untouched > 0.8);
    }

    #[test]
    fn fig07_has_requested_shape() {
        let series = fig07_series(SpecApp::Bzip2, 3, 40, 9);
        assert_eq!(series.len(), 3);
        assert!(series.iter().all(|s| s.len() == 40));
    }
}
