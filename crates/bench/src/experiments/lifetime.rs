//! Lifetime experiments: Figs. 10, 12, 13 and Table IV.

use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Series, Table, Tolerance, Value};
use pcm_core::lifetime::{
    run_campaign, run_mixed_campaign, CampaignConfig, LifetimeResult, LineSimConfig, WorkloadMix,
};
use pcm_core::{SystemConfig, SystemKind};
use pcm_trace::SpecApp;
use pcm_util::child_seed;
use serde::{Deserialize, Serialize};

/// Campaign scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Lines per campaign.
    pub lines: usize,
    /// Mean cell endurance (reduced from the paper's 1e7; results scale).
    pub endurance_mean: f64,
    /// Sampled writes per segment.
    pub sample_writes: u32,
}

impl Scale {
    /// Default campaign scale: 96 lines at 2×10⁴ endurance.
    pub fn standard() -> Self {
        Scale {
            lines: 96,
            endurance_mean: 2e4,
            sample_writes: 16,
        }
    }

    /// Smoke-run scale.
    pub fn quick() -> Self {
        Scale {
            lines: 32,
            endurance_mean: 8e3,
            sample_writes: 8,
        }
    }

    /// Pick by the `--quick` flag.
    pub(crate) fn from_quick(quick: bool) -> Self {
        if quick {
            Scale::quick()
        } else {
            Scale::standard()
        }
    }

    /// Endurance scale factor back to the paper's 10⁷ (for Table IV).
    pub fn endurance_scale(&self) -> f64 {
        1e7 / self.endurance_mean
    }
}

/// One workload's lifetime results across the four systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct AppLifetimes {
    /// The workload.
    pub app: SpecApp,
    /// Results in [`SystemKind::ALL`] order.
    pub results: Vec<LifetimeResult>,
}

impl AppLifetimes {
    /// Normalized lifetime of system `kind` against the baseline (Fig. 10).
    pub fn normalized(&self, kind: SystemKind) -> f64 {
        let idx = SystemKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known kind");
        self.results[idx].normalized_against(&self.results[0])
    }

    /// The result for one system.
    pub fn result(&self, kind: SystemKind) -> &LifetimeResult {
        let idx = SystemKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known kind");
        &self.results[idx]
    }
}

/// Runs one campaign.
pub fn campaign(
    app: SpecApp,
    kind: SystemKind,
    scale: Scale,
    cov: f64,
    seed: u64,
) -> LifetimeResult {
    let system = SystemConfig::new(kind)
        .with_endurance_mean(scale.endurance_mean)
        .with_endurance_cov(cov);
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = scale.sample_writes;
    let mut cfg = CampaignConfig::new(line, child_seed(seed, kind as u64));
    cfg.lines = scale.lines;
    run_campaign(&cfg)
}

/// Fig. 10: all four systems for one workload (CoV 0.15).
pub(crate) fn fig10_app(app: SpecApp, scale: Scale, seed: u64) -> AppLifetimes {
    let results = SystemKind::ALL
        .iter()
        .map(|&kind| campaign(app, kind, scale, 0.15, child_seed(seed, app as u64)))
        .collect();
    AppLifetimes { app, results }
}

/// Fig. 13: Baseline and Comp+WF at CoV 0.25.
pub(crate) fn fig13_app(app: SpecApp, scale: Scale, seed: u64) -> (LifetimeResult, LifetimeResult) {
    let s = child_seed(seed, 1000 + app as u64);
    (
        campaign(app, SystemKind::Baseline, scale, 0.25, s),
        campaign(app, SystemKind::CompWF, scale, 0.25, s),
    )
}

/// Table IV row: months of lifetime for Baseline and Comp+WF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct MonthsRow {
    /// The workload.
    pub app: SpecApp,
    /// Baseline months.
    pub baseline: f64,
    /// Comp+WF months.
    pub compwf: f64,
}

/// Converts a Fig. 10 result into Table IV months.
pub(crate) fn table4_row(app: SpecApp, lifetimes: &AppLifetimes, scale: Scale) -> MonthsRow {
    let wpki = app.profile().wpki;
    MonthsRow {
        app,
        baseline: lifetimes
            .result(SystemKind::Baseline)
            .months(wpki, scale.endurance_scale()),
        compwf: lifetimes
            .result(SystemKind::CompWF)
            .months(wpki, scale.endurance_scale()),
    }
}

// --------------------------------------------------------- registry entries

fn scale_text(quick: bool) -> String {
    let s = Scale::from_quick(quick);
    format!(
        "lines={} endurance={:.0} sample_writes={}",
        s.lines, s.endurance_mean, s.sample_writes
    )
}

/// Fig. 10 registry entry.
pub(crate) struct Fig10Lifetime;

impl Experiment for Fig10Lifetime {
    fn name(&self) -> &'static str {
        "fig10_lifetime"
    }

    fn description(&self) -> &'static str {
        "normalized lifetime of Comp, Comp+W, Comp+WF vs the baseline"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 10"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 10: normalized lifetime (x baseline)",
            "app",
            vec![
                Column::ratio("Comp", 0.85, 1.18),
                Column::ratio("Comp+W", 0.85, 1.18),
                Column::ratio("Comp+WF", 0.85, 1.18),
            ],
        );
        let mut sums = [0.0f64; 3];
        for app in &opts.apps {
            let l = fig10_app(*app, scale, opts.seed);
            let row = [
                l.normalized(SystemKind::Comp),
                l.normalized(SystemKind::CompW),
                l.normalized(SystemKind::CompWF),
            ];
            t.push(app.name(), row.iter().map(|&v| Value::Num(v, 2)).collect());
            for (s, v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        let n = opts.apps.len() as f64;
        let avgs: Vec<f64> = sums.iter().map(|s| s / n).collect();
        t.push("Average", avgs.iter().map(|&v| Value::Num(v, 2)).collect());
        r.tables.push(t);
        r.series.push(Series::bars(
            "average normalized lifetime",
            &["Comp", "Comp+W", "Comp+WF"],
            avgs,
            5.0,
            2,
            Tolerance::Ratio(crate::report::RatioBand::new(0.85, 1.18)),
        ));
        r.note("paper averages: Comp 1.35x, Comp+W 3.2x, Comp+WF 4.3x");
        r
    }
}

/// Fig. 12 registry entry.
pub(crate) struct Fig12ToleratedErrors;

impl Experiment for Fig12ToleratedErrors {
    fn name(&self) -> &'static str {
        "fig12_tolerated_errors"
    }

    fn description(&self) -> &'static str {
        "mean faulty cells per failed 512-bit block under Comp+WF"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 12"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 12: mean faulty cells per failed block (Comp+WF)",
            "app",
            vec![
                Column::ratio("faults/event", 0.85, 1.18),
                Column::ratio("faults/final", 0.85, 1.18),
                Column::ratio("baseline", 0.85, 1.18),
            ],
        );
        let mut events = Vec::new();
        for app in &opts.apps {
            let l = fig10_app(*app, scale, opts.seed);
            let wf = l.result(SystemKind::CompWF);
            let base = l.result(SystemKind::Baseline);
            let e = wf.mean_faults_at_death.unwrap_or(0.0);
            t.push(
                app.name(),
                vec![
                    Value::Num(e, 1),
                    Value::Num(wf.mean_final_death_faults.unwrap_or(0.0), 1),
                    Value::Num(base.mean_faults_at_death.unwrap_or(0.0), 1),
                ],
            );
            events.push(e);
        }
        r.tables.push(t);
        r.note(format!(
            "average {:.1} faults per failed block (paper: ~3x the ECP-6 baseline of 7)",
            pcm_util::stats::mean(&events)
        ));
        r
    }
}

/// Fig. 13 registry entry.
pub(crate) struct Fig13LifetimeCov25;

impl Experiment for Fig13LifetimeCov25 {
    fn name(&self) -> &'static str {
        "fig13_lifetime_cov25"
    }

    fn description(&self) -> &'static str {
        "Comp+WF normalized lifetime under higher process variation (CoV 0.25)"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 13"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Fig 13: Comp+WF normalized lifetime at CoV 0.25",
            "app",
            vec![Column::ratio("Comp+WF", 0.85, 1.18)],
        );
        let mut sum = 0.0;
        for app in &opts.apps {
            let (base, wf) = fig13_app(*app, scale, opts.seed);
            let norm = wf.normalized_against(&base);
            t.push(app.name(), vec![Value::Num(norm, 2)]);
            sum += norm;
        }
        t.push("Average", vec![Value::Num(sum / opts.apps.len() as f64, 2)]);
        r.tables.push(t);
        r
    }
}

/// Table IV registry entry.
pub(crate) struct Table04Months;

impl Experiment for Table04Months {
    fn name(&self) -> &'static str {
        "table04_months"
    }

    fn description(&self) -> &'static str {
        "lifetime in months at the paper's endurance and machine scale"
    }

    fn anchor(&self) -> &'static str {
        "Table IV"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Table IV: lifetime in months",
            "app",
            vec![
                Column::ratio("Baseline", 0.85, 1.18),
                Column::ratio("Comp+WF", 0.85, 1.18),
                Column::ratio("ratio", 0.85, 1.18),
            ],
        );
        let mut base_sum = 0.0;
        let mut wf_sum = 0.0;
        for app in &opts.apps {
            let l = fig10_app(*app, scale, opts.seed);
            let row = table4_row(*app, &l, scale);
            t.push(
                app.name(),
                vec![
                    Value::Num(row.baseline, 1),
                    Value::Num(row.compwf, 1),
                    Value::Num(row.compwf / row.baseline, 2),
                ],
            );
            base_sum += row.baseline;
            wf_sum += row.compwf;
        }
        let n = opts.apps.len() as f64;
        t.push(
            "Avg",
            vec![
                Value::Num(base_sum / n, 1),
                Value::Num(wf_sum / n, 1),
                Value::Num(wf_sum / base_sum, 2),
            ],
        );
        r.tables.push(t);
        r.note("paper: baseline avg 22 months, Comp+WF avg 79 months");
        r
    }
}

/// Multiprogrammed-mix extension study registry entry.
pub(crate) struct MixStudy;

impl Experiment for MixStudy {
    fn name(&self) -> &'static str {
        "mix_study"
    }

    fn description(&self) -> &'static str {
        "Comp+WF lifetime for multiprogrammed milc/lbm blends"
    }

    fn anchor(&self) -> &'static str {
        "extension"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Mix study: Comp+WF lifetime (per-line writes) for milc/lbm blends",
            "milc:lbm",
            vec![
                Column::ratio("Baseline", 0.9, 1.1),
                Column::ratio("Comp+WF", 0.9, 1.1),
                Column::ratio("normalized", 0.85, 1.18),
            ],
        );
        for (a, b) in [
            (1.0f64, 0.0f64),
            (3.0, 1.0),
            (1.0, 1.0),
            (1.0, 3.0),
            (0.0, 1.0),
        ] {
            let mut entries = Vec::new();
            if a > 0.0 {
                entries.push((SpecApp::Milc.profile(), a));
            }
            if b > 0.0 {
                entries.push((SpecApp::Lbm.profile(), b));
            }
            let mix = WorkloadMix::new(entries);
            let seed = child_seed(opts.seed, (a * 10.0 + b) as u64);
            let base = run_mixed_campaign(
                SystemConfig::new(SystemKind::Baseline).with_endurance_mean(scale.endurance_mean),
                &mix,
                scale.lines,
                scale.sample_writes,
                seed,
            );
            let wf = run_mixed_campaign(
                SystemConfig::new(SystemKind::CompWF).with_endurance_mean(scale.endurance_mean),
                &mix,
                scale.lines,
                scale.sample_writes,
                seed,
            );
            t.push(
                format!("{a}:{b}"),
                vec![
                    Value::Int(base.lifetime_writes() as i64),
                    Value::Int(wf.lifetime_writes() as i64),
                    Value::Num(wf.normalized_against(&base), 2),
                ],
            );
        }
        r.tables.push(t);
        r.note("gains should degrade smoothly from pure-milc to pure-lbm");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_ordering_holds_for_compressible_app() {
        let scale = Scale {
            lines: 24,
            endurance_mean: 4e3,
            sample_writes: 8,
        };
        let l = fig10_app(SpecApp::Zeusmp, scale, 5);
        let comp = l.normalized(SystemKind::Comp);
        let w = l.normalized(SystemKind::CompW);
        let wf = l.normalized(SystemKind::CompWF);
        assert!(w > comp, "Comp+W ({w}) should beat Comp ({comp}) on zeusmp");
        assert!(
            wf >= w * 0.9,
            "Comp+WF ({wf}) should not trail Comp+W ({w})"
        );
        assert!(wf > 3.0, "zeusmp Comp+WF gain {wf} too small");
    }

    #[test]
    fn table4_months_scale_with_wpki() {
        let scale = Scale {
            lines: 16,
            endurance_mean: 3e3,
            sample_writes: 8,
        };
        let astar = fig10_app(SpecApp::Astar, scale, 6);
        let lbm = fig10_app(SpecApp::Lbm, scale, 6);
        let astar_row = table4_row(SpecApp::Astar, &astar, scale);
        let lbm_row = table4_row(SpecApp::Lbm, &lbm, scale);
        // astar writes ~15x less than lbm: far longer absolute lifetime.
        assert!(astar_row.baseline > lbm_row.baseline * 4.0);
        assert!(astar_row.compwf > astar_row.baseline);
    }
}
