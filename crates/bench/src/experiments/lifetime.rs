//! Lifetime experiments: Figs. 10, 12, 13 and Table IV.

use pcm_core::lifetime::{run_campaign, CampaignConfig, LifetimeResult, LineSimConfig};
use pcm_core::{SystemConfig, SystemKind};
use pcm_trace::SpecApp;
use pcm_util::child_seed;
use serde::{Deserialize, Serialize};

/// Campaign scale knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Lines per campaign.
    pub lines: usize,
    /// Mean cell endurance (reduced from the paper's 1e7; results scale).
    pub endurance_mean: f64,
    /// Sampled writes per segment.
    pub sample_writes: u32,
}

impl Scale {
    /// Default campaign scale: 96 lines at 2×10⁴ endurance.
    pub fn standard() -> Self {
        Scale {
            lines: 96,
            endurance_mean: 2e4,
            sample_writes: 16,
        }
    }

    /// Smoke-run scale.
    pub fn quick() -> Self {
        Scale {
            lines: 32,
            endurance_mean: 8e3,
            sample_writes: 8,
        }
    }

    /// Pick by the `--quick` flag.
    pub fn from_quick(quick: bool) -> Self {
        if quick {
            Scale::quick()
        } else {
            Scale::standard()
        }
    }

    /// Endurance scale factor back to the paper's 10⁷ (for Table IV).
    pub fn endurance_scale(&self) -> f64 {
        1e7 / self.endurance_mean
    }
}

/// One workload's lifetime results across the four systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppLifetimes {
    /// The workload.
    pub app: SpecApp,
    /// Results in [`SystemKind::ALL`] order.
    pub results: Vec<LifetimeResult>,
}

impl AppLifetimes {
    /// Normalized lifetime of system `kind` against the baseline (Fig. 10).
    pub fn normalized(&self, kind: SystemKind) -> f64 {
        let idx = SystemKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known kind");
        self.results[idx].normalized_against(&self.results[0])
    }

    /// The result for one system.
    pub fn result(&self, kind: SystemKind) -> &LifetimeResult {
        let idx = SystemKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("known kind");
        &self.results[idx]
    }
}

/// Runs one campaign.
pub fn campaign(
    app: SpecApp,
    kind: SystemKind,
    scale: Scale,
    cov: f64,
    seed: u64,
) -> LifetimeResult {
    let system = SystemConfig::new(kind)
        .with_endurance_mean(scale.endurance_mean)
        .with_endurance_cov(cov);
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = scale.sample_writes;
    let mut cfg = CampaignConfig::new(line, child_seed(seed, kind as u64));
    cfg.lines = scale.lines;
    run_campaign(&cfg)
}

/// Fig. 10: all four systems for one workload (CoV 0.15).
pub fn fig10_app(app: SpecApp, scale: Scale, seed: u64) -> AppLifetimes {
    let results = SystemKind::ALL
        .iter()
        .map(|&kind| campaign(app, kind, scale, 0.15, child_seed(seed, app as u64)))
        .collect();
    AppLifetimes { app, results }
}

/// Fig. 13: Baseline and Comp+WF at CoV 0.25.
pub fn fig13_app(app: SpecApp, scale: Scale, seed: u64) -> (LifetimeResult, LifetimeResult) {
    let s = child_seed(seed, 1000 + app as u64);
    (
        campaign(app, SystemKind::Baseline, scale, 0.25, s),
        campaign(app, SystemKind::CompWF, scale, 0.25, s),
    )
}

/// Table IV row: months of lifetime for Baseline and Comp+WF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonthsRow {
    /// The workload.
    pub app: SpecApp,
    /// Baseline months.
    pub baseline: f64,
    /// Comp+WF months.
    pub compwf: f64,
}

/// Converts a Fig. 10 result into Table IV months.
pub fn table4_row(app: SpecApp, lifetimes: &AppLifetimes, scale: Scale) -> MonthsRow {
    let wpki = app.profile().wpki;
    MonthsRow {
        app,
        baseline: lifetimes
            .result(SystemKind::Baseline)
            .months(wpki, scale.endurance_scale()),
        compwf: lifetimes
            .result(SystemKind::CompWF)
            .months(wpki, scale.endurance_scale()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_ordering_holds_for_compressible_app() {
        let scale = Scale {
            lines: 24,
            endurance_mean: 4e3,
            sample_writes: 8,
        };
        let l = fig10_app(SpecApp::Zeusmp, scale, 5);
        let comp = l.normalized(SystemKind::Comp);
        let w = l.normalized(SystemKind::CompW);
        let wf = l.normalized(SystemKind::CompWF);
        assert!(w > comp, "Comp+W ({w}) should beat Comp ({comp}) on zeusmp");
        assert!(
            wf >= w * 0.9,
            "Comp+WF ({wf}) should not trail Comp+W ({w})"
        );
        assert!(wf > 3.0, "zeusmp Comp+WF gain {wf} too small");
    }

    #[test]
    fn table4_months_scale_with_wpki() {
        let scale = Scale {
            lines: 16,
            endurance_mean: 3e3,
            sample_writes: 8,
        };
        let astar = fig10_app(SpecApp::Astar, scale, 6);
        let lbm = fig10_app(SpecApp::Lbm, scale, 6);
        let astar_row = table4_row(SpecApp::Astar, &astar, scale);
        let lbm_row = table4_row(SpecApp::Lbm, &lbm, scale);
        // astar writes ~15x less than lbm: far longer absolute lifetime.
        assert!(astar_row.baseline > lbm_row.baseline * 4.0);
        assert!(astar_row.compwf > astar_row.baseline);
    }
}
