//! Serve-path study: online daemon throughput, tail latency, and
//! shard-count invariance as a tracked report.
//!
//! One row per shard count, all driven by the *same* seeded open-loop
//! script: every column except `shards` must be identical down the table,
//! because the shard pool is pure execution width (DESIGN.md "Serve
//! architecture"). Cells carry [`Column::exact`] tolerances, so
//! `pcm-lab diff` re-derives the replay-determinism guarantee on every
//! gate run — a drift in any shard row is a broken ownership or seeding
//! invariant, not noise.

use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Table, Value};
use pcm_serve::{Engine, ServeConfig, TrafficGen};

/// Shard counts exercised by the study (mirrors `tests/serve_replay.rs`).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn serve_config(seed: u64) -> ServeConfig {
    ServeConfig::new(seed)
}

fn horizon(quick: bool) -> u64 {
    if quick {
        150_000
    } else {
        1_500_000
    }
}

/// `serve_throughput` registry entry.
pub struct ServeThroughput;

impl Experiment for ServeThroughput {
    fn name(&self) -> &'static str {
        "serve_throughput"
    }

    fn description(&self) -> &'static str {
        "daemon replay at shard counts 1/2/4/7: throughput, p50/p99/p999 write latency, wear digest"
    }

    fn anchor(&self) -> &'static str {
        "serve"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!(
            "duration={} cycles, 8 banks x 64 lines, 60 tenants",
            horizon(quick)
        )
    }

    fn run(&self, opts: &Options) -> Report {
        let duration = horizon(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Serve replay: identical results at every shard count",
            "shards",
            vec![
                Column::exact("requests"),
                Column::exact("p50(cyc)"),
                Column::exact("p99(cyc)"),
                Column::exact("p999(cyc)"),
                Column::exact("compressed%"),
                Column::exact("faults"),
                Column::exact("dead_lines"),
                Column::exact("wear_digest"),
            ],
        );
        let mut digests: Vec<Vec<u64>> = Vec::new();
        for shards in SHARD_COUNTS {
            let mut cfg = serve_config(opts.seed);
            cfg.shards = shards;
            let script = TrafficGen::new(&cfg).script_until(duration);
            let mut engine = Engine::new(cfg);
            engine.run_script(&script);
            let snap = engine.snapshot();
            // Fold the per-bank digests into one table cell; the replay
            // suite compares the full vectors, the report tracks the fold.
            let fold = engine
                .wear_digests()
                .iter()
                .fold(0xcbf29ce484222325u64, |acc, d| {
                    (acc ^ d).wrapping_mul(0x100000001B3)
                });
            digests.push(engine.wear_digests());
            t.push(
                format!("{shards}"),
                vec![
                    Value::Int(snap.writes as i64),
                    Value::Int(snap.p50 as i64),
                    Value::Int(snap.p99 as i64),
                    Value::Int(snap.p999 as i64),
                    Value::Num(100.0 * snap.compressed_fraction, 3),
                    Value::Int(snap.faults as i64),
                    Value::Int(snap.dead_lines as i64),
                    Value::Text(format!("{fold:016x}")),
                ],
            );
        }
        r.tables.push(t);
        let invariant = digests.windows(2).all(|w| w[0] == w[1]);
        r.note(format!(
            "shard-count invariance over {:?}: {} (per-bank wear digests {})",
            SHARD_COUNTS,
            if invariant { "HOLDS" } else { "VIOLATED" },
            if invariant { "identical" } else { "DIFFER" },
        ));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Options;

    #[test]
    fn rows_are_identical_across_shard_counts() {
        let mut opts = Options::default();
        opts.quick = true;
        let report = ServeThroughput.run(&opts);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), SHARD_COUNTS.len());
        for row in &rows[1..] {
            assert_eq!(row.values, rows[0].values, "shards={}", row.label);
        }
        assert!(report.notes.iter().any(|n| n.contains("HOLDS")));
    }
}
