//! Ablation studies of the design choices DESIGN.md calls out.

use super::lifetime::Scale;
use pcm_core::lifetime::{run_campaign, CampaignConfig, LifetimeResult, LineSimConfig};
use pcm_core::{CompressionHeuristic, EccChoice, SystemConfig, SystemKind};
use pcm_device::dw::{diff_write, FlipNWrite};
use pcm_trace::{BlockStream, SpecApp};
use pcm_util::child_seed;
use serde::{Deserialize, Serialize};

fn campaign_with(system: SystemConfig, app: SpecApp, scale: Scale, seed: u64) -> LifetimeResult {
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = scale.sample_writes;
    let mut cfg = CampaignConfig::new(line, seed);
    cfg.lines = scale.lines;
    run_campaign(&cfg)
}

/// Heuristic ablation: Comp+WF lifetime and flips with the Fig. 8
/// heuristic off (default) vs. on at several `Threshold2` settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicAblation {
    /// The workload.
    pub app: SpecApp,
    /// Naive (heuristic off) result.
    pub naive: LifetimeResult,
    /// `(threshold2, result)` with the heuristic on.
    pub with_heuristic: Vec<(usize, LifetimeResult)>,
}

/// Runs the heuristic ablation for one workload.
pub fn heuristic_ablation(app: SpecApp, scale: Scale, seed: u64) -> HeuristicAblation {
    let base = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(scale.endurance_mean);
    let naive = campaign_with(base, app, scale, child_seed(seed, 0));
    let with_heuristic = [8usize, 16, 24]
        .into_iter()
        .map(|t2| {
            let mut cfg = base.with_heuristic();
            cfg.heuristic = CompressionHeuristic {
                threshold1: 16,
                threshold2: t2,
            };
            (
                t2,
                campaign_with(cfg, app, scale, child_seed(seed, t2 as u64)),
            )
        })
        .collect();
    HeuristicAblation {
        app,
        naive,
        with_heuristic,
    }
}

/// ECC ablation: Comp+WF lifetime under ECP-6, SAFER-32, and Aegis 17×31
/// (paper §III-A.4 expects the partition schemes to stretch further).
pub fn ecc_ablation(app: SpecApp, scale: Scale, seed: u64) -> Vec<(EccChoice, LifetimeResult)> {
    [EccChoice::Ecp6, EccChoice::Safer32, EccChoice::Aegis17x31]
        .into_iter()
        .enumerate()
        .map(|(i, ecc)| {
            let cfg = SystemConfig::new(SystemKind::CompWF)
                .with_endurance_mean(scale.endurance_mean)
                .with_ecc(ecc);
            (
                ecc,
                campaign_with(cfg, app, scale, child_seed(seed, i as u64)),
            )
        })
        .collect()
}

/// Rotation-period ablation for Comp+W: how fast must the window rotate?
pub fn rotation_ablation(app: SpecApp, scale: Scale, seed: u64) -> Vec<(u64, LifetimeResult)> {
    [256u64, 1024, 4096, 16_384]
        .into_iter()
        .map(|period| {
            let mut cfg =
                SystemConfig::new(SystemKind::CompW).with_endurance_mean(scale.endurance_mean);
            cfg.rotation_period = period;
            (
                period,
                campaign_with(cfg, app, scale, child_seed(seed, period)),
            )
        })
        .collect()
}

/// Flip-N-Write vs plain differential writes: mean flips per write for one
/// workload's block stream (the chip-level alternative the paper treats as
/// orthogonal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FnwComparison {
    /// The workload.
    pub app: SpecApp,
    /// Mean flips per write under plain DW.
    pub dw_flips: f64,
    /// Mean flips per write under Flip-N-Write (64-bit chunks, flag cells
    /// included).
    pub fnw_flips: f64,
}

/// Compares DW against Flip-N-Write over a block stream.
pub fn flip_n_write_ablation(app: SpecApp, writes: usize, seed: u64) -> FnwComparison {
    let mut stream = BlockStream::new(app.profile(), seed);
    let mut fnw = FlipNWrite::new(64);
    let mut plain = stream.current();
    let mut stored = plain;
    let mut dw_total = 0u64;
    let mut fnw_total = 0u64;
    for _ in 0..writes {
        let data = stream.next_data();
        dw_total += diff_write(&plain, &data).flips() as u64;
        let (new_stored, flips) = fnw.write(&stored, &data);
        fnw_total += flips as u64;
        plain = data;
        stored = new_stored;
    }
    FnwComparison {
        app,
        dw_flips: dw_total as f64 / writes as f64,
        fnw_flips: fnw_total as f64 / writes as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            lines: 12,
            endurance_mean: 3e3,
            sample_writes: 8,
        }
    }

    #[test]
    fn ecc_partition_schemes_extend_compwf() {
        let rows = ecc_ablation(SpecApp::Milc, tiny(), 4);
        let ecp = rows[0].1.lifetime_writes() as f64;
        let safer = rows[1].1.lifetime_writes() as f64;
        let aegis = rows[2].1.lifetime_writes() as f64;
        assert!(safer > ecp * 0.9, "SAFER {safer} vs ECP {ecp}");
        assert!(aegis > ecp * 0.9, "Aegis {aegis} vs ECP {ecp}");
    }

    #[test]
    fn fnw_never_flips_more_than_dw_plus_flags() {
        let c = flip_n_write_ablation(SpecApp::Gcc, 400, 9);
        assert!(
            c.fnw_flips <= c.dw_flips + 8.0,
            "FNW {} vs DW {}",
            c.fnw_flips,
            c.dw_flips
        );
    }

    #[test]
    fn heuristic_ablation_runs() {
        let h = heuristic_ablation(SpecApp::Bzip2, tiny(), 2);
        assert_eq!(h.with_heuristic.len(), 3);
        assert!(h.naive.lifetime_writes() > 0);
    }
}
