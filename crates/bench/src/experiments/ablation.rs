//! Ablation studies of the design choices DESIGN.md calls out.

use super::lifetime::Scale;
use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Table, Value};
use pcm_core::lifetime::{run_campaign, CampaignConfig, LifetimeResult, LineSimConfig};
use pcm_core::{CompressionHeuristic, EccChoice, SystemConfig, SystemKind};
use pcm_device::dw::{diff_write, FlipNWrite};
use pcm_device::CellTech;
use pcm_trace::{BlockStream, SpecApp, TraceGenerator};
use pcm_util::child_seed;
use pcm_util::stats::{mean, std_dev};
use pcm_wear::{SecurityRefresh, StartGap};
use serde::{Deserialize, Serialize};

fn campaign_with(system: SystemConfig, app: SpecApp, scale: Scale, seed: u64) -> LifetimeResult {
    let mut line = LineSimConfig::new(system, app.profile());
    line.sample_writes = scale.sample_writes;
    let mut cfg = CampaignConfig::new(line, seed);
    cfg.lines = scale.lines;
    run_campaign(&cfg)
}

/// Heuristic ablation: Comp+WF lifetime and flips with the Fig. 8
/// heuristic off (default) vs. on at several `Threshold2` settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct HeuristicAblation {
    /// The workload.
    pub app: SpecApp,
    /// Naive (heuristic off) result.
    pub naive: LifetimeResult,
    /// `(threshold2, result)` with the heuristic on.
    pub with_heuristic: Vec<(usize, LifetimeResult)>,
}

/// Runs the heuristic ablation for one workload.
pub(crate) fn heuristic_ablation(app: SpecApp, scale: Scale, seed: u64) -> HeuristicAblation {
    let base = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(scale.endurance_mean);
    let naive = campaign_with(base, app, scale, child_seed(seed, 0));
    let with_heuristic = [8usize, 16, 24]
        .into_iter()
        .map(|t2| {
            let mut cfg = base.with_heuristic();
            cfg.heuristic = CompressionHeuristic {
                threshold1: 16,
                threshold2: t2,
            };
            (
                t2,
                campaign_with(cfg, app, scale, child_seed(seed, t2 as u64)),
            )
        })
        .collect();
    HeuristicAblation {
        app,
        naive,
        with_heuristic,
    }
}

/// ECC ablation: Comp+WF lifetime under ECP-6, SAFER-32, and Aegis 17×31
/// (paper §III-A.4 expects the partition schemes to stretch further).
pub fn ecc_ablation(app: SpecApp, scale: Scale, seed: u64) -> Vec<(EccChoice, LifetimeResult)> {
    [EccChoice::Ecp6, EccChoice::Safer32, EccChoice::Aegis17x31]
        .into_iter()
        .enumerate()
        .map(|(i, ecc)| {
            let cfg = SystemConfig::new(SystemKind::CompWF)
                .with_endurance_mean(scale.endurance_mean)
                .with_ecc(ecc);
            (
                ecc,
                campaign_with(cfg, app, scale, child_seed(seed, i as u64)),
            )
        })
        .collect()
}

/// Rotation-period ablation for Comp+W: how fast must the window rotate?
pub(crate) fn rotation_ablation(
    app: SpecApp,
    scale: Scale,
    seed: u64,
) -> Vec<(u64, LifetimeResult)> {
    [256u64, 1024, 4096, 16_384]
        .into_iter()
        .map(|period| {
            let mut cfg =
                SystemConfig::new(SystemKind::CompW).with_endurance_mean(scale.endurance_mean);
            cfg.rotation_period = period;
            (
                period,
                campaign_with(cfg, app, scale, child_seed(seed, period)),
            )
        })
        .collect()
}

/// Flip-N-Write vs plain differential writes: mean flips per write for one
/// workload's block stream (the chip-level alternative the paper treats as
/// orthogonal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct FnwComparison {
    /// The workload.
    pub app: SpecApp,
    /// Mean flips per write under plain DW.
    pub dw_flips: f64,
    /// Mean flips per write under Flip-N-Write (64-bit chunks, flag cells
    /// included).
    pub fnw_flips: f64,
}

/// Compares DW against Flip-N-Write over a block stream.
pub(crate) fn flip_n_write_ablation(app: SpecApp, writes: usize, seed: u64) -> FnwComparison {
    let mut stream = BlockStream::new(app.profile(), seed);
    let mut fnw = FlipNWrite::new(64);
    let mut plain = stream.current();
    let mut stored = plain;
    let mut dw_total = 0u64;
    let mut fnw_total = 0u64;
    for _ in 0..writes {
        let data = stream.next_data();
        dw_total += diff_write(&plain, &data).flips() as u64;
        let (new_stored, flips) = fnw.write(&stored, &data);
        fnw_total += flips as u64;
        plain = data;
        stored = new_stored;
    }
    FnwComparison {
        app,
        dw_flips: dw_total as f64 / writes as f64,
        fnw_flips: fnw_total as f64 / writes as f64,
    }
}

// --------------------------------------------------------- registry entries

fn scale_text(quick: bool) -> String {
    let s = Scale::from_quick(quick);
    format!(
        "lines={} endurance={:.0} sample_writes={}",
        s.lines, s.endurance_mean, s.sample_writes
    )
}

/// Fig. 8 heuristic ablation registry entry.
pub(crate) struct AblationHeuristic;

impl Experiment for AblationHeuristic {
    fn name(&self) -> &'static str {
        "ablation_heuristic"
    }

    fn description(&self) -> &'static str {
        "the Fig. 8 compression heuristic on/off and its Threshold2 sweep (Comp+WF)"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Ablation: Fig. 8 heuristic under Comp+WF (lifetime in per-line writes)",
            "app",
            vec![
                Column::ratio("naive", 0.9, 1.1),
                Column::ratio("T2=8", 0.9, 1.1),
                Column::ratio("T2=16", 0.9, 1.1),
                Column::ratio("T2=24", 0.9, 1.1),
                Column::ratio("naive_flips", 0.9, 1.1),
                Column::ratio("T2=16_flips", 0.9, 1.1),
            ],
        );
        for app in &opts.apps {
            let h = heuristic_ablation(*app, scale, opts.seed);
            let t2 = |i: usize| h.with_heuristic[i].1.lifetime_writes() as i64;
            t.push(
                app.name(),
                vec![
                    Value::Int(h.naive.lifetime_writes() as i64),
                    Value::Int(t2(0)),
                    Value::Int(t2(1)),
                    Value::Int(t2(2)),
                    Value::Num(h.naive.mean_flips_per_write, 1),
                    Value::Num(h.with_heuristic[1].1.mean_flips_per_write, 1),
                ],
            );
        }
        r.tables.push(t);
        r.note(
            "finding: with byte-exact DW, alternating layouts costs more flips than the heuristic saves",
        );
        r
    }
}

/// Hard-error-scheme ablation registry entry.
pub(crate) struct AblationEcc;

impl Experiment for AblationEcc {
    fn name(&self) -> &'static str {
        "ablation_ecc"
    }

    fn description(&self) -> &'static str {
        "Comp+WF under ECP-6, SAFER-32, and Aegis 17x31"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Ablation: hard-error scheme under Comp+WF (lifetime in per-line writes)",
            "app",
            vec![
                Column::ratio("ECP-6", 0.9, 1.1),
                Column::ratio("SAFER-32", 0.9, 1.1),
                Column::ratio("Aegis", 0.9, 1.1),
                Column::ratio("ECP_faults", 0.85, 1.18),
                Column::ratio("SAFER_faults", 0.85, 1.18),
                Column::ratio("Aegis_faults", 0.85, 1.18),
            ],
        );
        for app in &opts.apps {
            let rows = ecc_ablation(*app, scale, opts.seed);
            t.push(
                app.name(),
                vec![
                    Value::Int(rows[0].1.lifetime_writes() as i64),
                    Value::Int(rows[1].1.lifetime_writes() as i64),
                    Value::Int(rows[2].1.lifetime_writes() as i64),
                    Value::Num(rows[0].1.mean_faults_at_death.unwrap_or(0.0), 1),
                    Value::Num(rows[1].1.mean_faults_at_death.unwrap_or(0.0), 1),
                    Value::Num(rows[2].1.mean_faults_at_death.unwrap_or(0.0), 1),
                ],
            );
        }
        r.tables.push(t);
        r
    }
}

fn secded_lifetime(
    kind: SystemKind,
    ecc: EccChoice,
    app: SpecApp,
    scale: Scale,
    seed: u64,
) -> (u64, f64) {
    let system = SystemConfig::new(kind)
        .with_endurance_mean(scale.endurance_mean)
        .with_ecc(ecc);
    let r = campaign_with(system, app, scale, seed);
    (r.lifetime_writes(), r.mean_faults_at_death.unwrap_or(0.0))
}

/// SECDED-vs-ECP ablation registry entry (§II-C, §V.A.5).
pub(crate) struct AblationSecded;

impl Experiment for AblationSecded {
    fn name(&self) -> &'static str {
        "ablation_secded"
    }

    fn description(&self) -> &'static str {
        "SECDED vs ECP-6 baselines, and the ECP strength needed to match Comp+WF"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Part 1: SECDED vs ECP-6 baseline (lifetime in per-line writes)",
            "app",
            vec![
                Column::ratio("SECDED", 0.9, 1.1),
                Column::ratio("ECP-6", 0.9, 1.1),
                Column::ratio("ECP6/SECDED", 0.85, 1.18),
            ],
        );
        for app in &opts.apps {
            let seed = child_seed(opts.seed, *app as u64);
            let (secded, _) =
                secded_lifetime(SystemKind::Baseline, EccChoice::Secded, *app, scale, seed);
            let (ecp, _) =
                secded_lifetime(SystemKind::Baseline, EccChoice::Ecp6, *app, scale, seed);
            t.push(
                app.name(),
                vec![
                    Value::Int(secded as i64),
                    Value::Int(ecp as i64),
                    Value::Num(ecp as f64 / secded as f64, 2),
                ],
            );
        }
        r.tables.push(t);

        let mut t = Table::new(
            "Part 2: ECP strength needed to match Comp+WF (milc)",
            "config",
            vec![
                Column::exact("metadata_bits"),
                Column::ratio("lifetime", 0.9, 1.1),
                Column::ratio("faults@death", 0.85, 1.18),
            ],
        );
        let app = SpecApp::Milc;
        for n in [2u8, 4, 6, 8, 12, 16, 20] {
            let (l, f) = secded_lifetime(
                SystemKind::Baseline,
                EccChoice::EcpN(n),
                app,
                scale,
                child_seed(opts.seed, 50 + n as u64),
            );
            t.push(
                format!("Baseline ECP-{n}"),
                vec![
                    Value::Int((n as u32 * 10 + 1) as i64),
                    Value::Int(l as i64),
                    Value::Num(f, 1),
                ],
            );
        }
        let (l, f) = secded_lifetime(
            SystemKind::CompWF,
            EccChoice::Ecp6,
            app,
            scale,
            child_seed(opts.seed, 99),
        );
        t.push(
            "Comp+WF ECP-6",
            vec![Value::Int(61), Value::Int(l as i64), Value::Num(f, 1)],
        );
        r.tables.push(t);
        r.note("paper: sustaining Comp+WF's error depth with plain ECP needs ~40% more storage");
        r
    }
}

/// Rotation-period ablation registry entry.
pub(crate) struct AblationRotation;

impl Experiment for AblationRotation {
    fn name(&self) -> &'static str {
        "ablation_rotation"
    }

    fn description(&self) -> &'static str {
        "intra-line rotation period sweep under Comp+W"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Ablation: rotation period (writes per line between 1-byte rotations), Comp+W",
            "app",
            vec![
                Column::ratio("256", 0.9, 1.1),
                Column::ratio("1024", 0.9, 1.1),
                Column::ratio("4096", 0.9, 1.1),
                Column::ratio("16384", 0.9, 1.1),
            ],
        );
        for app in &opts.apps {
            let rows = rotation_ablation(*app, scale, opts.seed);
            t.push(
                app.name(),
                rows.iter()
                    .map(|(_, res)| Value::Int(res.lifetime_writes() as i64))
                    .collect(),
            );
        }
        r.tables.push(t);
        r
    }
}

/// Window-placement-granularity ablation registry entry.
pub(crate) struct AblationWindowStep;

impl Experiment for AblationWindowStep {
    fn name(&self) -> &'static str {
        "ablation_window_step"
    }

    fn description(&self) -> &'static str {
        "lifetime cost of coarser window-placement grids (6-bit pointer design point)"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Ablation: Comp+WF lifetime (per-line writes) vs window placement step",
            "app",
            vec![
                Column::ratio("step1(6b ptr)", 0.9, 1.1),
                Column::ratio("step2(5b)", 0.9, 1.1),
                Column::ratio("step4(4b)", 0.9, 1.1),
                Column::ratio("step8(3b)", 0.9, 1.1),
            ],
        );
        for app in &opts.apps {
            let values = [1usize, 2, 4, 8]
                .into_iter()
                .map(|step| {
                    let system = SystemConfig::new(SystemKind::CompWF)
                        .with_endurance_mean(scale.endurance_mean)
                        .with_window_step(step);
                    let res =
                        campaign_with(system, *app, scale, child_seed(opts.seed, *app as u64));
                    Value::Int(res.lifetime_writes() as i64)
                })
                .collect();
            t.push(app.name(), values);
        }
        r.tables.push(t);
        r
    }
}

/// Flip-N-Write ablation registry entry.
pub(crate) struct AblationFlipNWrite;

impl Experiment for AblationFlipNWrite {
    fn name(&self) -> &'static str {
        "ablation_flip_n_write"
    }

    fn description(&self) -> &'static str {
        "mean flips per 64B write: plain DW vs Flip-N-Write (64-bit chunks)"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 500 } else { 4_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 500 } else { 4_000 };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Ablation: mean flips per 64B write, DW vs Flip-N-Write (64-bit chunks)",
            "app",
            vec![
                Column::ratio("DW", 0.98, 1.02),
                Column::ratio("FNW", 0.98, 1.02),
                Column::abs("saving%", 2.0),
            ],
        );
        for app in &opts.apps {
            let c = flip_n_write_ablation(*app, writes, opts.seed);
            t.push(
                app.name(),
                vec![
                    Value::Num(c.dw_flips, 1),
                    Value::Num(c.fnw_flips, 1),
                    Value::Num(100.0 * (1.0 - c.fnw_flips / c.dw_flips.max(1e-9)), 1),
                ],
            );
        }
        r.tables.push(t);
        r
    }
}

fn cov_spread(counts: &[f64]) -> f64 {
    std_dev(counts) / mean(counts).max(1e-9)
}

/// Inter-line wear-leveling ablation registry entry.
pub(crate) struct AblationInterlineWl;

impl Experiment for AblationInterlineWl {
    fn name(&self) -> &'static str {
        "ablation_interline_wl"
    }

    fn description(&self) -> &'static str {
        "per-line write-count CoV under a Zipf stream: none vs Start-Gap vs Security-Refresh"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!(
            "lines=64 writes={}",
            if quick { 200_000 } else { 1_000_000 }
        )
    }

    fn run(&self, opts: &Options) -> Report {
        let lines = 64u64;
        let writes = if opts.quick { 200_000 } else { 1_000_000 };
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            &format!(
                "Per-physical-line write-count CoV under a Zipf stream ({writes} writes, {lines} lines)"
            ),
            "app",
            vec![
                Column::abs("none", 0.05),
                Column::abs("start_gap", 0.05),
                Column::abs("security_refresh", 0.05),
            ],
        );
        for app in &opts.apps {
            let seed = child_seed(opts.seed, *app as u64);
            let mut generator = TraceGenerator::from_profile(app.profile(), lines, seed);
            let stream: Vec<u64> = (0..writes).map(|_| generator.next_write().line).collect();

            let mut none = vec![0f64; lines as usize];
            for &l in &stream {
                none[l as usize] += 1.0;
            }

            let mut sg = StartGap::new(lines, 100);
            let mut sg_counts = vec![0f64; lines as usize + 1];
            for &l in &stream {
                sg_counts[sg.map(l) as usize] += 1.0;
                if let Some(mv) = sg.on_write() {
                    sg_counts[mv.to as usize] += 1.0; // the gap copy is a write
                }
            }

            let mut sr = SecurityRefresh::new(lines, 100, seed);
            let mut sr_counts = vec![0f64; lines as usize];
            for &l in &stream {
                sr_counts[sr.map(l) as usize] += 1.0;
                if let Some(swap) = sr.on_write() {
                    if swap.a != swap.b {
                        sr_counts[swap.a as usize] += 1.0;
                        sr_counts[swap.b as usize] += 1.0;
                    }
                }
            }

            t.push(
                app.name(),
                vec![
                    Value::Num(cov_spread(&none), 2),
                    Value::Num(cov_spread(&sg_counts), 2),
                    Value::Num(cov_spread(&sr_counts), 2),
                ],
            );
        }
        r.tables.push(t);
        r.note("both levelers should push CoV far below the unleveled stream");
        r
    }
}

fn mlc_normalized(app: SpecApp, tech: CellTech, scale: Scale, seed: u64) -> (f64, f64) {
    let run = |kind| {
        let system = SystemConfig::new(kind)
            .with_tech(tech)
            .with_endurance_mean(scale.endurance_mean);
        campaign_with(system, app, scale, seed)
    };
    let base = run(SystemKind::Baseline);
    let wf = run(SystemKind::CompWF);
    (
        wf.normalized_against(&base),
        wf.mean_faults_at_death.unwrap_or(0.0),
    )
}

/// SLC-vs-MLC ablation registry entry (paper footnote 1).
pub(crate) struct AblationMlc;

impl Experiment for AblationMlc {
    fn name(&self) -> &'static str {
        "ablation_mlc"
    }

    fn description(&self) -> &'static str {
        "Comp+WF normalized lifetime on SLC vs MLC-2 cells (paired-bit faults)"
    }

    fn anchor(&self) -> &'static str {
        "ablation"
    }

    fn scale_summary(&self, quick: bool) -> String {
        scale_text(quick)
    }

    fn run(&self, opts: &Options) -> Report {
        let scale = Scale::from_quick(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Ablation: Comp+WF normalized lifetime, SLC vs MLC-2 cells",
            "app",
            vec![
                Column::ratio("SLC", 0.85, 1.18),
                Column::ratio("MLC-2", 0.85, 1.18),
                Column::ratio("SLC_faults", 0.85, 1.18),
                Column::ratio("MLC_faults", 0.85, 1.18),
            ],
        );
        for app in &opts.apps {
            let seed = child_seed(opts.seed, *app as u64);
            let (slc, slc_f) = mlc_normalized(*app, CellTech::Slc, scale, seed);
            let (mlc, mlc_f) = mlc_normalized(*app, CellTech::Mlc2, scale, seed);
            t.push(
                app.name(),
                vec![
                    Value::Num(slc, 2),
                    Value::Num(mlc, 2),
                    Value::Num(slc_f, 1),
                    Value::Num(mlc_f, 1),
                ],
            );
        }
        r.tables.push(t);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            lines: 12,
            endurance_mean: 3e3,
            sample_writes: 8,
        }
    }

    #[test]
    fn ecc_partition_schemes_extend_compwf() {
        let rows = ecc_ablation(SpecApp::Milc, tiny(), 4);
        let ecp = rows[0].1.lifetime_writes() as f64;
        let safer = rows[1].1.lifetime_writes() as f64;
        let aegis = rows[2].1.lifetime_writes() as f64;
        assert!(safer > ecp * 0.9, "SAFER {safer} vs ECP {ecp}");
        assert!(aegis > ecp * 0.9, "Aegis {aegis} vs ECP {ecp}");
    }

    #[test]
    fn fnw_never_flips_more_than_dw_plus_flags() {
        let c = flip_n_write_ablation(SpecApp::Gcc, 400, 9);
        assert!(
            c.fnw_flips <= c.dw_flips + 8.0,
            "FNW {} vs DW {}",
            c.fnw_flips,
            c.dw_flips
        );
    }

    #[test]
    fn heuristic_ablation_runs() {
        let h = heuristic_ablation(SpecApp::Bzip2, tiny(), 2);
        assert_eq!(h.with_heuristic.len(), 3);
        assert!(h.naive.lifetime_writes() > 0);
    }
}
