//! Rival-scheme study: the pluggable ECC × wear grid, end to end.
//!
//! Every cell drives a whole [`PcmMemory`] — the unmodified controller
//! loop — with one workload's trace until the paper's 50%-capacity
//! failure criterion, under a different (hard-error scheme, inter-line
//! wear scheme) stack from the registry. The grid is the acceptance test
//! for the plugin architecture (DESIGN.md §14): WoLFRaM and restricted
//! coset coding run through exactly the code paths Start-Gap and ECP-6
//! use, selected by `SystemConfig` alone.

use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Table, Value};
use pcm_core::{EccChoice, PcmMemory, SystemConfig, SystemKind, WearChoice};
use pcm_trace::{SpecApp, TraceGenerator};
use pcm_util::child_seed;
use serde::{Deserialize, Serialize};

/// The rival stacks swept per system row, baseline first.
pub const STACKS: [(EccChoice, WearChoice); 5] = [
    (EccChoice::Ecp6, WearChoice::StartGap),
    (EccChoice::Ecp6, WearChoice::SecurityRefresh),
    (EccChoice::Ecp6, WearChoice::Wolfram),
    (EccChoice::Coset, WearChoice::StartGap),
    (EccChoice::Coset, WearChoice::Wolfram),
];

/// One cell of the grid: a full memory run to the failure criterion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub(crate) struct RivalCell {
    /// Demand writes served before 50% of capacity wore out (or the cap).
    pub lifetime_writes: u64,
    /// Inter-line wear-leveling events (gap moves, pair swaps, hot swaps).
    pub wear_events: u64,
    /// Lines revived by dead-block resurrection.
    pub resurrections: u64,
}

/// Runs one stack on one system kind to the failure criterion.
pub(crate) fn rival_cell(
    kind: SystemKind,
    ecc: EccChoice,
    wear: WearChoice,
    lines: u64,
    endurance: f64,
    cap: u64,
    seed: u64,
) -> RivalCell {
    let sys = SystemConfig::new(kind)
        .with_endurance_mean(endurance)
        .with_ecc(ecc)
        .with_wear(wear);
    let mut memory = PcmMemory::new(sys, lines, seed);
    let mut generator = TraceGenerator::from_profile(SpecApp::Milc.profile(), lines, seed ^ 1);
    let mut served = 0u64;
    while served < cap && !memory.is_failed() {
        let w = generator.next_write();
        // Dead-line write failures are part of life near the criterion;
        // the stream keeps going exactly like the stress subcommand.
        let _ = memory.write(w.line, w.data);
        served += 1;
    }
    let s = memory.stats();
    RivalCell {
        lifetime_writes: served,
        wear_events: s.gap_moves,
        resurrections: s.resurrections,
    }
}

// --------------------------------------------------------- registry entries

/// `rival_lifetime` registry entry.
pub struct RivalLifetime;

impl Experiment for RivalLifetime {
    fn name(&self) -> &'static str {
        "rival_lifetime"
    }

    fn description(&self) -> &'static str {
        "SystemKind x rival-stack lifetime grid: ECP-6/Coset crossed with Start-Gap/SecRef/WoLFRaM"
    }

    fn anchor(&self) -> &'static str {
        "§14"
    }

    fn scale_summary(&self, quick: bool) -> String {
        let (lines, endurance, cap) = scale(quick);
        format!("lines={lines} endurance={endurance:.0} write_cap={cap}")
    }

    fn run(&self, opts: &Options) -> Report {
        let (lines, endurance, cap) = scale(opts.quick);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            &format!(
                "Rival stacks: demand writes to 50% capacity (milc, {lines} lines, endurance {endurance:.0})"
            ),
            "system",
            vec![
                Column::ratio("ECP6/StartGap", 0.9, 1.1),
                Column::ratio("ECP6/SecRef", 0.85, 1.18),
                Column::ratio("ECP6/WoLFRaM", 0.85, 1.18),
                Column::ratio("Coset/StartGap", 0.85, 1.18),
                Column::ratio("Coset/WoLFRaM", 0.85, 1.18),
            ],
        );
        let mut events = Table::new(
            "Wear-leveling events and resurrections per stack (Comp+WF row)",
            "stack",
            vec![
                Column::ratio("wear_events", 0.85, 1.18),
                Column::ratio("revived", 0.8, 1.25),
            ],
        );
        for (row, kind) in SystemKind::ALL.into_iter().enumerate() {
            let cells: Vec<RivalCell> = STACKS
                .iter()
                .enumerate()
                .map(|(col, &(ecc, wear))| {
                    rival_cell(
                        kind,
                        ecc,
                        wear,
                        lines,
                        endurance,
                        cap,
                        child_seed(opts.seed, (row * 8 + col) as u64),
                    )
                })
                .collect();
            let base = cells[0].lifetime_writes.max(1) as f64;
            let mut values = vec![Value::Int(cells[0].lifetime_writes as i64)];
            values.extend(
                cells[1..]
                    .iter()
                    .map(|c| Value::Num(c.lifetime_writes as f64 / base, 3)),
            );
            t.push(kind.to_string(), values);
            if kind == SystemKind::CompWF {
                for (&(ecc, wear), cell) in STACKS.iter().zip(&cells) {
                    events.push(
                        format!("{ecc}/{wear}"),
                        vec![
                            Value::Int(cell.wear_events as i64),
                            Value::Int(cell.resurrections as i64),
                        ],
                    );
                }
            }
        }
        r.tables.push(t);
        r.tables.push(events);
        r.note("rival columns are normalized against the ECP6/StartGap baseline of their row");
        r.note("every stack runs the unmodified controller loop; selection is SystemConfig-only");
        r
    }
}

fn scale(quick: bool) -> (u64, f64, u64) {
    if quick {
        (32, 100.0, 60_000)
    } else {
        (64, 300.0, 400_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stack_reaches_the_failure_criterion() {
        for &(ecc, wear) in &STACKS {
            let cell = rival_cell(SystemKind::CompWF, ecc, wear, 16, 60.0, 50_000, 7);
            assert!(
                cell.lifetime_writes < 50_000,
                "{ecc}/{wear} never failed: {cell:?}"
            );
            assert!(cell.lifetime_writes > 100, "{ecc}/{wear}: {cell:?}");
            assert!(cell.wear_events > 0, "{ecc}/{wear} leveled nothing");
        }
    }

    #[test]
    fn grid_report_has_full_shape() {
        let opts = Options {
            quick: true,
            seed: 5,
            apps: vec![SpecApp::Milc],
        };
        let report = RivalLifetime.run(&opts);
        assert_eq!(report.tables[0].rows.len(), SystemKind::ALL.len());
        assert_eq!(report.tables[0].rows[0].values.len(), STACKS.len());
        assert_eq!(report.tables[1].rows.len(), STACKS.len());
    }
}
