//! §V.B: performance overhead of on-the-read-path decompression.

use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Table, Value};
use pcm_compress::compress_best;
use pcm_core::line::{EccEngine, ManagedLine, Payload};
use pcm_core::perf::{perf_overhead, PerfConfig, PerfReport};
use pcm_core::{EccChoice, SystemConfig, SystemKind};
use pcm_trace::{BlockStream, SpecApp};
use pcm_util::child_seed;
use pcm_wear::IntraLineLeveler;

/// Runs the §V.B study for one workload.
pub fn perf_app(app: SpecApp, quick: bool, seed: u64) -> PerfReport {
    let mut cfg = PerfConfig::new(app.profile(), child_seed(seed, app as u64));
    if quick {
        cfg.lines = 512;
        cfg.accesses = 40_000;
    }
    perf_overhead(&cfg)
}

// --------------------------------------------------------- registry entries

/// §V.B registry entry.
pub(crate) struct PerfOverhead;

impl Experiment for PerfOverhead {
    fn name(&self) -> &'static str {
        "perf_overhead"
    }

    fn description(&self) -> &'static str {
        "read-latency and end-to-end overhead of on-the-read-path decompression"
    }

    fn anchor(&self) -> &'static str {
        "§V.B"
    }

    fn scale_summary(&self, quick: bool) -> String {
        if quick {
            "lines=512 accesses=40000".into()
        } else {
            "default PerfConfig".into()
        }
    }

    fn run(&self, opts: &Options) -> Report {
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Section V.B: performance overhead of decompression",
            "app",
            vec![
                Column::ratio("read_lat(cyc)", 0.95, 1.05),
                Column::ratio("queueing", 0.9, 1.1),
                Column::abs("comp_reads%", 3.0),
                Column::abs("decomp(ns)", 0.1),
                Column::abs("read_lat+%", 0.25),
                Column::abs("slowdown%", 0.05),
            ],
        );
        let mut worst_read = 0.0f64;
        let mut worst_slow = 0.0f64;
        for app in &opts.apps {
            let p = perf_app(*app, opts.quick, opts.seed);
            t.push(
                app.name(),
                vec![
                    Value::Num(p.base_read_latency_cycles, 1),
                    Value::Num(p.read_queueing_cycles, 1),
                    Value::Num(100.0 * p.compressed_read_fraction, 0),
                    Value::Num(p.avg_decompression_ns, 2),
                    Value::Num(p.read_latency_increase_pct, 2),
                    Value::Num(p.slowdown_pct, 3),
                ],
            );
            worst_read = worst_read.max(p.read_latency_increase_pct);
            worst_slow = worst_slow.max(p.slowdown_pct);
        }
        r.tables.push(t);
        r.note(format!(
            "worst read-latency increase {worst_read:.2}% (paper: up to ~2%), worst slowdown {worst_slow:.3}% (paper: < 0.3%)"
        ));
        r
    }
}

/// Metadata-update-rate registry entry (§III-B).
pub(crate) struct MetadataRates;

impl Experiment for MetadataRates {
    fn name(&self) -> &'static str {
        "metadata_rates"
    }

    fn description(&self) -> &'static str {
        "writes between metadata changes: start pointer, encoding, size fields"
    }

    fn anchor(&self) -> &'static str {
        "§III-B"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!("writes={}", if quick { 20_000 } else { 100_000 })
    }

    fn run(&self, opts: &Options) -> Report {
        let writes = if opts.quick { 20_000 } else { 100_000 };
        let cfg = SystemConfig::new(SystemKind::CompWF);
        let mut r = Report::new(self.manifest(opts));
        let mut t = Table::new(
            "Metadata update intervals (writes between changes), Comp+WF",
            "app",
            vec![
                Column::exact("writes"),
                Column::ratio("start_ptr_every", 0.9, 1.1),
                Column::ratio("encoding_every", 0.9, 1.1),
                Column::ratio("size_every", 0.9, 1.1),
            ],
        );
        for app in &opts.apps {
            let engine = EccEngine::new(EccChoice::Ecp6);
            let mut line = ManagedLine::with_endurance(vec![u32::MAX; 512]);
            let mut leveler = IntraLineLeveler::new(cfg.rotation_period as u32, 1);
            let mut stream = BlockStream::new(app.profile(), child_seed(opts.seed, *app as u64));
            for _ in 0..writes {
                let data = stream.next_data();
                let c = compress_best(&data);
                line.write(
                    &engine,
                    Payload {
                        method: c.method(),
                        bytes: c.bytes(),
                    },
                    leveler.offset(),
                    true,
                )
                .expect("healthy line");
                leveler.note_write();
            }
            let m = line.meta_updates();
            let every = |n: u64| {
                if n == 0 {
                    Value::Text("never".into())
                } else {
                    Value::Num(m.writes as f64 / n as f64, 0)
                }
            };
            t.push(
                app.name(),
                vec![
                    Value::Int(m.writes as i64),
                    every(m.start_pointer),
                    every(m.encoding),
                    every(m.size),
                ],
            );
        }
        r.tables.push(t);
        r.note("paper: start pointer ~ every 2^10 line writes; coding bits every 4-5 writes");
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_paper_magnitudes() {
        // Paper: reads delayed up to ~2% on average, slowdown < 0.3%.
        let mut worst_read = 0.0f64;
        let mut worst_slowdown = 0.0f64;
        for app in [SpecApp::Milc, SpecApp::Sjeng, SpecApp::Lbm, SpecApp::Gcc] {
            let r = perf_app(app, true, 3);
            worst_read = worst_read.max(r.read_latency_increase_pct);
            worst_slowdown = worst_slowdown.max(r.slowdown_pct);
        }
        assert!(worst_read < 3.0, "read latency increase {worst_read:.2}%");
        assert!(worst_slowdown < 1.0, "slowdown {worst_slowdown:.2}%");
    }
}
