//! §V.B: performance overhead of on-the-read-path decompression.

use pcm_core::perf::{perf_overhead, PerfConfig, PerfReport};
use pcm_trace::SpecApp;
use pcm_util::child_seed;

/// Runs the §V.B study for one workload.
pub fn perf_app(app: SpecApp, quick: bool, seed: u64) -> PerfReport {
    let mut cfg = PerfConfig::new(app.profile(), child_seed(seed, app as u64));
    if quick {
        cfg.lines = 512;
        cfg.accesses = 40_000;
    }
    perf_overhead(&cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_match_paper_magnitudes() {
        // Paper: reads delayed up to ~2% on average, slowdown < 0.3%.
        let mut worst_read = 0.0f64;
        let mut worst_slowdown = 0.0f64;
        for app in [SpecApp::Milc, SpecApp::Sjeng, SpecApp::Lbm, SpecApp::Gcc] {
            let r = perf_app(app, true, 3);
            worst_read = worst_read.max(r.read_latency_increase_pct);
            worst_slowdown = worst_slowdown.max(r.slowdown_pct);
        }
        assert!(worst_read < 3.0, "read latency increase {worst_read:.2}%");
        assert!(worst_slowdown < 1.0, "slowdown {worst_slowdown:.2}%");
    }
}
