//! Fig. 9: Monte-Carlo fault injection over the three hard-error schemes.

use crate::cli::Options;
use crate::registry::Experiment;
use crate::report::{Column, Report, Table, Value};
use pcm_core::registry::{shared_aegis_17x31, shared_ecp, shared_safer32};
use pcm_ecc::montecarlo::{failure_surface, FailureSurface, MonteCarlo};
use pcm_ecc::HardErrorScheme;

/// The window sizes the paper sweeps in Fig. 9 (bytes).
pub(crate) const PAPER_WINDOWS: [usize; 10] = [1, 8, 16, 20, 24, 32, 34, 36, 40, 64];

/// Error counts swept on the x-axis.
pub(crate) fn error_grid(quick: bool) -> Vec<usize> {
    let step = if quick { 16 } else { 4 };
    (0..=128).step_by(step).collect()
}

/// Runs the Fig. 9 sweep for all three schemes.
pub fn fig09(injections: usize, seed: u64, quick: bool) -> Vec<FailureSurface> {
    // The same shared instances every other layer resolves through the
    // registry; the SAFER/Aegis partition tables are built exactly once
    // per process.
    let schemes: [&'static dyn HardErrorScheme; 3] =
        [shared_ecp(6), shared_safer32(), shared_aegis_17x31()];
    let mc = MonteCarlo {
        injections,
        seed,
        threads: 0,
    };
    let errors = error_grid(quick);
    schemes
        .iter()
        .map(|&s| failure_surface(s, &PAPER_WINDOWS, &errors, &mc))
        .collect()
}

/// The paper's §III-A.4 spot check: tolerable faults at 50% failure
/// probability for a 32-byte window (ECP-6 ≈ 18, SAFER ≈ 38, Aegis ≈ 41).
pub fn faults_at_half(surface: &FailureSurface, window: usize) -> Option<usize> {
    let w = surface.windows.iter().position(|&x| x == window)?;
    let row = &surface.probabilities[w];
    for (i, &p) in row.iter().enumerate() {
        if p >= 0.5 {
            return Some(surface.errors[i]);
        }
    }
    None
}

// --------------------------------------------------------- registry entries

/// Fig. 9 registry entry.
pub(crate) struct Fig09Montecarlo;

impl Experiment for Fig09Montecarlo {
    fn name(&self) -> &'static str {
        "fig09_montecarlo"
    }

    fn description(&self) -> &'static str {
        "Monte-Carlo failure probability of ECP-6, SAFER-32, Aegis vs faults and window size"
    }

    fn anchor(&self) -> &'static str {
        "Fig. 9"
    }

    fn scale_summary(&self, quick: bool) -> String {
        format!(
            "injections={} error_step={}",
            if quick { 3_000 } else { 30_000 },
            if quick { 16 } else { 4 }
        )
    }

    fn run(&self, opts: &Options) -> Report {
        // The paper uses 100k injections; 30k keeps the full sweep
        // tractable on one core while leaving the curves visually
        // identical.
        let injections = if opts.quick { 3_000 } else { 30_000 };
        let surfaces = fig09(injections, opts.seed, opts.quick);
        let mut r = Report::new(self.manifest(opts));
        for surface in &surfaces {
            let columns = surface
                .windows
                .iter()
                .map(|w| Column::abs(&format!("{w}B"), 0.03))
                .collect();
            let mut t = Table::new(
                &format!(
                    "Fig 9: failure probability — {} ({injections} injections)",
                    surface.scheme
                ),
                "errors",
                columns,
            );
            for (e, &errors) in surface.errors.iter().enumerate() {
                let values = (0..surface.windows.len())
                    .map(|w| Value::Num(surface.probabilities[w][e], 3))
                    .collect();
                t.push(errors.to_string(), values);
            }
            r.tables.push(t);
            if let Some(f) = faults_at_half(surface, 32) {
                r.note(format!(
                    "{}: ~{f} faults tolerable at 32B window, p=0.5 (paper: ECP 18 / SAFER 38 / Aegis 41)",
                    surface.scheme
                ));
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_shape_matches_paper_spot_values() {
        let surfaces = fig09(4_000, 11, true);
        assert_eq!(surfaces.len(), 3);
        let ecp = &surfaces[0];
        let safer = &surfaces[1];
        let aegis = &surfaces[2];
        // §III-A.4: at a 32-byte window and 0.5 failure probability the
        // tolerable fault counts are ~18 (ECP-6), ~38 (SAFER), ~41 (Aegis).
        let e = faults_at_half(ecp, 32).expect("ECP curve crosses 0.5");
        let s = faults_at_half(safer, 32).expect("SAFER curve crosses 0.5");
        let a = faults_at_half(aegis, 32).expect("Aegis curve crosses 0.5");
        assert!((8..=32).contains(&e), "ECP-6 @32B: {e}");
        assert!(s > e, "SAFER ({s}) must beat ECP-6 ({e})");
        assert!(
            a >= s.saturating_sub(8),
            "Aegis ({a}) roughly matches SAFER ({s})"
        );
    }

    #[test]
    fn smaller_windows_always_weakly_better() {
        let surfaces = fig09(1_500, 12, true);
        for surface in &surfaces {
            // For each error count, failure probability should not
            // decrease with window size (allowing Monte-Carlo noise).
            for e in 0..surface.errors.len() {
                for w in 1..surface.windows.len() {
                    let small = surface.probabilities[w - 1][e];
                    let big = surface.probabilities[w][e];
                    assert!(
                        big + 0.06 >= small,
                        "{}: window {} errors {}: {} < {}",
                        surface.scheme,
                        surface.windows[w],
                        surface.errors[e],
                        big,
                        small
                    );
                }
            }
        }
    }
}
