//! The experiment implementations behind the harness binaries.
//!
//! Functions here return plain result structs so the binaries can print
//! them and the integration tests can assert on them. DESIGN.md §2 maps
//! each experiment to its paper figure/table.

pub mod ablation;
pub mod compression;
pub mod lifetime;
pub mod montecarlo;
pub mod perf;
pub mod rivals;
pub mod serve;
