//! Determinism regression tests for the hot-path benchmark harness.
//!
//! The harness exists to compare numbers across commits, which only works
//! if everything except the timing fields is a pure function of the seed:
//! same seed → identical corpora, identical simulation results, identical
//! checksums; and campaign statistics must not depend on how the lines
//! were sharded across worker threads.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pcm-bench-hotpath")
}

fn out_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pcm_determinism_{}_{tag}.json", std::process::id()))
}

/// Runs the bench binary in smoke mode and returns the report JSON.
fn run_smoke(tag: &str, extra: &[&str]) -> String {
    let out = out_path(tag);
    let status = Command::new(bin())
        .args(["--smoke", "--out"])
        .arg(&out)
        .args(extra)
        .status()
        .expect("bench binary runs");
    assert!(status.success(), "bench binary exited with {status}");
    let json = std::fs::read_to_string(&out).expect("report written");
    let _ = std::fs::remove_file(&out);
    json
}

/// Drops the fields that legitimately vary between runs: measured timings
/// and the thread-count echo. Everything left (ids, seeds, units, result
/// checksums, campaign statistics) must be bit-stable.
fn strip_timing(json: &str) -> String {
    const TIMING_KEYS: [&str; 6] = [
        "\"batches\":",
        "\"iters\":",
        "\"median_ns\":",
        "\"mad_ns\":",
        "\"per_second\":",
        "\"wall_ms\":",
    ];
    json.lines()
        .filter(|line| {
            let t = line.trim_start();
            !TIMING_KEYS.iter().any(|k| t.starts_with(k)) && !t.starts_with("\"threads\":")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn smoke_runs_are_identical_modulo_timing() {
    let a = run_smoke("rep1", &["--seed", "41"]);
    let b = run_smoke("rep2", &["--seed", "41"]);
    let (sa, sb) = (strip_timing(&a), strip_timing(&b));
    assert!(
        sa.contains("\"checksum\":"),
        "stripped report keeps checksums:\n{sa}"
    );
    assert!(
        sa.contains("\"stats\":"),
        "stripped report keeps campaign stats:\n{sa}"
    );
    assert_eq!(sa, sb, "same seed must reproduce every non-timing field");
}

#[test]
fn different_seeds_change_results() {
    // Guards against the comparison above passing vacuously (e.g. the
    // harness ignoring --seed): a different seed must change at least one
    // result checksum.
    let a = run_smoke("seed41", &["--seed", "41"]);
    let b = run_smoke("seed42", &["--seed", "42"]);
    assert_ne!(
        strip_timing(&a),
        strip_timing(&b),
        "--seed must steer the corpora"
    );
}

#[test]
fn campaign_stats_are_thread_invariant() {
    let one = run_smoke("t1", &["--seed", "41", "--threads", "1"]);
    let two = run_smoke("t2", &["--seed", "41", "--threads", "2"]);
    let auto = run_smoke("tauto", &["--seed", "41", "--threads", "auto"]);
    let (s1, s2, sa) = (strip_timing(&one), strip_timing(&two), strip_timing(&auto));
    assert_eq!(
        s1, s2,
        "1 vs 2 worker threads must not change campaign statistics"
    );
    assert_eq!(
        s1, sa,
        "1 vs auto worker threads must not change campaign statistics"
    );
}
