//! Registry completeness: the experiment matrix must be reachable through
//! `pcm-lab`, with no stray one-off binaries and no hand-maintained
//! experiment list in the run-all script.

use pcm_bench::{find, run_timed, Options, REGISTRY};
use std::path::Path;

/// Binaries that are deliberately not registry experiments: the registry
/// driver itself and the kernel benchmark harness (plus the workspace-root
/// `pcm-verify`, which lives outside this crate).
const NON_EXPERIMENT_BINS: &[&str] = &["pcm-lab", "pcm-bench-hotpath"];

fn bin_stems() -> Vec<String> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut stems: Vec<String> = std::fs::read_dir(&dir)
        .expect("src/bin must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .map(|p| p.file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    stems.sort();
    stems
}

#[test]
fn every_bin_is_the_driver_or_registered() {
    for stem in bin_stems() {
        if NON_EXPERIMENT_BINS.contains(&stem.as_str()) {
            continue;
        }
        assert!(
            find(&stem).is_some(),
            "binary '{stem}' is not reachable through the registry; \
             add an Experiment impl and a REGISTRY entry instead of a one-off binary"
        );
    }
}

#[test]
fn registry_covers_the_paper_matrix() {
    // The figures, tables, and studies ROADMAP.md promises must all stay
    // registered; deleting one silently would shrink the reproduction.
    for name in [
        "fig01_dw_randomness",
        "fig03_compressed_size",
        "fig05_bitflip_delta",
        "fig06_size_change_prob",
        "fig07_block_size_series",
        "fig09_montecarlo",
        "fig10_lifetime",
        "fig11_size_cdf",
        "fig12_tolerated_errors",
        "fig13_lifetime_cov25",
        "table03_workloads",
        "table04_months",
        "perf_overhead",
        "metadata_rates",
        "energy_writes",
        "compressor_comparison",
        "mix_study",
        "ablation_heuristic",
        "ablation_ecc",
        "ablation_secded",
        "ablation_rotation",
        "ablation_window_step",
        "ablation_flip_n_write",
        "ablation_interline_wl",
        "ablation_mlc",
        "serve_throughput",
        "rival_lifetime",
    ] {
        assert!(find(name).is_some(), "'{name}' missing from REGISTRY");
    }
    assert_eq!(REGISTRY.len(), 27, "registry gained or lost an experiment");
}

#[test]
fn run_all_script_drives_the_registry() {
    let script = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scripts_run_all.sh");
    let text = std::fs::read_to_string(&script).expect("scripts_run_all.sh must exist");
    assert!(
        text.contains("pcm-lab run-all"),
        "scripts_run_all.sh must drive `pcm-lab run-all`"
    );
    assert!(
        !text.contains("BINS="),
        "scripts_run_all.sh must not keep a hand-maintained experiment list"
    );
    for e in REGISTRY {
        assert!(
            !text.contains(&format!("/{}", e.name())),
            "scripts_run_all.sh references experiment binary '{}' directly",
            e.name()
        );
    }
}

#[test]
fn registry_experiments_honor_options() {
    // A cheap experiment run through the registry must stamp the manifest
    // from the options it was given and produce deterministic content.
    let opts = Options {
        quick: true,
        seed: 123,
        apps: vec![pcm_trace::SpecApp::Milc, pcm_trace::SpecApp::Gcc],
    };
    let exp = find("fig06_size_change_prob").unwrap();
    let a = run_timed(exp, &opts);
    let b = run_timed(exp, &opts);
    assert_eq!(a.manifest.seed, 123);
    assert!(a.manifest.quick);
    assert_eq!(a.manifest.apps, vec!["milc".to_string(), "gcc".to_string()]);
    assert!(a.manifest.wall_ms > 0.0, "run_timed must stamp wall_ms");
    assert_eq!(a.tables, b.tables, "same options must reproduce the table");
    assert_eq!(a.tables[0].rows.len(), 2);
}
