//! Report-layer integration tests: emitter round-trips on real experiment
//! output, a golden snapshot at a fixed seed, and the diff gate's failure
//! mode on out-of-tolerance drift.

use pcm_bench::report::{diff_reports, DiffFinding, Report, ReportDiff, Value};
use pcm_bench::{find, run_timed, Options};
use pcm_trace::SpecApp;

fn small_opts() -> Options {
    Options {
        quick: true,
        seed: 2017,
        apps: vec![SpecApp::Milc],
    }
}

#[test]
fn real_report_round_trips_byte_identical() {
    // Emit → parse → re-emit must be byte-identical for a real report of
    // every shape ingredient (table, series, note).
    for name in ["fig01_dw_randomness", "fig03_compressed_size"] {
        let mut report = run_timed(find(name).unwrap(), &small_opts());
        let json = report.to_json();
        let parsed = Report::from_json(&json).expect("emitted JSON must parse");
        assert_eq!(parsed.to_json(), json, "{name}: emit∘parse∘emit drifted");
        // wall_ms is rounded during emission; everything else is lossless.
        report.manifest.wall_ms = parsed.manifest.wall_ms;
        assert_eq!(parsed.manifest, report.manifest);
        assert_eq!(parsed.notes, report.notes);
    }
}

#[test]
fn golden_snapshot_fig01_quick_seed2017() {
    // The full artifact a fixed-seed run produces, wall-clock zeroed.
    // Regenerate with:
    //   cargo run -p pcm-bench --bin pcm-lab -- run fig01_dw_randomness \
    //     --quick --apps milc --format json   (then zero wall_ms)
    let mut fresh = find("fig01_dw_randomness").unwrap().run(&small_opts());
    fresh.manifest.wall_ms = 0.0;
    let golden = include_str!("golden/fig01_quick.json");
    assert_eq!(
        fresh.to_json(),
        golden,
        "fig01 at seed 2017 no longer matches tests/golden/fig01_quick.json; \
         if the change is intentional, regenerate the golden file"
    );
    let tracked = Report::from_json(golden).expect("golden must parse");
    let diff = diff_reports(&tracked, &fresh);
    assert!(diff.passed(), "{}", diff.describe());
}

#[test]
fn diff_rejects_out_of_tolerance_drift() {
    let exp = find("fig03_compressed_size").unwrap();
    let tracked = run_timed(exp, &small_opts());
    let mut fresh = tracked.clone();

    // Within the CR column's abs:0.02 band: accepted.
    let cr = &mut fresh.tables[0].rows[0].values[3];
    let Value::Num(v, p) = *cr else {
        panic!("CR cell must be numeric")
    };
    *cr = Value::Num(v + 0.01, p);
    assert!(diff_reports(&tracked, &fresh).passed());

    // Outside it: the diff must fail and name the statistic.
    fresh.tables[0].rows[0].values[3] = Value::Num(v + 0.2, p);
    let diff: ReportDiff = diff_reports(&tracked, &fresh);
    assert!(!diff.passed());
    assert_eq!(diff.findings.len(), 1);
    let DiffFinding {
        location,
        tolerance,
        ..
    } = &diff.findings[0];
    assert!(location.contains("col 'CR'"));
    // describe() must name both the statistic and the band that rejected it.
    assert!(diff.describe().contains(location.as_str()), "{diff:?}");
    assert!(diff.describe().contains(tolerance.as_str()), "{diff:?}");

    // Shape drift (a lost row) must also fail.
    let mut fresh = tracked.clone();
    fresh.tables[0].rows.pop();
    assert!(!diff_reports(&tracked, &fresh).passed());
}

#[test]
fn tsv_emitter_concatenates_across_experiments() {
    let opts = small_opts();
    let a = run_timed(find("fig06_size_change_prob").unwrap(), &opts);
    let b = run_timed(find("fig11_size_cdf").unwrap(), &opts);
    let combined = format!("{}{}", a.to_tsv(), b.to_tsv());
    assert!(combined.contains("fig06_size_change_prob\ttable\t"));
    assert!(combined.contains("fig11_size_cdf\ttable\t"));
    // Every data line carries its experiment in column 1.
    for line in combined.lines().filter(|l| !l.starts_with('#')) {
        let first = line.split('\t').next().unwrap();
        assert!(
            first == "fig06_size_change_prob" || first == "fig11_size_cdf",
            "unattributed TSV line: {line}"
        );
    }
}
