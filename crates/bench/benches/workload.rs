//! Workload-generation and controller-policy hot paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_core::window;
use pcm_core::CompressionHeuristic;
use pcm_ecc::Ecp;
use pcm_trace::{BlockStream, SpecApp, TraceGenerator};
use pcm_util::fault::{FaultMap, StuckAt};
use std::hint::black_box;

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace");
    for app in [SpecApp::Milc, SpecApp::Gcc, SpecApp::Lbm] {
        group.bench_with_input(
            BenchmarkId::new("next_write", app.name()),
            &app,
            |b, &app| {
                let mut g = TraceGenerator::from_profile(app.profile(), 1024, 7);
                b.iter(|| g.next_write())
            },
        );
    }
    group.bench_function("block_stream/next_data", |b| {
        let mut s = BlockStream::new(SpecApp::Bzip2.profile(), 9);
        b.iter(|| s.next_data())
    });
    group.finish();
}

fn bench_window_ops(c: &mut Criterion) {
    let faults: FaultMap = (0..24u16)
        .map(|i| StuckAt {
            pos: i * 21,
            value: i % 2 == 0,
        })
        .collect();
    let ecp = Ecp::new(6);
    c.bench_function("window/find_offset_24faults", |b| {
        b.iter(|| window::find_offset(&ecp, black_box(&faults), 24, 17))
    });
    let payload = [0xABu8; 24];
    let base = pcm_util::Line512::ones();
    c.bench_function("window/place_wrapped", |b| {
        b.iter(|| window::place(black_box(&base), 50, black_box(&payload)))
    });
}

fn bench_heuristic(c: &mut Criterion) {
    let h = CompressionHeuristic::paper();
    c.bench_function("heuristic/decide", |b| {
        let mut sc = 0u8;
        let mut size = 10usize;
        b.iter(|| {
            size = (size * 7 + 3) % 64 + 1;
            let (d, new_sc) = h.decide(size, 32, sc);
            sc = new_sc;
            d
        })
    });
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_window_ops,
    bench_heuristic
);
criterion_main!(benches);
