//! The lifetime engine's hot paths: one managed-line write and one
//! accelerated line simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use pcm_compress::compress_best;
use pcm_core::lifetime::{simulate_line, LineSimConfig};
use pcm_core::line::{EccEngine, ManagedLine, Payload};
use pcm_core::{EccChoice, SystemConfig, SystemKind};
use pcm_trace::{BlockStream, SpecApp};
use std::hint::black_box;

fn bench_managed_line_write(c: &mut Criterion) {
    let engine = EccEngine::new(EccChoice::Ecp6);
    let mut line = ManagedLine::with_endurance(vec![u32::MAX; 512]);
    let mut stream = BlockStream::new(SpecApp::Milc.profile(), 3);
    c.bench_function("line/write_compressed", |b| {
        b.iter(|| {
            let data = stream.next_data();
            let cw = compress_best(&data);
            line.write(
                &engine,
                Payload {
                    method: cw.method(),
                    bytes: cw.bytes(),
                },
                black_box(0),
                true,
            )
            .expect("healthy line")
        })
    });
}

fn bench_line_simulation(c: &mut Criterion) {
    let system = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(2_000.0);
    let mut cfg = LineSimConfig::new(system, SpecApp::Milc.profile());
    cfg.sample_writes = 8;
    c.bench_function("lifetime/simulate_line_milc_wf", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            simulate_line(black_box(&cfg), seed)
        })
    });
}

criterion_group!(benches, bench_managed_line_write, bench_line_simulation);
criterion_main!(benches);
