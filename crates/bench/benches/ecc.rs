//! Feasibility-check and encode costs of the hard-error schemes, plus the
//! Monte-Carlo kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_ecc::montecarlo::{failure_probability, MonteCarlo};
use pcm_ecc::{find_window, Aegis, Ecp, HardErrorScheme, Safer};
use rand::seq::SliceRandom;
use std::hint::black_box;

fn fault_sets() -> Vec<(usize, Vec<u16>)> {
    let mut rng = pcm_util::seeded_rng(5);
    let mut all: Vec<u16> = (0..512).collect();
    [4usize, 12, 24]
        .into_iter()
        .map(|n| {
            all.shuffle(&mut rng);
            let mut f = all[..n].to_vec();
            f.sort_unstable();
            (n, f)
        })
        .collect()
}

fn bench_can_store(c: &mut Criterion) {
    let schemes: Vec<(&str, Box<dyn HardErrorScheme>)> = vec![
        ("ecp6", Box::new(Ecp::new(6))),
        ("safer32", Box::new(Safer::new(32))),
        ("aegis", Box::new(Aegis::new(17, 31))),
    ];
    let mut group = c.benchmark_group("can_store");
    for (name, scheme) in &schemes {
        for (n, faults) in fault_sets() {
            group.bench_with_input(BenchmarkId::new(*name, n), &faults, |b, f| {
                b.iter(|| scheme.can_store(black_box(f)))
            });
        }
    }
    group.finish();
}

fn bench_window_search(c: &mut Criterion) {
    let ecp = Ecp::new(6);
    let (_, faults) = fault_sets().pop().expect("three sets");
    c.bench_function("find_window/ecp6_24faults_16B", |b| {
        b.iter(|| find_window(&ecp, black_box(&faults), 16))
    });
}

fn bench_montecarlo_kernel(c: &mut Criterion) {
    let ecp = Ecp::new(6);
    let mc = MonteCarlo {
        injections: 200,
        seed: 9,
        threads: 1,
    };
    c.bench_function("montecarlo/ecp6_200inj_32B_24err", |b| {
        b.iter(|| failure_probability(&ecp, 32, 24, black_box(&mc)))
    });
}

criterion_group!(
    benches,
    bench_can_store,
    bench_window_search,
    bench_montecarlo_kernel
);
criterion_main!(benches);
