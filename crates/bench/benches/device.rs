//! Device-model hot paths: differential writes, Flip-N-Write, cell wear,
//! and the access-timing simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use pcm_device::access::{simulate, AccessConfig, Op, Request};
use pcm_device::dw::{diff_write, FlipNWrite};
use pcm_device::{EnduranceModel, LineWear};
use pcm_util::Line512;
use std::hint::black_box;

fn bench_diff_write(c: &mut Criterion) {
    let mut rng = pcm_util::seeded_rng(3);
    let a = Line512::random(&mut rng);
    let b2 = Line512::random(&mut rng);
    c.bench_function("dw/diff_write", |b| {
        b.iter(|| diff_write(black_box(&a), black_box(&b2)))
    });
}

fn bench_flip_n_write(c: &mut Criterion) {
    let mut rng = pcm_util::seeded_rng(4);
    let data = Line512::random(&mut rng);
    c.bench_function("dw/flip_n_write", |b| {
        let mut fnw = FlipNWrite::new(64);
        let mut stored = Line512::zero();
        b.iter(|| {
            let (s, flips) = fnw.write(&stored, black_box(&data));
            stored = s;
            flips
        })
    });
}

fn bench_cell_write(c: &mut Criterion) {
    let mut rng = pcm_util::seeded_rng(5);
    let model = EnduranceModel::new(1e9, 0.15);
    let mut line = LineWear::sample(&model, &mut rng);
    let target = Line512::random(&mut rng);
    c.bench_function("cell/line_write", |b| {
        b.iter(|| line.write(black_box(&target)))
    });
}

fn bench_access_sim(c: &mut Criterion) {
    let cfg = AccessConfig::paper();
    let requests: Vec<Request> = (0..10_000)
        .map(|i| Request {
            arrival: i * 20,
            bank: (i % 8) as u32,
            op: if i % 3 == 0 { Op::Write } else { Op::Read },
            decompression_cycles: (i % 2) * 5,
        })
        .collect();
    c.bench_function("access/simulate_10k", |b| {
        b.iter(|| simulate(&cfg, black_box(&requests)))
    });
}

criterion_group!(
    benches,
    bench_diff_write,
    bench_flip_n_write,
    bench_cell_write,
    bench_access_sim
);
criterion_main!(benches);
