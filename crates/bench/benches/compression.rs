//! Throughput of the compression substrate: BDI, FPC, best-of selector,
//! and decompression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pcm_compress::{bdi, compress_best, decompress, fpc};
use pcm_trace::{BlockStream, SpecApp};
use pcm_util::Line512;
use std::hint::black_box;

fn sample_lines() -> Vec<(&'static str, Line512)> {
    let mut rng = pcm_util::seeded_rng(77);
    let mut narrow = [0u8; 64];
    for i in 0..8 {
        narrow[i * 8] = i as u8;
    }
    vec![
        ("zeros", Line512::zero()),
        ("narrow", Line512::from_bytes(&narrow)),
        ("random", Line512::random(&mut rng)),
    ]
}

fn bench_compressors(c: &mut Criterion) {
    let mut group = c.benchmark_group("compress");
    for (name, line) in sample_lines() {
        group.bench_with_input(BenchmarkId::new("bdi", name), &line, |b, l| {
            b.iter(|| bdi::compress(black_box(l)))
        });
        group.bench_with_input(BenchmarkId::new("fpc", name), &line, |b, l| {
            b.iter(|| fpc::compress(black_box(l)))
        });
        group.bench_with_input(BenchmarkId::new("best", name), &line, |b, l| {
            b.iter(|| compress_best(black_box(l)))
        });
    }
    group.finish();
}

fn bench_decompression(c: &mut Criterion) {
    let mut group = c.benchmark_group("decompress");
    for (name, line) in sample_lines() {
        let compressed = compress_best(&line);
        group.bench_with_input(BenchmarkId::from_parameter(name), &compressed, |b, cw| {
            b.iter(|| decompress(black_box(cw)))
        });
    }
    group.finish();
}

fn bench_workload_stream(c: &mut Criterion) {
    c.bench_function("compress/gcc_stream", |b| {
        let mut stream = BlockStream::new(SpecApp::Gcc.profile(), 3);
        b.iter(|| compress_best(black_box(&stream.next_data())))
    });
}

criterion_group!(
    benches,
    bench_compressors,
    bench_decompression,
    bench_workload_stream
);
criterion_main!(benches);
