//! Adversarial and exhaustive-corner tests for the compression codecs.

use pcm_compress::{bdi, compress_best, decompress, fpc, CompressedWrite, Method};
use pcm_util::{seeded_rng, Line512};
use rand::RngExt;

/// Lines engineered to sit exactly on each BDI variant's decision edge.
#[test]
fn bdi_boundary_deltas() {
    // For each (element size k, delta size d): a line whose max delta is
    // exactly the largest representable, and one that exceeds it by one.
    for (k, d, lo, hi) in [
        (8usize, 1usize, -128i64, 127i64),
        (8, 2, -32768, 32767),
        (8, 4, -2147483648, 2147483647),
    ] {
        let base: u64 = 0x0123_4567_89AB_CDEF;
        let mut fits = [0u8; 64];
        let n = 64 / k;
        for i in 0..n {
            let e = match i {
                0 => base,
                1 => base.wrapping_add(hi as u64),
                2 => base.wrapping_add(lo as u64),
                _ => base,
            };
            fits[i * k..(i + 1) * k].copy_from_slice(&e.to_le_bytes()[..k]);
        }
        let line = Line512::from_bytes(&fits);
        let c = bdi::compress(&line).unwrap_or_else(|| panic!("k={k} d={d} must fit"));
        assert_eq!(bdi::decompress(c.encoding(), c.data()).unwrap(), line);

        // Exceed hi by one: this geometry must NOT be chosen.
        let mut over = fits;
        let e = base.wrapping_add(hi as u64 + 1);
        over[k..2 * k].copy_from_slice(&e.to_le_bytes()[..k]);
        let line_over = Line512::from_bytes(&over);
        if let Some(c) = bdi::compress(&line_over) {
            // A *different* (larger or smaller-element) encoding may apply;
            // round-trip must still hold.
            assert_eq!(bdi::decompress(c.encoding(), c.data()).unwrap(), line_over);
            assert!(
                c.encoding().compressed_size() != k + n * d
                    || c.encoding().geometry() != Some((k, d)),
                "k={k} d={d}: out-of-range delta accepted"
            );
        }
    }
}

#[test]
fn fpc_every_prefix_round_trips_exhaustively() {
    // Single-word lines covering each FPC pattern at its boundaries.
    let words: Vec<u32> = vec![
        0,
        1,
        7,
        8,           // first value beyond i4
        0xFFFF_FFF8, // -8, the most negative i4
        0xFFFF_FFF7, // -9, beyond i4
        127,
        128,
        0xFFFF_FF80, // -128
        0xFFFF_FF7F, // -129
        32767,
        32768,
        0xFFFF_8000, // -32768
        0xFFFF_7FFF, // -32769
        0xABCD_0000, // low-zero halfword
        0x0001_0000, // low-zero, minimal
        0x00FF_00FF, // two sign-extended bytes? 0x00FF = 255 > 127: no
        0x007F_007F, // two sign-extended bytes: 127/127
        0xFF80_FF80, // two sign-extended bytes: -128/-128
        0x11111111,  // repeated byte
        0xDEADBEEF,  // raw
        u32::MAX,
    ];
    for (i, &w) in words.iter().enumerate() {
        let mut bytes = [0u8; 64];
        bytes[0..4].copy_from_slice(&w.to_le_bytes());
        bytes[32..36].copy_from_slice(&w.to_le_bytes());
        let line = Line512::from_bytes(&bytes);
        let c = fpc::compress(&line);
        assert_eq!(
            fpc::decompress(c.data()).unwrap(),
            line,
            "word #{i} = {w:#010x}"
        );
    }
}

#[test]
fn fpc_all_single_byte_lines() {
    // 256 lines of a single repeated byte: always compressible, always
    // exact.
    for b in 0u8..=255 {
        let line = Line512::from_bytes(&[b; 64]);
        let c = fpc::compress(&line);
        assert_eq!(fpc::decompress(c.data()).unwrap(), line, "byte {b:#04x}");
        assert!(c.size() < 64, "byte {b:#04x} must compress");
        let best = compress_best(&line);
        assert!(
            best.size() <= 8,
            "repeated bytes are BDI Rep8 at worst, got {}",
            best.size()
        );
    }
}

#[test]
fn selector_never_corrupts_any_of_10k_random_lines() {
    let mut rng = seeded_rng(1001);
    for _ in 0..10_000 {
        // Mix fully random lines with sparse, structured ones.
        let line = match rng.random_range(0..4) {
            0 => Line512::random(&mut rng),
            1 => {
                let mut l = Line512::zero();
                for _ in 0..rng.random_range(0..8) {
                    l.set_byte(rng.random_range(0..64), rng.random());
                }
                l
            }
            2 => {
                let v: u64 = rng.random();
                Line512::from_words([v; 8])
            }
            _ => {
                let base: u64 = rng.random();
                let mut words = [0u64; 8];
                for w in &mut words {
                    *w = base.wrapping_add(rng.random_range(-100i64..100) as u64);
                }
                Line512::from_words(words)
            }
        };
        let c = compress_best(&line);
        assert_eq!(decompress(&c), line);
        let rebuilt = CompressedWrite::from_parts(c.method(), c.bytes().to_vec()).unwrap();
        assert_eq!(decompress(&rebuilt), line);
    }
}

#[test]
fn metadata_codes_cover_all_methods_seen_in_practice() {
    let mut rng = seeded_rng(1002);
    let mut seen = std::collections::HashSet::new();
    for _ in 0..5_000 {
        let line = match rng.random_range(0..3) {
            0 => Line512::zero(),
            1 => Line512::random(&mut rng),
            _ => {
                let mut l = Line512::zero();
                l.set_byte(rng.random_range(0..64), rng.random());
                l
            }
        };
        let m = compress_best(&line).method();
        seen.insert(m.encode_5bit());
        assert_eq!(Method::decode_5bit(m.encode_5bit()), Some(m));
    }
    assert!(
        seen.len() >= 3,
        "expected several distinct methods, saw {seen:?}"
    );
}
