//! Golden-vector lock on the compression wire format.
//!
//! Round-trip property tests (`tests/props.rs`) prove `decompress ∘ compress`
//! is the identity, but they would happily accept an optimized encoder that
//! silently changed the *bytes on the wire* — a different-but-still-decodable
//! BDI base choice, an FPC prefix reordering, a changed tie-break in
//! `compress_best`. Any such change invalidates every stored-size, flip-count
//! and lifetime number in the repo, so the format is pinned byte-for-byte
//! here: ~40 crafted 512-bit lines with the exact expected BDI variant id,
//! FPC prefix stream, and best-of selector outcome.
//!
//! The `EXPECTED` table was captured from the pre-optimization encoders
//! (PR 2). If a change to these strings is ever *intentional*, regenerate
//! with:
//!
//! ```text
//! cargo test -p pcm-compress --test golden -- --ignored regenerate --nocapture
//! ```
//!
//! and justify the format break in the PR description.

use pcm_compress::{bdi, compress_best, decompress, fpc};
use pcm_util::{seeded_rng, Line512};
use rand::Rng;

fn line_of_words(words: [u64; 8]) -> Line512 {
    Line512::from_words(words)
}

fn line_of_u32s(words: [u32; 16]) -> Line512 {
    let mut bytes = [0u8; 64];
    for (i, w) in words.iter().enumerate() {
        bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
    }
    Line512::from_bytes(&bytes)
}

/// The crafted corpus. Every vector is a pure function of constants or a
/// fixed seed, so the inputs themselves are as reproducible as the outputs.
fn corpus() -> Vec<(&'static str, Line512)> {
    let mut v: Vec<(&'static str, Line512)> = Vec::new();

    // --- BDI special cases ---------------------------------------------
    v.push(("zeros", Line512::zero()));
    v.push(("rep8-deadbeef", line_of_words([0xDEAD_BEEF_CAFE_F00D; 8])));
    v.push(("rep8-all-ones", line_of_words([u64::MAX; 8])));

    // --- BDI base-delta geometries -------------------------------------
    let b = 0x1000_0000_0000u64;
    v.push((
        "b8d1-small-deltas",
        line_of_words([
            b,
            b + 1,
            b + 127,
            b.wrapping_sub(128),
            b,
            b + 2,
            b + 3,
            b + 4,
        ]),
    ));
    let m = u64::MAX - 3;
    v.push((
        "b8d1-wrapping",
        line_of_words([m, m.wrapping_add(5), m, m, m, m, m, m]),
    ));
    {
        // 4-byte elements near a common base; 8-byte pairs far apart.
        let mut bytes = [0u8; 64];
        let base4: u32 = 0xABCD_1200;
        for i in 0..16 {
            let e = base4 + i as u32;
            bytes[i * 4..i * 4 + 4].copy_from_slice(&e.to_le_bytes());
        }
        v.push(("b4d1-stride", Line512::from_bytes(&bytes)));
    }
    let b = 0x55u64 << 32;
    v.push((
        "b8d2-wide-deltas",
        line_of_words([b, b + 200, b + 30000, b - 30000, b, b, b, b + 129]),
    ));
    {
        // 2-byte elements with tiny deltas; the i%5 stride makes every
        // wider view (4- and 8-byte elements) have out-of-range deltas.
        let mut bytes = [0u8; 64];
        let base2: u16 = 0x7F00;
        for i in 0..32 {
            let e = base2.wrapping_add((i % 5) as u16);
            bytes[i * 2..i * 2 + 2].copy_from_slice(&e.to_le_bytes());
        }
        v.push(("b2d1-stride", Line512::from_bytes(&bytes)));
    }
    {
        // 4-byte elements, 2-byte deltas; per-element stride breaks both
        // the 1-byte-delta and all 8-byte-element geometries.
        let mut bytes = [0u8; 64];
        let base4: u32 = 0x4000_0000;
        for i in 0..16 {
            let e = base4.wrapping_add((i as u32 * 1000).wrapping_sub(7000));
            bytes[i * 4..i * 4 + 4].copy_from_slice(&e.to_le_bytes());
        }
        v.push(("b4d2-stride", Line512::from_bytes(&bytes)));
    }
    let b = 1u64 << 60;
    v.push((
        "b8d4-wide-deltas",
        line_of_words([
            b,
            b + 1_000_000,
            b.wrapping_sub(2_000_000_000),
            b + 2_000_000_000,
            b,
            b + 70_000,
            b,
            b + 5,
        ]),
    ));
    let b = 0x0123_4567_89AB_CDEFu64;
    v.push((
        "b8d1-delta-extremes",
        line_of_words([
            b,
            b + 127,
            b.wrapping_sub(128),
            b,
            b + 127,
            b.wrapping_sub(128),
            b,
            b,
        ]),
    ));
    let b = 0x00FF_FFFF_FFFF_FF80u64;
    v.push((
        "b8d1-carry-across-bytes",
        line_of_words([b, b + 127, b + 64, b + 32, b, b + 1, b + 2, b + 3]),
    ));

    // --- FPC prefix coverage -------------------------------------------
    v.push((
        "fpc-sign4",
        line_of_u32s([7, (-2i32) as u32, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
    ));
    v.push((
        "fpc-sign8",
        line_of_u32s([
            100,
            (-100i32) as u32,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
        ]),
    ));
    v.push((
        "fpc-sign16",
        line_of_u32s([
            30_000,
            (-30_000i32) as u32,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
            0,
        ]),
    ));
    v.push((
        "fpc-low-zero",
        line_of_u32s([0xABCD_0000, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
    ));
    v.push((
        "fpc-two-bytes",
        line_of_u32s([0x0064_FFFB, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
    ));
    v.push((
        "fpc-rep-byte",
        line_of_u32s([0x5A5A_5A5A, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
    ));
    v.push((
        "fpc-trailing-word",
        line_of_u32s([0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]),
    ));
    v.push((
        "fpc-all-prefixes",
        line_of_u32s([
            0,
            3,
            200,
            0x7FFF,
            0xFFFF_0000,
            0x0042_0099,
            0x7777_7777,
            0xDEAD_BEEF,
            0,
            0,
            0,
            0x00FF_00FE,
            1,
            0xFFFF_FFFF,
            0x0001_0001,
            0x8000_0000,
        ]),
    ));
    v.push((
        "fpc-small-mixed-signs",
        line_of_u32s([
            5,
            (-3i32) as u32,
            7,
            1,
            (-8i32) as u32,
            2,
            6,
            (-1i32) as u32,
            4,
            0,
            3,
            (-6i32) as u32,
            7,
            2,
            (-4i32) as u32,
            1,
        ]),
    ));
    v.push((
        "fpc-zero-run-cap",
        line_of_u32s([0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 0, 0, 0, 0, 0]),
    ));
    v.push((
        "fpc-rep-bytes-varied",
        line_of_u32s([
            0x1111_1111,
            0x2222_2222,
            0xEEEE_EEEE,
            0x5A5A_5A5A,
            0,
            0,
            0x8080_8080,
            0xFFFF_FFFF,
            0x0101_0101,
            0,
            0,
            0,
            0x4242_4242,
            0x9999_9999,
            0x7F7F_7F7F,
            0xA5A5_A5A5,
        ]),
    ));

    // --- best-of selector edges ----------------------------------------
    {
        // 8 raw words + 8 zero words: BDI fails, FPC ≈ 37 bytes < 64.
        let mut rng = seeded_rng(0xF1);
        let mut u = [0u32; 16];
        for w in u.iter_mut().take(8) {
            *w = (rng.next_u64() as u32) | 0x0101_0000; // keep raw-ish
        }
        v.push(("best-half-raw-half-zero", line_of_u32s(u)));
    }
    {
        // All 16 words raw: FPC exceeds 64 bytes, BDI fails → uncompressed.
        let mut rng = seeded_rng(0xF2);
        let mut u = [0u32; 16];
        for w in u.iter_mut() {
            *w = (rng.next_u64() as u32) | 0x0301_0080;
        }
        v.push(("best-all-raw", line_of_u32s(u)));
    }
    v.push(("best-random-77", Line512::random(&mut seeded_rng(77))));
    v.push(("best-random-1234", Line512::random(&mut seeded_rng(1234))));
    v.push(("best-random-9", Line512::random(&mut seeded_rng(9))));

    // --- seeded structured families ------------------------------------
    // Near-base 8-byte elements: random base, random small deltas.
    for (name, seed, spread) in [
        ("rand-b8d1-s11", 11u64, 1u64 << 7),
        ("rand-b8d2-s12", 12, 1 << 15),
        ("rand-b8d4-s13", 13, 1 << 31),
        ("rand-b8d1-s14", 14, 1 << 6),
        ("rand-b8d4-s15", 15, 1 << 29),
    ] {
        let mut rng = seeded_rng(seed);
        let base = rng.next_u64();
        let mut words = [0u64; 8];
        for w in words.iter_mut() {
            let delta = (rng.next_u64() % spread) as i64 - (spread / 2) as i64;
            *w = base.wrapping_add(delta as u64);
        }
        v.push((name, line_of_words(words)));
    }
    // Small-magnitude 4-byte words: FPC territory.
    for (name, seed) in [
        ("rand-fpc-s21", 21u64),
        ("rand-fpc-s22", 22),
        ("rand-fpc-s23", 23),
    ] {
        let mut rng = seeded_rng(seed);
        let mut u = [0u32; 16];
        for w in u.iter_mut() {
            let x = (rng.next_u64() % 512) as i64 - 256;
            *w = x as i32 as u32;
        }
        v.push((name, line_of_u32s(u)));
    }
    // Sparse lines: mostly zero with a few random words.
    for (name, seed) in [("rand-sparse-s31", 31u64), ("rand-sparse-s32", 32)] {
        let mut rng = seeded_rng(seed);
        let mut u = [0u32; 16];
        for _ in 0..3 {
            let slot = (rng.next_u64() % 16) as usize;
            u[slot] = rng.next_u64() as u32;
        }
        v.push((name, line_of_u32s(u)));
    }
    // Pointer-like: shared high 32 bits, varying low words.
    for (name, seed) in [("rand-pointers-s41", 41u64), ("rand-pointers-s42", 42)] {
        let mut rng = seeded_rng(seed);
        let hi = rng.next_u64() & 0xFFFF_FFFF_0000_0000;
        let mut words = [0u64; 8];
        for w in words.iter_mut() {
            *w = hi | (rng.next_u64() & 0xFFFF_FFFF);
        }
        v.push((name, line_of_words(words)));
    }
    // Repeated-halfword texture.
    {
        let mut rng = seeded_rng(51);
        let h = (rng.next_u64() & 0xFFFF) as u32;
        let word = h | (h << 16);
        v.push(("rand-halfword-texture", line_of_u32s([word; 16])));
    }

    v
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// One canonical row per vector:
/// `best=<5-bit code>:<payload hex> bdi=<id>:<hex>|none fpc=<bit_len>:<hex>`.
fn observed_row(line: &Line512) -> String {
    let best = compress_best(line);
    let bdi_part = match bdi::compress(line) {
        Some(c) => format!("{}:{}", c.encoding().id(), hex(c.data())),
        None => "none".to_string(),
    };
    let f = fpc::compress(line);
    format!(
        "best={}:{} bdi={} fpc={}:{}",
        best.method().encode_5bit(),
        hex(best.bytes()),
        bdi_part,
        f.bit_len(),
        hex(f.data()),
    )
}

#[test]
fn golden_vectors_lock_wire_format() {
    let corpus = corpus();
    assert_eq!(
        corpus.len(),
        EXPECTED.len(),
        "corpus and EXPECTED table out of sync"
    );
    for ((name, line), (exp_name, exp_row)) in corpus.iter().zip(EXPECTED) {
        assert_eq!(name, exp_name, "corpus order drifted from EXPECTED table");
        let row = observed_row(line);
        assert_eq!(
            row,
            *exp_row,
            "wire format changed for vector `{name}`\n input: {}",
            hex(&line.to_bytes())
        );
        // The locked bytes must also still decode to the input.
        assert_eq!(
            decompress(&compress_best(line)),
            *line,
            "round-trip broke for `{name}`"
        );
    }
}

#[test]
fn golden_corpus_covers_every_method() {
    // Guards the corpus itself: all 8 BDI encodings, FPC, and uncompressed
    // must each be exercised, so a regression in any branch is caught.
    let mut seen = std::collections::HashSet::new();
    for (_, line) in corpus() {
        seen.insert(compress_best(&line).method().encode_5bit());
        if let Some(c) = bdi::compress(&line) {
            seen.insert(c.encoding().id());
        }
    }
    for code in 0u8..10 {
        assert!(
            seen.contains(&code),
            "no corpus vector exercises method code {code}"
        );
    }
}

/// Prints the `EXPECTED` table source. Run only to *intentionally* re-pin
/// the wire format after a justified change:
/// `cargo test -p pcm-compress --test golden -- --ignored regenerate --nocapture`
#[test]
#[ignore = "regenerates the golden table; run only for an intentional format change"]
fn regenerate() {
    println!("const EXPECTED: &[(&str, &str)] = &[");
    for (name, line) in corpus() {
        println!("    (\"{name}\", \"{}\"),", observed_row(&line));
    }
    println!("];");
}

const EXPECTED: &[(&str, &str)] = &[
    ("zeros", "best=0:00 bdi=0:00 fpc=12:380e"),
    ("rep8-deadbeef", "best=1:0df0fecaefbeadde bdi=1:0df0fecaefbeadde fpc=560:6f80f757febb6fabf71be0fd95ffeedbeafd06787fe5bffbb67abf01de5ff9efbeadde6f80f757febb6fabf71be0fd95ffeedbeafd06787fe5bffbb67abf01de5ff9efbeadde"),
    ("rep8-all-ones", "best=1:ffffffffffffffff bdi=1:ffffffffffffffff fpc=112:f97c3e9fcfe7f3f97c3e9fcfe7f3"),
    ("b8d1-small-deltas", "best=2:000000000010000000017f8000020304 bdi=2:000000000010000000017f8000020304 fpc=214:c00020120380d0df002004b8ff07600010910140640600111a0004"),
    ("b8d1-wrapping", "best=8:e17c0208e7c3f9703e9c0fe7c379 bdi=2:fcffffffffffffff0005000000000000 fpc=111:e17c0208e7c3f9703e9c0fe7c379"),
    ("b4d1-stride", "best=3:0012cdab000102030405060708090a0b0c0d0e0f bdi=3:0012cdab000102030405060708090a0b0c0d0e0f fpc=560:0790685e7d8044f3ea05249a573f20d1bc7a0289e6d5174834afde40a279f50712cdab4790685e7d8244f3ea15249a57bf20d1bc7a0689e6d5374834afde41a279f50f12cdab"),
    ("b8d2-wide-deltas", "best=4:00000000550000000000c8003075d08a0000000000008100 bdi=4:00000000550000000000c8003075d08a0000000000008100 fpc=188:80aa860ca0aac1d4a96ad08aa2025405a80a50d502015405"),
    ("b2d1-stride", "best=5:007f0001020304000102030400010203040001020304000102030400010203040001 bdi=5:007f0001020304000102030400010203040001020304000102030400010203040001 fpc=560:07f80bf8bbc0dfc0df09fe00fe1ef027f0f7813f82bf03fc05fc5de06fe0ef047f007f0ff813f8fbc01fc1df01fe02fe2ef037f077823f80bf07fc09fc7de08fe0ef007f017f"),
    ("b4d2-stride", "best=6:a8e4ff3f0000e803d007b80ba00f88137017581b401f28231027f82ae02ec832b036983a bdi=6:a8e4ff3f0000e803d007b80ba00f88137017581b401f28231027f82ae02ec832b036983a fpc=544:4725ffff3924faffcff1d8ff7f0e06ffff7324faff9fc3e0ffff1c83ffff870040471f00003af40100d0711700800efa000074c40900a0c35d00001d6b0300e8401f0040"),
    ("b8d4-wide-deltas", "best=7:00000000000000100000000040420f00006cca880094357700000000701101000000000005000000 bdi=7:00000000000000100000000040420f00006cca880094357700000000701101000000000005000000 fpc=333:0001200e24f40040008803b02923feffffffe100943577048000080071b8880000024000048048110002"),
    ("b8d1-delta-extremes", "best=2:efcdab8967452301007f80007f800000 bdi=2:efcdab8967452301007f80007f800000 fpc=560:7f6f5e4dfc59d148c0dd9c57137f563412f0b7e6d5c49f158d04fcbd7935f16745230177735e4dfc59d148c0df9a57137f563412f0f7e6d5c49f158d04fcbd7935f167452301"),
    ("b8d1-carry-across-bytes", "best=2:80ffffffffffff00007f402000010203 bdi=2:80ffffffffffff00007f402000010203 fpc=364:02fcffff3f40feffffff0002feffff3f8040ffffff0f20c0ffffff0328f0ffffff0012fcffff3f8006ffffff0f00"),
    ("fpc-sign4", "best=8:b9388e02 bdi=3:0700000000f7f9f9f9f9f9f9f9f9f9f9f9f9f9f9 fpc=26:b9388e02"),
    ("fpc-sign8", "best=8:2213278e02 bdi=6:64000000000038ff9cff9cff9cff9cff9cff9cff9cff9cff9cff9cff9cff9cff9cff9cff fpc=34:2213278e02"),
    ("fpc-sign16", "best=8:83a91bb4228e02 bdi=none fpc=50:83a91bb4228e02"),
    ("fpc-low-zero", "best=8:6c5ec561 bdi=none fpc=31:6c5ec561"),
    ("fpc-two-bytes", "best=8:dd27c361 bdi=5:fbff0069050505050505050505050505050505050505050505050505050505050505 fpc=31:dd27c361"),
    ("fpc-rep-byte", "best=8:d6c261 bdi=7:5a5a5a5a0000000000000000a6a5a5a5a6a5a5a5a6a5a5a5a6a5a5a5a6a5a5a5a6a5a5a5a6a5a5a5 fpc=23:d6c261"),
    ("fpc-trailing-word", "best=8:389c00 bdi=3:0000000000000000000000000000000000000001 fpc=19:389c00"),
    ("fpc-all-prefixes", "best=8:4066c800fbffe3ffff330184007cf777df566fe8fe00ff00897c0302080008 bdi=none fpc=244:4066c800fbffe3ffff330184007cf777df566fe8fe00ff00897c0302080008"),
    ("fpc-small-mixed-signs", "best=8:a9742e118cc4f2212013cd45c209 bdi=3:0500000000f802fcf3fd01fafffbfef502fdf7fc fpc=111:a9742e118cc4f2212013cd45c209"),
    ("fpc-zero-run-cap", "best=8:38920301 bdi=2:00000000000000000000000000070000 fpc=25:38920301"),
    ("fpc-rep-bytes-varied", "best=8:8eb088ddad851830ef00c842cef49f4b01 bdi=none fpc=129:8eb088ddad851830ef00c842cef49f4b01"),
    ("best-half-raw-half-zero", "best=8:1fbd7c9aff8afc64cabbb3d6e2ae7354b0788ac3b7a2bbc1a4b5be392968ff2176af9138 bdi=none fpc=286:1fbd7c9aff8afc64cabbb3d6e2ae7354b0788ac3b7a2bbc1a4b5be392968ff2176af9138"),
    ("best-all-raw", "best=9:fedb214face137439a797773b850e1cfc5fc933bb961ed7bb8e461cfac44cb77cba4efd3d297b1f3b0ca3783b33bad33bd3a05dfd0da6b5bf8a9793fbe8a79df bdi=none fpc=560:f7df0e793a6bf8cdd035f3eee68e0b15fefc62fec99de786b5ef1d973cecf9ac44cb775f267d9fbef465ecfc61956f063fbbd33af35e9d82ef436baf6d1d3f35efe7be8a79df"),
    ("best-random-77", "best=9:be526a9a0d5d4b5e52baf11ff8eef0b14d58f1fc0befe1e45014f0afe99553375f8d1f03626c8a089ade69812a228a7eac69669482199fe6d308219935d7e241 bdi=none fpc=560:f79552d37c43d792d7a574e33f8eef0e1ffb26ac78fe2fbc87931f8a02fef5e9955337ff6afc18b8189b22c235bdd302af22a2e877d63433ca0b667c9a7f1a2124f335d7e241"),
    ("best-random-1234", "best=9:77d41cb679eacdc1d57f76088e3f9f6c3dc1c8cef9332ef45419ad1f9047b901bf86eb9ccefa60b6a71d67610eddc95bb646db12a9d45642bf23d953fa9873ea bdi=none fpc=560:bfa3e6b07d9e7a73f0abffec10eef8f3c9f69e6064e7e7cfb8d09f2aa3f5e39047b901ff355ce7bcb33e98ed4f3bcec2eed09dbc755ba36d89a7525b09fd77247beafa9873ea"),
    ("best-random-9", "best=9:d32cac20df235a9930c0aaeb6c34036ef728b31101b7da32cb942b70a68541e221393d29f5b0a811dac5a567a72e4922a30d53ff5a05916b61f7be91a5cd3437 bdi=none fpc=560:9f666105f9f78856e6618055d7cf4633e0f67b94d98807dc6acb7c997205eea68541e20fc9e949793d2c6ac4b58b4bcf7eea9224f2d186a9ff6b1544ae3decde37f2a5cd3437"),
    ("rand-b8d1-s11", "best=2:5542696accbb1adc0024f8fd0b476065 bdi=2:5542696accbb1adc0024f8fd0b476065 fpc=560:af124a533bf3ae06f7f384d2d4cebcabc1fd26a134b533ef6a705f4a284dedccbb1adc07134a533bf3ae06f73985d2d4cebcabc1fd5aa134b533ef6a705f57284dedccbb1adc"),
    ("rand-b8d2-s12", "best=4:af6b1c00795cd5930000a8384e436451953862015de73eef bdi=4:af6b1c00795cd5930000a8384e436451953862015de73eef fpc=560:7f5de300781e57f5e4af4839009ec7553df97e570e80e771554f7ea29703e0795cd5932722e500781e57f5e423da38009ec7553d7986290e80e771554fbe5d8b03e0795cd593"),
    ("rand-b8d4-s13", "best=7:ccfb2f8719065e030000000027bff7ff75c7064f16229f36b29c9a0b0f0afa5a1edf08f74e65e850 bdi=7:ccfb2f8719065e030000000027bff7ff75c7064f16229f36b29c9a0b0f0afa5a1edf08f74e65e850 fpc=560:67de7f397c8681d7c0e7754f0e9f61e035f0a0611beb6718780d5cbce3b9f719065e03f7c354967c8681d7c0b70b54c49f61e03570756d1cbf6718780d5c230c03fb19065e03"),
    ("rand-b8d1-s14", "best=2:22bce59daee670d9001618050015fe19 bdi=2:22bce59daee670d9001618050015fe19 fpc=560:17e12defbcab395cf67178cb3bef6a0e977d1ddef2cebb9ac365ff84b7bcf3aee670d917e12defbcab395cf66f78cb3bef6a0e977d10def2cebb9ac3657f87b7bcf3aee670d9"),
    ("rand-b8d4-s15", "best=7:23a7fd53de07e310000000000664e6f78c3b70fe1e007a045ce90cf65a2ce9f33cd585099ce4c6f3 bdi=7:23a7fd53de07e310000000000664e6f78c3b70fe1e007a045ce90cf65a2ce9f33cd585099ce4c6f3 fpc=560:1f39ed9fbaf7c138c45316c897ee7d300ef157f136a97b1f8c433ce8f40eebde07e310ff835450baf7c138c4fba6cd8fee7d300ef12fbec1ae7b1f8c43fc7791f8e8de07e310"),
    ("rand-fpc-s21", "best=8:729ac5bfcad70f2096ad032c1e6007ff3304d83ec0c60174b982ff11026c1640d9 bdi=6:4e0000000000c8fe97ffaf00deff9d00a300b9fe3800ad00950049ffb7fe360065008bff fpc=264:729ac5bfcad70f2096ad032c1e6007ff3304d83ec0c60174b982ff11026c1640d9"),
    ("rand-fpc-s22", "best=8:fb04d097cce60db0afff9903ec1a6082003bf817d874fe55262dfd89410f bdi=6:9f0000000000c0ffc7ff3f00c0fe47003800e3ff68fec1ff9bfec6ffbbffe0ff6dff70ff fpc=240:fb04d097cce60db0afff9903ec1a6082003bf817d874fe55262dfd89410f"),
    ("rand-fpc-s23", "best=8:f219c2bf4897f1bfa17fd16d124025ea192f00307380f5032ceb7f13ff53fa07 bdi=6:3e0000000000cafe66ffdbfe05ff36005500e7ffffff7e00c2ffa800bf001bffd5fe0cff fpc=251:f219c2bf4897f1bfa17fd16d124025ea192f00307380f5032ceb7f13ff53fa07"),
    ("rand-sparse-s31", "best=8:8feece10c49127d4418662 bdi=none fpc=88:8feece10c49127d4418662"),
    ("rand-sparse-s32", "best=8:c0252d559890572f954e4017b5e8c78701 bdi=none fpc=129:c0252d559890572f954e4017b5e8c78701"),
    ("rand-pointers-s41", "best=9:e4967e2d7a378c8732ea4fc67a378c873a340e147a378c87448c53da7a378c8707db783f7a378c87d2cbbde47a378c87f186cc827a378c87394bc3677a378c87 bdi=none fpc=560:27b7f46bb9de0de3e165d49f8caf77c378781d1a078aebdd301e9e88714afb7a378c873fd8c6fbb9de0de3e1a5977bc9af77c378f8784366c1ebdd301e3e6769f8ec7a378c87"),
    ("rand-pointers-s42", "best=9:91376f574f4d76d08ced240c4f4d76d0b835d80c4f4d76d0736a84744f4d76d07dde504e4f4d76d056351a224f4d76d046cbd80e4f4d76d0c7cc95f04f4d76d0 bdi=none fpc=560:8fbc79bbfa53931df419db4918fed464077ddc1a6c863f35d9417f4e8d90ee4f4d76d0eff38672fa53931df4ad6a3444fed464077da3656c873f35d941ff98b912fe4f4d76d0"),
    ("rand-halfword-texture", "best=1:0d930d930d930d93 bdi=1:0d930d930d930d93 fpc=560:6f986c987cc364c3e41b261b26df30d930f986c986c9374c364cbe61b261f20d930d936f986c987cc364c3e41b261b26df30d930f986c986c9374c364cbe61b261f20d930d93"),
];

/// The batch selector must reproduce the golden corpus byte-for-byte:
/// every locked vector, pushed through `compress_best_batch_into` in one
/// partial batch, yields exactly the method, size, and payload bytes the
/// per-line path pins above — plus the partial-batch edge shapes (single
/// lane, full 64-lane batch, empty batch).
#[test]
fn batch_path_reproduces_golden_vectors() {
    use pcm_compress::compress_best_into;
    use pcm_util::simd::LineBatch64;
    use pcm_util::DATA_BYTES;

    let corpus = corpus();
    let check_batch = |lines: &[Line512]| {
        let batch = LineBatch64::from_lines(lines);
        let mut bufs = vec![[0u8; DATA_BYTES]; lines.len()];
        let results = pcm_compress::compress_best_batch_into(&batch, &mut bufs);
        assert_eq!(results.len(), lines.len());
        for (lane, line) in lines.iter().enumerate() {
            let mut want_buf = [0u8; DATA_BYTES];
            let (want_method, want_len) = compress_best_into(line, &mut want_buf);
            let (method, len) = results[lane];
            assert_eq!(method, want_method, "method drift in lane {lane}");
            assert_eq!(len, want_len, "size drift in lane {lane}");
            assert_eq!(
                bufs[lane][..len],
                want_buf[..want_len],
                "payload drift in lane {lane}"
            );
            // And against the golden wire format itself.
            let best = compress_best(line);
            assert_eq!(method, best.method());
            assert_eq!(&bufs[lane][..len], best.bytes());
        }
    };

    // The whole corpus as one partial batch (and lane-by-lane singles).
    check_batch(&corpus.iter().map(|(_, l)| *l).collect::<Vec<_>>());
    for (_, line) in &corpus {
        check_batch(std::slice::from_ref(line));
    }
    // A full 64-lane batch: the corpus cycled until every lane is live.
    let full: Vec<Line512> = corpus.iter().cycle().take(64).map(|(_, l)| *l).collect();
    check_batch(&full);
    // The empty batch compresses nothing and touches no buffer.
    let empty = pcm_compress::compress_best_batch_into(&LineBatch64::new(), &mut []);
    assert!(empty.is_empty());
}
