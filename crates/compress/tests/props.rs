//! Property-based round-trip suites for the compression stack: every BDI
//! variant, FPC, and the best-of selector, on random, pattern-crafted,
//! and adversarial (near-miss / boundary-delta) lines, plus the metadata
//! size bounds the controller's 5-bit encoding field relies on.

use pcm_compress::bdi::{self, BdiEncoding, ALL_ENCODINGS};
use pcm_compress::{compress_best, decompress, fpc, CompressedWrite, Method};
use pcm_util::Line512;
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

/// A base whose 2- and 4-byte lanes are pairwise far apart, so smaller-
/// element encodings can't accidentally absorb a larger-element pattern.
fn lane_distinct_base() -> impl Strategy<Value = u64> {
    (0u64..1 << 12)
        .prop_map(|salt| 0x4111_7222_8333_1444u64 ^ salt.wrapping_mul(0x0101_0101_0101_0101))
}

/// A delta strictly outside the `i8` range but comfortably inside `i16`.
fn delta_beyond_i8() -> impl Strategy<Value = i64> {
    prop_oneof![200i64..=30_000, -30_000i64..=-200]
}

/// A delta strictly outside the `i16` range but comfortably inside `i32`.
fn delta_beyond_i16() -> impl Strategy<Value = i64> {
    prop_oneof![40_000i64..=2_000_000_000, -2_000_000_000i64..=-40_000]
}

fn words_line(words: [u64; 8]) -> Line512 {
    Line512::from_words(words)
}

/// Packs sixteen little-endian 4-byte elements into a line.
fn words_from_u32(elems: [u32; 16]) -> Line512 {
    let words: [u64; 8] =
        std::array::from_fn(|i| (elems[2 * i + 1] as u64) << 32 | elems[2 * i] as u64);
    Line512::from_words(words)
}

/// Lines crafted to land on one specific BDI encoding. Each generator
/// defeats every *smaller* encoding (compression tries smallest first).
fn crafted(encoding: BdiEncoding) -> BoxedStrategy<Line512> {
    match encoding {
        BdiEncoding::Zeros => Just(Line512::zero()).boxed(),
        BdiEncoding::Rep8 => (1u64..=u64::MAX).prop_map(|w| words_line([w; 8])).boxed(),
        // 8-byte base, i8 deltas; two distinct deltas so Rep8 fails.
        BdiEncoding::B8D1 => (lane_distinct_base(), -100i64..=20, 1i64..=100)
            .prop_map(|(base, d, gap)| {
                let mut words = [0u64; 8];
                for (i, w) in words.iter_mut().enumerate() {
                    let delta = if i == 3 { d + gap } else { d };
                    *w = base.wrapping_add(delta as u64);
                }
                words_line(words)
            })
            .boxed(),
        // All sixteen 4-byte elements within i8 of the first; moving an
        // odd-index element shifts its word by d << 32, defeating every
        // 8-byte delta range.
        BdiEncoding::B4D1 => (0u32..=u32::MAX, 1i64..=100)
            .prop_map(|(base, d)| {
                let mut elems = [base; 16];
                elems[5] = base.wrapping_add(d as u32);
                elems[2] = base.wrapping_add((d / 2 + 1) as u32);
                words_from_u32(elems)
            })
            .boxed(),
        // 8-byte base, one delta beyond i8 (kills B8D1); 4-byte views see
        // the distinct upper/lower lanes (kills B4D1).
        BdiEncoding::B8D2 => (lane_distinct_base(), delta_beyond_i8())
            .prop_map(|(base, d)| {
                let mut words = [base; 8];
                words[4] = base.wrapping_add(d as u64);
                words_line(words)
            })
            .boxed(),
        // 2-byte elements, i8 deltas, with movement in an upper 2-byte
        // lane of a 4-byte group (kills B4D1/B8D1/B8D2 via d << 16).
        BdiEncoding::B2D1 => (0u16..=u16::MAX, 1i64..=100)
            .prop_map(|(e, d)| {
                let mut halves = [e; 32];
                halves[7] = e.wrapping_add(d as u16); // lane 3 of word 1
                let mut words = [0u64; 8];
                for (i, w) in words.iter_mut().enumerate() {
                    *w = (0..4).fold(0u64, |acc, j| acc | (halves[i * 4 + j] as u64) << (16 * j));
                }
                words_line(words)
            })
            .boxed(),
        // 4-byte elements within i16 of the first, one beyond i8 (kills
        // B4D1) and on an odd index (kills B8D* via d << 32); the base's
        // 16-bit halves differ by more than i8, killing the 2-byte view
        // (B2D1 is smaller than B4D2 and would otherwise win).
        BdiEncoding::B4D2 => (0u16..=u16::MAX, delta_beyond_i8(), delta_beyond_i8())
            .prop_map(|(lo16, half_gap, d)| {
                let base = ((lo16.wrapping_add(half_gap as u16) as u32) << 16) | lo16 as u32;
                let mut elems = [base; 16];
                elems[3] = base.wrapping_add(d as u32);
                words_from_u32(elems)
            })
            .boxed(),
        // 8-byte base, one delta beyond i16 (kills B8D2; its 4-byte view
        // also exceeds i16, killing B4D2).
        BdiEncoding::B8D4 => (lane_distinct_base(), delta_beyond_i16())
            .prop_map(|(base, d)| {
                let mut words = [base; 8];
                words[6] = base.wrapping_add(d as u64);
                words_line(words)
            })
            .boxed(),
    }
}

fn all_variants() -> impl Strategy<Value = BdiEncoding> {
    prop::sample::select(ALL_ENCODINGS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every BDI variant round-trips exactly on a line crafted to require
    /// precisely that variant, at exactly its advertised size.
    #[test]
    fn bdi_roundtrip_every_variant(enc in all_variants().prop_flat_map(|e| {
        crafted(e).prop_map(move |line| (e, line))
    })) {
        let (expected, line) = enc;
        let c = bdi::compress(&line).expect("crafted line must compress");
        prop_assert_eq!(c.encoding(), expected,
            "crafted for {:?}, landed on {:?}", expected, c.encoding());
        prop_assert_eq!(c.size(), expected.compressed_size());
        let back = bdi::decompress(c.encoding(), c.data()).unwrap();
        prop_assert_eq!(back, line);
    }

    /// Whatever BDI picks for an arbitrary line, it round-trips at the
    /// encoding's advertised size.
    #[test]
    fn bdi_roundtrip_random_lines(line in arb_line()) {
        if let Some(c) = bdi::compress(&line) {
            prop_assert_eq!(c.size(), c.encoding().compressed_size());
            prop_assert_eq!(bdi::decompress(c.encoding(), c.data()).unwrap(), line);
        }
    }

    /// Adversarial near-misses: a crafted line with one extra element
    /// pushed out of every delta range must NOT land on the crafted
    /// encoding — and whatever happens instead must still round-trip.
    #[test]
    fn bdi_near_miss_degrades_safely(
        pair in all_variants()
            .prop_filter("zeros/rep8 have no deltas", |e| e.geometry().is_some())
            .prop_flat_map(|e| crafted(e).prop_map(move |line| (e, line))),
        poison in delta_beyond_i16(),
    ) {
        let (enc, line) = pair;
        let mut words = line.words();
        // Push one untouched word far outside every delta range (the
        // poison exceeds i16; stacked on existing deltas it stays outside
        // the crafted encoding's range).
        words[7] = words[7].wrapping_add((poison as u64) << 17);
        let poisoned = Line512::from_words(words);
        if let Some(c) = bdi::compress(&poisoned) {
            prop_assert!(c.encoding() != enc || poisoned == line,
                "poisoned line still fit {:?}", enc);
            prop_assert_eq!(bdi::decompress(c.encoding(), c.data()).unwrap(), poisoned);
        }
    }

    /// FPC round-trips any line, bit-exactly.
    #[test]
    fn fpc_roundtrip_random_lines(line in arb_line()) {
        let c = fpc::compress(&line);
        prop_assert_eq!(fpc::decompress(c.data()).unwrap(), line);
    }

    /// FPC round-trips its favourite patterns (word classes it targets).
    #[test]
    fn fpc_roundtrip_pattern_lines(
        base in any::<u32>(),
        halves in prop::array::uniform8(any::<u16>()),
        pick in 0usize..3,
    ) {
        let words: [u64; 8] = std::array::from_fn(|i| match pick {
            0 => base as u64,                          // zero-extended 32-bit
            1 => (base as i32) as i64 as u64,          // sign-extended 32-bit
            _ => ((halves[i] as i16) as i64) as u64,   // small signed halfword
        });
        let line = Line512::from_words(words);
        let c = fpc::compress(&line);
        prop_assert!(c.size() < 64, "pattern lines must compress, got {}", c.size());
        prop_assert_eq!(fpc::decompress(c.data()).unwrap(), line);
    }

    /// The best-of selector round-trips everything through the stored
    /// (method, bytes) form, never exceeds the uncompressed size, and
    /// never loses to either component compressor.
    #[test]
    fn best_roundtrip_and_optimality(
        line in prop_oneof![
            arb_line(),
            all_variants().prop_flat_map(crafted),
            Just(Line512::zero()),
            Just(Line512::ones()),
        ],
    ) {
        let best = compress_best(&line);
        prop_assert!(best.size() <= 64);
        prop_assert!(!best.bytes().is_empty());
        if let Some(b) = bdi::compress(&line) {
            prop_assert!(best.size() <= b.size());
        }
        let f = fpc::compress(&line);
        if f.size() < 64 {
            prop_assert!(best.size() <= f.size());
        }
        let stored = CompressedWrite::from_parts(best.method(), best.bytes().to_vec()).unwrap();
        prop_assert_eq!(decompress(&stored), line);
    }
}

/// Metadata bounds: the 8 BDI ids are distinct, stable, invertible, and
/// (with FPC + uncompressed) fit the controller's 5-bit encoding field;
/// advertised sizes are orderd smallest-first as the compressor assumes.
#[test]
fn metadata_ids_and_size_bounds() {
    let mut seen = std::collections::BTreeSet::new();
    for enc in ALL_ENCODINGS {
        assert!(enc.id() < 32, "{enc:?} id {} must fit 5 bits", enc.id());
        assert!(seen.insert(enc.id()), "duplicate id {}", enc.id());
        assert_eq!(BdiEncoding::from_id(enc.id()), Some(enc));
        assert!(enc.compressed_size() >= 1 && enc.compressed_size() < 64);
    }
    assert!(
        ALL_ENCODINGS
            .windows(2)
            .all(|w| w[0].compressed_size() <= w[1].compressed_size()),
        "compression relies on smallest-first ordering"
    );
    // Method-level storage never exceeds a line and rejects wrong sizes.
    assert!(CompressedWrite::from_parts(Method::Uncompressed, vec![0u8; 64]).is_ok());
    assert!(CompressedWrite::from_parts(Method::Uncompressed, vec![0u8; 65]).is_err());
    for enc in ALL_ENCODINGS {
        let wrong = vec![0u8; enc.compressed_size() + 1];
        assert!(CompressedWrite::from_parts(Method::Bdi(enc), wrong).is_err());
    }
}
