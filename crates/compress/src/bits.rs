//! Bit-granular writer/reader used by the FPC codec.

/// Appends values of arbitrary bit width (≤ 64) to a byte buffer,
/// LSB-first within each byte.
///
/// # Examples
///
/// ```
/// use pcm_compress::bits::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.push(0b101, 3);
/// w.push(0xFF, 8);
/// let bytes = w.into_bytes();
///
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.pull(3).unwrap(), 0b101);
/// assert_eq!(r.pull(8).unwrap(), 0xFF);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in the last byte (0 means the last byte is full
    /// or the buffer is empty).
    partial: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if `value` has bits set
    /// above `width`.
    pub fn push(&mut self, value: u64, width: u32) {
        assert!(
            (1..=64).contains(&width),
            "width must be 1..=64, got {width}"
        );
        assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} wider than {width} bits"
        );
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            if self.partial == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.partial;
            let take = free.min(remaining);
            let chunk = (v & ((1u64 << take) - 1)) as u8;
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= chunk << self.partial;
            self.partial = (self.partial + take) % 8;
            v >>= take;
            remaining -= take;
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + self.partial as usize
        }
    }

    /// Finishes writing and returns the packed bytes (final partial byte is
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// A [`BitWriter`] over a caller-provided byte buffer: identical bit
/// packing, no allocation. The FPC hot path reuses one stack buffer per
/// write instead of growing a fresh `Vec`.
#[derive(Debug)]
pub struct FixedBitWriter<'a> {
    bytes: &'a mut [u8],
    /// Bytes in use (the last one possibly partial).
    len: usize,
    /// Number of valid bits in the last byte (0 means the last byte is full
    /// or the buffer is empty).
    partial: u32,
}

impl<'a> FixedBitWriter<'a> {
    /// Creates a writer over `bytes`, starting empty.
    pub fn new(bytes: &'a mut [u8]) -> Self {
        FixedBitWriter {
            bytes,
            len: 0,
            partial: 0,
        }
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, if `value` has bits set
    /// above `width`, or if the buffer is full.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!(
            (1..=64).contains(&width),
            "width must be 1..=64, got {width}"
        );
        assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} wider than {width} bits"
        );
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            if self.partial == 0 {
                self.bytes[self.len] = 0;
                self.len += 1;
            }
            let free = 8 - self.partial;
            let take = free.min(remaining);
            let chunk = (v & ((1u64 << take) - 1)) as u8;
            self.bytes[self.len - 1] |= chunk << self.partial;
            self.partial = (self.partial + take) % 8;
            v >>= take;
            remaining -= take;
        }
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.partial == 0 {
            self.len * 8
        } else {
            (self.len - 1) * 8 + self.partial as usize
        }
    }
}

/// Error returned when a [`BitReader`] runs past the end of its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfBits;

impl std::fmt::Display for OutOfBits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bit stream exhausted")
    }
}

impl std::error::Error for OutOfBits {}

/// Reads values of arbitrary bit width (≤ 64) from a byte buffer written by
/// [`BitWriter`].
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads the next `width` bits.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfBits`] if fewer than `width` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    pub fn pull(&mut self, width: u32) -> Result<u64, OutOfBits> {
        assert!(
            (1..=64).contains(&width),
            "width must be 1..=64, got {width}"
        );
        if self.pos + width as usize > self.bytes.len() * 8 {
            return Err(OutOfBits);
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < width {
            let byte = self.bytes[self.pos / 8];
            let off = (self.pos % 8) as u32;
            let avail = 8 - off;
            let take = avail.min(width - got);
            let chunk = ((byte >> off) & ((1u16 << take) - 1) as u8) as u64;
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }

    /// Number of bits remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..16 {
            w.push((i % 2) as u64, 1);
        }
        assert_eq!(w.bit_len(), 16);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..16 {
            assert_eq!(r.pull(1).unwrap(), (i % 2) as u64);
        }
        assert!(r.pull(1).is_err());
    }

    #[test]
    fn mixed_widths_round_trip() {
        let values: &[(u64, u32)] = &[
            (0b101, 3),
            (0xDEAD, 16),
            (0x1F, 5),
            (u64::MAX, 64),
            (0, 7),
            (0x3FFFF, 18),
        ];
        let mut w = BitWriter::new();
        for &(v, width) in values {
            w.push(v, width);
        }
        let total: u32 = values.iter().map(|&(_, w)| w).sum();
        assert_eq!(w.bit_len(), total as usize);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in values {
            assert_eq!(r.pull(width).unwrap(), v, "width {width}");
        }
    }

    #[test]
    fn crossing_byte_boundaries() {
        let mut w = BitWriter::new();
        w.push(0b11, 2);
        w.push(0x1FF, 9); // crosses a byte boundary
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.pull(2).unwrap(), 0b11);
        assert_eq!(r.pull(9).unwrap(), 0x1FF);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn push_rejects_overwide_value() {
        BitWriter::new().push(0b100, 2);
    }

    #[test]
    fn out_of_bits_error() {
        let bytes = [0xAAu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.pull(8).unwrap(), 0xAA);
        assert_eq!(r.pull(1), Err(OutOfBits));
        assert_eq!(OutOfBits.to_string(), "bit stream exhausted");
    }

    #[test]
    fn fixed_writer_matches_vec_writer() {
        let values: &[(u64, u32)] = &[
            (0b101, 3),
            (0xDEAD, 16),
            (0x1F, 5),
            (u64::MAX, 64),
            (0, 7),
            (0x3FFFF, 18),
            (1, 1),
        ];
        let mut w = BitWriter::new();
        let mut buf = [0u8; 32];
        let mut fw = FixedBitWriter::new(&mut buf);
        for &(v, width) in values {
            w.push(v, width);
            fw.put(v, width);
            assert_eq!(w.bit_len(), fw.bit_len());
        }
        let bit_len = fw.bit_len();
        let bytes = w.into_bytes();
        assert_eq!(&buf[..bytes.len()], &bytes[..]);
        assert_eq!(bit_len, 114); // packed into 15 bytes
        assert_eq!(bytes.len(), bit_len.div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn fixed_put_rejects_overwide_value() {
        let mut buf = [0u8; 4];
        FixedBitWriter::new(&mut buf).put(0b100, 2);
    }

    #[test]
    fn remaining_and_pos_track() {
        let bytes = [0u8; 4];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.remaining(), 32);
        r.pull(5).unwrap();
        assert_eq!(r.bit_pos(), 5);
        assert_eq!(r.remaining(), 27);
    }
}
