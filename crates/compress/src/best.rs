//! The memory controller's best-of compression selector (paper §III).
//!
//! The controller has separate BDI and FPC units that work *in parallel* on
//! every write-back; it stores whichever output is smaller, or the original
//! 64 bytes when neither compressor wins. The chosen method is recorded in a
//! 5-bit encoding field of the per-line metadata (paper §III-B).

use crate::bdi::{self, BdiEncoding};
use crate::fpc;
use pcm_util::{Line512, LineBatch64, BATCH_LANES, DATA_BYTES};
use serde::{Deserialize, Serialize};

/// How a line is stored in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// BDI-compressed with the given encoding.
    Bdi(BdiEncoding),
    /// FPC-compressed.
    Fpc,
    /// Stored verbatim (neither compressor produced < 64 bytes, or the
    /// controller's heuristic chose uncompressed).
    Uncompressed,
}

impl Method {
    /// Encodes the method into the 5-bit metadata field.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_compress::Method;
    /// let m = Method::Fpc;
    /// assert_eq!(Method::decode_5bit(m.encode_5bit()), Some(m));
    /// ```
    pub fn encode_5bit(&self) -> u8 {
        match self {
            Method::Bdi(enc) => enc.id(),
            Method::Fpc => 8,
            Method::Uncompressed => 9,
        }
    }

    /// Decodes a 5-bit metadata field; returns `None` for unused code
    /// points.
    pub fn decode_5bit(bits: u8) -> Option<Method> {
        match bits {
            0..=7 => BdiEncoding::from_id(bits).map(Method::Bdi),
            8 => Some(Method::Fpc),
            9 => Some(Method::Uncompressed),
            _ => None,
        }
    }

    /// Decompression latency in CPU cycles (paper Table I; uncompressed
    /// lines need no decompression).
    pub fn decompression_cycles(&self) -> u64 {
        match self {
            Method::Bdi(_) => bdi::BDI_DECOMPRESSION_CYCLES,
            Method::Fpc => fpc::FPC_DECOMPRESSION_CYCLES,
            Method::Uncompressed => 0,
        }
    }

    /// Returns `true` when the method stores compressed data.
    pub fn is_compressed(&self) -> bool {
        !matches!(self, Method::Uncompressed)
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::Bdi(enc) => write!(f, "BDI/{enc}"),
            Method::Fpc => write!(f, "FPC"),
            Method::Uncompressed => write!(f, "uncompressed"),
        }
    }
}

/// A write-back after compression: the method plus the payload bytes that
/// will occupy the compression window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedWrite {
    method: Method,
    bytes: Vec<u8>,
}

/// Error returned by [`CompressedWrite::from_parts`] for inconsistent input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWriteError(String);

impl std::fmt::Display for InvalidWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid compressed write: {}", self.0)
    }
}

impl std::error::Error for InvalidWriteError {}

impl CompressedWrite {
    /// Reassembles a `CompressedWrite` from stored metadata and payload
    /// (e.g. when replaying a recorded trace).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWriteError`] if the payload length is inconsistent
    /// with the method or the payload does not decode.
    pub fn from_parts(method: Method, bytes: Vec<u8>) -> Result<Self, InvalidWriteError> {
        match method {
            Method::Uncompressed => {
                if bytes.len() != DATA_BYTES {
                    return Err(InvalidWriteError(format!(
                        "uncompressed payload must be 64 bytes, got {}",
                        bytes.len()
                    )));
                }
            }
            Method::Bdi(enc) => {
                bdi::decompress(enc, &bytes).map_err(|e| InvalidWriteError(e.to_string()))?;
            }
            Method::Fpc => {
                fpc::decompress(&bytes).map_err(|e| InvalidWriteError(e.to_string()))?;
                if bytes.len() >= DATA_BYTES {
                    return Err(InvalidWriteError(format!(
                        "fpc payload of {} bytes should have been stored uncompressed",
                        bytes.len()
                    )));
                }
            }
        }
        Ok(CompressedWrite { method, bytes })
    }

    /// The storage method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The payload that occupies the compression window.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Size of the compression window in bytes (64 for uncompressed).
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Compression ratio: compressed size / 64.
    pub fn ratio(&self) -> f64 {
        self.size() as f64 / DATA_BYTES as f64
    }
}

/// Compresses a line with both BDI and FPC and keeps the smaller result
/// (paper §III, "BEST"). Falls back to [`Method::Uncompressed`] when neither
/// compressor beats 64 bytes. Ties prefer BDI (1-cycle decompression).
///
/// # Examples
///
/// ```
/// use pcm_compress::{compress_best, Method};
/// use pcm_util::Line512;
///
/// let c = compress_best(&Line512::zero());
/// assert_eq!(c.size(), 1); // BDI zeros encoding wins
/// ```
pub fn compress_best(line: &Line512) -> CompressedWrite {
    let mut buf = [0u8; DATA_BYTES];
    let (method, len) = compress_best_into(line, &mut buf);
    CompressedWrite {
        method,
        bytes: buf[..len].to_vec(),
    }
}

/// Allocation-free [`compress_best`]: writes the winning payload into `out`
/// and returns the method plus payload length (64 for uncompressed). This
/// is the hot-path entry point — `compress_best` delegates here, so the two
/// can never disagree on method, size, or bytes.
// pcm-audit: root(hotpath-alloc) — allocation-free compression entry point; the docstring promises it
pub fn compress_best_into(line: &Line512, out: &mut [u8; DATA_BYTES]) -> (Method, usize) {
    // BDI first: its cascade tries encodings smallest-first and each
    // geometry aborts on the first out-of-range delta, so a miss is cheap.
    // Its payload (≤ 40 bytes) lands directly in `out`.
    let bdi_out = bdi::compress_into(line, out);
    let bdi_size = bdi_out.map(|(_, len)| len).unwrap_or(usize::MAX);

    // FPC wins only when strictly smaller than both the BDI result and the
    // raw line (ties prefer BDI's 1-cycle decompression), so cap its
    // emission at one byte below that bound — anything larger would lose
    // anyway, and the encoder stops as soon as it crosses the cap.
    let budget_bytes = bdi_size.min(DATA_BYTES) - 1;
    let mut fpc_buf = [0u8; fpc::FPC_MAX_BYTES];
    let fpc_bits = if budget_bytes < 2 {
        None // FPC's smallest possible output (an all-zero line) is 2 bytes.
    } else {
        fpc::compress_bounded_into(line, budget_bytes * 8, &mut fpc_buf)
    };

    if let Some(bits) = fpc_bits {
        let len = bits.div_ceil(8);
        out[..len].copy_from_slice(&fpc_buf[..len]);
        (Method::Fpc, len)
    } else if let Some((enc, len)) = bdi_out {
        (Method::Bdi(enc), len)
    } else {
        out.copy_from_slice(&line.to_bytes());
        (Method::Uncompressed, DATA_BYTES)
    }
}

/// Batch entry point: compresses every live lane of a struct-of-arrays
/// batch. `out[i]` receives lane `i`'s payload bytes; the returned vector
/// holds one `(method, payload_len)` per live lane, in lane order.
///
/// Lane `i` matches `compress_best_into(&batch.lane(i), &mut out[i])`
/// exactly — the batch path transposes lanes out and reuses the scalar
/// cascade, so the two can never disagree on method, size, or bytes (the
/// golden-vector corpus pins this).
///
/// # Panics
///
/// Panics if `out` has fewer buffers than the batch has live lanes.
///
/// # Examples
///
/// ```
/// use pcm_compress::{compress_best_batch_into, Method};
/// use pcm_util::{LineBatch64, Line512, DATA_BYTES};
///
/// let batch = LineBatch64::from_lines(&[Line512::zero()]);
/// let mut out = vec![[0u8; DATA_BYTES]; 1];
/// let results = compress_best_batch_into(&batch, &mut out);
/// assert_eq!(results.len(), 1);
/// assert_eq!(results[0].1, 1); // BDI zeros encoding wins
/// ```
// pcm-audit: root(hotpath-alloc) — batch twin of compress_best_into; one Vec for the per-lane results is the only allowance
pub fn compress_best_batch_into(
    batch: &LineBatch64,
    out: &mut [[u8; DATA_BYTES]],
) -> Vec<(Method, usize)> {
    let mut results = [(Method::Uncompressed, 0usize); BATCH_LANES];
    let n = compress_best_batch(batch, out, &mut results[..batch.len()]);
    results[..n].to_vec()
}

/// Fully allocation-free twin of [`compress_best_batch_into`]: per-lane
/// `(method, payload_len)` results land in caller-owned `results` storage
/// instead of a fresh `Vec`. Returns the number of lanes written. This is
/// what the lockstep campaign rounds and the serve batch path call once
/// per round; `compress_best_batch_into` delegates here.
///
/// # Panics
///
/// Panics if `out` or `results` has fewer slots than the batch has live
/// lanes.
// pcm-audit: root(hotpath-alloc) — per-round compression stage of the lockstep drivers; everything lands in caller-owned buffers
pub fn compress_best_batch(
    batch: &LineBatch64,
    out: &mut [[u8; DATA_BYTES]],
    results: &mut [(Method, usize)],
) -> usize {
    assert!(
        out.len() >= batch.len() && results.len() >= batch.len(),
        "need one output buffer and result slot per live lane"
    );
    for lane in 0..batch.len() {
        results[lane] = compress_best_into(&batch.lane(lane), &mut out[lane]);
    }
    batch.len()
}

/// Decompresses a [`CompressedWrite`] back into the original line.
///
/// # Examples
///
/// ```
/// use pcm_compress::{compress_best, decompress};
/// use pcm_util::Line512;
///
/// let mut rng = pcm_util::seeded_rng(9);
/// let line = Line512::random(&mut rng);
/// assert_eq!(decompress(&compress_best(&line)), line);
/// ```
pub fn decompress(write: &CompressedWrite) -> Line512 {
    match write.method {
        Method::Bdi(enc) => {
            bdi::decompress(enc, &write.bytes).expect("CompressedWrite payload is self-consistent")
        }
        Method::Fpc => {
            fpc::decompress(&write.bytes).expect("CompressedWrite payload is self-consistent")
        }
        Method::Uncompressed => {
            let arr: [u8; DATA_BYTES] = write
                .bytes
                .as_slice()
                .try_into()
                .expect("uncompressed payload is 64 bytes");
            Line512::from_bytes(&arr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_line_prefers_bdi() {
        let c = compress_best(&Line512::zero());
        assert_eq!(c.method(), Method::Bdi(BdiEncoding::Zeros));
        assert_eq!(c.size(), 1);
        assert!((c.ratio() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn fpc_wins_on_fpc_friendly_content() {
        // Independent small 4-byte values with no common 8-byte base
        // structure: BDI's pairs differ too much, FPC nibbles win.
        let mut bytes = [0u8; 64];
        let words: [i32; 16] = [5, -3, 7, 1, -8, 2, 6, -1, 4, 0, 3, -6, 7, 2, -4, 1];
        for (i, w) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
        let line = Line512::from_bytes(&bytes);
        let c = compress_best(&line);
        // sizes: BDI B8D* cannot hold alternating sign words cheaply; FPC is
        // 16 * 7 = 112 bits = 14 bytes at most.
        assert_eq!(c.method(), Method::Fpc);
        assert!(c.size() <= 14, "fpc size {}", c.size());
        assert_eq!(decompress(&c), line);
    }

    #[test]
    fn random_line_is_uncompressed() {
        let mut rng = pcm_util::seeded_rng(77);
        let line = Line512::random(&mut rng);
        let c = compress_best(&line);
        assert_eq!(c.method(), Method::Uncompressed);
        assert_eq!(c.size(), 64);
        assert_eq!(decompress(&c), line);
    }

    #[test]
    fn five_bit_codes_are_unique_and_reversible() {
        let mut seen = std::collections::HashSet::new();
        for bits in 0u8..32 {
            if let Some(m) = Method::decode_5bit(bits) {
                assert_eq!(m.encode_5bit(), bits);
                assert!(seen.insert(bits));
            }
        }
        assert_eq!(seen.len(), 10); // 8 BDI + FPC + uncompressed
    }

    #[test]
    fn decompression_cycles_match_table1() {
        assert_eq!(Method::Bdi(BdiEncoding::B8D1).decompression_cycles(), 1);
        assert_eq!(Method::Fpc.decompression_cycles(), 5);
        assert_eq!(Method::Uncompressed.decompression_cycles(), 0);
    }

    #[test]
    fn from_parts_validates() {
        assert!(CompressedWrite::from_parts(Method::Uncompressed, vec![0; 64]).is_ok());
        assert!(CompressedWrite::from_parts(Method::Uncompressed, vec![0; 63]).is_err());
        assert!(CompressedWrite::from_parts(Method::Bdi(BdiEncoding::Zeros), vec![0]).is_ok());
        assert!(CompressedWrite::from_parts(Method::Bdi(BdiEncoding::B8D1), vec![0; 3]).is_err());
        let fpc_payload = crate::fpc::compress(&Line512::zero()).data().to_vec();
        assert!(CompressedWrite::from_parts(Method::Fpc, fpc_payload).is_ok());
    }

    #[test]
    fn display_strings() {
        assert_eq!(Method::Fpc.to_string(), "FPC");
        assert_eq!(Method::Uncompressed.to_string(), "uncompressed");
        assert_eq!(Method::Bdi(BdiEncoding::B8D2).to_string(), "BDI/B8D2");
    }
}
