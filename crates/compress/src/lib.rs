//! Cache-line compression for PCM memories: BDI, FPC, and a best-of selector.
//!
//! This crate implements the two compression schemes the DSN'17 paper's
//! memory controller runs in parallel on every LLC write-back (paper §III,
//! Table I):
//!
//! * [`bdi`] — **Base-Delta-Immediate** (Pekhimenko et al., PACT 2012):
//!   stores one base word plus narrow deltas. Compresses a 64-byte block to
//!   1–40 bytes; decompression costs 1 CPU cycle.
//! * [`fpc`] — **Frequent Pattern Compression** (Alameldeen & Wood,
//!   ISCA 2004): per-4-byte-word prefix codes for frequent patterns
//!   (zero runs, sign-extended narrow values, repeated bytes);
//!   decompression costs 5 CPU cycles.
//! * [`best`] — the controller's selector: runs both, stores whichever is
//!   smaller, falls back to uncompressed when neither wins.
//!
//! Compression here is *lossless and exact*: every compressor has a
//! decompressor and round-trip is property-tested.
//!
//! # Examples
//!
//! ```
//! use pcm_compress::{compress_best, decompress, Method};
//! use pcm_util::Line512;
//!
//! // A line of small 64-bit integers compresses extremely well.
//! let mut bytes = [0u8; 64];
//! for i in 0..8 { bytes[i * 8] = i as u8; }
//! let line = Line512::from_bytes(&bytes);
//!
//! let c = compress_best(&line);
//! assert!(c.size() < 64);
//! assert_ne!(c.method(), Method::Uncompressed);
//! assert_eq!(decompress(&c), line);
//! ```

pub mod bdi;
pub mod best;
pub mod bits;
pub mod fpc;
pub mod fvc;

pub use bdi::BdiEncoding;
pub use best::{
    compress_best, compress_best_batch, compress_best_batch_into, compress_best_into, decompress,
    CompressedWrite, Method,
};
pub use fvc::FvcDictionary;

#[cfg(test)]
mod proptests {
    use super::*;
    use pcm_util::Line512;
    use proptest::prelude::*;

    fn arb_line() -> impl Strategy<Value = Line512> {
        prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
    }

    /// A line biased toward compressible content: one base plus narrow deltas.
    fn arb_compressible_line() -> impl Strategy<Value = Line512> {
        (any::<u64>(), prop::collection::vec(-128i64..128, 8)).prop_map(|(base, deltas)| {
            let mut words = [0u64; 8];
            for (w, d) in words.iter_mut().zip(deltas) {
                *w = base.wrapping_add(d as u64);
            }
            Line512::from_words(words)
        })
    }

    proptest! {
        #[test]
        fn best_round_trips_random(line in arb_line()) {
            let c = compress_best(&line);
            prop_assert_eq!(decompress(&c), line);
            prop_assert!(c.size() <= 64);
        }

        #[test]
        fn best_round_trips_compressible(line in arb_compressible_line()) {
            let c = compress_best(&line);
            prop_assert_eq!(decompress(&c), line);
            prop_assert!(c.size() <= 40, "base-delta content must compress, got {}", c.size());
        }

        #[test]
        fn bdi_round_trips(line in arb_line()) {
            if let Some(c) = bdi::compress(&line) {
                prop_assert_eq!(bdi::decompress(c.encoding(), c.data()).unwrap(), line);
            }
        }

        #[test]
        fn fpc_round_trips(line in arb_line()) {
            let c = fpc::compress(&line);
            prop_assert_eq!(fpc::decompress(c.data()).unwrap(), line);
        }

        #[test]
        fn metadata_round_trips(line in arb_line()) {
            let c = compress_best(&line);
            let bits = c.method().encode_5bit();
            prop_assert_eq!(Method::decode_5bit(bits).unwrap(), c.method());
        }
    }
}
