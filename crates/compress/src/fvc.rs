//! Frequent Value Compression (Yang & Gupta, MICRO 2000) — the paper's
//! reference \[14\].
//!
//! FVC exploits *value locality*: a small set of 32-bit values (0, 1, -1,
//! small constants, common pointers) accounts for a large share of memory
//! words. A dictionary of the `N` most frequent values is trained offline
//! (or per epoch in hardware); each word is then stored as a
//! `1 + log2(N)`-bit dictionary hit or a 33-bit literal miss.
//!
//! The DSN'17 controller uses BDI+FPC; FVC is provided as a third,
//! pluggable compressor so the selector choice can be evaluated — its
//! dictionary state makes it costlier to deploy (the dictionary must be
//! persisted and versioned with the data), which is exactly why the paper
//! prefers stateless codecs.

use crate::bits::{BitReader, BitWriter};
use pcm_util::Line512;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A trained FVC dictionary of 32-bit values.
///
/// # Examples
///
/// ```
/// use pcm_compress::fvc::FvcDictionary;
/// use pcm_util::Line512;
///
/// // Train on a stream dominated by zeros and a magic constant.
/// let mut samples = vec![Line512::zero(); 10];
/// let mut magic = [0u8; 64];
/// for w in 0..16 { magic[w * 4..w * 4 + 4].copy_from_slice(&0xCAFEu32.to_le_bytes()); }
/// samples.push(Line512::from_bytes(&magic));
///
/// let dict = FvcDictionary::train(samples.iter(), 8);
/// let c = dict.compress(&samples[10]);
/// assert!(c.size_bytes() < 64);
/// assert_eq!(dict.decompress(c.data()).unwrap(), samples[10]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FvcDictionary {
    values: Vec<u32>,
    index_bits: u32,
}

/// An FVC-compressed line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FvcCompressed {
    data: Vec<u8>,
    bit_len: usize,
}

impl FvcCompressed {
    /// The packed payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Compressed size in whole bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Exact compressed size in bits.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }
}

/// Error returned when an FVC payload cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeFvcError;

impl std::fmt::Display for DecodeFvcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fvc payload truncated")
    }
}

impl std::error::Error for DecodeFvcError {}

impl FvcDictionary {
    /// Trains a dictionary of the `entries` most frequent 32-bit words in
    /// the sample lines (ties broken by value for determinism).
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two in `2..=256`.
    pub fn train<'a, I: IntoIterator<Item = &'a Line512>>(samples: I, entries: usize) -> Self {
        assert!(
            entries.is_power_of_two() && (2..=256).contains(&entries),
            "dictionary size must be a power of two in 2..=256, got {entries}"
        );
        // BTreeMap keeps the ranking deterministic by construction: the
        // stable sort below then only reorders by frequency, with the
        // value-ascending map order as the built-in tie-break.
        let mut freq: BTreeMap<u32, u64> = BTreeMap::new();
        for line in samples {
            for chunk in line.to_bytes().chunks_exact(4) {
                let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                *freq.entry(v).or_default() += 1;
            }
        }
        let mut ranked: Vec<(u32, u64)> = freq.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let values: Vec<u32> = ranked.into_iter().take(entries).map(|(v, _)| v).collect();
        let index_bits = entries.trailing_zeros();
        FvcDictionary { values, index_bits }
    }

    /// The dictionary contents, most frequent first.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Bits per dictionary index.
    pub fn index_bits(&self) -> u32 {
        self.index_bits
    }

    /// Compresses a line into an [`FvcCompressed`]: per 32-bit word, a 1-bit
    /// hit flag then either the dictionary index or the 32-bit literal.
    pub fn compress(&self, line: &Line512) -> FvcCompressed {
        let mut w = BitWriter::new();
        for chunk in line.to_bytes().chunks_exact(4) {
            let v = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            match self.values.iter().position(|&d| d == v) {
                Some(idx) => {
                    w.push(1, 1);
                    if self.index_bits > 0 {
                        w.push(idx as u64, self.index_bits);
                    }
                }
                None => {
                    w.push(0, 1);
                    w.push(v as u64, 32);
                }
            }
        }
        let bit_len = w.bit_len();
        FvcCompressed {
            data: w.into_bytes(),
            bit_len,
        }
    }

    /// Decompresses an FVC payload.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeFvcError`] on a truncated payload or an index
    /// beyond the trained dictionary.
    pub fn decompress(&self, data: &[u8]) -> Result<Line512, DecodeFvcError> {
        let mut r = BitReader::new(data);
        let mut bytes = [0u8; 64];
        for word in 0..16 {
            let hit = r.pull(1).map_err(|_| DecodeFvcError)?;
            let v = if hit == 1 {
                let idx = if self.index_bits > 0 {
                    r.pull(self.index_bits).map_err(|_| DecodeFvcError)? as usize
                } else {
                    0
                };
                *self.values.get(idx).ok_or(DecodeFvcError)?
            } else {
                r.pull(32).map_err(|_| DecodeFvcError)? as u32
            };
            bytes[word * 4..word * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        Ok(Line512::from_bytes(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::seeded_rng;

    fn zero_heavy_line(nonzero_words: &[(usize, u32)]) -> Line512 {
        let mut bytes = [0u8; 64];
        for &(w, v) in nonzero_words {
            bytes[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        Line512::from_bytes(&bytes)
    }

    #[test]
    fn train_ranks_by_frequency() {
        let lines = vec![
            zero_heavy_line(&[(0, 7), (1, 7), (2, 9)]),
            zero_heavy_line(&[(0, 7)]),
        ];
        let dict = FvcDictionary::train(lines.iter(), 4);
        assert_eq!(dict.values()[0], 0, "zero dominates");
        assert_eq!(dict.values()[1], 7);
        assert_eq!(dict.values()[2], 9);
        assert_eq!(dict.index_bits(), 2);
    }

    #[test]
    fn hit_heavy_line_compresses_hard() {
        let lines = vec![Line512::zero(); 4];
        let dict = FvcDictionary::train(lines.iter(), 8);
        let c = dict.compress(&Line512::zero());
        // 16 words × (1 + 3) bits = 64 bits = 8 bytes.
        assert_eq!(c.bit_len(), 16 * 4);
        assert_eq!(dict.decompress(c.data()).unwrap(), Line512::zero());
    }

    #[test]
    fn misses_round_trip() {
        let mut rng = seeded_rng(3);
        let dict = FvcDictionary::train(std::iter::once(&Line512::zero()), 4);
        for _ in 0..32 {
            let line = Line512::random(&mut rng);
            let c = dict.compress(&line);
            assert_eq!(dict.decompress(c.data()).unwrap(), line);
            // All misses: 16 × 33 bits, worse than raw — as expected for
            // incompressible content.
            assert!(c.bit_len() <= 16 * 33);
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        let dict = FvcDictionary::train(std::iter::once(&Line512::zero()), 4);
        let mut rng = seeded_rng(4);
        let c = dict.compress(&Line512::random(&mut rng));
        assert_eq!(
            dict.decompress(&c.data()[..c.size_bytes() - 2]),
            Err(DecodeFvcError)
        );
    }

    #[test]
    fn mixed_hits_and_misses() {
        let training = vec![
            zero_heavy_line(&[(0, 0xAAAA), (1, 0xAAAA), (5, 0xBBBB)]),
            zero_heavy_line(&[(2, 0xAAAA)]),
        ];
        let dict = FvcDictionary::train(training.iter(), 4);
        let line = zero_heavy_line(&[(0, 0xAAAA), (3, 0xDEAD_BEEF)]);
        let c = dict.compress(&line);
        assert_eq!(dict.decompress(c.data()).unwrap(), line);
        // 15 hits × (1 + 2 index bits) + 1 miss × (1 + 32) = 78 bits.
        assert_eq!(c.bit_len(), 15 * 3 + 33);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_dictionary_size() {
        FvcDictionary::train(std::iter::once(&Line512::zero()), 3);
    }
}
