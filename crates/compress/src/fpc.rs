//! Frequent Pattern Compression (FPC) (Alameldeen & Wood, ISCA 2004).
//!
//! FPC scans a 64-byte block as sixteen 4-byte words and emits, per word, a
//! 3-bit prefix plus a variable payload:
//!
//! | prefix | pattern                                  | payload bits |
//! |--------|------------------------------------------|--------------|
//! | 000    | run of 1–8 zero words                    | 3            |
//! | 001    | 4-bit sign-extended                      | 4            |
//! | 010    | 8-bit sign-extended                      | 8            |
//! | 011    | 16-bit sign-extended                     | 16           |
//! | 100    | low halfword zero (high half stored)     | 16           |
//! | 101    | two halfwords, each a sign-extended byte | 16           |
//! | 110    | word of four repeated bytes              | 8            |
//! | 111    | uncompressed word                        | 32           |
//!
//! The compressed size of an incompressible block *exceeds* 64 bytes
//! (16 × 35 bits = 70 bytes); the [best-of selector](crate::best) falls back
//! to uncompressed storage in that case.

use crate::bits::{BitReader, FixedBitWriter, OutOfBits};
use pcm_util::Line512;
use serde::{Deserialize, Serialize};

/// Decompression latency of FPC in CPU cycles (paper Table I).
pub(crate) const FPC_DECOMPRESSION_CYCLES: u64 = 5;

/// Largest possible FPC output: sixteen raw words at 35 bits each, packed
/// into 70 bytes. Buffers handed to [`compress_bounded_into`] must hold at
/// least this much.
pub const FPC_MAX_BYTES: usize = 70;

const WORDS: usize = 16;

const P_ZERO_RUN: u64 = 0b000;
const P_SIGN4: u64 = 0b001;
const P_SIGN8: u64 = 0b010;
const P_SIGN16: u64 = 0b011;
const P_LOW_ZERO: u64 = 0b100;
const P_TWO_BYTES: u64 = 0b101;
const P_REP_BYTE: u64 = 0b110;
const P_RAW: u64 = 0b111;

/// An FPC-compressed line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FpcCompressed {
    data: Vec<u8>,
    bit_len: usize,
}

impl FpcCompressed {
    /// The packed payload bytes (final byte zero-padded).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Compressed size in whole bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Exact compressed size in bits.
    pub fn bit_len(&self) -> usize {
        self.bit_len
    }
}

/// Error returned when an FPC payload cannot be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeFpcError {
    /// The bit stream ended before sixteen words were reconstructed.
    Truncated,
    /// A zero-run overran the sixteen-word block.
    RunOverflow,
}

impl std::fmt::Display for DecodeFpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeFpcError::Truncated => write!(f, "fpc payload truncated"),
            DecodeFpcError::RunOverflow => write!(f, "fpc zero run exceeds block"),
        }
    }
}

impl std::error::Error for DecodeFpcError {}

impl From<OutOfBits> for DecodeFpcError {
    fn from(_: OutOfBits) -> Self {
        DecodeFpcError::Truncated
    }
}

/// Both halfwords are sign-extended bytes (prefix 101).
fn is_two_sign_extended_bytes(word: u32) -> bool {
    let lo = (word & 0xFFFF) as u16 as i16;
    let hi = (word >> 16) as u16 as i16;
    (-128..=127).contains(&lo) && (-128..=127).contains(&hi)
}

/// The word is one byte repeated four times (prefix 110).
fn is_repeated_byte(word: u32) -> bool {
    let b = word & 0xFF;
    word == b | (b << 8) | (b << 16) | (b << 24)
}

fn fits_signed(v: u32, bits: u32) -> bool {
    let x = v as i32;
    let lo = -(1i64 << (bits - 1));
    let hi = (1i64 << (bits - 1)) - 1;
    (x as i64) >= lo && (x as i64) <= hi
}

/// Compresses a line with FPC. Always succeeds; the result may be larger
/// than 64 bytes for incompressible content.
///
/// # Examples
///
/// ```
/// use pcm_compress::fpc;
/// use pcm_util::Line512;
///
/// // An all-zero block is two zero-run codes: 12 bits, packed into 2 bytes.
/// let c = fpc::compress(&Line512::zero());
/// assert_eq!(c.bit_len(), 12);
/// assert_eq!(c.size(), 2);
/// ```
pub fn compress(line: &Line512) -> FpcCompressed {
    compress_bounded(line, usize::MAX).expect("unbounded compression always succeeds")
}

/// [`compress`], aborting as soon as the output exceeds `max_bits`.
///
/// The best-of selector uses this to cap FPC at one byte below the size it
/// would have to beat: lines where FPC cannot win stop emitting after a few
/// words instead of packing the full (up to 70-byte) stream.
///
/// # Examples
///
/// ```
/// use pcm_compress::fpc;
/// use pcm_util::Line512;
///
/// assert!(fpc::compress_bounded(&Line512::zero(), 12).is_some());
/// assert!(fpc::compress_bounded(&Line512::zero(), 11).is_none());
/// ```
pub fn compress_bounded(line: &Line512, max_bits: usize) -> Option<FpcCompressed> {
    let mut buf = [0u8; FPC_MAX_BYTES];
    let bit_len = compress_bounded_into(line, max_bits, &mut buf)?;
    Some(FpcCompressed {
        data: buf[..bit_len.div_ceil(8)].to_vec(),
        bit_len,
    })
}

/// Allocation-free [`compress_bounded`]: packs the stream into `out` (which
/// must hold at least [`FPC_MAX_BYTES`]) and returns the exact bit length;
/// the payload occupies the first `bit_len.div_ceil(8)` bytes. This is the
/// hot-path entry point — `compress_bounded` delegates here, so the two can
/// never disagree.
pub fn compress_bounded_into(line: &Line512, max_bits: usize, out: &mut [u8]) -> Option<usize> {
    assert!(out.len() >= FPC_MAX_BYTES, "output buffer too small");
    let bytes = line.to_bytes();
    let mut words = [0u32; WORDS];
    for (w, c) in words.iter_mut().zip(bytes.chunks_exact(4)) {
        *w = u32::from_le_bytes(c.try_into().expect("4 bytes"));
    }

    let mut w = FixedBitWriter::new(out);
    let mut i = 0;
    while i < WORDS {
        if w.bit_len() > max_bits {
            return None;
        }
        let word = words[i];
        if word == 0 {
            let mut run = 1;
            while run < 8 && i + run < WORDS && words[i + run] == 0 {
                run += 1;
            }
            w.put(P_ZERO_RUN, 3);
            w.put((run - 1) as u64, 3);
            i += run;
            continue;
        }
        if fits_signed(word, 4) {
            w.put(P_SIGN4, 3);
            w.put((word & 0xF) as u64, 4);
        } else if fits_signed(word, 8) {
            w.put(P_SIGN8, 3);
            w.put((word & 0xFF) as u64, 8);
        } else if fits_signed(word, 16) {
            w.put(P_SIGN16, 3);
            w.put((word & 0xFFFF) as u64, 16);
        } else if word & 0xFFFF == 0 {
            w.put(P_LOW_ZERO, 3);
            w.put((word >> 16) as u64, 16);
        } else if is_two_sign_extended_bytes(word) {
            w.put(P_TWO_BYTES, 3);
            w.put((word & 0xFF) as u64, 8);
            w.put(((word >> 16) & 0xFF) as u64, 8);
        } else if is_repeated_byte(word) {
            w.put(P_REP_BYTE, 3);
            w.put((word & 0xFF) as u64, 8);
        } else {
            w.put(P_RAW, 3);
            w.put(word as u64, 32);
        }
        i += 1;
    }
    let bit_len = w.bit_len();
    if bit_len > max_bits {
        return None;
    }
    Some(bit_len)
}

/// Decompresses an FPC payload back into the original line.
///
/// # Errors
///
/// Returns [`DecodeFpcError`] if the payload is truncated or malformed.
///
/// # Examples
///
/// ```
/// use pcm_compress::fpc;
/// use pcm_util::Line512;
///
/// let mut bytes = [0u8; 64];
/// bytes[0] = 42;
/// let line = Line512::from_bytes(&bytes);
/// let c = fpc::compress(&line);
/// assert_eq!(fpc::decompress(c.data()).unwrap(), line);
/// ```
pub fn decompress(data: &[u8]) -> Result<Line512, DecodeFpcError> {
    let mut r = BitReader::new(data);
    let mut words = [0u32; WORDS];
    let mut i = 0;
    while i < WORDS {
        let prefix = r.pull(3)?;
        match prefix {
            P_ZERO_RUN => {
                let run = r.pull(3)? as usize + 1;
                if i + run > WORDS {
                    return Err(DecodeFpcError::RunOverflow);
                }
                i += run;
            }
            P_SIGN4 => {
                let v = r.pull(4)? as u32;
                words[i] = ((v << 28) as i32 >> 28) as u32;
                i += 1;
            }
            P_SIGN8 => {
                let v = r.pull(8)? as u32;
                words[i] = ((v << 24) as i32 >> 24) as u32;
                i += 1;
            }
            P_SIGN16 => {
                let v = r.pull(16)? as u32;
                words[i] = ((v << 16) as i32 >> 16) as u32;
                i += 1;
            }
            P_LOW_ZERO => {
                let v = r.pull(16)? as u32;
                words[i] = v << 16;
                i += 1;
            }
            P_TWO_BYTES => {
                let lo = r.pull(8)? as u32;
                let hi = r.pull(8)? as u32;
                let lo16 = ((lo << 24) as i32 >> 24) as u32 & 0xFFFF;
                let hi16 = ((hi << 24) as i32 >> 24) as u32 & 0xFFFF;
                words[i] = lo16 | (hi16 << 16);
                i += 1;
            }
            P_REP_BYTE => {
                let b = r.pull(8)? as u32;
                words[i] = b | (b << 8) | (b << 16) | (b << 24);
                i += 1;
            }
            // `pull(3)` yields at most 0b111 == P_RAW, so the raw arm is
            // the exhaustive remainder of the 3-bit prefix space.
            _ => {
                debug_assert_eq!(prefix, P_RAW);
                words[i] = r.pull(32)? as u32;
                i += 1;
            }
        }
    }
    let mut bytes = [0u8; 64];
    for (j, word) in words.iter().enumerate() {
        bytes[j * 4..j * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    Ok(Line512::from_bytes(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(bytes: [u8; 64]) -> (FpcCompressed, Line512) {
        let line = Line512::from_bytes(&bytes);
        let c = compress(&line);
        assert_eq!(decompress(c.data()).unwrap(), line);
        (c, line)
    }

    #[test]
    fn all_zero_block_is_two_runs() {
        let (c, _) = round_trip([0u8; 64]);
        // 16 zero words = two runs of 8 = 2 * 6 bits = 12 bits = 2 bytes.
        assert_eq!(c.bit_len(), 12);
        assert_eq!(c.size(), 2);
    }

    #[test]
    fn sign_extended_nibbles() {
        let mut bytes = [0u8; 64];
        // word 0 = 7 (fits 4-bit), word 1 = -2 (0xFFFFFFFE, fits 4-bit).
        bytes[0] = 7;
        bytes[4..8].copy_from_slice(&(-2i32).to_le_bytes());
        let (c, _) = round_trip(bytes);
        // 2 * (3+4) + zero runs: words 2..16 = 14 zeros = run(8) + run(6) = 12 bits.
        assert_eq!(c.bit_len(), 14 + 12);
    }

    #[test]
    fn sign_extended_bytes_and_halfwords() {
        let mut bytes = [0u8; 64];
        bytes[0..4].copy_from_slice(&100i32.to_le_bytes()); // 8-bit
        bytes[4..8].copy_from_slice(&(-100i32).to_le_bytes()); // 8-bit
        bytes[8..12].copy_from_slice(&30000i32.to_le_bytes()); // 16-bit
        bytes[12..16].copy_from_slice(&(-30000i32).to_le_bytes()); // 16-bit
        round_trip(bytes);
    }

    #[test]
    fn low_zero_halfword() {
        let mut bytes = [0u8; 64];
        bytes[0..4].copy_from_slice(&0xABCD_0000u32.to_le_bytes());
        let (c, _) = round_trip(bytes);
        assert_eq!(c.bit_len(), 3 + 16 + 12);
    }

    #[test]
    fn two_sign_extended_halfword_bytes() {
        let mut bytes = [0u8; 64];
        // low half = -5 (0xFFFB), high half = 100 (0x0064).
        bytes[0..4].copy_from_slice(&0x0064_FFFBu32.to_le_bytes());
        let (c, _) = round_trip(bytes);
        assert_eq!(c.bit_len(), 3 + 16 + 12);
    }

    #[test]
    fn repeated_byte_word() {
        let mut bytes = [0u8; 64];
        bytes[0..4].copy_from_slice(&0x5A5A_5A5Au32.to_le_bytes());
        let (c, _) = round_trip(bytes);
        assert_eq!(c.bit_len(), 3 + 8 + 12);
    }

    #[test]
    fn raw_words() {
        let mut bytes = [0u8; 64];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = (i * 37 + 101) as u8;
        }
        let (c, _) = round_trip(bytes);
        assert!(
            c.size() > 64,
            "incompressible block must exceed 64 bytes, got {}",
            c.size()
        );
    }

    #[test]
    fn zero_run_capped_at_eight() {
        let mut bytes = [0u8; 64];
        bytes[60] = 1; // word 15 nonzero, words 0..15 zero
        let (c, _) = round_trip(bytes);
        // run(8) + run(7) + sign4 = 6 + 6 + 7 = 19 bits.
        assert_eq!(c.bit_len(), 19);
    }

    #[test]
    fn decode_truncated_fails() {
        let line = Line512::from_bytes(&{
            let mut b = [0u8; 64];
            b[0] = 0x12;
            b[1] = 0x34;
            b[2] = 0x56;
            b[3] = 0x78;
            b
        });
        let c = compress(&line);
        let err = decompress(&c.data()[..c.size() - 1]).unwrap_err();
        assert_eq!(err, DecodeFpcError::Truncated);
    }

    #[test]
    fn mixed_patterns_exercise_every_prefix() {
        let mut bytes = [0u8; 64];
        let words: [u32; 16] = [
            0,           // zero run
            3,           // sign4
            200, // raw? 200 fits i8? 200 > 127, as i32=200 doesn't fit i8... fits i16 -> sign16
            0x7FFF, // sign16
            0xFFFF_0000, // low-zero? as i32 = -65536, fits sign16? -65536 < -32768 no; low half zero -> P_LOW_ZERO
            0x0042_0099, // hmm low=0x0099=153 as i16=153 fits i8? 153>127 no -> not two-bytes; raw
            0x7777_7777, // repeated byte
            0xDEAD_BEEF, // raw
            0,
            0,
            0,           // zero run
            0x00FF_00FE, // low=0x00FE=254>127 -> raw
            1,           // sign4
            0xFFFF_FFFF, // -1 sign4
            0x0001_0001, // lo=1 hi=1 -> two-bytes
            0x8000_0000, // low zero -> P_LOW_ZERO
        ];
        for (i, word) in words.iter().enumerate() {
            bytes[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        round_trip(bytes);
    }
}
