//! Base-Delta-Immediate (BDI) compression (Pekhimenko et al., PACT 2012).
//!
//! BDI exploits low *value dynamism*: the words of a block usually lie close
//! to a common base, so the block can be stored as one base plus narrow
//! per-word deltas. We implement the single-base variant whose compressed
//! sizes match the canonical BDI table (and the 1–40-byte range in the
//! paper's Table I):
//!
//! | encoding | element | delta | size (bytes) |
//! |----------|---------|-------|--------------|
//! | Zeros    | —       | —     | 1            |
//! | Rep8     | 8 B     | —     | 8            |
//! | B8D1     | 8 B     | 1 B   | 16           |
//! | B4D1     | 4 B     | 1 B   | 20           |
//! | B8D2     | 8 B     | 2 B   | 24           |
//! | B2D1     | 2 B     | 1 B   | 34           |
//! | B4D2     | 4 B     | 2 B   | 36           |
//! | B8D4     | 8 B     | 4 B   | 40           |

use pcm_util::{Line512, DATA_BYTES};
use serde::{Deserialize, Serialize};

/// Decompression latency of BDI in CPU cycles (paper Table I).
pub(crate) const BDI_DECOMPRESSION_CYCLES: u64 = 1;

/// Largest possible BDI payload (the B8D4 encoding, paper Table I).
pub const BDI_MAX_BYTES: usize = 40;

/// The eight BDI encodings, ordered by compressed size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum BdiEncoding {
    /// All 64 bytes are zero; stored as a single zero byte.
    Zeros,
    /// One 8-byte value repeated eight times.
    Rep8,
    /// 8-byte elements, 1-byte deltas.
    B8D1,
    /// 4-byte elements, 1-byte deltas.
    B4D1,
    /// 8-byte elements, 2-byte deltas.
    B8D2,
    /// 2-byte elements, 1-byte deltas.
    B2D1,
    /// 4-byte elements, 2-byte deltas.
    B4D2,
    /// 8-byte elements, 4-byte deltas.
    B8D4,
}

/// All encodings in the order compression attempts them (smallest first).
pub const ALL_ENCODINGS: [BdiEncoding; 8] = [
    BdiEncoding::Zeros,
    BdiEncoding::Rep8,
    BdiEncoding::B8D1,
    BdiEncoding::B4D1,
    BdiEncoding::B8D2,
    BdiEncoding::B2D1,
    BdiEncoding::B4D2,
    BdiEncoding::B8D4,
];

impl BdiEncoding {
    /// Compressed size in bytes for a 64-byte input.
    pub fn compressed_size(&self) -> usize {
        match self {
            BdiEncoding::Zeros => 1,
            BdiEncoding::Rep8 => 8,
            BdiEncoding::B8D1 => 16,
            BdiEncoding::B4D1 => 20,
            BdiEncoding::B8D2 => 24,
            BdiEncoding::B2D1 => 34,
            BdiEncoding::B4D2 => 36,
            BdiEncoding::B8D4 => 40,
        }
    }

    /// `(element_bytes, delta_bytes)` for base-delta encodings, `None` for
    /// the `Zeros` and `Rep8` special cases.
    pub fn geometry(&self) -> Option<(usize, usize)> {
        match self {
            BdiEncoding::Zeros | BdiEncoding::Rep8 => None,
            BdiEncoding::B8D1 => Some((8, 1)),
            BdiEncoding::B4D1 => Some((4, 1)),
            BdiEncoding::B8D2 => Some((8, 2)),
            BdiEncoding::B2D1 => Some((2, 1)),
            BdiEncoding::B4D2 => Some((4, 2)),
            BdiEncoding::B8D4 => Some((8, 4)),
        }
    }

    /// A stable small integer id (0..8) used in metadata encodings.
    pub fn id(&self) -> u8 {
        match self {
            BdiEncoding::Zeros => 0,
            BdiEncoding::Rep8 => 1,
            BdiEncoding::B8D1 => 2,
            BdiEncoding::B4D1 => 3,
            BdiEncoding::B8D2 => 4,
            BdiEncoding::B2D1 => 5,
            BdiEncoding::B4D2 => 6,
            BdiEncoding::B8D4 => 7,
        }
    }

    /// Inverse of [`id`](Self::id).
    pub fn from_id(id: u8) -> Option<BdiEncoding> {
        ALL_ENCODINGS.iter().copied().find(|e| e.id() == id)
    }
}

impl std::fmt::Display for BdiEncoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A successfully BDI-compressed line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BdiCompressed {
    encoding: BdiEncoding,
    data: Vec<u8>,
}

impl BdiCompressed {
    /// The encoding used.
    pub fn encoding(&self) -> BdiEncoding {
        self.encoding
    }

    /// The compressed payload bytes.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Compressed size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }
}

/// Error returned when decompression is handed malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeBdiError {
    expected: usize,
    got: usize,
}

impl std::fmt::Display for DecodeBdiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "bdi payload length {} does not match encoding (expected {})",
            self.got, self.expected
        )
    }
}

impl std::error::Error for DecodeBdiError {}

/// Reads the `k`-byte little-endian element at index `i`.
fn element(bytes: &[u8; DATA_BYTES], k: usize, i: usize) -> u64 {
    let mut v = 0u64;
    for b in 0..k {
        v |= (bytes[i * k + b] as u64) << (8 * b);
    }
    v
}

/// Sign-extends the low `bits` bits of `v`.
fn sign_extend(v: u64, bits: usize) -> i64 {
    debug_assert!(bits <= 64);
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// Attempts to compress with a specific base-delta geometry, emitting the
/// payload into `out` as it validates so a failing element aborts without
/// having buffered the deltas separately. Returns the payload length.
fn try_base_delta_into(
    bytes: &[u8; DATA_BYTES],
    k: usize,
    d: usize,
    out: &mut [u8],
) -> Option<usize> {
    let n = DATA_BYTES / k;
    let base = element(bytes, k, 0);
    let dbits = d * 8;
    let lo = -(1i64 << (dbits - 1));
    let hi = (1i64 << (dbits - 1)) - 1;
    out[..k].copy_from_slice(&base.to_le_bytes()[..k]);
    let mut len = k;
    for i in 0..n {
        let e = element(bytes, k, i);
        // Wrapping difference within the k-byte element width.
        let raw = e.wrapping_sub(base);
        let delta = sign_extend(raw, k * 8);
        if delta < lo || delta > hi {
            return None;
        }
        out[len..len + d].copy_from_slice(&(delta as u64).to_le_bytes()[..d]);
        len += d;
    }
    Some(len)
}

/// Compresses a line with the smallest applicable BDI encoding into a
/// [`BdiCompressed`].
///
/// Returns `None` when no encoding applies (the line must then be stored
/// uncompressed or handed to FPC).
///
/// # Examples
///
/// ```
/// use pcm_compress::bdi;
/// use pcm_util::Line512;
///
/// let zeros = Line512::zero();
/// let c = bdi::compress(&zeros).expect("zero line compresses");
/// assert_eq!(c.encoding(), bdi::BdiEncoding::Zeros);
/// assert_eq!(c.size(), 1);
/// ```
pub fn compress(line: &Line512) -> Option<BdiCompressed> {
    let mut buf = [0u8; BDI_MAX_BYTES];
    let (encoding, len) = compress_into(line, &mut buf)?;
    Some(BdiCompressed {
        encoding,
        data: buf[..len].to_vec(),
    })
}

/// Allocation-free [`compress`]: writes the payload into `out` (which must
/// hold at least [`BDI_MAX_BYTES`]) and returns the encoding plus payload
/// length. This is the hot-path entry point — `compress` delegates here, so
/// the two can never disagree.
pub(crate) fn compress_into(line: &Line512, out: &mut [u8]) -> Option<(BdiEncoding, usize)> {
    assert!(out.len() >= BDI_MAX_BYTES, "output buffer too small");
    let bytes = line.to_bytes();

    if line.is_zero() {
        out[0] = 0;
        return Some((BdiEncoding::Zeros, 1));
    }

    let words = line.words();
    if words.iter().all(|&w| w == words[0]) {
        out[..8].copy_from_slice(&words[0].to_le_bytes());
        return Some((BdiEncoding::Rep8, 8));
    }

    for enc in ALL_ENCODINGS {
        if let Some((k, d)) = enc.geometry() {
            if let Some(len) = try_base_delta_into(&bytes, k, d, out) {
                debug_assert_eq!(len, enc.compressed_size());
                return Some((enc, len));
            }
        }
    }
    None
}

/// Decompresses a BDI payload back into the original line.
///
/// # Errors
///
/// Returns [`DecodeBdiError`] if `data` has the wrong length for `encoding`.
///
/// # Examples
///
/// ```
/// use pcm_compress::bdi;
/// use pcm_util::Line512;
///
/// let mut bytes = [7u8; 64];
/// bytes[0] = 9;
/// let line = Line512::from_bytes(&bytes);
/// let c = bdi::compress(&line).unwrap();
/// assert_eq!(bdi::decompress(c.encoding(), c.data()).unwrap(), line);
/// ```
pub fn decompress(encoding: BdiEncoding, data: &[u8]) -> Result<Line512, DecodeBdiError> {
    let expected = encoding.compressed_size();
    if data.len() != expected {
        return Err(DecodeBdiError {
            expected,
            got: data.len(),
        });
    }
    match encoding {
        BdiEncoding::Zeros => Ok(Line512::zero()),
        BdiEncoding::Rep8 => {
            let w = u64::from_le_bytes(data.try_into().expect("8 bytes"));
            Ok(Line512::from_words([w; 8]))
        }
        _ => {
            let (k, d) = encoding.geometry().expect("base-delta encoding");
            let n = DATA_BYTES / k;
            let mut base = 0u64;
            for (b, &byte) in data.iter().enumerate().take(k) {
                base |= (byte as u64) << (8 * b);
            }
            let mut out = [0u8; DATA_BYTES];
            let mask = if k == 8 {
                u64::MAX
            } else {
                (1u64 << (k * 8)) - 1
            };
            for i in 0..n {
                let mut raw = 0u64;
                for b in 0..d {
                    raw |= (data[k + i * d + b] as u64) << (8 * b);
                }
                let delta = sign_extend(raw, d * 8);
                let e = base.wrapping_add(delta as u64) & mask;
                out[i * k..i * k + k].copy_from_slice(&e.to_le_bytes()[..k]);
            }
            Ok(Line512::from_bytes(&out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_of_words(words: [u64; 8]) -> Line512 {
        Line512::from_words(words)
    }

    #[test]
    fn zeros_encoding() {
        let c = compress(&Line512::zero()).unwrap();
        assert_eq!(c.encoding(), BdiEncoding::Zeros);
        assert_eq!(c.size(), 1);
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), Line512::zero());
    }

    #[test]
    fn repeated_value_encoding() {
        let line = line_of_words([0xDEAD_BEEF_CAFE_F00D; 8]);
        let c = compress(&line).unwrap();
        assert_eq!(c.encoding(), BdiEncoding::Rep8);
        assert_eq!(c.size(), 8);
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
    }

    #[test]
    fn b8d1_small_deltas() {
        let base = 0x1000_0000_0000u64;
        let line = line_of_words([
            base,
            base + 1,
            base + 127,
            base.wrapping_sub(128),
            base,
            base + 2,
            base + 3,
            base + 4,
        ]);
        let c = compress(&line).unwrap();
        assert_eq!(c.encoding(), BdiEncoding::B8D1);
        assert_eq!(c.size(), 16);
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
    }

    #[test]
    fn b8d2_when_deltas_exceed_byte() {
        let base = 0x55u64 << 32;
        let line = line_of_words([
            base,
            base + 200,
            base + 30000,
            base - 30000,
            base,
            base,
            base,
            base + 129,
        ]);
        let c = compress(&line).unwrap();
        assert_eq!(c.encoding(), BdiEncoding::B8D2);
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
    }

    #[test]
    fn b8d4_wide_deltas() {
        let base = 1u64 << 60;
        let line = line_of_words([
            base,
            base + 1_000_000,
            base.wrapping_sub(2_000_000_000),
            base + 2_000_000_000,
            base,
            base + 70_000,
            base,
            base + 5,
        ]);
        let c = compress(&line).unwrap();
        assert_eq!(c.encoding(), BdiEncoding::B8D4);
        assert_eq!(c.size(), 40);
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
    }

    #[test]
    fn b4d1_four_byte_elements() {
        // 4-byte elements clustered near a base, but 8-byte pairs far apart
        // (forces element size 4). Element i = base4 + i.
        let mut bytes = [0u8; 64];
        let base4: u32 = 0xABCD_1200;
        for i in 0..16 {
            let v = base4 + i as u32;
            bytes[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
        let line = Line512::from_bytes(&bytes);
        let c = compress(&line).unwrap();
        // B8D1 can't hold the alternating high words; B4D1 can.
        assert_eq!(c.encoding(), BdiEncoding::B4D1);
        assert_eq!(c.size(), 20);
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
    }

    #[test]
    fn b2d1_two_byte_elements() {
        let mut bytes = [0u8; 64];
        let base2: u16 = 0x7F00;
        for i in 0..32 {
            let v = base2.wrapping_add((i % 5) as u16);
            bytes[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
        }
        // Perturb so 4-byte views have wide deltas: alternate high byte.
        bytes[1] = 0x7F;
        let line = Line512::from_bytes(&bytes);
        if let Some(c) = compress(&line) {
            assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
        }
    }

    #[test]
    fn incompressible_returns_none() {
        let mut rng = pcm_util::seeded_rng(1234);
        // Random lines are essentially never BDI-compressible.
        let mut none_count = 0;
        for _ in 0..64 {
            if compress(&Line512::random(&mut rng)).is_none() {
                none_count += 1;
            }
        }
        assert!(
            none_count >= 60,
            "random data should rarely compress, got {none_count}/64 none"
        );
    }

    #[test]
    fn wrapping_deltas_round_trip() {
        // Deltas that wrap around the element width must still round-trip.
        let base = u64::MAX - 3;
        let line = line_of_words([
            base,
            base.wrapping_add(5),
            base,
            base,
            base,
            base,
            base,
            base,
        ]);
        let c = compress(&line).unwrap();
        assert_eq!(decompress(c.encoding(), c.data()).unwrap(), line);
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let err = decompress(BdiEncoding::B8D1, &[0u8; 5]).unwrap_err();
        assert_eq!(
            err.to_string(),
            "bdi payload length 5 does not match encoding (expected 16)"
        );
    }

    #[test]
    fn encoding_ids_round_trip() {
        for enc in ALL_ENCODINGS {
            assert_eq!(BdiEncoding::from_id(enc.id()), Some(enc));
        }
        assert_eq!(BdiEncoding::from_id(200), None);
    }

    #[test]
    fn sizes_are_within_paper_range() {
        for enc in ALL_ENCODINGS {
            let s = enc.compressed_size();
            assert!((1..=40).contains(&s), "{enc}: {s}");
        }
    }
}
