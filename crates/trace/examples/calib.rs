//! Calibration report: realized statistics of every workload profile.
//!
//! Prints, per content class, the mean BEST-compressed size, then per
//! SPEC-like profile: target vs realized compression ratio, the
//! per-address max-size CDF point the Fig. 11 study uses, and the
//! consecutive-write size-change probability (Fig. 6). Used when tuning
//! the class mixtures in `profile.rs`.
//!
//! Run with: `cargo run -p pcm-trace --release --example calib`

use pcm_compress::compress_best;
use pcm_trace::calibrate::{calibrate, max_size_cdf, size_change_probability};
use pcm_trace::content::ALL_CLASSES;
use pcm_trace::profile::ALL_APPS;
use pcm_trace::TraceGenerator;

fn main() {
    let mut rng = pcm_util::seeded_rng(1);
    for class in ALL_CLASSES {
        let total: usize = (0..2000)
            .map(|_| compress_best(&class.generate(&mut rng)).size())
            .sum();
        println!(
            "class {:10} mean {:.1}",
            class.to_string(),
            total as f64 / 2000.0
        );
    }
    for app in ALL_APPS {
        let c = calibrate(&app.profile(), 512, 1000 + app as u64, 6000);
        let mut g = TraceGenerator::from_profile(app.profile(), 256, 4);
        let cdf = max_size_cdf(&mut g, 20000);
        let mut g2 = TraceGenerator::from_profile(app.profile(), 64, 3);
        let scp = size_change_probability(&mut g2, 8000);
        println!(
            "{:10} target {:.2} realized {:.3} | cdf<=25B {:.2} | sizechange {:.2}",
            app.name(),
            c.target_cr,
            c.realized_cr,
            cdf.fraction_le(25.0),
            scp
        );
    }
}
