//! Workload-model fidelity tests: the synthetic traces must preserve the
//! statistics the lifetime results depend on, across seeds and scales.

use pcm_compress::compress_best;
use pcm_trace::calibrate::{calibrate, compression_stats, size_change_probability};
use pcm_trace::profile::ALL_APPS;
use pcm_trace::{BlockStream, Compressibility, SpecApp, Trace, TraceGenerator};
use pcm_util::child_seed;

#[test]
fn calibration_is_seed_stable() {
    // Table III must hold for seeds the profiles were NOT tuned on.
    for app in [
        SpecApp::Milc,
        SpecApp::Gcc,
        SpecApp::Lbm,
        SpecApp::Zeusmp,
        SpecApp::Hmmer,
    ] {
        for seed in [0xDEAD, 0xBEEF, 7777] {
            let c = calibrate(&app.profile(), 512, seed, 6_000);
            assert!(
                c.error < 0.10,
                "{} @seed {seed}: realized {:.3} vs target {:.3}",
                app.name(),
                c.realized_cr,
                c.target_cr
            );
        }
    }
}

#[test]
fn compressibility_classes_order_realized_cr() {
    // Every H app must realize a lower CR than every L app, at any seed.
    let cr = |app: SpecApp| {
        let mut g = TraceGenerator::from_profile(app.profile(), 256, 0x5151);
        compression_stats(&mut g, 4_000).cr
    };
    for h in ALL_APPS
        .iter()
        .filter(|a| a.profile().class == Compressibility::High)
    {
        for l in ALL_APPS
            .iter()
            .filter(|a| a.profile().class == Compressibility::Low)
        {
            assert!(
                cr(*h) < cr(*l),
                "{} (H) must compress better than {} (L)",
                h.name(),
                l.name()
            );
        }
    }
}

#[test]
fn generator_and_block_stream_share_dynamics() {
    // The standalone BlockStream must exhibit the same size-change
    // behaviour as the full generator (the lifetime engine relies on it).
    for app in [SpecApp::Bzip2, SpecApp::CactusADM] {
        let gen_prob = {
            let mut g = TraceGenerator::from_profile(app.profile(), 64, 900);
            size_change_probability(&mut g, 8_000)
        };
        let stream_prob = {
            let mut changes = 0u32;
            let mut total = 0u32;
            for b in 0..32 {
                let mut s = BlockStream::new(app.profile(), child_seed(901, b));
                let mut last = compress_best(&s.current()).size();
                for _ in 0..100 {
                    let size = compress_best(&s.next_data()).size();
                    total += 1;
                    changes += (size != last) as u32;
                    last = size;
                }
            }
            changes as f64 / total as f64
        };
        assert!(
            (gen_prob - stream_prob).abs() < 0.15,
            "{}: generator {gen_prob:.2} vs stream {stream_prob:.2}",
            app.name()
        );
    }
}

#[test]
fn trace_file_round_trip_preserves_replay() {
    let mut g = TraceGenerator::from_profile(SpecApp::Mcf.profile(), 128, 17);
    let trace = g.generate(3_000);
    let restored = Trace::from_bytes(&trace.to_bytes()).expect("decodes");
    assert_eq!(restored, trace);
    // Replaying the restored trace yields identical compression stats.
    let total: usize = restored.iter().map(|r| compress_best(&r.data).size()).sum();
    let original: usize = trace.iter().map(|r| compress_best(&r.data).size()).sum();
    assert_eq!(total, original);
}

#[test]
fn wpki_ordering_matches_table3() {
    // Spot-check relative write intensities used for Table IV months.
    let wpki = |a: SpecApp| a.profile().wpki;
    assert!(wpki(SpecApp::Lbm) > wpki(SpecApp::Mcf));
    assert!(wpki(SpecApp::Mcf) > wpki(SpecApp::Bzip2));
    assert!(wpki(SpecApp::Bzip2) > wpki(SpecApp::Astar));
}

#[test]
fn hot_set_is_stable_across_trace_chunks() {
    // Zipf popularity should make the same lines hot early and late.
    let mut g = TraceGenerator::from_profile(SpecApp::Mcf.profile(), 256, 23);
    let count_hot = |t: &Trace| {
        let mut counts = vec![0u32; 256];
        for r in t {
            counts[r.line as usize] += 1;
        }
        let mut idx: Vec<usize> = (0..256).collect();
        idx.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        idx[..16].to_vec()
    };
    let early = count_hot(&g.generate(20_000));
    let late = count_hot(&g.generate(20_000));
    let overlap = early.iter().filter(|i| late.contains(i)).count();
    assert!(
        overlap >= 10,
        "hot sets should overlap strongly, got {overlap}/16"
    );
}
