//! Workload profiles for the 15 SPEC CPU2006 applications of Table III.
//!
//! Each profile captures the statistics the paper publishes for the
//! application — WPKI, compression ratio, compressibility class — plus the
//! generative knobs (content-class mixture, size volatility, address skew)
//! tuned so the realized trace matches those statistics. The calibration
//! test in `calibrate.rs` pins the realized CR to Table III within
//! tolerance.

use crate::content::ContentClass;
use serde::{Deserialize, Serialize};

/// Table III compressibility class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compressibility {
    /// CR below 0.3.
    High,
    /// CR between 0.3 and 0.7.
    Medium,
    /// CR above 0.7.
    Low,
}

impl std::fmt::Display for Compressibility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Compressibility::High => write!(f, "H"),
            Compressibility::Medium => write!(f, "M"),
            Compressibility::Low => write!(f, "L"),
        }
    }
}

/// The 15 memory-intensive SPEC CPU2006 applications evaluated in the
/// paper (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum SpecApp {
    Astar,
    Bwaves,
    Bzip2,
    CactusADM,
    Calculix,
    Gcc,
    GemsFDTD,
    Gobmk,
    Hmmer,
    Leslie3d,
    Lbm,
    Mcf,
    Milc,
    Sjeng,
    Zeusmp,
}

/// All applications, in the paper's Table III order.
pub const ALL_APPS: [SpecApp; 15] = [
    SpecApp::Astar,
    SpecApp::Bwaves,
    SpecApp::Bzip2,
    SpecApp::CactusADM,
    SpecApp::Calculix,
    SpecApp::Gcc,
    SpecApp::GemsFDTD,
    SpecApp::Gobmk,
    SpecApp::Hmmer,
    SpecApp::Leslie3d,
    SpecApp::Lbm,
    SpecApp::Mcf,
    SpecApp::Milc,
    SpecApp::Sjeng,
    SpecApp::Zeusmp,
];

impl SpecApp {
    /// Lower-case application name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SpecApp::Astar => "astar",
            SpecApp::Bwaves => "bwaves",
            SpecApp::Bzip2 => "bzip2",
            SpecApp::CactusADM => "cactusADM",
            SpecApp::Calculix => "calculix",
            SpecApp::Gcc => "gcc",
            SpecApp::GemsFDTD => "GemsFDTD",
            SpecApp::Gobmk => "gobmk",
            SpecApp::Hmmer => "hmmer",
            SpecApp::Leslie3d => "leslie3d",
            SpecApp::Lbm => "lbm",
            SpecApp::Mcf => "mcf",
            SpecApp::Milc => "milc",
            SpecApp::Sjeng => "sjeng",
            SpecApp::Zeusmp => "zeusmp",
        }
    }

    /// The workload profile for this application.
    pub fn profile(&self) -> WorkloadProfile {
        profile_of(*self)
    }
}

impl std::fmt::Display for SpecApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Weights over the eight content classes (need not be normalized).
pub(crate) type ClassMix = [(ContentClass, f64); 8];

/// A generative workload model calibrated to one application's published
/// statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// The application.
    pub app: SpecApp,
    /// LLC write-backs per kilo-instruction (Table III).
    pub wpki: f64,
    /// Target compression ratio under BEST (Table III).
    pub target_cr: f64,
    /// Table III compressibility class.
    pub class: Compressibility,
    /// Content-class mixture a fresh/morphed block samples from.
    pub class_mix: ClassMix,
    /// Probability that a rewrite *morphs* the block to a freshly-sampled
    /// class (compressed size jumps) rather than mutating in place.
    pub size_volatility: f64,
    /// 8-byte words rewritten by an in-place mutation.
    pub mutation_words: usize,
    /// Zipf exponent of line popularity.
    pub zipf_s: f64,
    /// Demand reads per write-back (used by the §V.B performance study).
    pub reads_per_write: f64,
}

impl WorkloadProfile {
    /// Samples a content class from the mixture.
    pub fn sample_class<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> ContentClass {
        use rand::RngExt;
        let total: f64 = self.class_mix.iter().map(|(_, w)| w).sum();
        let mut u: f64 = rng.random::<f64>() * total;
        for &(class, w) in &self.class_mix {
            if u < w {
                return class;
            }
            u -= w;
        }
        self.class_mix[self.class_mix.len() - 1].0
    }
}

/// Convenience constructor for a class mixture (weights need not sum to 1).
#[allow(clippy::too_many_arguments)] // one positional weight per content class
const fn mix(
    zero: f64,
    repeated: f64,
    narrow1: f64,
    narrow2: f64,
    fpc: f64,
    narrow4: f64,
    mixed: f64,
    random: f64,
) -> ClassMix {
    [
        (ContentClass::Zero, zero),
        (ContentClass::Repeated, repeated),
        (ContentClass::Narrow1, narrow1),
        (ContentClass::Narrow2, narrow2),
        (ContentClass::FpcSmall, fpc),
        (ContentClass::Narrow4, narrow4),
        (ContentClass::Mixed, mixed),
        (ContentClass::Random, random),
    ]
}

fn profile_of(app: SpecApp) -> WorkloadProfile {
    use Compressibility::{High, Low, Medium};
    use SpecApp::*;
    // Mixtures are calibrated so the realized BEST compression ratio
    // matches Table III (asserted by `calibrate::tests`); volatility is
    // calibrated to Fig. 6's consecutive-write size-change probabilities
    // (bzip2/gcc high, hmmer/milc/sjeng low).
    // The final tuple element is `mutation_words`, the per-rewrite value
    // locality: how many of a block's eight words change in place. It sets
    // the baseline differential-write flip rate (pointer-churning integer
    // codes rewrite most of a line; stencil codes touch less), which is
    // what compression's flip confinement is measured against.
    let (wpki, target_cr, class, class_mix, size_volatility, zipf_s, mutation_words) = match app {
        Astar => (
            1.04,
            0.53,
            Medium,
            mix(0.07, 0.03, 0.08, 0.12, 0.16, 0.22, 0.19, 0.13),
            0.45,
            0.8,
            5,
        ),
        Bwaves => (
            9.78,
            0.34,
            Medium,
            mix(0.22, 0.06, 0.16, 0.12, 0.16, 0.16, 0.06, 0.06),
            0.40,
            0.6,
            5,
        ),
        Bzip2 => (
            4.6,
            0.53,
            Medium,
            mix(0.05, 0.03, 0.09, 0.12, 0.13, 0.22, 0.20, 0.16),
            0.85,
            0.7,
            4,
        ),
        CactusADM => (
            8.09,
            0.03,
            High,
            mix(0.93, 0.05, 0.02, 0.0, 0.0, 0.0, 0.0, 0.0),
            0.05,
            0.6,
            5,
        ),
        Calculix => (
            1.08,
            0.37,
            Medium,
            mix(0.20, 0.05, 0.15, 0.12, 0.16, 0.16, 0.08, 0.08),
            0.40,
            0.8,
            5,
        ),
        Gcc => (
            8.05,
            0.50,
            Medium,
            mix(0.03, 0.02, 0.07, 0.22, 0.10, 0.26, 0.17, 0.13),
            0.80,
            0.7,
            5,
        ),
        GemsFDTD => (
            4.15,
            0.70,
            Low,
            mix(0.02, 0.01, 0.03, 0.07, 0.06, 0.22, 0.27, 0.32),
            0.50,
            0.6,
            3,
        ),
        Gobmk => (
            1.14,
            0.39,
            Medium,
            mix(0.18, 0.05, 0.15, 0.13, 0.16, 0.17, 0.08, 0.08),
            0.50,
            0.8,
            5,
        ),
        Hmmer => (
            1.9,
            0.59,
            Medium,
            mix(0.03, 0.02, 0.06, 0.10, 0.10, 0.26, 0.22, 0.21),
            0.15,
            0.8,
            5,
        ),
        Leslie3d => (
            8.32,
            0.70,
            Low,
            mix(0.02, 0.01, 0.03, 0.07, 0.06, 0.22, 0.27, 0.32),
            0.10,
            0.6,
            3,
        ),
        Lbm => (
            15.6,
            0.79,
            Low,
            mix(0.01, 0.01, 0.02, 0.04, 0.04, 0.12, 0.20, 0.56),
            0.35,
            0.5,
            3,
        ),
        Mcf => (
            10.35,
            0.55,
            Medium,
            mix(0.06, 0.03, 0.09, 0.12, 0.14, 0.24, 0.19, 0.13),
            0.45,
            0.9,
            5,
        ),
        Milc => (
            3.4,
            0.29,
            High,
            mix(0.30, 0.04, 0.22, 0.02, 0.20, 0.10, 0.06, 0.06),
            0.15,
            0.6,
            6,
        ),
        Sjeng => (
            4.38,
            0.08,
            High,
            mix(0.74, 0.10, 0.12, 0.02, 0.02, 0.0, 0.0, 0.0),
            0.10,
            0.8,
            5,
        ),
        Zeusmp => (
            5.46,
            0.05,
            High,
            mix(0.88, 0.06, 0.05, 0.01, 0.0, 0.0, 0.0, 0.0),
            0.10,
            0.6,
            5,
        ),
    };
    WorkloadProfile {
        app,
        wpki,
        target_cr,
        class,
        class_mix,
        size_volatility,
        mutation_words,
        zipf_s,
        reads_per_write: 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::seeded_rng;

    #[test]
    fn all_apps_have_profiles() {
        for app in ALL_APPS {
            let p = app.profile();
            assert_eq!(p.app, app);
            assert!(p.wpki > 0.0);
            assert!((0.0..=1.0).contains(&p.target_cr));
            assert!((0.0..=1.0).contains(&p.size_volatility));
            let total: f64 = p.class_mix.iter().map(|(_, w)| w).sum();
            assert!(
                (total - 1.0).abs() < 1e-9,
                "{}: mixture sums to {total}",
                app.name()
            );
        }
    }

    #[test]
    fn classes_match_table3() {
        use Compressibility::*;
        assert_eq!(SpecApp::CactusADM.profile().class, High);
        assert_eq!(SpecApp::Milc.profile().class, High);
        assert_eq!(SpecApp::Sjeng.profile().class, High);
        assert_eq!(SpecApp::Zeusmp.profile().class, High);
        assert_eq!(SpecApp::GemsFDTD.profile().class, Low);
        assert_eq!(SpecApp::Leslie3d.profile().class, Low);
        assert_eq!(SpecApp::Lbm.profile().class, Low);
        assert_eq!(SpecApp::Gcc.profile().class, Medium);
    }

    #[test]
    fn class_boundaries_consistent_with_cr() {
        for app in ALL_APPS {
            let p = app.profile();
            match p.class {
                Compressibility::High => assert!(p.target_cr < 0.3, "{}", app.name()),
                Compressibility::Low => assert!(p.target_cr >= 0.7, "{}", app.name()),
                Compressibility::Medium => {
                    assert!((0.3..0.7).contains(&p.target_cr), "{}", app.name())
                }
            }
        }
    }

    #[test]
    fn sample_class_follows_mixture() {
        let p = SpecApp::Zeusmp.profile();
        let mut rng = seeded_rng(81);
        let mut zero = 0;
        let n = 20_000;
        for _ in 0..n {
            if p.sample_class(&mut rng) == crate::ContentClass::Zero {
                zero += 1;
            }
        }
        let frac = zero as f64 / n as f64;
        assert!((frac - 0.88).abs() < 0.02, "zero fraction {frac}");
    }

    #[test]
    fn volatile_apps_flagged() {
        assert!(SpecApp::Bzip2.profile().size_volatility > 0.7);
        assert!(SpecApp::Gcc.profile().size_volatility > 0.7);
        assert!(SpecApp::Hmmer.profile().size_volatility < 0.3);
        assert!(SpecApp::Milc.profile().size_volatility < 0.3);
    }

    #[test]
    fn wpki_matches_table3() {
        assert_eq!(SpecApp::Lbm.profile().wpki, 15.6);
        assert_eq!(SpecApp::Astar.profile().wpki, 1.04);
        assert_eq!(SpecApp::Mcf.profile().wpki, 10.35);
    }
}
