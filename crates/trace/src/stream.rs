//! A standalone per-block write stream.
//!
//! [`BlockStream`] evolves one block's content exactly like
//! [`TraceGenerator`](crate::TraceGenerator) evolves each of its blocks
//! (affinity, bounded-wander morphs, in-place mutations), but as an
//! independent, separately-seeded object. The lifetime engine simulates
//! each physical line with its own `BlockStream`, swapping in a fresh one
//! whenever inter-line wear-leveling relocates the hosted block.

use crate::content::{ContentClass, ALL_CLASSES};
use crate::profile::WorkloadProfile;
use pcm_util::{seeded_rng, Line512};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::RngExt;

/// An infinite stream of write-back payloads for one logical block.
///
/// # Examples
///
/// ```
/// use pcm_trace::{BlockStream, SpecApp};
///
/// let mut s = BlockStream::new(SpecApp::Milc.profile(), 7);
/// let first = s.next_data();
/// let second = s.next_data();
/// // Same logical block, evolving content.
/// let _ = (first, second);
/// ```
#[derive(Debug)]
pub struct BlockStream {
    profile: WorkloadProfile,
    rng: StdRng,
    affinity: usize,
    class: ContentClass,
    data: Line512,
}

impl BlockStream {
    /// Creates a stream whose first value is a fresh block sampled from the
    /// profile's mixture.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        let class = profile.sample_class(&mut rng);
        let data = class.generate(&mut rng);
        BlockStream {
            profile,
            rng,
            affinity: class.size_rank(),
            class,
            data,
        }
    }

    /// The block's current content (what the previous write stored).
    pub fn current(&self) -> Line512 {
        self.data
    }

    /// The block's current content class.
    pub fn class(&self) -> ContentClass {
        self.class
    }

    /// Produces the next write-back payload: a morph (size jump within the
    /// affinity tier) with probability `size_volatility`, otherwise an
    /// in-place mutation.
    pub fn next_data(&mut self) -> Line512 {
        if self.rng.random_bool(self.profile.size_volatility) {
            let a = self.affinity as i64;
            let max = ALL_CLASSES.len() as i64 - 1;
            // At most three neighbour ranks: keep them on the stack (this
            // runs once per sampled write in the lifetime hot path).
            let mut candidates = [0usize; 3];
            let mut len = 0;
            for r in [a - 1, a, a + 1] {
                if (0..=max).contains(&r) && ALL_CLASSES[r as usize] != self.class {
                    candidates[len] = r as usize;
                    len += 1;
                }
            }
            let rank = *candidates[..len]
                .choose(&mut self.rng)
                .expect("at least one neighbour");
            self.class = ALL_CLASSES[rank];
            self.data = self.class.generate(&mut self.rng);
        } else {
            self.data = self
                .class
                .mutate(&mut self.rng, &self.data, self.profile.mutation_words);
        }
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpecApp;
    use pcm_compress::compress_best;

    #[test]
    fn deterministic_given_seed() {
        let mut a = BlockStream::new(SpecApp::Gcc.profile(), 3);
        let mut b = BlockStream::new(SpecApp::Gcc.profile(), 3);
        for _ in 0..50 {
            assert_eq!(a.next_data(), b.next_data());
        }
    }

    #[test]
    fn stable_profile_keeps_size() {
        let mut s = BlockStream::new(SpecApp::CactusADM.profile(), 5);
        let sizes: Vec<usize> = (0..100)
            .map(|_| compress_best(&s.next_data()).size())
            .collect();
        let distinct = {
            let mut v = sizes.clone();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(
            distinct <= 3,
            "cactusADM blocks should barely change size, got {distinct}"
        );
    }

    #[test]
    fn volatile_profile_swings_size() {
        let mut s = BlockStream::new(SpecApp::Bzip2.profile(), 5);
        let sizes: Vec<usize> = (0..100)
            .map(|_| compress_best(&s.next_data()).size())
            .collect();
        let changes = sizes.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            changes > 50,
            "bzip2 blocks should change size often, got {changes}/99"
        );
    }
}
