//! The trace generator: Zipf-popular addresses over stateful blocks.

use crate::content::ContentClass;
use crate::profile::WorkloadProfile;
use crate::record::{Access, AccessKind, Trace, WriteRecord};
use pcm_util::dist::Zipf;
use pcm_util::{seeded_rng, Line512};
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::RngExt;

/// Per-block temporal state.
///
/// Each address carries a fixed *affinity* (the content class sampled at
/// first touch): morphs wander only to size-adjacent classes of the
/// affinity. This matches the paper's Fig. 11 observation that the
/// per-address **maximum** compressed size has a workload-characteristic
/// distribution — addresses do not all drift to incompressible content
/// even in volatile workloads.
#[derive(Debug, Clone)]
struct BlockState {
    /// Size rank of the affinity class in [`crate::content::ALL_CLASSES`].
    affinity: usize,
    class: ContentClass,
    data: Line512,
}

/// Generates a synthetic LLC write-back stream for one workload over a
/// memory of `lines` logical lines.
///
/// Line popularity is Zipf-distributed with the profile's exponent; the
/// popularity ranking is scattered over the address space by a seeded
/// permutation so hot lines spread across banks, as they do under real
/// allocators.
///
/// # Examples
///
/// ```
/// use pcm_trace::{SpecApp, TraceGenerator};
///
/// let mut generator = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 256, 7);
/// let trace = generator.generate(1000);
/// assert_eq!(trace.len(), 1000);
/// ```
#[derive(Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    lines: u64,
    rng: StdRng,
    zipf: Zipf,
    rank_to_line: Vec<u32>,
    blocks: Vec<Option<BlockState>>,
}

impl TraceGenerator {
    /// Creates a generator for `lines` logical lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0` or `lines > u32::MAX`.
    pub fn from_profile(profile: WorkloadProfile, lines: u64, seed: u64) -> Self {
        assert!(lines > 0, "need at least one line");
        assert!(
            lines <= u32::MAX as u64,
            "generator supports up to 2^32 lines"
        );
        let mut rng = seeded_rng(seed);
        let zipf = Zipf::new(lines as usize, profile.zipf_s);
        let mut rank_to_line: Vec<u32> = (0..lines as u32).collect();
        rank_to_line.shuffle(&mut rng);
        TraceGenerator {
            profile,
            lines,
            rng,
            zipf,
            rank_to_line,
            blocks: vec![None; lines as usize],
        }
    }

    /// The workload profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of logical lines.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Draws the next write-back.
    pub fn next_write(&mut self) -> WriteRecord {
        let rank = self.zipf.sample(&mut self.rng);
        let line = self.rank_to_line[rank] as u64;
        let data = self.rewrite(line as usize);
        WriteRecord { line, data }
    }

    /// Draws the next write-back *to a specific line* (used by
    /// per-block studies like Figs. 1 and 7).
    pub fn next_write_to(&mut self, line: u64) -> WriteRecord {
        assert!(line < self.lines, "line {line} out of range");
        let data = self.rewrite(line as usize);
        WriteRecord { line, data }
    }

    /// Draws the next [`Access`] (read or write), with the profile's
    /// reads-per-write ratio.
    pub fn next_access(&mut self) -> Access {
        let p_read = self.profile.reads_per_write / (self.profile.reads_per_write + 1.0);
        if self.rng.random_bool(p_read) {
            let rank = self.zipf.sample(&mut self.rng);
            let line = self.rank_to_line[rank] as u64;
            Access {
                line,
                kind: AccessKind::Read,
                data: None,
            }
        } else {
            let w = self.next_write();
            Access {
                line: w.line,
                kind: AccessKind::Write,
                data: Some(w.data),
            }
        }
    }

    /// Generates a trace of `n` write-backs.
    pub fn generate(&mut self, n: usize) -> Trace {
        (0..n).map(|_| self.next_write()).collect()
    }

    /// Computes the new content of a block being rewritten.
    fn rewrite(&mut self, idx: usize) -> Line512 {
        use crate::content::ALL_CLASSES;
        let morph = self.rng.random_bool(self.profile.size_volatility);
        match &mut self.blocks[idx] {
            state @ None => {
                let class = self.profile.sample_class(&mut self.rng);
                let data = class.generate(&mut self.rng);
                *state = Some(BlockState {
                    affinity: class.size_rank(),
                    class,
                    data,
                });
            }
            Some(block) if morph => {
                // Bounded wander: jump to a size-adjacent class of the
                // affinity *different from the current one*, so the
                // compressed size changes (Fig. 6) while the address keeps
                // its characteristic size tier (Fig. 11).
                let a = block.affinity as i64;
                let max = ALL_CLASSES.len() as i64 - 1;
                let mut candidates: Vec<usize> = [a - 1, a, a + 1]
                    .into_iter()
                    .filter(|&r| (0..=max).contains(&r))
                    .map(|r| r as usize)
                    .filter(|&r| ALL_CLASSES[r] != block.class)
                    .collect();
                candidates.dedup();
                let rank = *candidates
                    .choose(&mut self.rng)
                    .expect("at least one neighbour");
                let class = ALL_CLASSES[rank];
                block.class = class;
                block.data = class.generate(&mut self.rng);
            }
            Some(block) => {
                block.data =
                    block
                        .class
                        .mutate(&mut self.rng, &block.data, self.profile.mutation_words);
            }
        }
        self.blocks[idx].as_ref().expect("state just set").data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SpecApp;
    use pcm_compress::compress_best;

    #[test]
    fn deterministic_given_seed() {
        let mut a = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 128, 5);
        let mut b = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 128, 5);
        for _ in 0..100 {
            assert_eq!(a.next_write(), b.next_write());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 128, 5);
        let mut b = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 128, 6);
        let wa: Vec<_> = (0..20).map(|_| a.next_write()).collect();
        let wb: Vec<_> = (0..20).map(|_| b.next_write()).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn addresses_in_range_and_skewed() {
        let mut g = TraceGenerator::from_profile(SpecApp::Mcf.profile(), 64, 9);
        let mut counts = vec![0u32; 64];
        for _ in 0..20_000 {
            let w = g.next_write();
            counts[w.line as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max > min * 3, "Zipf skew expected, max {max} min {min}");
    }

    #[test]
    fn stable_workload_keeps_sizes_volatile_workload_does_not() {
        let stable = {
            let mut g = TraceGenerator::from_profile(SpecApp::Hmmer.profile(), 16, 3);
            size_change_fraction(&mut g)
        };
        let volatile = {
            let mut g = TraceGenerator::from_profile(SpecApp::Bzip2.profile(), 16, 3);
            size_change_fraction(&mut g)
        };
        assert!(
            volatile > stable + 0.3,
            "bzip2 ({volatile}) should change sizes far more than hmmer ({stable})"
        );
    }

    fn size_change_fraction(g: &mut TraceGenerator) -> f64 {
        let mut last = std::collections::HashMap::new();
        let mut changes = 0u32;
        let mut pairs = 0u32;
        for _ in 0..4000 {
            let w = g.next_write();
            let size = compress_best(&w.data).size();
            if let Some(prev) = last.insert(w.line, size) {
                pairs += 1;
                if prev != size {
                    changes += 1;
                }
            }
        }
        changes as f64 / pairs.max(1) as f64
    }

    #[test]
    fn reads_follow_ratio() {
        let mut g = TraceGenerator::from_profile(SpecApp::Lbm.profile(), 64, 10);
        let mut reads = 0;
        let n = 30_000;
        for _ in 0..n {
            if g.next_access().kind == AccessKind::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        // reads_per_write = 2.0 -> two thirds of accesses are reads.
        assert!((frac - 2.0 / 3.0).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn per_line_stream_is_usable_for_block_studies() {
        let mut g = TraceGenerator::from_profile(SpecApp::Gobmk.profile(), 32, 11);
        for _ in 0..50 {
            let w = g.next_write_to(5);
            assert_eq!(w.line, 5);
        }
    }
}
