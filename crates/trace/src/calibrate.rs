//! Measurement of realized workload statistics.
//!
//! These functions recompute, from generated traces, the statistics the
//! paper publishes — compression ratio, BDI-vs-FPC sizes, size-change
//! probability, size CDFs — so tests can pin the generative model to
//! Table III and Figs. 3/6/11, and the benchmark harness can print them.

use crate::generator::TraceGenerator;
use crate::profile::WorkloadProfile;
use pcm_compress::{bdi, compress_best, fpc, Method};
use pcm_util::stats::Ecdf;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Realized compression statistics of a workload (Fig. 3, Table III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Mean compressed size under BDI alone (64 where inapplicable).
    pub bdi_mean: f64,
    /// Mean compressed size under FPC alone (capped at 64).
    pub fpc_mean: f64,
    /// Mean compressed size under the best-of selector.
    pub best_mean: f64,
    /// Realized compression ratio (`best_mean / 64`).
    pub cr: f64,
    /// Fraction of writes stored uncompressed.
    pub uncompressed_fraction: f64,
    /// Fraction of compressed writes won by FPC.
    pub fpc_win_fraction: f64,
}

/// Measures compression statistics over `n` generated write-backs.
pub fn compression_stats(generator: &mut TraceGenerator, n: usize) -> CompressionStats {
    assert!(n > 0, "need at least one write");
    let mut bdi_sum = 0usize;
    let mut fpc_sum = 0usize;
    let mut best_sum = 0usize;
    let mut uncompressed = 0usize;
    let mut fpc_wins = 0usize;
    let mut compressed = 0usize;
    for _ in 0..n {
        let w = generator.next_write();
        bdi_sum += bdi::compress(&w.data).map(|c| c.size()).unwrap_or(64);
        fpc_sum += fpc::compress(&w.data).size().min(64);
        let best = compress_best(&w.data);
        best_sum += best.size();
        match best.method() {
            Method::Uncompressed => uncompressed += 1,
            Method::Fpc => {
                compressed += 1;
                fpc_wins += 1;
            }
            Method::Bdi(_) => compressed += 1,
        }
    }
    let nf = n as f64;
    CompressionStats {
        bdi_mean: bdi_sum as f64 / nf,
        fpc_mean: fpc_sum as f64 / nf,
        best_mean: best_sum as f64 / nf,
        cr: best_sum as f64 / nf / 64.0,
        uncompressed_fraction: uncompressed as f64 / nf,
        fpc_win_fraction: if compressed > 0 {
            fpc_wins as f64 / compressed as f64
        } else {
            0.0
        },
    }
}

/// Probability that two consecutive writes to the same block have
/// different compressed sizes (Fig. 6).
pub fn size_change_probability(generator: &mut TraceGenerator, n: usize) -> f64 {
    // pcm-audit: allow(map-order) — insert-only recency map, never iterated
    let mut last: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    let mut pairs = 0u64;
    let mut changes = 0u64;
    for _ in 0..n {
        let w = generator.next_write();
        let size = compress_best(&w.data).size();
        if let Some(prev) = last.insert(w.line, size) {
            pairs += 1;
            if prev != size {
                changes += 1;
            }
        }
    }
    if pairs == 0 {
        0.0
    } else {
        changes as f64 / pairs as f64
    }
}

/// Per-address **maximum** compressed size distribution (Fig. 11): for
/// every line, the largest compressed write observed.
pub fn max_size_cdf(generator: &mut TraceGenerator, n: usize) -> Ecdf {
    let mut max_size: BTreeMap<u64, usize> = BTreeMap::new();
    for _ in 0..n {
        let w = generator.next_write();
        let size = compress_best(&w.data).size();
        max_size
            .entry(w.line)
            .and_modify(|s| *s = (*s).max(size))
            .or_insert(size);
    }
    Ecdf::new(max_size.into_values().map(|s| s as f64).collect())
}

/// The compressed-size series of consecutive writes to one block (Fig. 7).
pub fn block_size_series(generator: &mut TraceGenerator, line: u64, writes: usize) -> Vec<usize> {
    (0..writes)
        .map(|_| compress_best(&generator.next_write_to(line).data).size())
        .collect()
}

/// Calibration verdict for one profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// The target CR from Table III.
    pub target_cr: f64,
    /// Realized CR.
    pub realized_cr: f64,
    /// Absolute error.
    pub error: f64,
}

/// Compares a profile's realized CR against its Table III target.
pub fn calibrate(profile: &WorkloadProfile, lines: u64, seed: u64, n: usize) -> Calibration {
    let mut generator = TraceGenerator::from_profile(profile.clone(), lines, seed);
    let stats = compression_stats(&mut generator, n);
    Calibration {
        target_cr: profile.target_cr,
        realized_cr: stats.cr,
        error: (stats.cr - profile.target_cr).abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{SpecApp, ALL_APPS};

    /// The headline calibration: every workload's realized CR must match
    /// Table III within tolerance.
    #[test]
    fn realized_cr_matches_table3() {
        for app in ALL_APPS {
            let c = calibrate(&app.profile(), 512, 1000 + app as u64, 6_000);
            assert!(
                c.error < 0.08,
                "{}: realized CR {:.3} vs target {:.3}",
                app.name(),
                c.realized_cr,
                c.target_cr
            );
        }
    }

    #[test]
    fn best_beats_both_components() {
        let mut g = TraceGenerator::from_profile(SpecApp::Milc.profile(), 256, 2);
        let s = compression_stats(&mut g, 4_000);
        assert!(s.best_mean <= s.bdi_mean + 1e-9);
        assert!(s.best_mean <= s.fpc_mean + 1e-9);
        assert!(s.cr > 0.0 && s.cr < 1.0);
    }

    #[test]
    fn size_change_probability_tracks_volatility() {
        let vol = {
            let mut g = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 64, 3);
            size_change_probability(&mut g, 8_000)
        };
        let stable = {
            let mut g = TraceGenerator::from_profile(SpecApp::CactusADM.profile(), 64, 3);
            size_change_probability(&mut g, 8_000)
        };
        assert!(vol > 0.6, "gcc size-change probability {vol}");
        assert!(stable < 0.2, "cactusADM size-change probability {stable}");
    }

    #[test]
    fn milc_cdf_is_bottom_heavy_gcc_is_spread() {
        // Fig. 11: ~80% of milc addresses peak below 25 bytes; gcc spreads
        // its mass toward larger sizes.
        let milc = {
            let mut g = TraceGenerator::from_profile(SpecApp::Milc.profile(), 256, 4);
            max_size_cdf(&mut g, 20_000)
        };
        let gcc = {
            let mut g = TraceGenerator::from_profile(SpecApp::Gcc.profile(), 256, 4);
            max_size_cdf(&mut g, 20_000)
        };
        assert!(
            milc.fraction_le(25.0) > 0.55,
            "milc addresses should mostly stay small, got {}",
            milc.fraction_le(25.0)
        );
        assert!(
            gcc.fraction_le(25.0) < 0.35,
            "gcc addresses should mostly exceed 25B at peak, got {}",
            gcc.fraction_le(25.0)
        );
    }

    #[test]
    fn block_series_shapes() {
        // Fig. 7: bzip2 blocks swing, hmmer blocks stay flat.
        let bzip2 = {
            let mut g = TraceGenerator::from_profile(SpecApp::Bzip2.profile(), 16, 5);
            block_size_series(&mut g, 3, 60)
        };
        let hmmer = {
            let mut g = TraceGenerator::from_profile(SpecApp::Hmmer.profile(), 16, 5);
            block_size_series(&mut g, 3, 60)
        };
        let distinct = |xs: &[usize]| {
            let mut v = xs.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(
            distinct(&bzip2) >= distinct(&hmmer),
            "bzip2 sizes {:?} vs hmmer {:?}",
            distinct(&bzip2),
            distinct(&hmmer)
        );
    }
}
