//! Trace records and a compact binary trace format.
//!
//! The paper collects main-memory access traces in Gem5 and replays them in
//! a lightweight lifetime simulator; [`Trace`] is our equivalent
//! interchange object, with a compact binary codec so generated traces can
//! be stored and replayed bit-identically.

use pcm_util::Line512;
use serde::{Deserialize, Serialize};

/// One LLC write-back: the target line and the full 64-byte payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteRecord {
    /// Logical line address.
    pub line: u64,
    /// The 64 bytes written back.
    pub data: Line512,
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// Demand read.
    Read,
    /// LLC write-back.
    Write,
}

/// A read or write access (reads carry no payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Logical line address.
    pub line: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Payload for writes; `None` for reads.
    pub data: Option<Line512>,
}

/// A replayable write-back trace.
///
/// # Examples
///
/// ```
/// use pcm_trace::{Trace, WriteRecord};
/// use pcm_util::Line512;
///
/// let trace = Trace::new(vec![WriteRecord { line: 7, data: Line512::zero() }]);
/// let bytes = trace.to_bytes();
/// assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<WriteRecord>,
}

/// Error returned when decoding a malformed binary trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeTraceError {
    /// Magic header mismatch.
    BadMagic,
    /// Payload shorter than the declared record count.
    Truncated,
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeTraceError::BadMagic => write!(f, "trace header magic mismatch"),
            DecodeTraceError::Truncated => write!(f, "trace payload truncated"),
        }
    }
}

impl std::error::Error for DecodeTraceError {}

const MAGIC: u32 = 0x50_43_4D_54; // "PCMT"

impl Trace {
    /// Creates a trace from records.
    pub fn new(records: Vec<WriteRecord>) -> Self {
        Trace { records }
    }

    /// The records, in replay order.
    pub fn records(&self) -> &[WriteRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, WriteRecord> {
        self.records.iter()
    }

    /// Encodes the trace into the compact binary format
    /// (`magic, count, then (line u64 LE, 64 payload bytes) per record`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + self.records.len() * 72);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for r in &self.records {
            buf.extend_from_slice(&r.line.to_le_bytes());
            buf.extend_from_slice(&r.data.to_bytes());
        }
        buf
    }

    /// Decodes a trace from the binary format.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeTraceError`] on a bad header or truncated payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeTraceError> {
        let header: &[u8; 8] = bytes
            .get(..8)
            .and_then(|h| h.try_into().ok())
            .ok_or(DecodeTraceError::Truncated)?;
        if u32::from_le_bytes(header[..4].try_into().expect("4-byte magic slice")) != MAGIC {
            return Err(DecodeTraceError::BadMagic);
        }
        let count =
            u32::from_le_bytes(header[4..].try_into().expect("4-byte count slice")) as usize;
        let body = &bytes[8..];
        if body.len() < count * 72 {
            return Err(DecodeTraceError::Truncated);
        }
        let records = body[..count * 72]
            .chunks_exact(72)
            .map(|rec| {
                let line = u64::from_le_bytes(rec[..8].try_into().expect("8-byte line id"));
                WriteRecord {
                    line,
                    data: Line512::from_bytes(rec[8..].try_into().expect("64-byte payload")),
                }
            })
            .collect();
        Ok(Trace { records })
    }
}

impl FromIterator<WriteRecord> for Trace {
    fn from_iter<T: IntoIterator<Item = WriteRecord>>(iter: T) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<WriteRecord> for Trace {
    fn extend<T: IntoIterator<Item = WriteRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a WriteRecord;
    type IntoIter = std::slice::Iter<'a, WriteRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::seeded_rng;

    #[test]
    fn binary_round_trip() {
        let mut rng = seeded_rng(91);
        let records: Vec<WriteRecord> = (0..100)
            .map(|i| WriteRecord {
                line: i * 3,
                data: Line512::random(&mut rng),
            })
            .collect();
        let trace = Trace::new(records);
        let bytes = trace.to_bytes();
        assert_eq!(bytes.len(), 8 + 100 * 72);
        assert_eq!(Trace::from_bytes(&bytes).unwrap(), trace);
    }

    #[test]
    fn empty_trace_round_trip() {
        let trace = Trace::default();
        assert!(trace.is_empty());
        assert_eq!(Trace::from_bytes(&trace.to_bytes()).unwrap(), trace);
    }

    #[test]
    fn detects_bad_magic() {
        let mut bytes = Trace::default().to_bytes().to_vec();
        bytes[0] ^= 0xFF;
        assert_eq!(Trace::from_bytes(&bytes), Err(DecodeTraceError::BadMagic));
    }

    #[test]
    fn detects_truncation() {
        let trace = Trace::new(vec![WriteRecord {
            line: 0,
            data: Line512::zero(),
        }]);
        let bytes = trace.to_bytes();
        assert_eq!(
            Trace::from_bytes(&bytes[..bytes.len() - 1]),
            Err(DecodeTraceError::Truncated)
        );
        assert_eq!(Trace::from_bytes(&[1, 2]), Err(DecodeTraceError::Truncated));
    }

    #[test]
    fn collect_and_extend() {
        let r = WriteRecord {
            line: 1,
            data: Line512::zero(),
        };
        let mut t: Trace = std::iter::repeat_n(r, 3).collect();
        t.extend([r]);
        assert_eq!(t.len(), 4);
        assert_eq!(t.iter().count(), 4);
    }
}
