//! Block-content classes and their generation/mutation rules.
//!
//! Every memory block in a synthetic workload belongs to a *content class*
//! that determines how it compresses under BDI/FPC. Classes are chosen to
//! span the compressed-size spectrum the paper's Fig. 3/11 report, and each
//! class has a *mutation* rule (what a rewrite of the same logical data
//! looks like) so consecutive writes exhibit realistic differential-write
//! flip counts (Fig. 1) without changing the compressed size.

use pcm_util::Line512;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A content class: a generator of 64-byte blocks with a characteristic
/// compressed size.
///
/// | class      | typical BEST size | winning codec |
/// |------------|-------------------|---------------|
/// | `Zero`     | 1 B               | BDI zeros     |
/// | `Repeated` | 8 B               | BDI rep-8     |
/// | `Narrow1`  | 16 B              | BDI B8Δ1      |
/// | `FpcSmall` | 10–25 B           | FPC           |
/// | `Narrow2`  | 24 B              | BDI B8Δ2      |
/// | `Narrow4`  | 40 B              | BDI B8Δ4      |
/// | `Mixed`    | 40–55 B           | FPC           |
/// | `Random`   | 64 B              | uncompressed  |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentClass {
    /// All-zero block (freshly calloc'd / sparse data).
    Zero,
    /// One 8-byte value repeated (memset-style fills).
    Repeated,
    /// 8-byte values within ±127 of a base (dense integer arrays).
    Narrow1,
    /// 8-byte values within ±32767 of a base (pointer-like values).
    Narrow2,
    /// Small independent 4-byte integers with frequent zeros.
    FpcSmall,
    /// 8-byte values within ±2^31 of a base (scattered pointers, doubles
    /// with shared exponents).
    Narrow4,
    /// Half narrow values, half random (structs mixing ints and floats).
    Mixed,
    /// Incompressible data (encrypted/packed floats).
    Random,
}

/// All classes, in ascending compressed-size order. The trace generator's
/// *bounded wander* (a block morphs only to size-adjacent classes of its
/// per-address affinity) indexes into this ordering.
pub const ALL_CLASSES: [ContentClass; 8] = [
    ContentClass::Zero,
    ContentClass::Repeated,
    ContentClass::Narrow1,
    ContentClass::FpcSmall,
    ContentClass::Narrow2,
    ContentClass::Narrow4,
    ContentClass::Mixed,
    ContentClass::Random,
];

impl ContentClass {
    /// Index of this class in the size-ordered [`ALL_CLASSES`] list.
    pub(crate) fn size_rank(&self) -> usize {
        ALL_CLASSES
            .iter()
            .position(|c| c == self)
            .expect("class listed")
    }
}

impl ContentClass {
    /// Generates a fresh block of this class.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Line512 {
        match self {
            ContentClass::Zero => Line512::zero(),
            ContentClass::Repeated => Line512::from_words([rng.random(); 8]),
            ContentClass::Narrow1 => narrow(rng, 127),
            ContentClass::Narrow2 => narrow(rng, 32_000),
            ContentClass::Narrow4 => narrow(rng, 2_000_000_000),
            ContentClass::FpcSmall => fpc_small(rng),
            ContentClass::Mixed => mixed(rng),
            ContentClass::Random => Line512::random(rng),
        }
    }

    /// Mutates `current` in place-style: rewrites roughly
    /// `words_changed` of the eight 8-byte words while *staying in class*,
    /// so the compressed size is (near-)stable — the behaviour the paper
    /// observes for hmmer-like blocks (Fig. 7b).
    pub fn mutate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        current: &Line512,
        words_changed: usize,
    ) -> Line512 {
        let words_changed = words_changed.min(8);
        match self {
            ContentClass::Zero => Line512::zero(),
            ContentClass::Repeated => {
                // The repeated value itself changes occasionally.
                if rng.random_bool(0.3) {
                    Line512::from_words([rng.random(); 8])
                } else {
                    *current
                }
            }
            ContentClass::Random => {
                let mut words = current.words();
                for _ in 0..words_changed {
                    words[rng.random_range(0..8usize)] = rng.random();
                }
                Line512::from_words(words)
            }
            ContentClass::FpcSmall => {
                let mut bytes = current.to_bytes();
                let fresh = fpc_small(rng).to_bytes();
                for _ in 0..words_changed {
                    let w = rng.random_range(0..8usize);
                    bytes[w * 8..w * 8 + 8].copy_from_slice(&fresh[w * 8..w * 8 + 8]);
                }
                Line512::from_bytes(&bytes)
            }
            ContentClass::Mixed => {
                let mut words = current.words();
                for _ in 0..words_changed {
                    let w = rng.random_range(0..8usize);
                    // Preserve the half-small / half-random structure.
                    words[w] = if w < 4 { small_pair(rng) } else { rng.random() };
                }
                Line512::from_words(words)
            }
            ContentClass::Narrow1 | ContentClass::Narrow2 | ContentClass::Narrow4 => {
                let span: i64 = match self {
                    ContentClass::Narrow1 => 127,
                    ContentClass::Narrow2 => 32_000,
                    _ => 2_000_000_000,
                };
                let mut words = current.words();
                let base = words[0];
                for _ in 0..words_changed {
                    let w = rng.random_range(1..8usize);
                    words[w] = base.wrapping_add(rng.random_range(-span..=span) as u64);
                }
                Line512::from_words(words)
            }
        }
    }
}

impl std::fmt::Display for ContentClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

fn narrow<R: Rng + ?Sized>(rng: &mut R, span: i64) -> Line512 {
    let base: u64 = rng.random();
    let mut words = [0u64; 8];
    words[0] = base;
    for w in words.iter_mut().skip(1) {
        *w = base.wrapping_add(rng.random_range(-span..=span) as u64);
    }
    Line512::from_words(words)
}

fn fpc_small<R: Rng + ?Sized>(rng: &mut R) -> Line512 {
    // Fixed composition (7 zero words, 5 byte-sized, 4 halfword-sized),
    // shuffled: keeps the FPC size tightly around 18–22 bytes so FpcSmall
    // addresses stay in their size tier (paper Fig. 11).
    let mut kinds = [0u8; 16];
    for (i, k) in kinds.iter_mut().enumerate() {
        *k = match i {
            0..=6 => 0,
            7..=11 => 1,
            _ => 2,
        };
    }
    for i in (1..16).rev() {
        let j = rng.random_range(0..=i);
        kinds.swap(i, j);
    }
    let mut bytes = [0u8; 64];
    for (w, kind) in kinds.iter().enumerate() {
        let value: i32 = match kind {
            0 => 0,
            1 => loop {
                let v = rng.random_range(-128..128);
                if v != 0 {
                    break v;
                }
            },
            _ => loop {
                let v = rng.random_range(-32_768..32_768);
                if !(-128..128).contains(&v) {
                    break v;
                }
            },
        };
        bytes[w * 4..w * 4 + 4].copy_from_slice(&value.to_le_bytes());
    }
    Line512::from_bytes(&bytes)
}

/// One 8-byte word holding two small (FPC-friendly) 4-byte integers.
fn small_pair<R: Rng + ?Sized>(rng: &mut R) -> u64 {
    let mut pair = 0u64;
    for half in 0..2 {
        let v: i32 = if rng.random_bool(0.5) {
            0
        } else if rng.random_bool(0.5) {
            rng.random_range(-128..128)
        } else {
            rng.random_range(-30_000..30_000)
        };
        pair |= ((v as u32) as u64) << (32 * half);
    }
    pair
}

fn mixed<R: Rng + ?Sized>(rng: &mut R) -> Line512 {
    // Low half: FPC-friendly small integers; high half: incompressible.
    // BDI fails (no common base), FPC lands around 45 bytes.
    let mut words = [0u64; 8];
    for (w, word) in words.iter_mut().enumerate() {
        *word = if w < 4 { small_pair(rng) } else { rng.random() };
    }
    Line512::from_words(words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_compress::compress_best;
    use pcm_util::seeded_rng;

    fn mean_size(class: ContentClass, samples: usize) -> f64 {
        let mut rng = seeded_rng(71);
        let total: usize = (0..samples)
            .map(|_| compress_best(&class.generate(&mut rng)).size())
            .sum();
        total as f64 / samples as f64
    }

    #[test]
    fn class_sizes_span_the_spectrum() {
        assert_eq!(mean_size(ContentClass::Zero, 10), 1.0);
        assert_eq!(mean_size(ContentClass::Repeated, 50), 8.0);
        assert_eq!(mean_size(ContentClass::Narrow1, 50), 16.0);
        assert_eq!(mean_size(ContentClass::Narrow2, 50), 24.0);
        let fpc = mean_size(ContentClass::FpcSmall, 200);
        assert!((8.0..=26.0).contains(&fpc), "FpcSmall mean {fpc}");
        assert_eq!(mean_size(ContentClass::Narrow4, 50), 40.0);
        let mixed = mean_size(ContentClass::Mixed, 200);
        assert!((38.0..=56.0).contains(&mixed), "Mixed mean {mixed}");
        assert_eq!(mean_size(ContentClass::Random, 50), 64.0);
    }

    #[test]
    fn mutation_preserves_compressed_size_class() {
        let mut rng = seeded_rng(72);
        for class in [
            ContentClass::Zero,
            ContentClass::Repeated,
            ContentClass::Narrow1,
            ContentClass::Narrow2,
            ContentClass::Narrow4,
            ContentClass::Random,
        ] {
            let mut block = class.generate(&mut rng);
            let size0 = compress_best(&block).size();
            for _ in 0..20 {
                block = class.mutate(&mut rng, &block, 3);
                let size = compress_best(&block).size();
                assert_eq!(size, size0, "{class}: size drifted {size0} -> {size}");
            }
        }
    }

    #[test]
    fn mutation_actually_changes_bits() {
        let mut rng = seeded_rng(73);
        let mut unchanged = 0;
        for class in [
            ContentClass::Narrow1,
            ContentClass::Random,
            ContentClass::FpcSmall,
        ] {
            let block = class.generate(&mut rng);
            let next = class.mutate(&mut rng, &block, 4);
            if next == block {
                unchanged += 1;
            }
        }
        assert!(unchanged <= 1, "mutations should usually change content");
    }

    #[test]
    fn fpc_small_fluctuates_mildly() {
        // FpcSmall re-rolls change the size a little — the source of the
        // residual size-change probability for stable workloads.
        let mut rng = seeded_rng(74);
        let mut block = ContentClass::FpcSmall.generate(&mut rng);
        let mut sizes = Vec::new();
        for _ in 0..50 {
            block = ContentClass::FpcSmall.mutate(&mut rng, &block, 2);
            sizes.push(compress_best(&block).size());
        }
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max <= 34, "FpcSmall stays small, max {max}");
        assert!(max - min <= 24, "mild fluctuation, span {}", max - min);
    }
}
