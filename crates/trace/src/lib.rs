//! Synthetic SPEC-like LLC write-back traces.
//!
//! The paper drives its lifetime simulator with Gem5 traces of 15
//! memory-intensive SPEC CPU2006 applications. SPEC inputs and a 16-core
//! Gem5 run are not reproducible here, so this crate substitutes a
//! *generative workload model* calibrated to the paper's own published
//! statistics (see DESIGN.md §3):
//!
//! * **Table III** — writes-per-kilo-instruction (WPKI) and compression
//!   ratio (CR) per application, with H/M/L compressibility classes;
//! * **Fig. 3** — best-of-BDI/FPC compressed sizes;
//! * **Fig. 6** — probability that consecutive writes to a block change
//!   compressed size (bzip2/gcc volatile, hmmer/milc stable);
//! * **Fig. 11** — the per-address compressed-size distribution (gcc
//!   spread out, milc bimodal).
//!
//! Each workload is a mixture of [content classes](content::ContentClass)
//! (zero blocks, narrow base-delta values, FPC-friendly small words, mixed,
//! random) over a Zipf-popular hot set of lines, with per-block temporal
//! state: on a rewrite, a block either *mutates* in place (same class, a
//! few words change — compressed size stays put) or *morphs* to a new class
//! (compressed size jumps). The morph probability is the paper's
//! "size-volatility" knob.
//!
//! [`calibrate`] measures the realized statistics and the test suite
//! asserts they match Table III.
//!
//! # Examples
//!
//! ```
//! use pcm_trace::{SpecApp, TraceGenerator};
//!
//! let mut generator = TraceGenerator::from_profile(SpecApp::Milc.profile(), 1024, 42);
//! let record = generator.next_write();
//! assert!(record.line < 1024);
//! ```

pub mod calibrate;
pub mod content;
pub mod generator;
pub mod profile;
pub mod record;
pub mod stream;

pub use content::ContentClass;
pub use generator::TraceGenerator;
pub use profile::{Compressibility, SpecApp, WorkloadProfile};
pub use record::{Access, AccessKind, Trace, WriteRecord};
pub use stream::BlockStream;
