//! One PCM bank's controller state, owned by value.
//!
//! [`BankCtl`] is the unit of ownership in every deployment of the
//! controller: [`crate::PcmMemory`] interleaves logical lines over a vector
//! of banks, and the `pcm-serve` daemon hands each bank to exactly one
//! shard — no shared mutable state, so shard scheduling can never change a
//! result. Everything the paper's architecture does per bank lives here:
//! inter-line wear-leveling through the pluggable
//! [`WearScheme`](pcm_wear::WearScheme) trait (migration writes are real
//! writes), the intra-line rotation counter, the compression pipeline with
//! the Fig. 8 heuristic, ECC encode/decode, and dead-block resurrection at
//! relocation events.

use crate::controller::{MemoryStats, WriteError, WriteReport};
use crate::line::{EccEngine, LineWriteReport, ManagedLine, Payload};
use crate::payload::{choose_payload, choose_payload_precompressed, HostMeta, PayloadBufs};
use crate::system::SystemConfig;
use pcm_compress::{decompress, CompressedWrite, Method};
use pcm_util::{seeded_rng, Line512};
use pcm_wear::{IntraLineLeveler, WearEvent, WearScheme};
use rand::Rng;

/// One bank of a PCM main memory: `lines` logical lines over the physical
/// lines its wear scheme asks for (Start-Gap's one spare, WoLFRaM's spare
/// pool, …), with all per-bank bookkeeping.
///
/// Addresses passed to [`write`](Self::write) / [`read`](Self::read) are
/// **bank-relative** (`0..lines`); the owner performs the logical→bank
/// routing.
///
/// # Examples
///
/// ```
/// use pcm_core::{BankCtl, SystemConfig, SystemKind};
/// use pcm_util::Line512;
///
/// let cfg = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(1e6);
/// let mut bank = BankCtl::new(cfg, 8, 17);
/// bank.write(3, Line512::ones()).unwrap();
/// assert_eq!(bank.read(3).unwrap(), Line512::ones());
/// ```
#[derive(Debug)]
pub struct BankCtl {
    cfg: SystemConfig,
    engine: EccEngine,
    lines: u64,
    phys: Vec<ManagedLine>,
    scheme: Box<dyn WearScheme>,
    leveler: IntraLineLeveler,
    shadow: Vec<Option<Line512>>,
    parked: Vec<bool>,
    meta: Vec<HostMeta>,
    stats: MemoryStats,
}

impl BankCtl {
    /// Creates a bank with `lines` logical lines, sampling cell endurance
    /// from its own RNG stream seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `lines < 2` (the wear scheme needs a region to rotate).
    pub fn new(cfg: SystemConfig, lines: u64, seed: u64) -> Self {
        let mut rng = seeded_rng(seed);
        Self::sample(cfg, lines, &mut rng)
    }

    /// Creates a bank sampling its physical lines from a caller-owned RNG.
    ///
    /// [`crate::PcmMemory`] threads one RNG through all of its banks so the
    /// whole-memory endurance draw is identical to the historical
    /// single-vector construction.
    ///
    /// # Panics
    ///
    /// Panics if `lines < 2`.
    pub fn sample<R: Rng + ?Sized>(cfg: SystemConfig, lines: u64, rng: &mut R) -> Self {
        assert!(lines >= 2, "a bank needs at least two logical lines");
        // Endurance is sampled before the wear scheme is built, and
        // Start-Gap draws no scheme seed: the default configuration's
        // construction RNG stream is identical to the pre-trait layout.
        let phys = (0..cfg.wear.physical_lines(lines))
            .map(|_| ManagedLine::sample_with_tech(&cfg.endurance, cfg.tech, rng))
            .collect();
        let scheme = cfg.wear.build(lines, cfg.start_gap_psi, rng);
        BankCtl {
            cfg,
            engine: EccEngine::new(cfg.ecc),
            lines,
            phys,
            scheme,
            leveler: IntraLineLeveler::new(cfg.bank_counter_period, 1),
            shadow: vec![None; lines as usize],
            parked: vec![false; lines as usize],
            meta: vec![HostMeta::default(); lines as usize],
            stats: MemoryStats::default(),
        }
    }

    /// Logical lines in this bank.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Physical lines (logical capacity plus the wear scheme's spares).
    pub(crate) fn physical_line_count(&self) -> usize {
        self.phys.len()
    }

    /// Physical lines currently dead.
    pub fn dead_lines(&self) -> usize {
        self.phys.iter().filter(|l| l.is_dead()).count()
    }

    /// Cumulative statistics of this bank.
    pub fn stats(&self) -> MemoryStats {
        self.stats
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    fn phys_index(&self, idx: u64) -> usize {
        self.scheme.map(idx) as usize
    }

    /// Serves one LLC write-back to bank-relative line `idx`.
    ///
    /// # Errors
    ///
    /// Returns [`WriteError::LineDead`] on an uncorrectable error (the line
    /// cannot hold the payload) and [`WriteError::BadAddress`] for an
    /// out-of-range address.
    pub fn write(&mut self, idx: u64, data: Line512) -> Result<WriteReport, WriteError> {
        self.write_precompressed(idx, data, None)
    }

    /// [`write`](Self::write) with the compression stage already done.
    ///
    /// `pre`, when present, must be exactly what
    /// `pcm_compress::compress_best_into(&data)` would produce; the batch
    /// selector (`compress_best_batch`) guarantees this lane for lane, so
    /// a caller holding a whole run of requests can compress them through
    /// one kernel call and replay the writes here with byte-identical
    /// outcomes — compression is a pure function of the data, and every
    /// stateful step (heuristic, wear, retirement) still runs per write in
    /// arrival order. `pre` also covers a retire-redirected replay of the
    /// same data; migration writes of *other* data always recompress.
    ///
    /// # Errors
    ///
    /// Exactly [`write`](Self::write)'s.
    pub fn write_precompressed(
        &mut self,
        idx: u64,
        data: Line512,
        pre: Option<(Method, &[u8])>,
    ) -> Result<WriteReport, WriteError> {
        if idx >= self.lines {
            return Err(WriteError::BadAddress);
        }
        // A scheme with spare capacity may retire a dead physical line and
        // redirect the write (WoLFRaM); schemes without decline and the
        // death propagates exactly as before.
        let mut phys = self.phys_index(idx);
        let report = loop {
            match self.write_to_phys(phys, idx, data, pre) {
                Ok(r) => break r,
                Err(e) => match self.scheme.retire_line(phys as u64) {
                    Some(spare) => phys = spare as usize,
                    None => return Err(e),
                },
            }
        };
        self.stats.demand_writes += 1;

        // Bank bookkeeping: rotation counter and inter-line wear-leveling.
        self.leveler.note_write();
        let gap_moved = if let Some(ev) = self.scheme.on_write(idx) {
            self.apply_wear_event(ev);
            true
        } else {
            false
        };
        Ok(WriteReport {
            line: report.0,
            compressed: report.1,
            gap_moved,
        })
    }

    /// Reads bank-relative line `idx` back, decompressing as needed.
    ///
    /// # Errors
    ///
    /// Returns [`WriteError::BadAddress`] out of range,
    /// [`WriteError::LineDead`] when the data was lost to an uncorrectable
    /// error or a failed relocation.
    pub fn read(&self, idx: u64) -> Result<Line512, WriteError> {
        if idx >= self.lines {
            return Err(WriteError::BadAddress);
        }
        let phys = self.phys_index(idx);
        let line = &self.phys[phys];
        if self.parked[idx as usize] || !line.is_valid() {
            return Err(WriteError::LineDead {
                faults: line.faults().count(),
            });
        }
        let (method, bytes) = line.read(&self.engine).expect("valid line reads");
        let c =
            CompressedWrite::from_parts(method, bytes).expect("stored payload is self-consistent");
        Ok(decompress(&c))
    }

    /// Decompression latency (CPU cycles) a demand read of this line pays.
    pub fn read_decompression_cycles(&self, idx: u64) -> u64 {
        let phys = self.phys_index(idx);
        self.phys[phys].method().decompression_cycles()
    }

    /// Folds this bank's wear state into a seed-stable FNV-1a digest:
    /// per-cell wear, fault count, and liveness of every physical line,
    /// the wear scheme's [`digest_words`](WearScheme::digest_words), and
    /// the cumulative statistics. Two banks with the same digest took the
    /// same write history (up to hash collision); `pcm-serve` replay tests
    /// compare these across shard counts.
    pub fn wear_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for w in self.scheme.digest_words() {
            h = fnv1a(h, w);
        }
        for line in &self.phys {
            h = fnv1a(h, line.faults().count() as u64);
            h = fnv1a(h, line.is_dead() as u64);
            let wear = line.wear();
            for pos in 0..pcm_util::DATA_BITS {
                h = fnv1a(h, wear.wear_of(pos) as u64);
            }
        }
        for v in [
            self.stats.demand_writes,
            self.stats.gap_moves,
            self.stats.total_flips,
            self.stats.new_faults,
            self.stats.compressed_writes,
            self.stats.resurrections,
            self.stats.relocation_failures,
            self.stats.deaths,
            self.stats.death_fault_cells,
        ] {
            h = fnv1a(h, v);
        }
        h
    }

    fn write_to_phys(
        &mut self,
        phys: usize,
        idx: u64,
        data: Line512,
        pre: Option<(Method, &[u8])>,
    ) -> Result<(LineWriteReport, bool), WriteError> {
        let kind = self.cfg.kind;
        // One stack-resident buffer pair per write: the storage decision
        // never heap-allocates (see crate::payload).
        let mut bufs = PayloadBufs::new();
        let (mut method, new_meta, fallback) = match pre {
            Some((m, payload)) => choose_payload_precompressed(
                &self.cfg,
                self.meta[idx as usize],
                &data,
                m,
                payload,
                &mut bufs,
            ),
            None => choose_payload(&self.cfg, self.meta[idx as usize], &data, &mut bufs),
        };
        let preferred = if kind.rotates() {
            self.leveler.offset()
        } else {
            0
        };
        let line = &mut self.phys[phys];
        // Revert a heuristic "store uncompressed" decision when only the
        // compressed form still fits this line.
        let mut payload_bytes = bufs.chosen();
        if let Some(fb_method) = fallback {
            if line
                .can_host(&self.engine, bufs.chosen().len(), preferred, kind.slides())
                .is_none()
                && line
                    .can_host(
                        &self.engine,
                        bufs.fallback().len(),
                        preferred,
                        kind.slides(),
                    )
                    .is_some()
            {
                payload_bytes = bufs.fallback();
                method = fb_method;
            }
        }
        if line.is_dead() {
            // Comp+WF checks dead lines for fit before giving up.
            if kind.slides() {
                if let Some(offset) =
                    line.can_host(&self.engine, payload_bytes.len(), preferred, true)
                {
                    line.revive();
                    self.stats.resurrections += 1;
                    let r = match line.write(
                        &self.engine,
                        Payload {
                            method,
                            bytes: payload_bytes,
                        },
                        offset,
                        true,
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            self.stats.deaths += 1;
                            self.stats.death_fault_cells += e.faults as u64;
                            return Err(WriteError::LineDead { faults: e.faults });
                        }
                    };
                    self.commit(idx, data, method, payload_bytes.len(), new_meta, &r);
                    return Ok((r, method.is_compressed()));
                }
            }
            return Err(WriteError::LineDead {
                faults: line.faults().count(),
            });
        }
        match line.write(
            &self.engine,
            Payload {
                method,
                bytes: payload_bytes,
            },
            preferred,
            kind.slides(),
        ) {
            Ok(r) => {
                self.commit(idx, data, method, payload_bytes.len(), new_meta, &r);
                Ok((r, method.is_compressed()))
            }
            Err(e) => {
                self.parked[idx as usize] = true;
                self.stats.deaths += 1;
                self.stats.death_fault_cells += e.faults as u64;
                Err(WriteError::LineDead { faults: e.faults })
            }
        }
    }

    fn commit(
        &mut self,
        idx: u64,
        data: Line512,
        method: Method,
        size: usize,
        new_meta: HostMeta,
        r: &LineWriteReport,
    ) {
        self.shadow[idx as usize] = Some(data);
        self.parked[idx as usize] = false;
        self.meta[idx as usize] = HostMeta {
            sc: new_meta.sc,
            last_size: size,
        };
        self.stats.total_flips += r.flips as u64;
        self.stats.new_faults += r.new_faults as u64;
        if method.is_compressed() {
            self.stats.compressed_writes += 1;
        }
    }

    /// Performs the migration writes a wear-leveling event demands. The
    /// scheme's map already reflects the new positions; this copies the
    /// hosted data into its new slots (a swap is two migration writes).
    fn apply_wear_event(&mut self, ev: WearEvent) {
        self.stats.gap_moves += 1;
        match ev {
            WearEvent::Move { to } => self.migrate_into(to),
            WearEvent::Swap { a, b } => {
                if a != b {
                    self.migrate_into(a);
                    self.migrate_into(b);
                }
            }
        }
    }

    /// One relocation write into physical slot `to`, including the
    /// Comp+WF resurrection check.
    fn migrate_into(&mut self, to: u64) {
        // Which logical (bank-relative) line now maps to `to`?
        let idx = (0..self.lines).find(|&i| self.scheme.map(i) == to);
        let Some(idx) = idx else {
            return; // `to` is a spare/gap slot after the event: nothing to copy.
        };
        let Some(data) = self.shadow[idx as usize] else {
            return; // never written: nothing to relocate
        };
        match self.write_to_phys(to as usize, idx, data, None) {
            Ok(_) => {}
            Err(_) => {
                self.stats.relocation_failures += 1;
                self.parked[idx as usize] = true;
            }
        }
    }
}

/// One FNV-1a fold step over a `u64` value's eight little-endian bytes.
fn fnv1a(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_util::seeded_rng;
    use rand::RngExt;

    fn cfg(kind: SystemKind) -> SystemConfig {
        SystemConfig::new(kind).with_endurance_mean(1e9)
    }

    #[test]
    fn bank_round_trips_all_systems() {
        let mut rng = seeded_rng(55);
        for kind in SystemKind::ALL {
            let mut bank = BankCtl::new(cfg(kind), 16, 3);
            let lines: Vec<(u64, Line512)> =
                (0..16).map(|l| (l, Line512::random(&mut rng))).collect();
            for &(l, d) in &lines {
                bank.write(l, d).unwrap();
            }
            for &(l, d) in &lines {
                assert_eq!(bank.read(l).unwrap(), d, "{kind}");
            }
        }
    }

    #[test]
    fn bank_rejects_out_of_range() {
        let mut bank = BankCtl::new(cfg(SystemKind::Comp), 8, 3);
        assert_eq!(bank.write(8, Line512::zero()), Err(WriteError::BadAddress));
        assert_eq!(bank.read(8).unwrap_err(), WriteError::BadAddress);
    }

    #[test]
    fn wear_digest_tracks_history_not_construction() {
        let mut a = BankCtl::new(cfg(SystemKind::CompWF), 8, 9);
        let mut b = BankCtl::new(cfg(SystemKind::CompWF), 8, 9);
        assert_eq!(a.wear_digest(), b.wear_digest(), "same seed, same digest");
        a.write(1, Line512::ones()).unwrap();
        assert_ne!(a.wear_digest(), b.wear_digest(), "write changes digest");
        b.write(1, Line512::ones()).unwrap();
        assert_eq!(a.wear_digest(), b.wear_digest(), "same history converges");
    }

    #[test]
    fn digest_is_replay_stable() {
        let run = || {
            let mut bank = BankCtl::new(cfg(SystemKind::Comp), 8, 21);
            let mut rng = seeded_rng(77);
            for _ in 0..500u32 {
                let l = rng.random_range(0..8);
                let _ = bank.write(l, Line512::random(&mut rng));
            }
            bank.wear_digest()
        };
        assert_eq!(run(), run());
    }
}
