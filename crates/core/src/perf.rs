//! Performance-overhead analysis of compressed reads (paper §V.B).
//!
//! Compression happens in the background (writes sit in the 32-entry write
//! queue), but **decompression is on the critical read path**: +1 CPU
//! cycle for BDI, +5 for FPC. This module drives the device crate's
//! queue/timing simulator with a workload's access stream, tracks which
//! lines are stored compressed, and reports the read-latency and
//! end-to-end slowdown impact. The paper observes reads delayed by up to
//! ~2% on average and an overall slowdown below 0.3%.

use pcm_compress::{compress_best, Method};
use pcm_device::access::{simulate, AccessConfig, Op, Request};
use pcm_device::MemoryGeometry;
use pcm_trace::{AccessKind, TraceGenerator, WorkloadProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of one performance study.
#[derive(Debug, Clone)]
pub struct PerfConfig {
    /// The workload.
    pub profile: WorkloadProfile,
    /// Logical lines touched by the study.
    pub lines: u64,
    /// Accesses (reads + writes) to simulate.
    pub accesses: usize,
    /// Seed.
    pub seed: u64,
    /// Fraction of a demand read's latency that actually stalls the core
    /// (out-of-order cores overlap most of it; 0.3 is a conservative
    /// out-of-order figure).
    pub stall_fraction: f64,
    /// CPU clock in GHz (paper: 2.5).
    pub cpu_ghz: f64,
    /// Baseline cycles per instruction including non-read stalls.
    pub base_cpi: f64,
}

impl PerfConfig {
    /// A study with the paper's machine constants.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        PerfConfig {
            profile,
            lines: 2048,
            accesses: 200_000,
            seed,
            stall_fraction: 0.3,
            cpu_ghz: 2.5,
            base_cpi: 1.0,
        }
    }
}

/// The result of one performance study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Mean demand-read latency without decompression, in bus cycles
    /// (includes queueing from the per-bank simulation).
    pub base_read_latency_cycles: f64,
    /// Mean queueing component of that latency, bus cycles.
    pub read_queueing_cycles: f64,
    /// Fraction of demand reads that hit compressed lines.
    pub compressed_read_fraction: f64,
    /// Mean decompression delay per read, nanoseconds (CPU cycles at
    /// `cpu_ghz`: 1 for BDI, 5 for FPC, 0 for uncompressed).
    pub avg_decompression_ns: f64,
    /// Mean read-latency increase from decompression, percent.
    pub read_latency_increase_pct: f64,
    /// Estimated end-to-end slowdown, percent.
    pub slowdown_pct: f64,
}

/// Runs the §V.B study for one workload.
///
/// # Panics
///
/// Panics if `accesses == 0`.
pub fn perf_overhead(cfg: &PerfConfig) -> PerfReport {
    assert!(cfg.accesses > 0, "need at least one access");
    let mut generator = TraceGenerator::from_profile(cfg.profile.clone(), cfg.lines, cfg.seed);
    let geometry = MemoryGeometry::scaled(cfg.lines.next_multiple_of(8));
    let access_cfg = AccessConfig::paper();
    let timing = access_cfg.timing;

    // Arrival model: the open-loop demand of 16 cores at IPC 1 would
    // saturate a closed-page PCM bank pool; a real closed-loop system
    // settles where cores stall on the memory. We therefore cap the
    // arrival rate at 50% of the banks' service capacity (the access mix's
    // mean occupancy), which keeps queues stable while still exercising
    // bank conflicts — the quantity under study is the *latency delta*
    // from decompression, which is insensitive to the exact utilization.
    let apki = cfg.profile.wpki * (1.0 + cfg.profile.reads_per_write);
    let instr_per_bus_cycle = 16.0 * cfg.cpu_ghz * 1000.0 / timing.clock_mhz as f64;
    let open_loop_rate = apki * instr_per_bus_cycle / 1000.0;
    let read_fraction = cfg.profile.reads_per_write / (1.0 + cfg.profile.reads_per_write);
    let mean_occupancy = read_fraction * timing.read_occupancy_cycles() as f64
        + (1.0 - read_fraction) * timing.write_occupancy_cycles() as f64;
    let capacity = access_cfg.banks as f64 / mean_occupancy;
    let accesses_per_cycle = open_loop_rate.min(0.5 * capacity);
    let inter_arrival = (1.0 / accesses_per_cycle).max(0.01);

    let cpu_cycle_ns = 1.0 / cfg.cpu_ghz;
    let mut stored: BTreeMap<u64, Method> = BTreeMap::new();
    let mut requests = Vec::with_capacity(cfg.accesses);
    let mut decomp_cpu_cycles_total = 0u64;
    let mut compressed_reads = 0u64;
    let mut reads = 0u64;
    let mut clock = 0.0f64;
    for _ in 0..cfg.accesses {
        clock += inter_arrival;
        let access = generator.next_access();
        let bank = geometry.flat_bank_of(access.line % geometry.lines);
        match access.kind {
            AccessKind::Write => {
                let data = access.data.expect("writes carry data");
                stored.insert(access.line, compress_best(&data).method());
                requests.push(Request {
                    arrival: clock as u64,
                    bank,
                    op: Op::Write,
                    decompression_cycles: 0,
                });
            }
            AccessKind::Read => {
                reads += 1;
                let method = stored
                    .get(&access.line)
                    .copied()
                    .unwrap_or(Method::Uncompressed);
                if method.is_compressed() {
                    compressed_reads += 1;
                }
                decomp_cpu_cycles_total += method.decompression_cycles();
                requests.push(Request {
                    arrival: clock as u64,
                    bank,
                    op: Op::Read,
                    decompression_cycles: 0,
                });
            }
        }
    }

    let stats = simulate(&access_cfg, &requests);
    let base_latency_ns = stats.avg_read_latency * timing.cycle_ns();
    let avg_decompression_ns = if reads > 0 {
        decomp_cpu_cycles_total as f64 / reads as f64 * cpu_cycle_ns
    } else {
        0.0
    };
    let read_latency_increase_pct = 100.0 * avg_decompression_ns / base_latency_ns;

    // End-to-end: extra stall per kilo-instruction over the total time per
    // kilo-instruction (compute + exposed memory stalls).
    let rpki = cfg.profile.wpki * cfg.profile.reads_per_write;
    let time_per_ki_ns =
        1000.0 * cfg.base_cpi * cpu_cycle_ns + rpki * base_latency_ns * cfg.stall_fraction;
    let extra_per_ki_ns = rpki * avg_decompression_ns * cfg.stall_fraction;
    let slowdown_pct = 100.0 * extra_per_ki_ns / time_per_ki_ns;

    PerfReport {
        base_read_latency_cycles: stats.avg_read_latency,
        read_queueing_cycles: stats.avg_read_queueing,
        compressed_read_fraction: if reads > 0 {
            compressed_reads as f64 / reads as f64
        } else {
            0.0
        },
        avg_decompression_ns,
        read_latency_increase_pct,
        slowdown_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_trace::SpecApp;

    fn quick(app: SpecApp) -> PerfReport {
        let mut cfg = PerfConfig::new(app.profile(), 5);
        cfg.lines = 256;
        cfg.accesses = 30_000;
        perf_overhead(&cfg)
    }

    #[test]
    fn overheads_are_small_as_in_paper() {
        for app in [SpecApp::Milc, SpecApp::Gcc, SpecApp::Lbm] {
            let r = quick(app);
            assert!(
                r.read_latency_increase_pct < 3.0,
                "{}: read latency +{:.2}%",
                app.name(),
                r.read_latency_increase_pct
            );
            assert!(
                r.slowdown_pct < 1.0,
                "{}: slowdown {:.2}%",
                app.name(),
                r.slowdown_pct
            );
        }
    }

    #[test]
    fn compressible_workload_mostly_reads_compressed_lines() {
        let r = quick(SpecApp::Milc);
        assert!(
            r.compressed_read_fraction > 0.6,
            "milc compressed read fraction {}",
            r.compressed_read_fraction
        );
    }

    #[test]
    fn incompressible_workload_pays_less_decompression() {
        let milc = quick(SpecApp::Milc);
        let lbm = quick(SpecApp::Lbm);
        assert!(
            lbm.compressed_read_fraction < milc.compressed_read_fraction,
            "lbm {} vs milc {}",
            lbm.compressed_read_fraction,
            milc.compressed_read_fraction
        );
    }

    #[test]
    fn base_latency_at_least_unloaded_latency() {
        let r = quick(SpecApp::Gcc);
        assert!(r.base_read_latency_cycles >= 69.0);
    }
}
