//! Differential oracle: accelerated lifetime engine vs. functional replay.
//!
//! Both simulators consume the same seeded workload model and the same
//! cell/ECC/window machinery but differ in abstraction (real Start-Gap
//! memory with a Zipf trace vs. exchangeable segment-sampled lines). The
//! oracle runs both at the same endurance and diffs them statistic by
//! statistic under per-statistic ratio tolerances — a tightening of the
//! original single factor-of-3 lifetime check (see DESIGN.md
//! "Verification" for how the default bounds were calibrated).

use crate::lifetime::{
    replay_to_failure, run_campaign, CampaignConfig, LineSimConfig, ReplayConfig,
};
use crate::system::SystemConfig;
use pcm_trace::SpecApp;

/// An acceptance band on the ratio of two positive statistics.
///
/// The band accepts a `candidate / reference` ratio in `lo..=hi`. Both the
/// differential oracle below and the experiment-layer `pcm-lab diff` gate
/// express their per-statistic tolerances with this type, so "how much may
/// two runs disagree" has exactly one vocabulary across the workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioBand {
    /// Smallest acceptable ratio.
    pub lo: f64,
    /// Largest acceptable ratio.
    pub hi: f64,
}

impl RatioBand {
    /// A band accepting ratios in `lo..=hi`.
    pub const fn new(lo: f64, hi: f64) -> Self {
        RatioBand { lo, hi }
    }

    /// Whether `ratio` lands inside the band.
    pub fn contains(&self, ratio: f64) -> bool {
        (self.lo..=self.hi).contains(&ratio)
    }

    /// Computes `candidate / reference` and checks it against the band.
    ///
    /// A zero reference is accepted only when the candidate is also zero
    /// (the ratio is reported as infinity otherwise), so statistics that
    /// legitimately bottom out at 0 — Monte-Carlo failure probabilities,
    /// fault counts — do not divide-by-zero their way past the gate.
    pub fn check(&self, reference: f64, candidate: f64) -> (f64, bool) {
        if reference == 0.0 {
            return if candidate == 0.0 {
                (1.0, true)
            } else {
                (f64::INFINITY, false)
            };
        }
        let ratio = candidate / reference;
        (ratio, self.contains(ratio))
    }
}

impl std::fmt::Display for RatioBand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

/// Acceptable `engine / replay` ratio bands, one per compared statistic.
///
/// The defaults are calibrated against the seeds used by [`run_oracle`]'s
/// callers and documented in DESIGN.md; they are deliberately tighter than
/// the original cross-validation test's factor of 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleTolerances {
    /// Per-line writes to the 50%-capacity failure criterion.
    pub lifetime: RatioBand,
    /// Mean programmed cells per demand write.
    pub flips: RatioBand,
    /// Mean faulty cells per uncorrectable-failure event (Fig. 12 metric).
    pub faults_at_death: RatioBand,
}

impl Default for OracleTolerances {
    fn default() -> Self {
        // Calibrated over the full SystemKind × EccChoice × {250, 400}
        // endurance matrix on Milc plus spot checks at other seeds (see
        // DESIGN.md "Verification"): observed engine/replay ratios were
        // 0.26..1.42 (lifetime, per-physical-line), 0.59..2.33 (flips),
        // 0.95..2.65 (faults-at-death); each band adds margin for
        // seed-to-seed variance of the small replay memory. The engine's
        // systematic conservative bias on lifetime is expected — replay
        // spreads wear over Start-Gap spares and relieves hot lines while
        // a dead neighbour absorbs retries; the engine's exchangeable
        // lines enjoy neither.
        OracleTolerances {
            lifetime: RatioBand::new(0.15, 2.0),
            flips: RatioBand::new(0.4, 2.8),
            faults_at_death: RatioBand::new(0.5, 3.2),
        }
    }
}

/// One differential-oracle run: a system at one endurance setting.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// The system under comparison (kind, ECC, endurance, window step).
    pub system: SystemConfig,
    /// The workload profile both simulators consume.
    pub app: SpecApp,
    /// Logical lines in the replayed functional memory.
    pub replay_lines: u64,
    /// Write cap for the replay (censoring horizon).
    pub max_replay_writes: u64,
    /// Independent lines sampled by the accelerated engine.
    pub engine_lines: usize,
    /// Segment sampling granularity of the engine.
    pub sample_writes: u32,
    /// Seed; the replay and the engine derive distinct child seeds.
    pub seed: u64,
    /// Acceptance bands ([`OracleTolerances`]).
    pub tolerances: OracleTolerances,
}

impl OracleConfig {
    /// An oracle sized for test suites: small memory, small engine sample.
    pub fn new(system: SystemConfig, app: SpecApp, seed: u64) -> Self {
        OracleConfig {
            system,
            app,
            replay_lines: 16,
            max_replay_writes: 30_000_000,
            engine_lines: 48,
            sample_writes: 16,
            seed,
            tolerances: OracleTolerances::default(),
        }
    }
}

/// One compared statistic.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleDiff {
    /// Statistic name (`lifetime`, `flips`, `faults_at_death`).
    pub stat: &'static str,
    /// The functional replay's value.
    pub replay: f64,
    /// The accelerated engine's value.
    pub engine: f64,
    /// `engine / replay`.
    pub ratio: f64,
    /// The acceptance band applied.
    pub bounds: RatioBand,
    /// Whether the ratio landed inside the band.
    pub ok: bool,
}

/// The oracle's verdict for one system at one endurance setting.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// The compared system.
    pub system: SystemConfig,
    /// Workload used.
    pub app: SpecApp,
    /// Per-statistic [`OracleDiff`] comparisons.
    pub diffs: Vec<OracleDiff>,
    /// Set when one simulator failed while the other was censored at its
    /// horizon — an irreconcilable disagreement about whether the memory
    /// fails at all.
    pub censoring_mismatch: Option<String>,
}

impl OracleReport {
    /// `true` when every statistic agreed within tolerance.
    pub fn passed(&self) -> bool {
        self.censoring_mismatch.is_none() && self.diffs.iter().all(|d| d.ok)
    }

    /// A one-line-per-statistic human summary.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "{} / {} / mean {:.0} ({:?}):",
            self.system.kind,
            self.system.ecc,
            self.system.endurance.mean(),
            self.app
        );
        if let Some(m) = &self.censoring_mismatch {
            out.push_str(&format!("\n  CENSORING MISMATCH: {m}"));
        }
        for d in &self.diffs {
            out.push_str(&format!(
                "\n  {:16} replay {:>12.2}  engine {:>12.2}  ratio {:.3} in {} {}",
                d.stat,
                d.replay,
                d.engine,
                d.ratio,
                d.bounds,
                if d.ok { "ok" } else { "FAIL" }
            ));
        }
        out
    }
}

fn diff(stat: &'static str, replay: f64, engine: f64, bounds: RatioBand) -> OracleDiff {
    let (ratio, ok) = bounds.check(replay, engine);
    OracleDiff {
        stat,
        replay,
        engine,
        ratio,
        bounds,
        ok,
    }
}

/// Replays the seeded trace through the functional [`PcmMemory`]
/// (`replay_to_failure`) and the accelerated engine (`run_campaign`) and
/// diffs per-line lifetime, mean flips per write, and mean faults at
/// death under the configured tolerances, yielding an [`OracleReport`].
pub fn run_oracle(cfg: &OracleConfig) -> OracleReport {
    let replay = replay_to_failure(&ReplayConfig {
        system: cfg.system,
        profile: cfg.app.profile(),
        lines: cfg.replay_lines,
        max_writes: cfg.max_replay_writes,
        seed: cfg.seed,
    });

    let mut line = LineSimConfig::new(cfg.system, cfg.app.profile());
    line.sample_writes = cfg.sample_writes;
    let mut campaign = CampaignConfig::new(line, cfg.seed ^ 0x0DDC_0FFE);
    campaign.lines = cfg.engine_lines;
    let engine = run_campaign(&campaign);

    let mut report = OracleReport {
        system: cfg.system,
        app: cfg.app,
        diffs: Vec::new(),
        censoring_mismatch: None,
    };

    match (replay.writes_to_failure, engine.writes_to_half_capacity) {
        (Some(_), None) => {
            report.censoring_mismatch = Some(format!(
                "replay failed at {} writes but the engine survived its {}-write horizon",
                replay.lifetime_writes(),
                engine.horizon
            ));
        }
        (None, Some(t)) => {
            report.censoring_mismatch = Some(format!(
                "engine failed at {t} per-line writes but the replay survived {} writes",
                replay.writes_issued
            ));
        }
        // Both censored: nothing to compare on lifetime, and at verify
        // endurance settings this means the config is too gentle — the
        // remaining statistics still get diffed.
        (None, None) | (Some(_), Some(_)) => {}
    }

    if replay.writes_to_failure.is_some() && engine.writes_to_half_capacity.is_some() {
        // The replay spreads wear over every physical line (Start-Gap
        // spares included); divide by that count, not the logical one, to
        // get a per-line budget comparable with the engine's clock.
        let phys = crate::PcmMemory::physical_lines(cfg.replay_lines);
        report.diffs.push(diff(
            "lifetime",
            replay.lifetime_writes() as f64 / phys as f64,
            engine.lifetime_writes() as f64,
            cfg.tolerances.lifetime,
        ));
    }
    report.diffs.push(diff(
        "flips",
        replay.mean_flips_per_write,
        engine.mean_flips_per_write,
        cfg.tolerances.flips,
    ));
    if let (Some(r), Some(e)) = (replay.mean_faults_at_death, engine.mean_faults_at_death) {
        report.diffs.push(diff(
            "faults_at_death",
            r,
            e,
            cfg.tolerances.faults_at_death,
        ));
    }
    report
}
