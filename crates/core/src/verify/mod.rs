//! Deterministic fault-injection and differential verification harness.
//!
//! Everything here is reproducible from a single `u64` seed:
//!
//! - [`churn`] drives seeded write/read churn through fault-planned lines
//!   and whole memories, asserting read-after-write integrity, window-slide
//!   correctness, and death/resurrection accounting on every step.
//! - [`oracle`] replays the same seeded workload through the functional
//!   [`PcmMemory`](crate::PcmMemory) and the accelerated lifetime engine
//!   and diffs their statistics under per-statistic tolerances.
//! - [`run_all`] sweeps both checks over every
//!   [`SystemKind`] × hard-error-scheme combination at two endurance
//!   settings, then churns every registered inter-line wear scheme
//!   through the whole-memory harness — the matrix the `pcm-verify`
//!   binary (and the `verify` stage of `scripts_run_all.sh`) runs.
//!
//! Fault plans come from [`pcm_util::FaultPlan`]: position-exact,
//! density-driven, or count-driven stuck-at sets with a chosen SA-0/SA-1
//! polarity mix, derived per line from the plan seed.
//!
//! The harness checks itself: with `--features verify-mutations` the
//! hard-error schemes can be deliberately mis-wired (ECP pointer
//! off-by-one, SAFER partition mis-map) and the mutation tests in this
//! module assert the churn checks *fail* under each corruption.

pub mod churn;
pub mod oracle;

pub use churn::{churn_lines, churn_memory, ChurnData, ChurnError, ChurnStats};
pub use oracle::{run_oracle, OracleConfig, OracleDiff, OracleReport, OracleTolerances, RatioBand};

use crate::system::{EccChoice, SystemConfig, SystemKind, WearChoice};
use pcm_trace::SpecApp;
use pcm_util::FaultPlan;

/// Configuration of the full verification sweep.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Master seed; every sub-check derives its own child seed.
    pub seed: u64,
    /// The two endurance settings the differential oracle runs at.
    pub endurance_means: [f64; 2],
    /// Hard-error schemes to cross with every [`SystemKind`].
    pub eccs: Vec<EccChoice>,
    /// Inter-line wear schemes each given a whole-memory churn pass.
    pub wears: Vec<WearChoice>,
    /// Workload profile for churn and oracle runs.
    pub app: SpecApp,
    /// Fault-planned lines churned per combination.
    pub churn_lines: u64,
    /// Write-backs per churned line.
    pub churn_writes: u32,
    /// Write-backs through each whole-memory churn.
    pub memory_writes: u64,
    /// Skip the (slow) differential oracle, running churn only.
    pub churn_only: bool,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            seed: 0x5EED_F00D,
            endurance_means: [250.0, 400.0],
            eccs: EccChoice::ALL.to_vec(),
            wears: WearChoice::ALL.to_vec(),
            app: SpecApp::Milc,
            churn_lines: 4,
            churn_writes: 96,
            memory_writes: 20_000,
            churn_only: false,
        }
    }
}

/// The outcome of one [`SystemKind`] × [`EccChoice`] × [`WearChoice`]
/// combination.
#[derive(Debug, Clone)]
pub struct VerifyEntry {
    /// The system evaluated.
    pub kind: SystemKind,
    /// The hard-error scheme evaluated.
    pub ecc: EccChoice,
    /// The inter-line wear scheme evaluated.
    pub wear: WearChoice,
    /// Combined line + memory churn outcome.
    pub churn: Result<ChurnStats, ChurnError>,
    /// One oracle report per endurance setting.
    pub oracles: Vec<OracleReport>,
}

impl VerifyEntry {
    /// `true` when churn and every oracle run agreed.
    pub fn passed(&self) -> bool {
        self.churn.is_ok() && self.oracles.iter().all(|o| o.passed())
    }
}

/// The outcome of the full sweep.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// One entry per combination, in sweep order.
    pub entries: Vec<VerifyEntry>,
}

impl VerifyReport {
    /// `true` when every combination passed.
    pub fn passed(&self) -> bool {
        self.entries.iter().all(|e| e.passed())
    }

    /// Human-readable descriptions of every failing combination.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in &self.entries {
            if let Err(err) = &e.churn {
                out.push(format!("{} / {} / {}: churn: {err}", e.kind, e.ecc, e.wear));
            }
            for o in &e.oracles {
                if !o.passed() {
                    out.push(format!("oracle: {}", o.describe()));
                }
            }
        }
        out
    }
}

/// Runs churn (and, unless `churn_only`, the differential oracle) for
/// every [`SystemKind`] × [`EccChoice`] combination in the config.
///
/// Returns a [`VerifyReport`] whose [`VerifyEntry`] rows name each
/// combination.
///
/// Determinism: the sweep derives each sub-check's seed from
/// `cfg.seed` and the combination's index, so a single failing
/// combination can be reproduced in isolation with the seed printed in
/// its error message.
pub fn run_all(cfg: &VerifyConfig) -> VerifyReport {
    let mut entries = Vec::new();
    for (ki, kind) in SystemKind::ALL.into_iter().enumerate() {
        for (ei, &ecc) in cfg.eccs.iter().enumerate() {
            let combo_seed = pcm_util::child_seed(cfg.seed, (ki * 16 + ei) as u64);
            let sys = SystemConfig::new(kind)
                .with_endurance_mean(1e9)
                .with_ecc(ecc);
            // Plans: a polarity-mixed sparse plan every scheme must absorb,
            // driven by workload-shaped data.
            let plan = FaultPlan::with_count(combo_seed, sparse_fault_budget(ecc), 0.5);
            let churn = churn_lines(
                &sys,
                &plan,
                ChurnData::Mixed,
                cfg.churn_lines,
                cfg.churn_writes,
                combo_seed,
            )
            .and_then(|line_stats| {
                // Sliding systems additionally face a fault cluster that
                // defeats the preferred offset but not the line, under
                // always-compressible payloads: every write must dodge.
                if kind.slides() {
                    let cluster = FaultPlan::with_count(combo_seed ^ 0xC1_05, 16, 0.5);
                    churn_lines(
                        &sys,
                        &cluster,
                        ChurnData::Compressible,
                        cfg.churn_lines,
                        cfg.churn_writes,
                        combo_seed ^ 0x51_1D,
                    )
                    .map(|s| ChurnStats {
                        writes_checked: line_stats.writes_checked + s.writes_checked,
                        slides: line_stats.slides + s.slides,
                        retries: line_stats.retries + s.retries,
                        deaths: line_stats.deaths + s.deaths,
                        resurrections: line_stats.resurrections + s.resurrections,
                    })
                } else {
                    Ok(line_stats)
                }
            })
            .and_then(|line_stats| {
                // Low enough endurance that lines die (and, under
                // Comp+WF, revive) within the churn budget — the whole
                // point is to exercise the death/resurrection accounting.
                let msys = SystemConfig::new(kind)
                    .with_endurance_mean(60.0)
                    .with_ecc(ecc);
                churn_memory(&msys, 16, cfg.memory_writes, combo_seed ^ 0x4D45_4D00).map(
                    |mem_stats| ChurnStats {
                        writes_checked: line_stats.writes_checked + mem_stats.writes_checked,
                        slides: line_stats.slides + mem_stats.slides,
                        retries: line_stats.retries + mem_stats.retries,
                        deaths: line_stats.deaths + mem_stats.deaths,
                        resurrections: line_stats.resurrections + mem_stats.resurrections,
                    },
                )
            });
            let oracles = if cfg.churn_only {
                Vec::new()
            } else {
                cfg.endurance_means
                    .iter()
                    .map(|&mean| {
                        let osys = SystemConfig::new(kind)
                            .with_endurance_mean(mean)
                            .with_ecc(ecc);
                        run_oracle(&OracleConfig::new(osys, cfg.app, combo_seed))
                    })
                    .collect()
            };
            entries.push(VerifyEntry {
                kind,
                ecc,
                wear: WearChoice::StartGap,
                churn,
                oracles,
            });
        }
    }
    // Wear-scheme sweep: every registered inter-line scheme gets a
    // whole-memory churn pass under the full Comp+WF stack (16 lines → 8
    // power-of-two banks, so Security Refresh's constraint is met). The
    // differential oracle is skipped here: the accelerated engine's
    // per-line write budget assumes Start-Gap's one-spare geometry.
    for (wi, &wear) in cfg.wears.iter().enumerate() {
        let combo_seed = pcm_util::child_seed(cfg.seed, 0x77EA_0000 + wi as u64);
        let msys = SystemConfig::new(SystemKind::CompWF)
            .with_endurance_mean(60.0)
            .with_wear(wear);
        let churn = churn_memory(&msys, 16, cfg.memory_writes, combo_seed);
        entries.push(VerifyEntry {
            kind: SystemKind::CompWF,
            ecc: EccChoice::Ecp6,
            wear,
            churn,
            oracles: Vec::new(),
        });
    }
    VerifyReport { entries }
}

/// A stuck-at budget every scheme can absorb in a full-line window:
/// SECDED only guarantees one correctable error per 64-bit word, so it
/// gets a single fault; the dedicated schemes get a handful.
fn sparse_fault_budget(ecc: EccChoice) -> u32 {
    match ecc {
        EccChoice::Secded => 1,
        EccChoice::EcpN(n) => (n as u32).min(4),
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_sweep_all_combinations() {
        let cfg = VerifyConfig {
            churn_only: true,
            memory_writes: 1_500,
            ..Default::default()
        };
        let report = run_all(&cfg);
        assert_eq!(
            report.entries.len(),
            SystemKind::ALL.len() * EccChoice::ALL.len() + WearChoice::ALL.len(),
            "4 systems x 5 ECC schemes + 3 wear schemes"
        );
        assert!(
            report.passed(),
            "failures:\n{}",
            report.failures().join("\n")
        );
        for e in &report.entries {
            let stats = e.churn.as_ref().unwrap();
            assert!(
                stats.writes_checked > 0,
                "{} / {} / {} exercised nothing",
                e.kind,
                e.ecc,
                e.wear
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = VerifyConfig {
            churn_only: true,
            memory_writes: 500,
            ..Default::default()
        };
        let a = run_all(&cfg);
        let b = run_all(&cfg);
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.churn.as_ref().unwrap(), y.churn.as_ref().unwrap());
        }
    }
}

// The harness must be able to detect a mis-wired hard-error scheme, or
// its green runs mean nothing. With `--features verify-mutations` the
// schemes can be deliberately corrupted; these tests assert the churn
// checks catch each corruption.
#[cfg(all(test, feature = "verify-mutations"))]
mod mutation_tests {
    use super::*;
    use pcm_ecc::mutation::{with_mutation, Mutation};

    fn ecp_churn() -> Result<ChurnStats, ChurnError> {
        let sys = SystemConfig::new(SystemKind::Comp).with_endurance_mean(1e9);
        let plan = FaultPlan::with_count(0xEC9, 4, 0.5);
        churn_lines(&sys, &plan, ChurnData::Mixed, 2, 96, 17)
    }

    fn safer_churn() -> Result<ChurnStats, ChurnError> {
        let sys = SystemConfig::new(SystemKind::Comp)
            .with_endurance_mean(1e9)
            .with_ecc(EccChoice::Safer32);
        let plan = FaultPlan::with_count(0x5AF, 4, 0.5);
        churn_lines(&sys, &plan, ChurnData::Mixed, 2, 96, 18)
    }

    #[test]
    fn harness_catches_ecp_pointer_off_by_one() {
        assert!(ecp_churn().is_ok(), "un-mutated churn must be green");
        let res = with_mutation(Mutation::EcpPointerOffByOne, ecp_churn);
        assert!(res.is_err(), "off-by-one ECP pointer must be detected");
    }

    #[test]
    fn harness_catches_safer_partition_mismap() {
        assert!(safer_churn().is_ok(), "un-mutated churn must be green");
        let res = with_mutation(Mutation::SaferPartitionMisMap, safer_churn);
        assert!(res.is_err(), "mis-mapped SAFER partition must be detected");
    }

    #[test]
    fn mutations_do_not_leak_between_scopes() {
        let _ = with_mutation(Mutation::EcpPointerOffByOne, ecp_churn);
        assert!(ecp_churn().is_ok(), "mutation must be scope-local");
    }
}
