//! Write/read churn under planned fault injection.
//!
//! Three layers of checking, all deterministic from `(plan, seed)`:
//!
//! 1. **Line churn** — a [`ManagedLine`] seeded with a [`FaultPlan`]'s
//!    exact faults serves a stream of compressible/random write-backs;
//!    every write is immediately read back through the full
//!    decode/decompress path and compared bit-for-bit.
//! 2. **Window-slide correctness** — whenever a write lands away from its
//!    preferred offset (`slid`), the harness additionally asserts the
//!    slide was *necessary* (the preferred grid offset really could not
//!    host the payload) and still landed on the window-step grid.
//! 3. **Memory churn** — a whole [`PcmMemory`] under low endurance runs a
//!    random write stream against a shadow model; read-after-write
//!    integrity, dead-line read behavior, and resurrection accounting
//!    (`resurrections`/`deaths` statistics vs. observed transitions) are
//!    checked at every step.

use crate::controller::{PcmMemory, WriteError};
use crate::line::{EccEngine, ManagedLine, Payload};
use crate::system::SystemConfig;
use pcm_compress::{compress_best, decompress, CompressedWrite};
use pcm_trace::BlockStream;
use pcm_util::{child_seed, seeded_rng, FaultPlan, Line512};
use rand::{Rng, RngExt};

/// What write-back payloads a line churn feeds the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnData {
    /// Workload-shaped blocks interleaved with fully random (usually
    /// incompressible) lines — the realistic default. Incompressible
    /// payloads need the whole 512-cell window, so dense fault plans can
    /// legitimately kill lines even under sliding systems.
    Mixed,
    /// Only payloads that BDI-compress to a sub-line window, so a sliding
    /// system must always be able to dodge a planned fault cluster.
    Compressible,
}

/// A base-8 delta-1 pattern: always compresses to a 16-byte window.
fn compressible_line<R: Rng + ?Sized>(rng: &mut R) -> Line512 {
    let base: u64 = rng.random();
    let mut bytes = [0u8; 64];
    for w in 0..8 {
        let v = base.wrapping_add(rng.random_range(0..128u64));
        bytes[w * 8..w * 8 + 8].copy_from_slice(&v.to_le_bytes());
    }
    Line512::from_bytes(&bytes)
}

/// What one churn run did (all counters are assertions' witnesses: a run
/// that exercised nothing proves nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// Successful line writes checked by read-after-write.
    pub writes_checked: u64,
    /// Writes that slid away from the preferred offset.
    pub slides: u64,
    /// Writes that survived at least one verify-retry.
    pub retries: u64,
    /// Dead-line write rejections observed.
    pub deaths: u64,
    /// Lines revived by resurrection (memory churn).
    pub resurrections: u64,
}

/// A churn failure: what diverged, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnError {
    /// Human-readable description with reproduction coordinates.
    pub message: String,
}

impl std::fmt::Display for ChurnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ChurnError {}

macro_rules! churn_check {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(ChurnError { message: format!($($fmt)+) });
        }
    };
}

/// Churns `lines` fault-planned [`ManagedLine`]s with `writes` write-backs
/// each, checking read-after-write integrity and window-slide correctness
/// on every write.
///
/// # Errors
///
/// Returns [`ChurnStats`] on agreement and the first divergence as a
/// [`ChurnError`] naming the line, write index, and seed.
pub fn churn_lines(
    sys: &SystemConfig,
    plan: &FaultPlan,
    data_mix: ChurnData,
    lines: u64,
    writes: u32,
    seed: u64,
) -> Result<ChurnStats, ChurnError> {
    let engine = EccEngine::new(sys.ecc);
    let mut stats = ChurnStats::default();
    for line_idx in 0..lines {
        let faults = plan.for_line(line_idx);
        let mut line = ManagedLine::with_faults(&faults);
        let mut block = BlockStream::new(
            pcm_trace::SpecApp::Milc.profile(),
            child_seed(seed, line_idx),
        );
        let mut rng = seeded_rng(child_seed(seed ^ 0x5EED, line_idx));
        for w in 0..writes {
            let data = match data_mix {
                ChurnData::Compressible => compressible_line(&mut rng),
                ChurnData::Mixed if w % 3 == 0 => Line512::random(&mut rng),
                ChurnData::Mixed => block.next_data(),
            };
            let c = compress_best(&data);
            let (bytes, method) = if sys.kind.compresses() {
                (c.bytes().to_vec(), c.method())
            } else {
                (data.to_bytes().to_vec(), pcm_compress::Method::Uncompressed)
            };
            let preferred = if sys.kind.rotates() {
                (w as usize * 7) % pcm_util::DATA_BYTES / sys.window_step * sys.window_step
            } else {
                0
            };
            let report = match line.write_with_step(
                &engine,
                Payload {
                    method,
                    bytes: &bytes,
                },
                preferred,
                sys.kind.slides(),
                sys.window_step,
            ) {
                Ok(r) => r,
                Err(_) => {
                    // The plan may be dense enough to kill the line. The
                    // death must be honest: a dead line must refuse reads.
                    stats.deaths += 1;
                    churn_check!(
                        line.read(&engine).is_none(),
                        "line {line_idx} ({}, {}): dead line still serves reads (seed {seed})",
                        sys.kind,
                        sys.ecc
                    );
                    break;
                }
            };

            // Read-after-write: full decode + decompress round trip.
            let (r_method, r_bytes) = line.read(&engine).ok_or_else(|| ChurnError {
                message: format!(
                    "line {line_idx} write {w} ({}, {}): valid line returned no data (seed {seed})",
                    sys.kind, sys.ecc
                ),
            })?;
            churn_check!(
                r_method == method && r_bytes == bytes,
                "line {line_idx} write {w} ({}, {}): read-after-write mismatch \
                 (method {method:?} -> {r_method:?}, seed {seed}, faults {})",
                sys.kind,
                sys.ecc,
                faults.count()
            );
            let back = decompress(
                &CompressedWrite::from_parts(r_method, r_bytes).map_err(|e| ChurnError {
                    message: format!(
                        "line {line_idx} write {w} ({}, {}): stored payload invalid: {e} (seed {seed})",
                        sys.kind, sys.ecc
                    ),
                })?,
            );
            churn_check!(
                back == data,
                "line {line_idx} write {w} ({}, {}): decompressed data mismatch (seed {seed})",
                sys.kind,
                sys.ecc
            );

            // Window-slide correctness.
            churn_check!(
                report.offset % sys.window_step == 0,
                "line {line_idx} write {w} ({}): offset {} off the step-{} grid (seed {seed})",
                sys.kind,
                report.offset,
                sys.window_step
            );
            if report.slid {
                churn_check!(
                    sys.kind.slides(),
                    "line {line_idx} write {w} ({}): non-sliding system slid (seed {seed})",
                    sys.kind
                );
                // The slide must have been necessary: the preferred grid
                // offset cannot host this payload against the *current*
                // fault set (faults only grow, so checking now is sound).
                let grid_preferred = preferred / sys.window_step * sys.window_step;
                churn_check!(
                    line.can_host_with_step(
                        &engine,
                        bytes.len(),
                        grid_preferred,
                        false,
                        sys.window_step
                    )
                    .is_none(),
                    "line {line_idx} write {w} ({}, {}): slid from hostable offset \
                     {grid_preferred} to {} (seed {seed})",
                    sys.kind,
                    sys.ecc,
                    report.offset
                );
                stats.slides += 1;
            }
            if report.attempts > 1 {
                stats.retries += 1;
            }
            stats.writes_checked += 1;
        }
    }
    Ok(stats)
}

/// Churns a whole [`PcmMemory`] against a shadow model: `writes` random
/// write-backs over `logical_lines` lines at churn-scale endurance,
/// checking integrity and resurrection/death accounting after every write.
///
/// # Errors
///
/// Returns the first divergence, naming the step and seed.
pub fn churn_memory(
    sys: &SystemConfig,
    logical_lines: u64,
    writes: u64,
    seed: u64,
) -> Result<ChurnStats, ChurnError> {
    let mut mem = PcmMemory::new(*sys, logical_lines, seed);
    let mut rng = seeded_rng(child_seed(seed, 0xC0FFEE));
    let mut block = BlockStream::new(pcm_trace::SpecApp::Gcc.profile(), child_seed(seed, 7));
    let mut shadow: Vec<Option<Line512>> = vec![None; logical_lines as usize];
    let mut stats = ChurnStats::default();

    for step in 0..writes {
        let l = rng.random_range(0..logical_lines);
        let data = if step % 4 == 0 {
            Line512::random(&mut rng)
        } else {
            block.next_data()
        };
        let before = mem.stats();
        match mem.write(l, data) {
            Ok(report) => {
                shadow[l as usize] = Some(data);
                stats.writes_checked += 1;
                stats.slides += report.line.slid as u64;
                stats.retries += (report.line.attempts > 1) as u64;
                match mem.read(l) {
                    Ok(read) => {
                        churn_check!(
                            read == data,
                            "step {step} line {l} ({}, {}): read-after-write mismatch (seed {seed})",
                            sys.kind,
                            sys.ecc
                        );
                    }
                    // A Start-Gap move piggybacked on this write may have
                    // relocated the just-written line onto a dead slot and
                    // parked it — data loss by design, but only when a gap
                    // move actually happened.
                    Err(WriteError::LineDead { .. }) if report.gap_moved => {}
                    Err(e) => {
                        return Err(ChurnError {
                            message: format!(
                                "step {step} ({}, {}): write acknowledged but read failed: {e} (seed {seed})",
                                sys.kind, sys.ecc
                            ),
                        });
                    }
                }
            }
            Err(WriteError::LineDead { .. }) => {
                stats.deaths += 1;
                churn_check!(
                    mem.read(l).is_err(),
                    "step {step} line {l} ({}, {}): failed write but line still reads (seed {seed})",
                    sys.kind,
                    sys.ecc
                );
            }
            Err(e) => {
                return Err(ChurnError {
                    message: format!("step {step}: unexpected write error {e} (seed {seed})"),
                });
            }
        }
        let after = mem.stats();

        // Resurrection accounting: only Comp+WF revives, never more than
        // once per write, and a revival implies this write succeeded into
        // a previously-dead line.
        let revived = after.resurrections - before.resurrections;
        if revived > 0 {
            churn_check!(
                sys.kind.slides(),
                "step {step} ({}): resurrection on a non-sliding system (seed {seed})",
                sys.kind
            );
            stats.resurrections += revived;
        }
        churn_check!(
            after.deaths >= before.deaths,
            "step {step}: death counter went backwards (seed {seed})"
        );

        // Spot-check a few shadowed lines every 64 steps (full sweeps at
        // every step would dominate runtime).
        if step % 64 == 63 {
            for (i, expect) in shadow.iter().enumerate() {
                let Some(expect) = expect else { continue };
                match mem.read(i as u64) {
                    Ok(got) => {
                        churn_check!(
                            got == *expect,
                            "step {step} sweep line {i} ({}, {}): stored data corrupted (seed {seed})",
                            sys.kind,
                            sys.ecc
                        );
                    }
                    // A line may be legitimately lost to a failed write or
                    // relocation since its last successful write.
                    Err(WriteError::LineDead { .. }) => {}
                    Err(e) => {
                        return Err(ChurnError {
                            message: format!("step {step} sweep line {i}: {e} (seed {seed})"),
                        });
                    }
                }
            }
        }
    }

    let final_stats = mem.stats();
    churn_check!(
        sys.kind.slides() || final_stats.resurrections == 0,
        "({}) non-sliding system reported {} resurrections (seed {seed})",
        sys.kind,
        final_stats.resurrections
    );
    stats.resurrections = final_stats.resurrections;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{EccChoice, SystemKind};
    use pcm_util::StuckAt;

    #[test]
    fn clean_lines_churn_clean() {
        let sys = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(1e9);
        let plan = FaultPlan::exact(vec![]);
        let stats = churn_lines(&sys, &plan, ChurnData::Mixed, 2, 64, 1).unwrap();
        assert_eq!(stats.writes_checked, 128);
        assert_eq!(stats.deaths, 0);
    }

    #[test]
    fn planned_faults_force_slides_and_survive() {
        // A cluster filling bytes 0..2 defeats ECP-6 at offset 0; Comp+WF
        // must slide and still round-trip.
        let sys = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(1e9);
        let faults: Vec<StuckAt> = (0..16)
            .map(|i| StuckAt {
                pos: i,
                value: i % 2 == 0,
            })
            .collect();
        let plan = FaultPlan::exact(faults);
        let stats = churn_lines(&sys, &plan, ChurnData::Compressible, 1, 128, 2).unwrap();
        assert!(
            stats.slides > 0,
            "cluster must force window slides: {stats:?}"
        );
        assert_eq!(stats.deaths, 0);
    }

    #[test]
    fn dense_plans_kill_nonsliding_lines_honestly() {
        let sys = SystemConfig::new(SystemKind::Comp).with_endurance_mean(1e9);
        let plan = FaultPlan::with_count(3, 40, 0.5);
        let stats = churn_lines(&sys, &plan, ChurnData::Mixed, 4, 64, 3).unwrap();
        assert!(
            stats.deaths > 0,
            "40 faults should defeat ECP-6 without sliding"
        );
    }

    #[test]
    fn memory_churn_all_systems() {
        for kind in SystemKind::ALL {
            let sys = SystemConfig::new(kind).with_endurance_mean(400.0);
            let stats = churn_memory(&sys, 16, 4_000, 11).unwrap();
            assert!(stats.writes_checked > 1_000, "{kind}: {stats:?}");
        }
    }

    #[test]
    fn safer_memory_churn() {
        let sys = SystemConfig::new(SystemKind::CompWF)
            .with_endurance_mean(300.0)
            .with_ecc(EccChoice::Safer32);
        churn_memory(&sys, 16, 2_000, 5).unwrap();
    }
}
