//! One physical line under the compression-window controller.
//!
//! [`ManagedLine`] ties every mechanism of the paper together for a single
//! 512-cell line: the compressed payload is placed in a (possibly wrapped)
//! window, the hard-error scheme encodes around the stuck cells inside that
//! window, the differential-write cell model programs only changed cells,
//! and the write-verify step catches cells that die *during* the write and
//! re-encodes (or slides the window) until the payload is stored — or the
//! line is declared dead.

use crate::registry;
use crate::system::EccChoice;
use crate::window;
use pcm_compress::Method;
use pcm_device::{CellTech, EnduranceModel, LineWear};
use pcm_ecc::aegis::AegisCode;
use pcm_ecc::ecp::EcpCode;
use pcm_ecc::safer::SaferCode;
use pcm_ecc::secded::SecdedCode;
use pcm_ecc::{Aegis, Coset, Ecp, HardErrorScheme, Safer, Secded};
use pcm_util::fault::FaultMap;
use pcm_util::{Line512, DATA_BYTES};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The instantiated hard-error scheme with its encode/decode machinery.
///
/// Table-heavy schemes (SAFER-32, Aegis 17×31, the coset masks) come from
/// the process-wide [`registry`] so every engine shares one instance —
/// `simulate_line` constructs an engine per call, which once made table
/// construction dominate short-lived lines.
#[derive(Debug, Clone)]
pub struct EccEngine {
    choice: EccChoice,
    ecp: Ecp,
    safer: &'static Safer,
    aegis: &'static Aegis,
    secded: Secded,
    coset: &'static Coset,
}

/// Per-line ECC correction state from the most recent write.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum EccCode {
    /// No write yet.
    None,
    /// ECP pointers + replacement bits.
    Ecp(EcpCode),
    /// SAFER partition + inversions.
    Safer(SaferCode),
    /// Aegis partition + inversions.
    Aegis(AegisCode),
    /// SECDED check bytes.
    Secded(SecdedCode),
    /// Coset transform tag + ECP pointers for the transformed payload.
    Coset(u16, EcpCode),
}

impl EccEngine {
    /// Builds the engine for a configuration choice.
    pub fn new(choice: EccChoice) -> Self {
        let ecp = match choice {
            EccChoice::EcpN(n) => Ecp::new(n as u32),
            _ => Ecp::new(6),
        };
        EccEngine {
            choice,
            ecp,
            safer: registry::shared_safer32(),
            aegis: registry::shared_aegis_17x31(),
            secded: Secded::new(),
            coset: registry::shared_coset(),
        }
    }

    /// The underlying scheme as a trait object (for window searches).
    pub fn scheme(&self) -> &dyn HardErrorScheme {
        match self.choice {
            EccChoice::Ecp6 | EccChoice::EcpN(_) => &self.ecp,
            EccChoice::Safer32 => self.safer,
            EccChoice::Aegis17x31 => self.aegis,
            EccChoice::Secded => &self.secded,
            EccChoice::Coset => self.coset,
        }
    }

    /// Encodes `target` around the given (window-restricted) faults.
    ///
    /// Payload-transforming schemes also see the currently `stored` line
    /// and the window mask, so they can pick the cheapest equivalent
    /// vector; plain correction schemes ignore both.
    fn encode(
        &self,
        target: &Line512,
        stored: &Line512,
        window_mask: &Line512,
        faults: &FaultMap,
    ) -> Result<(Line512, EccCode), pcm_ecc::EccError> {
        match self.choice {
            EccChoice::Ecp6 | EccChoice::EcpN(_) => self
                .ecp
                .write(target, faults)
                .map(|(s, c)| (s, EccCode::Ecp(c))),
            EccChoice::Safer32 => self
                .safer
                .write(target, faults)
                .map(|(s, c)| (s, EccCode::Safer(c))),
            EccChoice::Aegis17x31 => self
                .aegis
                .write(target, faults)
                .map(|(s, c)| (s, EccCode::Aegis(c))),
            EccChoice::Secded => self
                .secded
                .write(target, faults)
                .map(|(s, c)| (s, EccCode::Secded(c))),
            EccChoice::Coset => {
                let (transformed, tag) =
                    self.coset
                        .encode_payload(target, stored, window_mask, faults);
                self.coset
                    .write(&transformed, faults)
                    .map(|(s, c)| (s, EccCode::Coset(tag, c)))
            }
        }
    }

    /// Decodes a stored line with its correction state.
    fn decode(&self, stored: &Line512, code: &EccCode) -> Line512 {
        match code {
            EccCode::None => *stored,
            EccCode::Ecp(c) => self.ecp.read(stored, c),
            EccCode::Safer(c) => self.safer.read(stored, c),
            EccCode::Aegis(c) => self.aegis.read(stored, c),
            EccCode::Secded(c) => self.secded.read(stored, c),
            EccCode::Coset(tag, c) => self.coset.decode_payload(&self.coset.read(stored, c), *tag),
        }
    }
}

/// The payload handed to a line write: method plus window bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Payload<'a> {
    /// How the bytes are encoded.
    pub method: Method,
    /// The bytes that occupy the compression window.
    pub bytes: &'a [u8],
}

/// The report of one successful line write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineWriteReport {
    /// Window start byte actually used.
    pub offset: usize,
    /// Total cells programmed (over all verify-retry attempts).
    pub flips: u32,
    /// Mask of cells programmed by this write (union over attempts).
    pub flip_mask: Line512,
    /// Cells that became stuck during this write.
    pub new_faults: u32,
    /// Encode/program attempts (1 = clean write).
    pub attempts: u32,
    /// `true` when the window had to slide away from the preferred offset.
    pub slid: bool,
}

/// Error returned when a line cannot store the payload: it is (now) dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineDead {
    /// Faulty cells in the line at the time of death.
    pub faults: u32,
}

impl std::fmt::Display for LineDead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line is dead ({} faulty cells)", self.faults)
    }
}

impl std::error::Error for LineDead {}

/// Per-line metadata update counters (paper §III-B: metadata cells wear
/// far slower than data cells because their fields change rarely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetaUpdateCounts {
    /// Writes served by the line.
    pub writes: u64,
    /// Times the 6-bit start pointer changed (rotation or slide).
    pub start_pointer: u64,
    /// Times the 5-bit encoding field changed (compression method).
    pub encoding: u64,
    /// Times the payload size changed (a proxy for coding-bit churn).
    pub size: u64,
}

/// One physical line: cells, ECC state, and window metadata.
#[derive(Debug, Clone)]
pub struct ManagedLine {
    wear: LineWear,
    code: EccCode,
    method: Method,
    offset: usize,
    size: usize,
    dead: bool,
    valid: bool,
    meta_updates: MetaUpdateCounts,
}

impl ManagedLine {
    /// Samples a fresh SLC line from an endurance model.
    pub fn sample<R: Rng + ?Sized>(model: &EnduranceModel, rng: &mut R) -> Self {
        ManagedLine::sample_with_tech(model, CellTech::Slc, rng)
    }

    /// Samples a fresh line with the given cell technology.
    pub fn sample_with_tech<R: Rng + ?Sized>(
        model: &EnduranceModel,
        tech: CellTech,
        rng: &mut R,
    ) -> Self {
        ManagedLine {
            wear: LineWear::sample_with_tech(model, tech, rng),
            code: EccCode::None,
            method: Method::Uncompressed,
            offset: 0,
            size: 0,
            dead: false,
            valid: false,
            meta_updates: MetaUpdateCounts::default(),
        }
    }

    /// Creates a line with explicit per-cell endurance (tests).
    ///
    /// # Panics
    ///
    /// Panics unless exactly 512 values are given.
    pub fn with_endurance(endurance: Vec<u32>) -> Self {
        ManagedLine {
            wear: LineWear::with_endurance(endurance),
            code: EccCode::None,
            method: Method::Uncompressed,
            offset: 0,
            size: 0,
            dead: false,
            valid: false,
            meta_updates: MetaUpdateCounts::default(),
        }
    }

    /// Creates a healthy-except-for-`faults` line (infinite endurance
    /// elsewhere); see [`LineWear::with_faults`]. Used by the verification
    /// harness to realize a seeded fault plan exactly.
    pub fn with_faults(faults: &FaultMap) -> Self {
        ManagedLine {
            wear: LineWear::with_faults(faults),
            code: EccCode::None,
            method: Method::Uncompressed,
            offset: 0,
            size: 0,
            dead: false,
            valid: false,
            meta_updates: MetaUpdateCounts::default(),
        }
    }

    /// The line's stuck-at faults.
    pub fn faults(&self) -> &FaultMap {
        self.wear.faults()
    }

    /// `true` once a write has failed and the line was marked dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// `true` when the line holds a readable payload.
    pub fn is_valid(&self) -> bool {
        self.valid && !self.dead
    }

    /// Window start byte of the stored payload.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Stored payload size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Storage method of the current payload.
    pub fn method(&self) -> Method {
        self.method
    }

    /// Direct access to the cell wear state.
    pub fn wear(&self) -> &LineWear {
        &self.wear
    }

    /// Metadata-field update counters ([`MetaUpdateCounts`], paper §III-B).
    pub fn meta_updates(&self) -> MetaUpdateCounts {
        self.meta_updates
    }

    /// Fast-forwards wear (accelerated lifetime engine); see
    /// [`LineWear::add_wear`].
    pub fn add_wear(&mut self, pos: usize, events: u32) -> Option<pcm_util::StuckAt> {
        self.wear.add_wear(pos, events)
    }

    /// Fast-forwards wear on every bit at once; see
    /// [`LineWear::add_wear_bulk`].
    pub fn add_wear_bulk(&mut self, grants: &[u32; pcm_util::DATA_BITS]) {
        self.wear.add_wear_bulk(grants)
    }

    /// Checks whether a payload of `len` bytes could be stored (used for
    /// dead-block resurrection): returns the offset that would be used.
    pub fn can_host(
        &self,
        engine: &EccEngine,
        len: usize,
        preferred: usize,
        slide: bool,
    ) -> Option<usize> {
        self.can_host_with_step(engine, len, preferred, slide, 1)
    }

    /// [`can_host`](Self::can_host) at a coarser window-placement
    /// granularity (see [`window::find_offset_with_step`]).
    pub(crate) fn can_host_with_step(
        &self,
        engine: &EccEngine,
        len: usize,
        preferred: usize,
        slide: bool,
        step: usize,
    ) -> Option<usize> {
        if slide {
            window::find_offset_with_step(engine.scheme(), self.faults(), len, preferred, step)
        } else {
            let preferred = preferred / step * step;
            let mut buf = [0u16; pcm_util::DATA_BITS];
            let faults = window::faults_in_buf(self.faults(), preferred, len, &mut buf);
            engine.scheme().can_store(faults).then_some(preferred)
        }
    }

    /// Clears the dead flag after a successful resurrection check; the
    /// next write must succeed or the line dies again.
    pub fn revive(&mut self) {
        self.dead = false;
        self.valid = false;
    }

    /// Writes a payload at (or near) `preferred` window offset.
    ///
    /// `slide = true` enables the Comp+WF fault-dodging search; otherwise
    /// the payload must fit at `preferred` exactly.
    ///
    /// # Errors
    ///
    /// Returns [`LineDead`] (and marks the line dead) when no feasible
    /// window exists. The paper's Comp/Comp+W mark the block permanently
    /// dead at this point; Comp+WF may later [`revive`](Self::revive) it.
    ///
    /// # Panics
    ///
    /// Panics if the payload is empty or exceeds 64 bytes, or `preferred >=
    /// 64`.
    pub fn write(
        &mut self,
        engine: &EccEngine,
        payload: Payload<'_>,
        preferred: usize,
        slide: bool,
    ) -> Result<LineWriteReport, LineDead> {
        self.write_with_step(engine, payload, preferred, slide, 1)
    }

    /// [`write`](Self::write) at a coarser window-placement granularity
    /// (see [`window::find_offset_with_step`]).
    ///
    /// # Errors
    ///
    /// Returns [`LineDead`] when no feasible window exists on the grid.
    ///
    /// # Panics
    ///
    /// As [`write`](Self::write), plus if `step` is not a power of two
    /// dividing 64.
    pub(crate) fn write_with_step(
        &mut self,
        engine: &EccEngine,
        payload: Payload<'_>,
        preferred: usize,
        slide: bool,
        step: usize,
    ) -> Result<LineWriteReport, LineDead> {
        let len = payload.bytes.len();
        assert!(
            (1..=DATA_BYTES).contains(&len),
            "payload must be 1..=64 bytes"
        );
        assert!(preferred < DATA_BYTES, "preferred offset must be < 64");

        let mut report = LineWriteReport {
            offset: preferred,
            flips: 0,
            flip_mask: Line512::zero(),
            new_faults: 0,
            attempts: 0,
            slid: false,
        };
        // Verify-and-retry: each iteration either succeeds or adds at least
        // one newly-stuck cell, so 512 iterations bound the loop.
        loop {
            report.attempts += 1;
            let offset = match self.locate(engine, len, preferred, slide, step) {
                Some(o) => o,
                None => {
                    self.dead = true;
                    self.valid = false;
                    return Err(LineDead {
                        faults: self.faults().count(),
                    });
                }
            };
            report.slid |= offset != preferred;
            report.offset = offset;

            let target = window::place(&self.wear.stored(), offset, payload.bytes);
            let window_faults = window::fault_map_in(self.faults(), offset, len);
            let stored_now = self.wear.stored();
            // Program only the window cells; everything outside keeps its
            // current physical value (don't-care, zero flips).
            let mask = window::window_mask(offset, len);
            let (encoded, code) = match engine.encode(&target, &stored_now, &mask, &window_faults) {
                Ok(v) => v,
                // can_store passed but the data-dependent encode failed
                // (cannot happen for the schemes here, guarded anyway).
                Err(_) => {
                    self.dead = true;
                    self.valid = false;
                    return Err(LineDead {
                        faults: self.faults().count(),
                    });
                }
            };
            let stored_target = (encoded & mask) | (self.wear.stored() & !mask);
            let outcome = self.wear.write(&stored_target);
            report.flips += outcome.flips;
            report.flip_mask = report.flip_mask | outcome.flip_mask;
            report.new_faults += outcome.new_faults.len() as u32;

            let fresh_in_window = outcome.new_faults.iter().any(|f| mask.bit(f.pos as usize));
            if !fresh_in_window {
                self.meta_updates.writes += 1;
                if self.valid {
                    self.meta_updates.start_pointer += (self.offset != offset) as u64;
                    self.meta_updates.encoding += (self.method != payload.method) as u64;
                    self.meta_updates.size += (self.size != len) as u64;
                }
                self.code = code;
                self.method = payload.method;
                self.offset = offset;
                self.size = len;
                self.valid = true;
                self.dead = false;
                return Ok(report);
            }
            // A cell died under the write: the stored data is corrupt;
            // re-encode around the enlarged fault set (possibly sliding).
        }
    }

    /// Reads back the stored payload (method + bytes), or `None` when the
    /// line holds no valid data.
    pub fn read(&self, engine: &EccEngine) -> Option<(Method, Vec<u8>)> {
        if !self.is_valid() {
            return None;
        }
        let corrected = engine.decode(&self.wear.stored(), &self.code);
        Some((
            self.method,
            window::extract(&corrected, self.offset, self.size),
        ))
    }

    fn locate(
        &self,
        engine: &EccEngine,
        len: usize,
        preferred: usize,
        slide: bool,
        step: usize,
    ) -> Option<usize> {
        self.can_host_with_step(engine, len, preferred, slide, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_compress::{compress_best, decompress, CompressedWrite};
    use pcm_util::seeded_rng;

    fn engine() -> EccEngine {
        EccEngine::new(EccChoice::Ecp6)
    }

    fn payload_of(c: &CompressedWrite) -> Payload<'_> {
        Payload {
            method: c.method(),
            bytes: c.bytes(),
        }
    }

    #[test]
    fn healthy_line_write_read_round_trip() {
        let mut rng = seeded_rng(111);
        let e = engine();
        let mut line = ManagedLine::with_endurance(vec![u32::MAX; 512]);
        for offset in [0usize, 17, 60] {
            let data = Line512::random(&mut rng);
            let c = compress_best(&data);
            let r = line.write(&e, payload_of(&c), offset, false).unwrap();
            assert_eq!(r.offset, offset);
            assert_eq!(r.attempts, 1);
            let (method, bytes) = line.read(&e).unwrap();
            let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
            assert_eq!(back, data);
        }
    }

    #[test]
    fn compressed_write_only_touches_window() {
        let e = engine();
        let mut line = ManagedLine::with_endurance(vec![u32::MAX; 512]);
        // First fill the line with ones (uncompressed write).
        let ones = Line512::ones();
        let c0 =
            CompressedWrite::from_parts(Method::Uncompressed, ones.to_bytes().to_vec()).unwrap();
        line.write(&e, payload_of(&c0), 0, false).unwrap();
        // Now write a 1-byte zero payload at offset 5.
        let zeros = compress_best(&Line512::zero());
        assert_eq!(zeros.size(), 1);
        let r = line.write(&e, payload_of(&zeros), 5, false).unwrap();
        assert_eq!(r.flips, 8, "only the window byte is programmed");
        // Cells outside the window still hold ones.
        assert_eq!(line.wear().stored().byte(4), 0xFF);
        assert_eq!(line.wear().stored().byte(6), 0xFF);
    }

    #[test]
    fn write_survives_faults_within_capacity() {
        let mut rng = seeded_rng(112);
        let e = engine();
        // Six cells with zero endurance die on first touch.
        let mut endurance = vec![u32::MAX; 512];
        for pos in [3usize, 50, 100, 200, 300, 400] {
            endurance[pos] = 0;
        }
        let mut line = ManagedLine::with_endurance(endurance);
        for _ in 0..16 {
            let data = Line512::random(&mut rng);
            let c = compress_best(&data);
            line.write(&e, payload_of(&c), 0, false).unwrap();
            let (method, bytes) = line.read(&e).unwrap();
            let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
            assert_eq!(back, data, "ECP must mask the stuck cells");
        }
        assert!(line.faults().count() <= 6);
    }

    #[test]
    fn seven_clustered_faults_kill_non_sliding_line() {
        let e = engine();
        let mut endurance = vec![u32::MAX; 512];
        for pos in 0..7 {
            endurance[pos] = 0;
        }
        let mut line = ManagedLine::with_endurance(endurance);
        let data = Line512::ones();
        let c =
            CompressedWrite::from_parts(Method::Uncompressed, data.to_bytes().to_vec()).unwrap();
        let err = line.write(&e, payload_of(&c), 0, false).unwrap_err();
        assert_eq!(err.faults, 7);
        assert!(line.is_dead());
        assert!(line.read(&e).is_none());
    }

    #[test]
    fn sliding_window_dodges_fault_cluster() {
        let e = engine();
        let mut endurance = vec![u32::MAX; 512];
        for pos in 0..16 {
            endurance[pos] = 0; // all of bytes 0-1 die on first touch
        }
        let mut line = ManagedLine::with_endurance(endurance);
        // A 16-byte compressible payload with slide: must succeed by
        // dodging the dead bytes (possibly after verify-retry).
        let mut narrow = [0u8; 64];
        for i in 0..8 {
            narrow[i * 8] = i as u8;
        }
        let data = Line512::from_bytes(&narrow);
        let c = compress_best(&data);
        assert!(c.size() <= 16);
        let r = line.write(&e, payload_of(&c), 0, true).unwrap();
        let (method, bytes) = line.read(&e).unwrap();
        let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
        assert_eq!(back, data);
        // After the initial failures the window settles past the cluster.
        assert!(r.slid || r.offset == 0);
        assert!(!line.is_dead());
    }

    #[test]
    fn verify_retry_reencodes_midwrite_failures() {
        let e = engine();
        // Cell 8 survives exactly one programming event, then sticks.
        let mut endurance = vec![u32::MAX; 512];
        endurance[8] = 1;
        let mut line = ManagedLine::with_endurance(endurance);
        // Write all-ones (uncompressed): programs cell 8 once (0 -> 1).
        let ones =
            CompressedWrite::from_parts(Method::Uncompressed, Line512::ones().to_bytes().to_vec())
                .unwrap();
        line.write(&e, payload_of(&ones), 0, false).unwrap();
        // Write all-zeros: cell 8's second programming fails; the write
        // must verify-retry and cover it with ECP.
        let zeros =
            CompressedWrite::from_parts(Method::Uncompressed, Line512::zero().to_bytes().to_vec())
                .unwrap();
        let r = line.write(&e, payload_of(&zeros), 0, false).unwrap();
        assert!(r.attempts >= 2, "mid-write failure forces a retry");
        assert_eq!(r.new_faults, 1);
        let (method, bytes) = line.read(&e).unwrap();
        let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
        assert_eq!(back, Line512::zero());
    }

    #[test]
    fn resurrection_flow() {
        let e = engine();
        let mut endurance = vec![u32::MAX; 512];
        for pos in 0..60 {
            endurance[pos] = 0; // bytes 0..7 mostly dead
        }
        let mut line = ManagedLine::with_endurance(endurance);
        let big =
            CompressedWrite::from_parts(Method::Uncompressed, Line512::ones().to_bytes().to_vec())
                .unwrap();
        assert!(line.write(&e, payload_of(&big), 0, true).is_err());
        assert!(line.is_dead());
        // A 1-byte payload fits in the healthy tail: resurrection check.
        let offset = line.can_host(&e, 1, 0, true).expect("healthy bytes remain");
        line.revive();
        let tiny = compress_best(&Line512::zero());
        line.write(&e, payload_of(&tiny), offset, true).unwrap();
        assert!(line.is_valid());
    }

    #[test]
    fn safer_and_aegis_engines_round_trip() {
        let mut rng = seeded_rng(113);
        for choice in [EccChoice::Safer32, EccChoice::Aegis17x31] {
            let e = EccEngine::new(choice);
            let mut endurance = vec![u32::MAX; 512];
            for pos in [9usize, 120, 333] {
                endurance[pos] = 0;
            }
            let mut line = ManagedLine::with_endurance(endurance);
            for _ in 0..8 {
                let data = Line512::random(&mut rng);
                let c = compress_best(&data);
                line.write(&e, payload_of(&c), 0, true).unwrap();
                let (method, bytes) = line.read(&e).unwrap();
                let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
                assert_eq!(back, data, "{choice:?}");
            }
        }
    }

    #[test]
    fn coset_engine_round_trips_through_stuck_cells() {
        let mut rng = seeded_rng(114);
        let e = EccEngine::new(EccChoice::Coset);
        let mut endurance = vec![u32::MAX; 512];
        for pos in [9usize, 120, 333] {
            endurance[pos] = 0;
        }
        let mut line = ManagedLine::with_endurance(endurance);
        for _ in 0..8 {
            let data = Line512::random(&mut rng);
            let c = compress_best(&data);
            line.write(&e, payload_of(&c), 0, true).unwrap();
            let (method, bytes) = line.read(&e).unwrap();
            let back = decompress(&CompressedWrite::from_parts(method, bytes).unwrap());
            assert_eq!(back, data);
        }
    }

    #[test]
    fn coset_transform_cuts_flips_on_inverting_writes() {
        // Alternating all-ones / all-zeros uncompressed writes: a plain
        // scheme flips all 512 cells every write; coset's tag-7 candidate
        // rewrites the line in place.
        let plain = EccEngine::new(EccChoice::Ecp6);
        let coset = EccEngine::new(EccChoice::Coset);
        let mut flips = [0u32; 2];
        for (i, e) in [&plain, &coset].into_iter().enumerate() {
            let mut line = ManagedLine::with_endurance(vec![u32::MAX; 512]);
            for round in 0..8 {
                let data = if round % 2 == 0 {
                    Line512::ones()
                } else {
                    Line512::zero()
                };
                let c = CompressedWrite::from_parts(Method::Uncompressed, data.to_bytes().to_vec())
                    .unwrap();
                flips[i] += line.write(e, payload_of(&c), 0, false).unwrap().flips;
                let (_, bytes) = line.read(e).unwrap();
                assert_eq!(Line512::from_bytes(&bytes.try_into().unwrap()), data);
            }
        }
        assert!(
            flips[1] < flips[0] / 2,
            "coset ({}) must beat plain ECP ({}) on inverting traffic",
            flips[1],
            flips[0]
        );
    }
}
