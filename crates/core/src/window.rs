//! Wrapped compression-window placement and the fault-dodging search.
//!
//! The compression window is a contiguous run of `len` bytes starting at
//! byte `offset`, **wrapping** around the end of the 64-byte line: with
//! intra-line wear-leveling the start pointer rotates through all 64
//! positions, so a window beginning at byte 60 with 16 bytes of payload
//! occupies bytes 60..64 and 0..12. The chip does not care — the 6-bit
//! start pointer plus the payload length identify the cells.

use pcm_ecc::HardErrorScheme;
use pcm_util::fault::FaultMap;
use pcm_util::{Line512, DATA_BITS, DATA_BYTES};

/// Byte indices covered by a wrapped window.
pub fn window_bytes(offset: usize, len: usize) -> impl Iterator<Item = usize> {
    debug_assert!(offset < DATA_BYTES && len <= DATA_BYTES);
    (0..len).map(move |i| (offset + i) % DATA_BYTES)
}

/// A bit mask of the cells covered by a wrapped window.
///
/// # Panics
///
/// Panics if `offset >= 64` or `len > 64`.
///
/// # Examples
///
/// ```
/// use pcm_core::window::window_mask;
///
/// let m = window_mask(62, 4); // bytes 62, 63, 0, 1
/// assert_eq!(m.count_ones(), 32);
/// assert!(m.bit(0));
/// assert!(m.bit(62 * 8));
/// assert!(!m.bit(2 * 8));
/// ```
pub fn window_mask(offset: usize, len: usize) -> Line512 {
    assert!(offset < DATA_BYTES, "offset must be < 64");
    assert!(len <= DATA_BYTES, "window at most 64 bytes");
    let end = offset + len;
    if end <= DATA_BYTES {
        Line512::bit_range_mask(offset * 8..end * 8)
    } else {
        Line512::bit_range_mask(offset * 8..DATA_BITS)
            | Line512::bit_range_mask(0..(end - DATA_BYTES) * 8)
    }
}

/// Places `payload` into `current` at a wrapped window, leaving all other
/// bytes untouched.
///
/// # Panics
///
/// Panics if `offset >= 64` or the payload exceeds 64 bytes.
pub fn place(current: &Line512, offset: usize, payload: &[u8]) -> Line512 {
    assert!(offset < DATA_BYTES, "offset must be < 64");
    assert!(payload.len() <= DATA_BYTES, "payload at most 64 bytes");
    let mut bytes = current.to_bytes();
    let first = payload.len().min(DATA_BYTES - offset);
    bytes[offset..offset + first].copy_from_slice(&payload[..first]);
    bytes[..payload.len() - first].copy_from_slice(&payload[first..]);
    Line512::from_bytes(&bytes)
}

/// Extracts `len` bytes from a wrapped window.
///
/// # Panics
///
/// Panics if `offset >= 64` or `len > 64`.
pub fn extract(line: &Line512, offset: usize, len: usize) -> Vec<u8> {
    assert!(offset < DATA_BYTES, "offset must be < 64");
    assert!(len <= DATA_BYTES, "window at most 64 bytes");
    let bytes = line.to_bytes();
    let first = len.min(DATA_BYTES - offset);
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&bytes[offset..offset + first]);
    out.extend_from_slice(&bytes[..len - first]);
    out
}

/// The faulty cell positions that fall inside a wrapped window.
pub fn faults_in(faults: &FaultMap, offset: usize, len: usize) -> Vec<u16> {
    let mut out = Vec::new();
    faults_in_scratch(faults, offset, len, &mut out);
    out
}

/// [`faults_in`] into a caller-owned buffer (cleared first) — the window
/// slide search probes up to 64 windows per write, and reusing one
/// allocation across probes keeps it off the heap.
pub fn faults_in_scratch(faults: &FaultMap, offset: usize, len: usize, out: &mut Vec<u16>) {
    out.clear();
    let masked = faults.positions() & window_mask(offset, len);
    out.extend(masked.iter_ones().map(|p| p as u16));
}

/// [`faults_in`] into a fixed stack buffer, returning the filled prefix —
/// the no-slide placement probe sits on the per-write hot path, and a line
/// has at most [`DATA_BITS`] stuck cells.
pub fn faults_in_buf<'a>(
    faults: &FaultMap,
    offset: usize,
    len: usize,
    buf: &'a mut [u16; DATA_BITS],
) -> &'a [u16] {
    let masked = faults.positions() & window_mask(offset, len);
    let mut n = 0;
    for p in masked.iter_ones() {
        buf[n] = p as u16;
        n += 1;
    }
    &buf[..n]
}

/// The sub-map of faults inside a wrapped window.
pub fn fault_map_in(faults: &FaultMap, offset: usize, len: usize) -> FaultMap {
    faults.masked(window_mask(offset, len))
}

/// The Comp+WF window search (§III-A): finds a start offset at which a
/// `len`-byte payload is storable under `scheme`, trying `preferred` first
/// and then sliding byte-by-byte (wrapping) through all 64 positions.
///
/// Returns `None` when the line is dead for this payload size.
///
/// # Examples
///
/// ```
/// use pcm_core::window::find_offset;
/// use pcm_ecc::Ecp;
/// use pcm_util::fault::{FaultMap, StuckAt};
///
/// // Ten faults in byte 0..2: a 32-byte window starting at byte 0 fails
/// // ECP-6, but sliding past them succeeds.
/// let faults: FaultMap = (0..10u16).map(|i| StuckAt { pos: i, value: true }).collect();
/// let offset = find_offset(&Ecp::new(6), &faults, 32, 0).unwrap();
/// assert_ne!(offset, 0);
/// ```
pub fn find_offset(
    scheme: &dyn HardErrorScheme,
    faults: &FaultMap,
    len: usize,
    preferred: usize,
) -> Option<usize> {
    find_offset_with_step(scheme, faults, len, preferred, 1)
}

/// [`find_offset`] with a coarser placement granularity: only offsets that
/// are multiples of `step` (relative to byte 0) are considered, shrinking
/// the start-pointer metadata from 6 bits to `6 - log2(step)` at the cost
/// of fewer placement choices (the `ablation_window_step` bench quantifies
/// the lifetime cost).
///
/// `preferred` is rounded down to the grid.
///
/// # Panics
///
/// Panics unless `step` is a power of two dividing 64, `preferred < 64`,
/// and `len` is `1..=64`.
pub fn find_offset_with_step(
    scheme: &dyn HardErrorScheme,
    faults: &FaultMap,
    len: usize,
    preferred: usize,
    step: usize,
) -> Option<usize> {
    assert!(preferred < DATA_BYTES, "preferred offset must be < 64");
    assert!(
        (1..=DATA_BYTES).contains(&len),
        "window must be 1..=64 bytes"
    );
    assert!(
        step.is_power_of_two() && DATA_BYTES % step == 0,
        "step must be a power of two dividing 64, got {step}"
    );
    let preferred = preferred / step * step;
    if faults.is_empty() {
        return Some(preferred);
    }
    let slots = DATA_BYTES / step;
    let mut scratch = Vec::with_capacity(faults.count() as usize);
    for slide in 0..slots {
        let offset = (preferred + slide * step) % DATA_BYTES;
        faults_in_scratch(faults, offset, len, &mut scratch);
        if scheme.can_store(&scratch) {
            return Some(offset);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::Ecp;
    use pcm_util::fault::StuckAt;
    use pcm_util::seeded_rng;

    #[test]
    fn place_extract_round_trip_wrapped() {
        let mut rng = seeded_rng(101);
        let base = Line512::random(&mut rng);
        let payload: Vec<u8> = (0..20).map(|i| i as u8 * 3).collect();
        for offset in [0usize, 10, 50, 63] {
            let placed = place(&base, offset, &payload);
            assert_eq!(extract(&placed, offset, 20), payload);
            // Bytes outside the window unchanged.
            let mask = window_mask(offset, 20);
            assert_eq!(placed & !mask, base & !mask);
        }
    }

    #[test]
    fn window_bytes_wrap() {
        let v: Vec<usize> = window_bytes(62, 4).collect();
        assert_eq!(v, vec![62, 63, 0, 1]);
    }

    #[test]
    fn faults_filtered_by_window() {
        let faults: FaultMap = [
            StuckAt {
                pos: 5,
                value: true,
            }, // byte 0
            StuckAt {
                pos: 500,
                value: false,
            }, // byte 62
            StuckAt {
                pos: 200,
                value: true,
            }, // byte 25
        ]
        .into_iter()
        .collect();
        assert_eq!(faults_in(&faults, 62, 4), vec![5, 500]);
        assert_eq!(faults_in(&faults, 20, 10), vec![200]);
        assert_eq!(fault_map_in(&faults, 62, 4).count(), 2);
        // The stack-buffer variant agrees with the allocating one.
        let mut buf = [0u16; DATA_BITS];
        assert_eq!(faults_in_buf(&faults, 62, 4, &mut buf), &[5, 500]);
        assert_eq!(faults_in_buf(&faults, 20, 10, &mut buf), &[200]);
        assert_eq!(faults_in_buf(&faults, 30, 4, &mut buf), &[] as &[u16]);
    }

    #[test]
    fn find_offset_prefers_preferred() {
        let ecp = Ecp::new(6);
        let faults = FaultMap::new();
        assert_eq!(find_offset(&ecp, &faults, 16, 37), Some(37));
    }

    #[test]
    fn find_offset_slides_past_fault_cluster() {
        let ecp = Ecp::new(6);
        // 8 faults in byte 0: infeasible for any window containing byte 0.
        let faults: FaultMap = (0..8u16).map(|pos| StuckAt { pos, value: true }).collect();
        let offset = find_offset(&ecp, &faults, 16, 0).unwrap();
        // The window [offset, offset+16) must not contain byte 0.
        assert!(offset >= 1 && offset <= 48, "offset {offset}");
    }

    #[test]
    fn coarse_step_restricts_offsets() {
        let ecp = Ecp::new(6);
        // 8 faults in byte 0..1 kill any window containing them.
        let faults: FaultMap = (0..8u16).map(|pos| StuckAt { pos, value: true }).collect();
        let fine = find_offset_with_step(&ecp, &faults, 16, 0, 1).unwrap();
        let coarse = find_offset_with_step(&ecp, &faults, 16, 0, 8).unwrap();
        assert_eq!(
            fine, 1,
            "byte-granular search lands right after the cluster"
        );
        assert_eq!(coarse, 8, "8-byte grid must skip to the next slot");
        assert_eq!(coarse % 8, 0);
    }

    #[test]
    fn coarse_step_rounds_preferred_down() {
        let ecp = Ecp::new(6);
        let faults = FaultMap::new();
        assert_eq!(find_offset_with_step(&ecp, &faults, 8, 19, 4), Some(16));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_step() {
        find_offset_with_step(&Ecp::new(6), &FaultMap::new(), 8, 0, 3);
    }

    #[test]
    fn find_offset_none_when_line_saturated() {
        let ecp = Ecp::new(6);
        // 7 faults in every 8-byte stretch: any 16-byte window has >6.
        let faults: FaultMap = (0..512u16)
            .step_by(1)
            .take(512)
            .map(|pos| StuckAt { pos, value: false })
            .collect();
        assert_eq!(find_offset(&ecp, &faults, 16, 0), None);
    }

    #[test]
    fn full_line_window_only_depends_on_total() {
        let ecp = Ecp::new(6);
        let few: FaultMap = (0..6u16)
            .map(|i| StuckAt {
                pos: i * 80,
                value: true,
            })
            .collect();
        assert!(find_offset(&ecp, &few, 64, 0).is_some());
        let many: FaultMap = (0..7u16)
            .map(|i| StuckAt {
                pos: i * 70,
                value: true,
            })
            .collect();
        assert_eq!(find_offset(&ecp, &many, 64, 0), None);
    }
}
