//! The four evaluated system configurations (paper §IV).
//!
//! All four default to chip-level differential writes, Start-Gap
//! inter-line wear-leveling, and ECP-6; they differ in how much of the
//! paper's proposal is enabled:
//!
//! | system   | compression | intra-line WL | sliding window + resurrection |
//! |----------|-------------|---------------|-------------------------------|
//! | Baseline | —           | —             | —                             |
//! | Comp     | ✓           | —             | —                             |
//! | Comp+W   | ✓           | ✓             | —                             |
//! | Comp+WF  | ✓           | ✓             | ✓                             |
//!
//! The ECC and wear layers are pluggable: [`EccChoice`] and
//! [`WearChoice`] name every registered scheme, and
//! [`crate::registry::StackSpec`] assembles a full `kind/ecc/wear` stack
//! from a string.

use crate::heuristic::CompressionHeuristic;
use pcm_device::{CellTech, EnduranceModel};
use pcm_ecc::HardErrorScheme;
use pcm_wear::{SecurityRefresh, StartGap, WearScheme, Wolfram};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which of the paper's four systems to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// DW + Start-Gap + ECP-6, uncompressed storage.
    Baseline,
    /// Adds best-of BDI/FPC compression, window pinned at the line's least
    /// significant bytes.
    Comp,
    /// Adds counter-based intra-line wear-leveling (rotating window start).
    CompW,
    /// Adds the advanced hard-error handling: fault-dodging window slide
    /// and dead-block resurrection at inter-line wear-leveling events.
    CompWF,
}

impl SystemKind {
    /// All four systems in evaluation order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Baseline,
        SystemKind::Comp,
        SystemKind::CompW,
        SystemKind::CompWF,
    ];

    /// `true` when the system compresses write-backs.
    pub fn compresses(&self) -> bool {
        !matches!(self, SystemKind::Baseline)
    }

    /// `true` when the system rotates the window start (intra-line WL).
    pub fn rotates(&self) -> bool {
        matches!(self, SystemKind::CompW | SystemKind::CompWF)
    }

    /// `true` when the system slides the window around faults and
    /// resurrects dead blocks.
    pub fn slides(&self) -> bool {
        matches!(self, SystemKind::CompWF)
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Baseline => write!(f, "Baseline"),
            SystemKind::Comp => write!(f, "Comp"),
            SystemKind::CompW => write!(f, "Comp+W"),
            SystemKind::CompWF => write!(f, "Comp+WF"),
        }
    }
}

/// Which hard-error scheme the controller uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccChoice {
    /// ECP with 6 entries (the paper's default).
    Ecp6,
    /// SAFER with 32 groups.
    Safer32,
    /// Aegis over a 17×31 grid.
    Aegis17x31,
    /// DRAM-style SECDED (one correctable error per 64-bit word) — the
    /// incumbent the paper argues against; included for the ablation.
    Secded,
    /// ECP with an arbitrary entry count (storage-overhead ablation:
    /// each entry costs 10 metadata bits; only 6 fit the ECC-DIMM budget).
    EcpN(u8),
    /// Restricted coset coding over ECP-6 (3 tag bits of payload
    /// transform in the budget slack ECP-6 leaves: 61 + 3 = 64).
    Coset,
}

impl EccChoice {
    /// Every registered scheme, in evaluation order (the pre-registry
    /// choices first, so seed derivations over this list stay stable).
    pub const ALL: [EccChoice; 5] = [
        EccChoice::Ecp6,
        EccChoice::Safer32,
        EccChoice::Aegis17x31,
        EccChoice::Secded,
        EccChoice::Coset,
    ];

    /// The shared scheme instance (see [`crate::registry::ecc_scheme`]) —
    /// table-heavy schemes like SAFER-32 are built once per process.
    pub fn scheme(&self) -> &'static dyn HardErrorScheme {
        crate::registry::ecc_scheme(*self)
    }
}

impl std::fmt::Display for EccChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EccChoice::Ecp6 => write!(f, "ECP-6"),
            EccChoice::Safer32 => write!(f, "SAFER-32"),
            EccChoice::Aegis17x31 => write!(f, "Aegis 17x31"),
            EccChoice::Secded => write!(f, "SECDED"),
            EccChoice::EcpN(n) => write!(f, "ECP-{n}"),
            EccChoice::Coset => write!(f, "Coset-ECP6"),
        }
    }
}

/// Which inter-line wear-leveling scheme each bank runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WearChoice {
    /// Start-Gap (Qureshi et al., MICRO 2009) — the paper's default: one
    /// spare line per bank, gap rotation every ψ demand writes.
    StartGap,
    /// Security Refresh (Seong et al., ISCA 2010): XOR-key remapping with
    /// epoch-walk pair swaps; needs a power-of-two line count.
    SecurityRefresh,
    /// WoLFRaM (Khan et al., arXiv:2010.02825): programmable address
    /// decoder with keyed epoch permutations, hot-slot swaps, and spare
    /// lines that absorb retired (dead) lines.
    Wolfram,
}

impl WearChoice {
    /// Every registered wear scheme, Start-Gap first.
    pub const ALL: [WearChoice; 3] = [
        WearChoice::StartGap,
        WearChoice::SecurityRefresh,
        WearChoice::Wolfram,
    ];

    /// Physical lines a bank of `lines` logical lines needs under this
    /// scheme (Start-Gap's +1 gap line, WoLFRaM's spare pool, …).
    pub fn physical_lines(&self, lines: u64) -> u64 {
        match self {
            WearChoice::StartGap => lines + 1,
            WearChoice::SecurityRefresh => lines,
            WearChoice::Wolfram => lines + pcm_wear::wolfram::spare_lines(lines),
        }
    }

    /// Builds the scheme for a bank. `psi` is the wear-leveling period in
    /// demand writes. Schemes that randomize their remapping draw exactly
    /// one `u64` seed from `rng`; Start-Gap draws nothing, so default
    /// configurations consume the construction RNG stream exactly as they
    /// did before the trait existed.
    pub fn build<R: Rng + ?Sized>(&self, lines: u64, psi: u32, rng: &mut R) -> Box<dyn WearScheme> {
        match self {
            WearChoice::StartGap => Box::new(StartGap::new(lines, psi)),
            WearChoice::SecurityRefresh => {
                Box::new(SecurityRefresh::new(lines, psi, rng.next_u64()))
            }
            WearChoice::Wolfram => Box::new(Wolfram::new(lines, psi, rng.next_u64())),
        }
    }
}

impl std::fmt::Display for WearChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WearChoice::StartGap => write!(f, "Start-Gap"),
            WearChoice::SecurityRefresh => write!(f, "SecRef"),
            WearChoice::Wolfram => write!(f, "WoLFRaM"),
        }
    }
}

/// Full configuration of a simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Which of the four systems.
    pub kind: SystemKind,
    /// Hard-error scheme (paper default: ECP-6).
    pub ecc: EccChoice,
    /// Inter-line wear-leveling scheme (paper default: Start-Gap).
    pub wear: WearChoice,
    /// Compression heuristic thresholds (Fig. 8); `use_heuristic = false`
    /// compresses unconditionally (the naive scheme, for ablation).
    pub heuristic: CompressionHeuristic,
    /// Enables the Fig. 8 heuristic.
    pub use_heuristic: bool,
    /// Cell endurance distribution.
    pub endurance: EnduranceModel,
    /// Cell technology (SLC default; MLC-2 for the density ablation).
    pub tech: CellTech,
    /// Demand writes a line receives between two intra-line rotations
    /// (paper: a 16-bit counter per bank ≈ 2^10 writes per hot line).
    pub rotation_period: u64,
    /// Demand writes a line receives between two inter-line wear-leveling
    /// relocations of its hosted block (Start-Gap region rotation).
    pub residency_writes: u64,
    /// Start-Gap gap-movement period ψ (used by the functional
    /// controller).
    pub start_gap_psi: u32,
    /// Period of the per-bank intra-line rotation counter in bank writes
    /// (paper: a 16-bit counter).
    pub bank_counter_period: u32,
    /// Compression-window placement granularity in bytes (power of two;
    /// the paper's 6-bit start pointer is byte-granular = 1).
    pub window_step: usize,
}

impl SystemConfig {
    /// Creates the paper's configuration of the given system.
    ///
    /// `Comp` and `Comp+W` use the paper's *naive* policy (every
    /// compressible write stored compressed); `Comp+WF` — "all our
    /// proposed schemes" — also enables the Fig. 8 bit-flip heuristic.
    /// The heuristic only pays with a generous `Threshold2` (see
    /// [`CompressionHeuristic::paper`] and the `ablation_heuristic`
    /// bench): tighter settings bounce blocks between compressed and
    /// uncompressed layouts, and the re-layout churn costs more flips
    /// than the fallback saves.
    pub fn new(kind: SystemKind) -> Self {
        SystemConfig {
            kind,
            ecc: EccChoice::Ecp6,
            wear: WearChoice::StartGap,
            heuristic: CompressionHeuristic::paper(),
            use_heuristic: matches!(kind, SystemKind::CompWF),
            endurance: EnduranceModel::paper(),
            tech: CellTech::Slc,
            rotation_period: 1024,
            residency_writes: 4096,
            start_gap_psi: 100,
            bank_counter_period: 1 << 16,
            window_step: 1,
        }
    }

    /// Overrides the mean cell endurance, keeping the CoV (small values
    /// make tests and examples fast).
    pub fn with_endurance_mean(mut self, mean: f64) -> Self {
        self.endurance = EnduranceModel::new(mean, self.endurance.cov());
        self
    }

    /// Overrides the endurance coefficient of variation (the paper's §V.C
    /// uses 0.25).
    pub fn with_endurance_cov(mut self, cov: f64) -> Self {
        self.endurance = EnduranceModel::new(self.endurance.mean(), cov);
        self
    }

    /// Overrides the hard-error scheme.
    pub fn with_ecc(mut self, ecc: EccChoice) -> Self {
        self.ecc = ecc;
        self
    }

    /// Overrides the inter-line wear-leveling scheme.
    ///
    /// `SecurityRefresh` needs a power-of-two per-bank line count; the
    /// other schemes accept any size.
    pub fn with_wear(mut self, wear: WearChoice) -> Self {
        self.wear = wear;
        self
    }

    /// Disables the Fig. 8 heuristic (the "naive" compression mode used by
    /// the Comp ablation).
    pub fn without_heuristic(mut self) -> Self {
        self.use_heuristic = false;
        self
    }

    /// Enables the Fig. 8 heuristic (on by default only for `Comp+WF`).
    pub fn with_heuristic(mut self) -> Self {
        self.use_heuristic = true;
        self
    }

    /// Overrides the window placement granularity (power of two bytes).
    pub fn with_window_step(mut self, step: usize) -> Self {
        self.window_step = step;
        self
    }

    /// Switches the cell technology (MLC-2 also switches to the MLC
    /// endurance band unless overridden afterwards).
    pub fn with_tech(mut self, tech: CellTech) -> Self {
        self.tech = tech;
        if tech == CellTech::Mlc2 && self.endurance == EnduranceModel::paper() {
            self.endurance = tech.default_endurance();
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_capabilities() {
        assert!(!SystemKind::Baseline.compresses());
        assert!(SystemKind::Comp.compresses());
        assert!(!SystemKind::Comp.rotates());
        assert!(SystemKind::CompW.rotates());
        assert!(!SystemKind::CompW.slides());
        assert!(SystemKind::CompWF.slides());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(SystemKind::CompWF.to_string(), "Comp+WF");
        assert_eq!(SystemKind::CompW.to_string(), "Comp+W");
        assert_eq!(EccChoice::Safer32.to_string(), "SAFER-32");
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::new(SystemKind::Comp)
            .with_endurance_mean(1e4)
            .with_endurance_cov(0.25)
            .with_ecc(EccChoice::Aegis17x31)
            .without_heuristic();
        assert_eq!(cfg.endurance.mean(), 1e4);
        assert_eq!(cfg.endurance.cov(), 0.25);
        assert_eq!(cfg.ecc, EccChoice::Aegis17x31);
        assert!(!cfg.use_heuristic);
    }

    #[test]
    fn ecc_choices_build() {
        for ecc in [
            EccChoice::Ecp6,
            EccChoice::Safer32,
            EccChoice::Aegis17x31,
            EccChoice::Coset,
        ] {
            let scheme = ecc.scheme();
            assert!(scheme.guaranteed() >= 6);
        }
        assert_eq!(EccChoice::Secded.scheme().guaranteed(), 1);
    }

    #[test]
    fn wear_choices_build_consistent_geometry() {
        let mut rng = pcm_util::seeded_rng(7);
        for wear in WearChoice::ALL {
            let scheme = wear.build(16, 8, &mut rng);
            assert_eq!(scheme.logical_lines(), 16, "{wear}");
            assert_eq!(
                scheme.physical_lines(),
                wear.physical_lines(16),
                "{wear}: geometry helper must match the built scheme"
            );
        }
    }

    #[test]
    fn start_gap_build_draws_no_seed() {
        // Default configurations must consume the construction RNG stream
        // exactly as the pre-trait controller did (bit-identity).
        let mut a = pcm_util::seeded_rng(9);
        let mut b = pcm_util::seeded_rng(9);
        let _ = WearChoice::StartGap.build(16, 8, &mut a);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
