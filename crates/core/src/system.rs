//! The four evaluated system configurations (paper §IV).
//!
//! All four use chip-level differential writes, Start-Gap inter-line
//! wear-leveling, and ECP-6; they differ in how much of the paper's
//! proposal is enabled:
//!
//! | system   | compression | intra-line WL | sliding window + resurrection |
//! |----------|-------------|---------------|-------------------------------|
//! | Baseline | —           | —             | —                             |
//! | Comp     | ✓           | —             | —                             |
//! | Comp+W   | ✓           | ✓             | —                             |
//! | Comp+WF  | ✓           | ✓             | ✓                             |

use crate::heuristic::CompressionHeuristic;
use pcm_device::{CellTech, EnduranceModel};
use pcm_ecc::{Aegis, Ecp, HardErrorScheme, Safer, Secded};
use serde::{Deserialize, Serialize};

/// Which of the paper's four systems to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// DW + Start-Gap + ECP-6, uncompressed storage.
    Baseline,
    /// Adds best-of BDI/FPC compression, window pinned at the line's least
    /// significant bytes.
    Comp,
    /// Adds counter-based intra-line wear-leveling (rotating window start).
    CompW,
    /// Adds the advanced hard-error handling: fault-dodging window slide
    /// and dead-block resurrection at inter-line wear-leveling events.
    CompWF,
}

impl SystemKind {
    /// All four systems in evaluation order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Baseline,
        SystemKind::Comp,
        SystemKind::CompW,
        SystemKind::CompWF,
    ];

    /// `true` when the system compresses write-backs.
    pub fn compresses(&self) -> bool {
        !matches!(self, SystemKind::Baseline)
    }

    /// `true` when the system rotates the window start (intra-line WL).
    pub fn rotates(&self) -> bool {
        matches!(self, SystemKind::CompW | SystemKind::CompWF)
    }

    /// `true` when the system slides the window around faults and
    /// resurrects dead blocks.
    pub fn slides(&self) -> bool {
        matches!(self, SystemKind::CompWF)
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemKind::Baseline => write!(f, "Baseline"),
            SystemKind::Comp => write!(f, "Comp"),
            SystemKind::CompW => write!(f, "Comp+W"),
            SystemKind::CompWF => write!(f, "Comp+WF"),
        }
    }
}

/// Which hard-error scheme the controller uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccChoice {
    /// ECP with 6 entries (the paper's default).
    Ecp6,
    /// SAFER with 32 groups.
    Safer32,
    /// Aegis over a 17×31 grid.
    Aegis17x31,
    /// DRAM-style SECDED (one correctable error per 64-bit word) — the
    /// incumbent the paper argues against; included for the ablation.
    Secded,
    /// ECP with an arbitrary entry count (storage-overhead ablation:
    /// each entry costs 10 metadata bits; only 6 fit the ECC-DIMM budget).
    EcpN(u8),
}

impl EccChoice {
    /// Instantiates the scheme.
    pub fn build(&self) -> Box<dyn HardErrorScheme> {
        match self {
            EccChoice::Ecp6 => Box::new(Ecp::new(6)),
            EccChoice::Safer32 => Box::new(Safer::new(32)),
            EccChoice::Aegis17x31 => Box::new(Aegis::new(17, 31)),
            EccChoice::Secded => Box::new(Secded::new()),
            EccChoice::EcpN(n) => Box::new(Ecp::new(*n as u32)),
        }
    }
}

impl std::fmt::Display for EccChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EccChoice::Ecp6 => write!(f, "ECP-6"),
            EccChoice::Safer32 => write!(f, "SAFER-32"),
            EccChoice::Aegis17x31 => write!(f, "Aegis 17x31"),
            EccChoice::Secded => write!(f, "SECDED"),
            EccChoice::EcpN(n) => write!(f, "ECP-{n}"),
        }
    }
}

/// Full configuration of a simulated system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Which of the four systems.
    pub kind: SystemKind,
    /// Hard-error scheme (paper default: ECP-6).
    pub ecc: EccChoice,
    /// Compression heuristic thresholds (Fig. 8); `use_heuristic = false`
    /// compresses unconditionally (the naive scheme, for ablation).
    pub heuristic: CompressionHeuristic,
    /// Enables the Fig. 8 heuristic.
    pub use_heuristic: bool,
    /// Cell endurance distribution.
    pub endurance: EnduranceModel,
    /// Cell technology (SLC default; MLC-2 for the density ablation).
    pub tech: CellTech,
    /// Demand writes a line receives between two intra-line rotations
    /// (paper: a 16-bit counter per bank ≈ 2^10 writes per hot line).
    pub rotation_period: u64,
    /// Demand writes a line receives between two inter-line wear-leveling
    /// relocations of its hosted block (Start-Gap region rotation).
    pub residency_writes: u64,
    /// Start-Gap gap-movement period ψ (used by the functional
    /// controller).
    pub start_gap_psi: u32,
    /// Period of the per-bank intra-line rotation counter in bank writes
    /// (paper: a 16-bit counter).
    pub bank_counter_period: u32,
    /// Compression-window placement granularity in bytes (power of two;
    /// the paper's 6-bit start pointer is byte-granular = 1).
    pub window_step: usize,
}

impl SystemConfig {
    /// Creates the paper's configuration of the given system.
    ///
    /// `Comp` and `Comp+W` use the paper's *naive* policy (every
    /// compressible write stored compressed); `Comp+WF` — "all our
    /// proposed schemes" — also enables the Fig. 8 bit-flip heuristic.
    /// The heuristic only pays with a generous `Threshold2` (see
    /// [`CompressionHeuristic::paper`] and the `ablation_heuristic`
    /// bench): tighter settings bounce blocks between compressed and
    /// uncompressed layouts, and the re-layout churn costs more flips
    /// than the fallback saves.
    pub fn new(kind: SystemKind) -> Self {
        SystemConfig {
            kind,
            ecc: EccChoice::Ecp6,
            heuristic: CompressionHeuristic::paper(),
            use_heuristic: matches!(kind, SystemKind::CompWF),
            endurance: EnduranceModel::paper(),
            tech: CellTech::Slc,
            rotation_period: 1024,
            residency_writes: 4096,
            start_gap_psi: 100,
            bank_counter_period: 1 << 16,
            window_step: 1,
        }
    }

    /// Overrides the mean cell endurance, keeping the CoV (small values
    /// make tests and examples fast).
    pub fn with_endurance_mean(mut self, mean: f64) -> Self {
        self.endurance = EnduranceModel::new(mean, self.endurance.cov());
        self
    }

    /// Overrides the endurance coefficient of variation (the paper's §V.C
    /// uses 0.25).
    pub fn with_endurance_cov(mut self, cov: f64) -> Self {
        self.endurance = EnduranceModel::new(self.endurance.mean(), cov);
        self
    }

    /// Overrides the hard-error scheme.
    pub fn with_ecc(mut self, ecc: EccChoice) -> Self {
        self.ecc = ecc;
        self
    }

    /// Disables the Fig. 8 heuristic (the "naive" compression mode used by
    /// the Comp ablation).
    pub fn without_heuristic(mut self) -> Self {
        self.use_heuristic = false;
        self
    }

    /// Enables the Fig. 8 heuristic (on by default only for `Comp+WF`).
    pub fn with_heuristic(mut self) -> Self {
        self.use_heuristic = true;
        self
    }

    /// Overrides the window placement granularity (power of two bytes).
    pub fn with_window_step(mut self, step: usize) -> Self {
        self.window_step = step;
        self
    }

    /// Switches the cell technology (MLC-2 also switches to the MLC
    /// endurance band unless overridden afterwards).
    pub fn with_tech(mut self, tech: CellTech) -> Self {
        self.tech = tech;
        if tech == CellTech::Mlc2 && self.endurance == EnduranceModel::paper() {
            self.endurance = tech.default_endurance();
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_capabilities() {
        assert!(!SystemKind::Baseline.compresses());
        assert!(SystemKind::Comp.compresses());
        assert!(!SystemKind::Comp.rotates());
        assert!(SystemKind::CompW.rotates());
        assert!(!SystemKind::CompW.slides());
        assert!(SystemKind::CompWF.slides());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(SystemKind::CompWF.to_string(), "Comp+WF");
        assert_eq!(SystemKind::CompW.to_string(), "Comp+W");
        assert_eq!(EccChoice::Safer32.to_string(), "SAFER-32");
    }

    #[test]
    fn builders_compose() {
        let cfg = SystemConfig::new(SystemKind::Comp)
            .with_endurance_mean(1e4)
            .with_endurance_cov(0.25)
            .with_ecc(EccChoice::Aegis17x31)
            .without_heuristic();
        assert_eq!(cfg.endurance.mean(), 1e4);
        assert_eq!(cfg.endurance.cov(), 0.25);
        assert_eq!(cfg.ecc, EccChoice::Aegis17x31);
        assert!(!cfg.use_heuristic);
    }

    #[test]
    fn ecc_choices_build() {
        for ecc in [EccChoice::Ecp6, EccChoice::Safer32, EccChoice::Aegis17x31] {
            let scheme = ecc.build();
            assert!(scheme.guaranteed() >= 6);
        }
        assert_eq!(EccChoice::Secded.build().guaranteed(), 1);
    }
}
