//! Per-line compression metadata (paper §III-B).
//!
//! Each memory line carries 13 bits of metadata: a 6-bit pointer to the
//! start of the compression window, 5 bits of encoding information (which
//! compressor/variant produced the stored payload), and the 2-bit
//! saturating counter of the bit-flip heuristic. The *compressed?* flag
//! itself lives in one of the three spare bits of the ECC chip's 64-bit
//! region (ECP-6 uses 61). The metadata is mirrored to the LLC alongside
//! read data (one extra byte per 64-byte block) so the controller knows the
//! old size and counter when the block is eventually written back.

use pcm_compress::Method;
use serde::{Deserialize, Serialize};

/// The 13-bit per-line metadata word.
///
/// # Examples
///
/// ```
/// use pcm_core::LineMetadata;
/// use pcm_compress::Method;
///
/// let meta = LineMetadata::new(12, Method::Fpc, 2);
/// let packed = meta.pack();
/// assert!(packed < 1 << 13);
/// assert_eq!(LineMetadata::unpack(packed).unwrap(), meta);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LineMetadata {
    start: u8,
    encoding: u8,
    sc: u8,
}

/// Error returned when unpacking malformed metadata bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadMetadata(pub u16);

impl std::fmt::Display for BadMetadata {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "metadata word {:#06x} does not decode", self.0)
    }
}

impl std::error::Error for BadMetadata {}

impl LineMetadata {
    /// Creates metadata from its fields.
    ///
    /// # Panics
    ///
    /// Panics if `start >= 64` or `sc >= 4`.
    pub fn new(start: u8, method: Method, sc: u8) -> Self {
        assert!(start < 64, "start pointer is 6 bits");
        assert!(sc < 4, "saturating counter is 2 bits");
        LineMetadata {
            start,
            encoding: method.encode_5bit(),
            sc,
        }
    }

    /// Fresh-line metadata: window at byte 0, uncompressed, counter 0.
    pub fn fresh() -> Self {
        LineMetadata::new(0, Method::Uncompressed, 0)
    }

    /// Window start byte (6 bits).
    pub fn start(&self) -> usize {
        self.start as usize
    }

    /// The storage method recorded in the 5-bit encoding field.
    pub fn method(&self) -> Method {
        Method::decode_5bit(self.encoding).expect("constructed from a valid method")
    }

    /// The 2-bit saturating counter.
    pub fn sc(&self) -> u8 {
        self.sc
    }

    /// Replaces the saturating counter.
    ///
    /// # Panics
    ///
    /// Panics if `sc >= 4`.
    pub fn with_sc(mut self, sc: u8) -> Self {
        assert!(sc < 4, "saturating counter is 2 bits");
        self.sc = sc;
        self
    }

    /// Packs into the 13-bit wire format:
    /// `start (6) | encoding (5) << 6 | sc (2) << 11`.
    pub fn pack(&self) -> u16 {
        self.start as u16 | (self.encoding as u16) << 6 | (self.sc as u16) << 11
    }

    /// Unpacks the 13-bit wire format.
    ///
    /// # Errors
    ///
    /// Returns [`BadMetadata`] if the encoding field holds an unused code
    /// point or high bits are set.
    pub fn unpack(word: u16) -> Result<Self, BadMetadata> {
        if word >= 1 << 13 {
            return Err(BadMetadata(word));
        }
        let start = (word & 0x3F) as u8;
        let encoding = ((word >> 6) & 0x1F) as u8;
        let sc = ((word >> 11) & 0x3) as u8;
        if Method::decode_5bit(encoding).is_none() {
            return Err(BadMetadata(word));
        }
        Ok(LineMetadata {
            start,
            encoding,
            sc,
        })
    }

    /// Total metadata bits (paper: 13).
    pub const BITS: u32 = 13;
}

impl Default for LineMetadata {
    fn default() -> Self {
        LineMetadata::fresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_compress::BdiEncoding;

    #[test]
    fn pack_round_trips_all_fields() {
        for start in [0u8, 1, 31, 63] {
            for sc in 0u8..4 {
                for method in [
                    Method::Uncompressed,
                    Method::Fpc,
                    Method::Bdi(BdiEncoding::B8D2),
                ] {
                    let m = LineMetadata::new(start, method, sc);
                    assert_eq!(LineMetadata::unpack(m.pack()).unwrap(), m);
                    assert_eq!(m.start(), start as usize);
                    assert_eq!(m.method(), method);
                    assert_eq!(m.sc(), sc);
                }
            }
        }
    }

    #[test]
    fn thirteen_bits_suffice() {
        let m = LineMetadata::new(63, Method::Uncompressed, 3);
        assert!(m.pack() < 1 << LineMetadata::BITS);
    }

    #[test]
    fn rejects_bad_encoding_field() {
        // Encoding 31 is unused.
        let word = 31u16 << 6;
        assert!(LineMetadata::unpack(word).is_err());
        assert!(LineMetadata::unpack(1 << 13).is_err());
    }

    #[test]
    #[should_panic(expected = "6 bits")]
    fn rejects_wide_start() {
        LineMetadata::new(64, Method::Fpc, 0);
    }

    #[test]
    fn with_sc_updates_only_counter() {
        let m = LineMetadata::new(5, Method::Fpc, 0).with_sc(3);
        assert_eq!(m.sc(), 3);
        assert_eq!(m.start(), 5);
        assert_eq!(m.method(), Method::Fpc);
    }
}
