//! The functional whole-memory model.
//!
//! [`PcmMemory`] interleaves logical lines over a vector of [`BankCtl`]s —
//! each bank owns its complete controller state (inter-line wear-leveling
//! scheme, rotation counter, compression pipeline, ECC, resurrection
//! bookkeeping; see [`crate::bank`]) and the memory performs only the
//! logical→bank routing
//! and statistic aggregation. It simulates every write cell-accurately —
//! use it for correctness tests, examples, and to cross-validate the
//! accelerated lifetime engine; use [`crate::lifetime`] for
//! endurance-scale campaigns. Services that need the banks themselves
//! (the `pcm-serve` daemon shards banks over workers) construct
//! [`BankCtl`]s directly instead.

use crate::bank::BankCtl;
use crate::line::LineWriteReport;
use crate::system::SystemConfig;
use pcm_util::{seeded_rng, Line512};
use serde::{Deserialize, Serialize};

/// Cumulative statistics of a [`PcmMemory`] (or one [`BankCtl`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// Demand write-backs served.
    pub demand_writes: u64,
    /// Inter-line wear-leveling events (Start-Gap gap movements, swap
    /// events; each costs one or two extra line writes).
    pub gap_moves: u64,
    /// Total programmed cells.
    pub total_flips: u64,
    /// Cells that became stuck.
    pub new_faults: u64,
    /// Writes stored compressed.
    pub compressed_writes: u64,
    /// Lines revived by dead-block resurrection.
    pub resurrections: u64,
    /// Relocations that could not place their data (data parked until the
    /// next successful write).
    pub relocation_failures: u64,
    /// Uncorrectable line failures (death events, demand or relocation).
    pub deaths: u64,
    /// Sum of per-line fault counts at each death event (so
    /// `death_fault_cells / deaths` is the Fig. 12 faults-at-death mean).
    pub death_fault_cells: u64,
}

impl MemoryStats {
    /// Accumulates another statistics block into this one (used to merge
    /// per-bank counters into whole-memory totals).
    pub fn absorb(&mut self, other: &MemoryStats) {
        self.demand_writes += other.demand_writes;
        self.gap_moves += other.gap_moves;
        self.total_flips += other.total_flips;
        self.new_faults += other.new_faults;
        self.compressed_writes += other.compressed_writes;
        self.resurrections += other.resurrections;
        self.relocation_failures += other.relocation_failures;
        self.deaths += other.deaths;
        self.death_fault_cells += other.death_fault_cells;
    }
}

/// Report of one successful demand write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteReport {
    /// The line-level outcome ([`LineWriteReport`]).
    pub line: LineWriteReport,
    /// Whether the payload was stored compressed.
    pub compressed: bool,
    /// Whether this write triggered an inter-line wear-leveling event
    /// (named after Start-Gap's gap move, the default scheme's event).
    pub gap_moved: bool,
}

/// Error returned by [`PcmMemory::write`] / [`PcmMemory::read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteError {
    /// The target line cannot store this payload: an uncorrectable error.
    LineDead {
        /// Faulty cells in the failed line.
        faults: u32,
    },
    /// The logical address is out of range.
    BadAddress,
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::LineDead { faults } => {
                write!(
                    f,
                    "uncorrectable error: line dead with {faults} faulty cells"
                )
            }
            WriteError::BadAddress => write!(f, "logical address out of range"),
        }
    }
}

impl std::error::Error for WriteError {}

/// A functional PCM main memory under one of the four evaluated systems.
///
/// Logical lines interleave over banks; each bank has `lines_per_bank`
/// logical lines over the physical lines its configured wear scheme asks
/// for (`lines_per_bank + 1` under the default Start-Gap).
///
/// # Examples
///
/// ```
/// use pcm_core::{PcmMemory, SystemConfig, SystemKind};
/// use pcm_util::Line512;
///
/// let cfg = SystemConfig::new(SystemKind::Comp).with_endurance_mean(1e6);
/// let mut mem = PcmMemory::new(cfg, 64, 1);
/// mem.write(0, Line512::ones()).unwrap();
/// assert_eq!(mem.read(0).unwrap(), Line512::ones());
/// ```
#[derive(Debug)]
pub struct PcmMemory {
    cfg: SystemConfig,
    banks: Vec<BankCtl>,
    lines_per_bank: u64,
}

impl PcmMemory {
    /// Creates a memory with `logical_lines` lines (split over 8 banks when
    /// divisible, else one bank).
    ///
    /// # Panics
    ///
    /// Panics if `logical_lines < 2`.
    pub fn new(cfg: SystemConfig, logical_lines: u64, seed: u64) -> Self {
        assert!(logical_lines >= 2, "need at least two logical lines");
        // Eight banks when each bank gets at least two lines (the wear
        // scheme needs a region), otherwise a single bank.
        let banks = Self::banks_for(logical_lines);
        let lines_per_bank = logical_lines / banks as u64;
        // One RNG threaded through every bank, in bank order: the
        // whole-memory endurance draw is byte-identical to the historical
        // single-vector construction.
        let mut rng = seeded_rng(seed);
        let banks = (0..banks)
            .map(|_| BankCtl::sample(cfg, lines_per_bank, &mut rng))
            .collect();
        PcmMemory {
            cfg,
            banks,
            lines_per_bank,
        }
    }

    /// Number of logical lines.
    pub fn logical_lines(&self) -> u64 {
        self.lines_per_bank * self.banks.len() as u64
    }

    // Eight banks when each bank gets at least two lines (Start-Gap needs
    // a region), otherwise a single bank.
    fn banks_for(logical_lines: u64) -> usize {
        if logical_lines % 8 == 0 && logical_lines >= 16 {
            8
        } else {
            1
        }
    }

    /// Physical lines backing `logical_lines` logical ones under the
    /// default Start-Gap wear scheme: one spare per bank on top of the
    /// logical capacity. Wear (and the 50%-capacity failure criterion) is
    /// spread over this count, so per-line write budgets comparable with
    /// the accelerated engine's clock divide by it, not by the logical
    /// count. (Other wear schemes change the spare count; query the banks
    /// of a constructed memory for exact geometry.)
    pub fn physical_lines(logical_lines: u64) -> u64 {
        logical_lines + Self::banks_for(logical_lines) as u64
    }

    /// Cumulative statistics, aggregated over every bank.
    pub fn stats(&self) -> MemoryStats {
        let mut total = MemoryStats::default();
        for bank in &self.banks {
            total.absorb(&bank.stats());
        }
        total
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The per-bank controllers, in interleave order.
    pub fn banks(&self) -> &[BankCtl] {
        &self.banks
    }

    /// Fraction of physical lines currently dead.
    pub fn dead_fraction(&self) -> f64 {
        let dead: usize = self.banks.iter().map(|b| b.dead_lines()).sum();
        let phys: usize = self.banks.iter().map(|b| b.physical_line_count()).sum();
        dead as f64 / phys as f64
    }

    /// The paper's failure criterion: 50% of capacity worn out.
    pub fn is_failed(&self) -> bool {
        self.dead_fraction() >= 0.5
    }

    fn locate(&self, logical: u64) -> (usize, u64) {
        let bank = (logical % self.banks.len() as u64) as usize;
        let idx = logical / self.banks.len() as u64;
        (bank, idx)
    }

    /// Serves one LLC write-back.
    ///
    /// # Errors
    ///
    /// Returns a [`WriteReport`] on success, [`WriteError::LineDead`] on an
    /// uncorrectable error (the line cannot hold the payload), and
    /// [`WriteError::BadAddress`] for an out-of-range address.
    pub fn write(&mut self, logical: u64, data: Line512) -> Result<WriteReport, WriteError> {
        if logical >= self.logical_lines() {
            return Err(WriteError::BadAddress);
        }
        let (bank, idx) = self.locate(logical);
        self.banks[bank].write(idx, data)
    }

    /// Reads one line back, decompressing as needed.
    ///
    /// # Errors
    ///
    /// Returns [`WriteError::BadAddress`] out of range,
    /// [`WriteError::LineDead`] when the data was lost to an uncorrectable
    /// error or a failed relocation.
    pub fn read(&self, logical: u64) -> Result<Line512, WriteError> {
        if logical >= self.logical_lines() {
            return Err(WriteError::BadAddress);
        }
        let (bank, idx) = self.locate(logical);
        self.banks[bank].read(idx)
    }

    /// Decompression latency (CPU cycles) a demand read of this line pays.
    pub fn read_decompression_cycles(&self, logical: u64) -> u64 {
        let (bank, idx) = self.locate(logical);
        self.banks[bank].read_decompression_cycles(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_util::seeded_rng;
    use rand::RngExt;

    fn cfg(kind: SystemKind) -> SystemConfig {
        SystemConfig::new(kind).with_endurance_mean(1e9)
    }

    #[test]
    fn write_read_round_trip_all_systems() {
        let mut rng = seeded_rng(121);
        for kind in SystemKind::ALL {
            let mut mem = PcmMemory::new(cfg(kind), 32, 7);
            let lines: Vec<(u64, Line512)> =
                (0..32).map(|l| (l, Line512::random(&mut rng))).collect();
            for &(l, d) in &lines {
                mem.write(l, d).unwrap();
            }
            for &(l, d) in &lines {
                assert_eq!(mem.read(l).unwrap(), d, "{kind}");
            }
        }
    }

    #[test]
    fn round_trip_survives_start_gap_churn() {
        let mut base = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(1e9);
        base.start_gap_psi = 3; // aggressive gap movement
        let mut mem = PcmMemory::new(base, 16, 9);
        let mut rng = seeded_rng(122);
        let mut expected = std::collections::HashMap::new();
        for step in 0..2000u64 {
            let l = rng.random_range(0..16);
            let d = Line512::random(&mut rng);
            mem.write(l, d).unwrap();
            expected.insert(l, d);
            if step % 97 == 0 {
                for (&l, &d) in &expected {
                    assert_eq!(mem.read(l).unwrap(), d, "step {step} line {l}");
                }
            }
        }
        assert!(mem.stats().gap_moves > 500);
    }

    #[test]
    fn round_trip_survives_rival_scheme_churn() {
        // Every registered ECC × wear stack runs through the same
        // controller loop — nothing here branches on the scheme.
        use crate::system::{EccChoice, WearChoice};
        for wear in WearChoice::ALL {
            for ecc in [EccChoice::Ecp6, EccChoice::Coset] {
                let mut base = SystemConfig::new(SystemKind::CompWF)
                    .with_endurance_mean(1e9)
                    .with_ecc(ecc)
                    .with_wear(wear);
                base.start_gap_psi = 3; // aggressive wear-leveling churn
                let mut mem = PcmMemory::new(base, 16, 9);
                let mut rng = seeded_rng(123);
                let mut expected = std::collections::HashMap::new();
                for step in 0..600u64 {
                    let l = rng.random_range(0..16);
                    let d = Line512::random(&mut rng);
                    mem.write(l, d).unwrap();
                    expected.insert(l, d);
                    if step % 97 == 0 {
                        for (&l, &d) in &expected {
                            assert_eq!(mem.read(l).unwrap(), d, "{ecc}/{wear} step {step}");
                        }
                    }
                }
                assert!(mem.stats().gap_moves > 100, "{ecc}/{wear} must churn");
            }
        }
    }

    #[test]
    fn compression_statistics_flow() {
        let mut mem = PcmMemory::new(cfg(SystemKind::Comp), 8, 3);
        // Highly compressible data compresses.
        for l in 0..8 {
            mem.write(l, Line512::zero()).unwrap();
        }
        let s = mem.stats();
        assert_eq!(s.demand_writes, 8);
        assert_eq!(s.compressed_writes, 8);
    }

    #[test]
    fn baseline_never_compresses() {
        let mut mem = PcmMemory::new(cfg(SystemKind::Baseline), 8, 3);
        for l in 0..8 {
            mem.write(l, Line512::zero()).unwrap();
        }
        assert_eq!(mem.stats().compressed_writes, 0);
    }

    #[test]
    fn weak_cells_kill_baseline_faster_than_compwf() {
        // Same seed -> same endurance draw; CompWF's sliding window must
        // survive at least as many writes as Baseline on a weak line.
        let survive = |kind: SystemKind| -> u64 {
            let cfg = SystemConfig::new(kind).with_endurance_mean(60.0);
            let mut mem = PcmMemory::new(cfg, 2, 5);
            let mut rng = seeded_rng(321);
            let mut writes = 0u64;
            loop {
                let d = if kind.compresses() {
                    // compressible content
                    let mut b = [0u8; 64];
                    b[0] = rng.random();
                    Line512::from_bytes(&b)
                } else {
                    Line512::random(&mut rng)
                };
                if mem.write(0, d).is_err() {
                    return writes;
                }
                writes += 1;
                if writes > 2_000_000 {
                    return writes;
                }
            }
        };
        let base = survive(SystemKind::Baseline);
        let wf = survive(SystemKind::CompWF);
        assert!(
            wf > base * 2,
            "CompWF ({wf} writes) should far outlast Baseline ({base} writes)"
        );
    }

    #[test]
    fn bad_address_rejected() {
        let mut mem = PcmMemory::new(cfg(SystemKind::Baseline), 8, 3);
        assert_eq!(mem.write(8, Line512::zero()), Err(WriteError::BadAddress));
        assert_eq!(mem.read(8).unwrap_err(), WriteError::BadAddress);
    }

    #[test]
    fn unwritten_line_reads_as_dead() {
        let mem = PcmMemory::new(cfg(SystemKind::Comp), 8, 3);
        assert!(matches!(mem.read(0), Err(WriteError::LineDead { .. })));
    }

    #[test]
    fn decompression_cycles_reflect_method() {
        let mut mem = PcmMemory::new(cfg(SystemKind::Comp), 8, 3);
        mem.write(0, Line512::zero()).unwrap(); // BDI zeros
        assert_eq!(mem.read_decompression_cycles(0), 1);
        let mut rng = seeded_rng(8);
        mem.write(1, Line512::random(&mut rng)).unwrap(); // uncompressed
        assert_eq!(mem.read_decompression_cycles(1), 0);
    }

    #[test]
    fn per_bank_stats_sum_to_memory_stats() {
        let mut mem = PcmMemory::new(cfg(SystemKind::CompWF), 32, 13);
        let mut rng = seeded_rng(99);
        for _ in 0..300u32 {
            let l = rng.random_range(0..32);
            mem.write(l, Line512::random(&mut rng)).unwrap();
        }
        let mut summed = MemoryStats::default();
        for bank in mem.banks() {
            summed.absorb(&bank.stats());
        }
        assert_eq!(summed, mem.stats());
        assert_eq!(mem.banks().len(), 8);
    }
}
