//! The bit-flip control heuristic (paper Fig. 8, §III-A.1).
//!
//! Compression can *increase* bit flips: for ~20% of writes the compressed
//! payload's entropy exceeds the plain data's, and — worse — when the
//! compressed size of a block fluctuates between writes, the differential
//! write sees completely different byte layouts each time. The controller
//! cannot measure flips directly (DW happens on-chip), so the paper derives
//! a proxy from two observations:
//!
//! 1. flips drop when the compression ratio is *high* — always compress
//!    small payloads;
//! 2. flips rise when consecutive writes to a block have *different
//!    compressed sizes* — track that with a 2-bit saturating counter (SC)
//!    and fall back to uncompressed storage when it saturates.

use serde::{Deserialize, Serialize};

/// The controller's storage decision for one write-back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Store the compressed payload.
    Compressed,
    /// Store the original 64 bytes.
    Uncompressed,
}

/// The Fig. 8 heuristic: thresholds plus the SC update rule.
///
/// # Examples
///
/// ```
/// use pcm_core::{CompressionHeuristic, Decision};
///
/// let h = CompressionHeuristic::paper();
/// // A small payload is always stored compressed (step 1).
/// let (d, _) = h.decide(10, 40, 3);
/// assert_eq!(d, Decision::Compressed);
/// // A saturated counter forces large payloads to go uncompressed (step 2).
/// let (d, sc) = h.decide(40, 38, 3);
/// assert_eq!(d, Decision::Uncompressed);
/// assert_eq!(sc, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionHeuristic {
    /// Always compress when the new compressed size is below this
    /// (paper's `Threshold1`).
    pub threshold1: usize,
    /// Size changes smaller than this decrement SC; larger increment it
    /// (paper's `Threshold2`).
    pub threshold2: usize,
}

impl CompressionHeuristic {
    /// The default thresholds used in our evaluation: `Threshold1 = 16`
    /// bytes, `Threshold2 = 24` bytes (the paper leaves the values
    /// unstated; the `ablation_heuristic` bench sweeps `Threshold2` and
    /// 24 wins). A generous `Threshold2` tolerates ordinary size jitter
    /// and reserves the uncompressed fallback for truly erratic blocks —
    /// tighter settings re-lay the window out so often that the heuristic
    /// *costs* flips instead of saving them.
    pub fn paper() -> Self {
        CompressionHeuristic {
            threshold1: 16,
            threshold2: 24,
        }
    }

    /// Applies Fig. 8: given the new compressed size, the stored (old)
    /// size, and the current 2-bit counter, returns the storage decision
    /// and the updated counter.
    ///
    /// # Panics
    ///
    /// Panics if `sc >= 4`.
    pub fn decide(&self, new_size: usize, old_size: usize, sc: u8) -> (Decision, u8) {
        assert!(sc < 4, "SC is a 2-bit counter");
        // Step 1: high compression ratio — always compress; the small
        // window keeps flips low regardless of size dynamics. A strongly
        // compressible write is also evidence the block has left its
        // volatile phase, so the counter decays.
        if new_size < self.threshold1 {
            return (Decision::Compressed, sc.saturating_sub(1));
        }
        // Step 2: the block has a history of size fluctuation — write
        // uncompressed to avoid the re-layout flips.
        if sc == 3 {
            return (Decision::Uncompressed, sc);
        }
        // Step 3: compress, and track size stability.
        let delta = new_size.abs_diff(old_size);
        let sc = if delta < self.threshold2 {
            sc.saturating_sub(1)
        } else {
            (sc + 1).min(3)
        };
        (Decision::Compressed, sc)
    }
}

impl Default for CompressionHeuristic {
    fn default() -> Self {
        CompressionHeuristic::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: CompressionHeuristic = CompressionHeuristic {
        threshold1: 16,
        threshold2: 8,
    };
    // (tests pin their own thresholds rather than the default)

    #[test]
    fn small_payloads_always_compress() {
        for sc in 0..4u8 {
            let (d, _) = H.decide(15, 64, sc);
            assert_eq!(d, Decision::Compressed);
        }
    }

    #[test]
    fn small_payloads_decay_counter() {
        let (_, sc) = H.decide(8, 64, 3);
        assert_eq!(sc, 2);
        let (_, sc) = H.decide(8, 64, 0);
        assert_eq!(sc, 0);
    }

    #[test]
    fn saturated_counter_blocks_compression() {
        let (d, sc) = H.decide(40, 40, 3);
        assert_eq!(d, Decision::Uncompressed);
        assert_eq!(sc, 3);
    }

    #[test]
    fn stable_sizes_decrement_counter() {
        // |40 - 44| < 8 -> stable.
        let (d, sc) = H.decide(40, 44, 2);
        assert_eq!(d, Decision::Compressed);
        assert_eq!(sc, 1);
    }

    #[test]
    fn volatile_sizes_increment_counter() {
        // |40 - 20| >= 8 -> volatile.
        let (d, sc) = H.decide(40, 20, 1);
        assert_eq!(d, Decision::Compressed);
        assert_eq!(sc, 2);
    }

    #[test]
    fn volatile_block_saturates_then_recovers() {
        // A block oscillating between 24 and 48 bytes saturates SC in two
        // steps, stays uncompressed, then a tiny write re-enables
        // compression.
        let mut sc = 1;
        let sizes = [24usize, 48, 24, 48];
        let mut decisions = Vec::new();
        let mut old = 48;
        for &s in &sizes {
            let (d, new_sc) = H.decide(s, old, sc);
            decisions.push(d);
            sc = new_sc;
            old = s;
        }
        assert_eq!(sc, 3);
        assert_eq!(decisions[3], Decision::Uncompressed);
        let (d, sc) = H.decide(4, 64, sc);
        assert_eq!(d, Decision::Compressed);
        assert_eq!(sc, 2);
    }

    #[test]
    #[should_panic(expected = "2-bit")]
    fn rejects_wide_counter() {
        H.decide(10, 10, 4);
    }
}
