//! The accelerated per-line lifetime simulation.

use crate::line::{EccEngine, ManagedLine, Payload};
use crate::payload::{choose_payload, HostMeta, PayloadBufs};
use crate::system::SystemConfig;
use pcm_trace::{BlockStream, WorkloadProfile};
use pcm_util::{child_seed, seeded_rng, simd, DATA_BITS, DATA_BYTES};
use serde::{Deserialize, Serialize};

/// Configuration of one accelerated line simulation.
#[derive(Debug, Clone)]
pub struct LineSimConfig {
    /// The system under evaluation.
    pub system: SystemConfig,
    /// The workload whose blocks the line hosts.
    pub profile: WorkloadProfile,
    /// Real writes simulated per segment before fast-forwarding (the
    /// sampling ratio is `sample_writes / segment length`).
    pub sample_writes: u32,
    /// Horizon: stop after this many per-line demand writes.
    pub max_writes: u64,
}

impl LineSimConfig {
    /// A configuration with sensible campaign defaults: 16 sampled writes
    /// per segment and a horizon of `120 ×` the mean endurance.
    pub fn new(system: SystemConfig, profile: WorkloadProfile) -> Self {
        let horizon = (system.endurance.mean() * 120.0) as u64;
        LineSimConfig {
            system,
            profile,
            sample_writes: 16,
            max_writes: horizon,
        }
    }
}

/// The life story of one simulated line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LineRecord {
    /// Per-line write time of the first uncorrectable failure.
    pub first_death: Option<u64>,
    /// Alternating death/revival timestamps: `events[0]` = first death,
    /// `events[1]` = first revival, … (odd length = still dead at the
    /// horizon).
    pub events: Vec<u64>,
    /// Faulty cells when the line last died (paper Fig. 12), if it died.
    pub faults_at_death: Option<u32>,
    /// Faulty cells at every death event, in order (Fig. 12 averages over
    /// these failure events).
    pub death_fault_counts: Vec<u32>,
    /// Total faulty cells at the end of simulation.
    pub final_faults: u32,
    /// Mean programmed cells per demand write (sampled writes only).
    pub mean_flips_per_write: f64,
    /// Total demand writes simulated (sampled + fast-forwarded); the
    /// work metric behind the `pcm-bench-hotpath` writes/sec throughput.
    pub demand_writes: u64,
    /// Horizon used.
    pub horizon: u64,
}

impl LineRecord {
    /// `true` if the line is dead at per-line write time `t`.
    pub fn dead_at(&self, t: u64) -> bool {
        // events alternate death, revival, death, ...
        let idx = self.events.partition_point(|&e| e <= t);
        idx % 2 == 1
    }
}

/// Reusable per-worker scratch for [`simulate_line_with`]: the payload
/// buffer pair is allocated once and shared across every line the worker
/// simulates, so the per-write hot path never touches the heap.
#[derive(Debug, Default)]
pub struct LineScratch {
    pub(crate) bufs: PayloadBufs,
}

impl LineScratch {
    /// Creates fresh scratch buffers.
    pub fn new() -> Self {
        LineScratch::default()
    }
}

/// Simulates one line to its horizon under the accelerated model.
///
/// The line alternates through *residencies* (a hosted block between two
/// inter-line relocations). Each residency is split into segments bounded
/// by intra-line rotations; per segment, `sample_writes` real writes
/// establish the per-cell flip rates, and the rest of the segment is
/// fast-forwarded onto the wear counters.
pub fn simulate_line(cfg: &LineSimConfig, seed: u64) -> LineRecord {
    simulate_line_with(cfg, seed, &mut LineScratch::new())
}

/// [`simulate_line`] with caller-owned scratch buffers, reusable across
/// lines (the campaign runner hands each pool worker one [`LineScratch`]).
// pcm-audit: root(hotpath-alloc) — per-line inner loop of the campaign runner; scratch buffers exist so this chain never allocates
pub fn simulate_line_with(cfg: &LineSimConfig, seed: u64, scratch: &mut LineScratch) -> LineRecord {
    let sys = &cfg.system;
    // pcm-audit: allow(hotpath-alloc) — one-time engine construction per line, outside the write loop
    let engine = EccEngine::new(sys.ecc);
    let mut rng = seeded_rng(child_seed(seed, 0));
    // pcm-audit: allow(hotpath-alloc) — one-time per-line endurance sampling, outside the write loop
    let mut line = ManagedLine::sample_with_tech(&sys.endurance, sys.tech, &mut rng);
    // pcm-audit: allow(hotpath-alloc) — profile clone happens once per residency, amortized over residency_writes writes
    let mut block = BlockStream::new(cfg.profile.clone(), child_seed(seed, 1));
    let mut meta = HostMeta::default();

    let mut writes: u64 = 0;
    let mut rotation: usize = 0;
    let mut residency_left: u64 = sys.residency_writes;
    let mut block_counter: u64 = 2;

    // Death/revival events only happen at residency boundaries (a dead
    // line waits for the next relocation), so the horizon bounds how many
    // can occur; one up-front reservation replaces regrowth in the loop.
    let max_events = if sys.kind.slides() {
        ((cfg.max_writes / sys.residency_writes.max(1)).min(512) as usize + 1) * 2
    } else {
        1
    };
    let mut events: Vec<u64> = Vec::with_capacity(max_events);
    let mut first_death = None;
    let mut faults_at_death = None;
    let mut death_fault_counts: Vec<u32> = Vec::with_capacity(max_events / 2 + 1);
    let mut flip_sum: u64 = 0;
    let mut sampled: u64 = 0;

    let rotation_period = if sys.kind.rotates() {
        sys.rotation_period
    } else {
        u64::MAX
    };

    while writes < cfg.max_writes {
        if line.is_dead() {
            // Dead lines receive no traffic until the next relocation
            // offers a fresh block (and, for Comp+WF, a resurrection
            // check). Other systems never revive: finish early.
            if !sys.kind.slides() {
                break;
            }
            writes += residency_left;
            if writes >= cfg.max_writes {
                break;
            }
            // pcm-audit: allow(hotpath-alloc) — per-residency block refresh, amortized over residency_writes writes
            block = BlockStream::new(cfg.profile.clone(), child_seed(seed, block_counter));
            block_counter += 1;
            meta = HostMeta::default();
            residency_left = sys.residency_writes;
            // Resurrection check with the incoming block's payload size
            // (compressed fallback counts: any storable form revives).
            let (_, _, fallback) = choose_payload(sys, meta, &block.current(), &mut scratch.bufs);
            let preferred = if sys.kind.rotates() { rotation } else { 0 };
            let len = if fallback.is_some() {
                scratch.bufs.fallback().len()
            } else {
                scratch.bufs.chosen().len()
            }
            .min(scratch.bufs.chosen().len());
            if line
                .can_host_with_step(&engine, len, preferred, true, sys.window_step)
                .is_some()
            {
                line.revive();
                // pcm-audit: allow(hotpath-alloc) — stays within the with_capacity reservation made at entry
                events.push(writes);
            }
            continue;
        }

        // Segment length: bounded by the rotation boundary, the residency,
        // and the horizon.
        let to_rotation = if rotation_period == u64::MAX {
            u64::MAX
        } else {
            rotation_period - (writes % rotation_period)
        };
        let seg = residency_left
            .min(to_rotation)
            .min(cfg.max_writes - writes)
            .max(1);
        let k = (cfg.sample_writes as u64).min(seg);

        // Real writes: establish the flip pattern of this segment. Flip
        // masks land in a carry-save bit-plane accumulator and are only
        // expanded to per-bit counts once, at the fast-forward boundary.
        let mut counts = [0u32; DATA_BITS];
        let mut flip_acc = simd::MaskAccumulator::new();
        let mut done: u64 = 0;
        let mut died = false;
        for _ in 0..k {
            let data = block.next_data();
            let (mut method, new_meta, fallback) =
                choose_payload(sys, meta, &data, &mut scratch.bufs);
            meta = new_meta;
            let mut bytes: &[u8] = scratch.bufs.chosen();
            let preferred = if sys.kind.rotates() { rotation } else { 0 };
            // If the heuristic preferred uncompressed but the full line no
            // longer fits while the compressed form would, revert.
            if let Some(fb_method) = fallback {
                if line
                    .can_host_with_step(
                        &engine,
                        bytes.len(),
                        preferred,
                        sys.kind.slides(),
                        sys.window_step,
                    )
                    .is_none()
                    && line
                        .can_host_with_step(
                            &engine,
                            scratch.bufs.fallback().len(),
                            preferred,
                            sys.kind.slides(),
                            sys.window_step,
                        )
                        .is_some()
                {
                    bytes = scratch.bufs.fallback();
                    method = fb_method;
                }
            }
            match line.write_with_step(
                &engine,
                Payload { method, bytes },
                preferred,
                sys.kind.slides(),
                sys.window_step,
            ) {
                Ok(r) => {
                    flip_sum += r.flips as u64;
                    sampled += 1;
                    flip_acc.accumulate(&mut counts, &r.flip_mask.words());
                    meta.last_size = bytes.len();
                    done += 1;
                }
                Err(_) => {
                    died = true;
                    done += 1;
                    break;
                }
            }
        }
        writes += done;
        residency_left = residency_left.saturating_sub(done);

        if died {
            if first_death.is_none() {
                first_death = Some(writes);
            }
            faults_at_death = Some(line.faults().count());
            // pcm-audit: allow(hotpath-alloc) — stays within the with_capacity reservation made at entry
            death_fault_counts.push(line.faults().count());
            // pcm-audit: allow(hotpath-alloc) — stays within the with_capacity reservation made at entry
            events.push(writes);
            continue;
        }

        // Fast-forward the rest of the segment analytically, stopping at
        // the first projected cell failure so fault counts at death stay
        // write-accurate (no multi-fault overshoot within a segment).
        let mut extra = seg - done;
        if extra > 0 && done > 0 {
            flip_acc.drain_into(&mut counts);
            // Stop at the first projected cell failure so fault counts at
            // death stay write-accurate; the scan lives next to the wear
            // slices in `LineWear` instead of making 512 accessor calls.
            extra = line.wear().project_first_failure(&counts, done, extra);
            // The wear grant depends only on the flip count `c` (extra and
            // done are fixed for the segment) and `c` never exceeds `done`,
            // so a small memo table replaces the per-cell f64 divide. A
            // failure granted here lands exactly on the capped boundary;
            // the next sampled write discovers and re-handles it.
            let scale = |c: u32| ((c as u64 * extra) as f64 / done as f64).round() as u32;
            let mut grants = [0u32; DATA_BITS];
            if done <= 64 {
                let mut memo: [Option<u32>; 65] = [None; 65];
                for (pos, &c) in counts.iter().enumerate() {
                    if c != 0 {
                        grants[pos] = *memo[c as usize].get_or_insert_with(|| scale(c));
                    }
                }
            } else {
                for (pos, &c) in counts.iter().enumerate() {
                    if c != 0 {
                        grants[pos] = scale(c);
                    }
                }
            }
            line.add_wear_bulk(&grants);
            writes += extra;
            residency_left = residency_left.saturating_sub(extra);
        }

        // Rotation boundary?
        if sys.kind.rotates() && writes % rotation_period == 0 {
            rotation = (rotation + 1) % DATA_BYTES;
        }

        // Relocation: a fresh block arrives.
        if residency_left == 0 {
            // pcm-audit: allow(hotpath-alloc) — per-residency block refresh, amortized over residency_writes writes
            block = BlockStream::new(cfg.profile.clone(), child_seed(seed, block_counter));
            block_counter += 1;
            meta = HostMeta::default();
            residency_left = sys.residency_writes;
        }
    }

    LineRecord {
        first_death,
        events,
        faults_at_death,
        death_fault_counts,
        final_faults: line.faults().count(),
        mean_flips_per_write: if sampled > 0 {
            flip_sum as f64 / sampled as f64
        } else {
            0.0
        },
        demand_writes: writes,
        horizon: cfg.max_writes,
    }
}

/// Simulates one batch of lines (at most [`pcm_util::BATCH_LANES`] seeds)
/// in lockstep, returning records in seed order.
///
/// This is the campaign's unit of work: lines are handed to pool workers
/// one whole batch at a time, and the lanes advance *together*, one
/// sampled write per round — each round transposes every live lane's next
/// trace write into [`pcm_util::simd::LineBatch64`] planes, compresses
/// them through one `compress_best_batch` kernel call, and then finishes
/// each write (heuristic decision, window checks, cell updates) per lane.
/// A lane that reaches a control-flow boundary — death, revival,
/// fast-forward, rotation, relocation — peels out of the round, replays
/// the scalar boundary logic, and rejoins at its next sampled write.
///
/// Record `i` is byte-identical to `simulate_line_with(cfg, seeds[i], ..)`
/// because compression is a pure function of the line data and every
/// stateful step runs per lane in scalar program order; the differential
/// tests in the `lockstep` module and the campaign suite pin this.
///
/// # Panics
///
/// Panics if more than [`pcm_util::BATCH_LANES`] seeds are passed.
pub fn simulate_line_batch(
    cfg: &LineSimConfig,
    seeds: &[u64],
    scratch: &mut LineScratch,
) -> Vec<LineRecord> {
    super::lockstep::simulate_line_batch_lockstep(cfg, seeds, scratch).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_trace::SpecApp;

    fn quick_cfg(kind: SystemKind, mean: f64, app: SpecApp) -> LineSimConfig {
        let system = SystemConfig::new(kind).with_endurance_mean(mean);
        let mut cfg = LineSimConfig::new(system, app.profile());
        cfg.sample_writes = 8;
        cfg
    }

    #[test]
    fn baseline_line_dies_within_expected_scale() {
        // Random-ish content flips each cell ~every other write, so a
        // baseline line should die within a few multiples of endurance.
        let cfg = quick_cfg(SystemKind::Baseline, 2_000.0, SpecApp::Lbm);
        let rec = simulate_line(&cfg, 5);
        let death = rec.first_death.expect("baseline line must die");
        assert!(death > 1_000, "death {death} suspiciously early");
        assert!(death < 60_000, "death {death} suspiciously late");
        assert!(rec.final_faults >= 7, "ECP-6 exhaustion requires 7+ faults");
    }

    #[test]
    fn compwf_outlives_baseline_on_compressible_workload() {
        let base = simulate_line(&quick_cfg(SystemKind::Baseline, 2_000.0, SpecApp::Milc), 9);
        let wf = simulate_line(&quick_cfg(SystemKind::CompWF, 2_000.0, SpecApp::Milc), 9);
        let bd = base.first_death.expect("baseline dies");
        match wf.first_death {
            None => {} // outlived the horizon entirely
            Some(wd) => assert!(
                wd > bd * 2,
                "Comp+WF first death {wd} should far exceed baseline {bd}"
            ),
        }
    }

    #[test]
    fn dead_at_tracks_events() {
        let rec = LineRecord {
            first_death: Some(100),
            events: vec![100, 200, 300],
            faults_at_death: Some(9),
            death_fault_counts: vec![9, 9],
            final_faults: 9,
            mean_flips_per_write: 10.0,
            demand_writes: 1000,
            horizon: 1000,
        };
        assert!(!rec.dead_at(50));
        assert!(rec.dead_at(150));
        assert!(!rec.dead_at(250));
        assert!(rec.dead_at(400));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_cfg(SystemKind::CompW, 1_000.0, SpecApp::Gcc);
        let a = simulate_line(&cfg, 77);
        let b = simulate_line(&cfg, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn compwf_records_revivals_on_highly_compressible_workload() {
        // With sjeng (tiny payloads) a dead line should usually revive.
        let mut cfg = quick_cfg(SystemKind::CompWF, 500.0, SpecApp::Sjeng);
        cfg.max_writes = 2_000_000;
        let rec = simulate_line(&cfg, 3);
        if rec.events.len() >= 2 {
            assert!(rec.events.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
