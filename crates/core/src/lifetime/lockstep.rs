//! Lockstep multi-lane execution of the accelerated line simulation.
//!
//! [`simulate_line_batch_lockstep`] advances independent lines one
//! *round* at a time: every live lane surfaces its next sampled trace
//! write, the round's payloads are transposed into [`LineBatch64`] lane
//! planes and compressed through one [`compress_best_batch`] kernel
//! call, and then each lane finishes its write — heuristic decision,
//! window checks, cell updates — against its own state in lane order. A
//! lane that reaches a control-flow boundary (death, revival,
//! fast-forward, rotation, relocation, horizon) *peels* out of the
//! round, replays exactly the scalar boundary logic from
//! [`simulate_line_with`](super::linesim::simulate_line_with), and
//! rejoins the next round at its next sampled write.
//!
//! Non-compressing kinds never enter the rounds at all: with no
//! compression stage to batch, round-robin interleaving only trades away
//! L1 residency, so [`simulate_line_batch_lockstep`] runs them through
//! the scalar per-line loop — the same fallback the serve engine's
//! `apply_batch` takes for those kinds.
//!
//! A batch of up to [`BATCH_LANES`] seeds is processed in waves of
//! [`WAVE_LANES`] lanes. Wider waves cost more than they batch: each
//! lane's per-cell state (wear, endurance, flip counters — ~10 KiB) is
//! touched once per round, so the round-robin evicts it from L1 between
//! touches, while the batched compression stage runs the same per-lane
//! kernels either way. The measured sweep on the tracked campaign shape
//! (Comp+WF/milc, 64 lines, endurance 2000) is in EXPERIMENTS.md; 8
//! lanes was the flattest point of the locality/occupancy trade.
//!
//! Byte-identity with the scalar path holds by construction: compression
//! is a pure function of the line data (no `HostMeta` input), lanes share
//! no mutable state (the ECC engine is stateless and the payload scratch
//! is fully overwritten per decision), and every stateful step runs per
//! lane in the same program order as the scalar loop — wave width
//! included, since lanes are independent. The differential tests below
//! and the campaign suite pin this, record for record.

use super::linesim::{simulate_line_with, LineRecord, LineScratch, LineSimConfig};
use crate::line::{EccEngine, ManagedLine, Payload};
use crate::payload::{choose_payload, choose_payload_precompressed, HostMeta, PayloadBufs};
use crate::system::SystemConfig;
use pcm_compress::{compress_best_batch, Method};
use pcm_trace::BlockStream;
use pcm_util::simd::LineBatch64;
use pcm_util::{child_seed, seeded_rng, simd, Line512, BATCH_LANES, DATA_BITS, DATA_BYTES};

/// Where a lane stands between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// At the top of the scalar `while` loop: horizon / dead-line checks
    /// and segment setup run next.
    Top,
    /// Inside a segment's sampled-write loop: `pending` holds the next
    /// trace write once `advance` returns `true`.
    Write,
    /// Reached the horizon (or died without a revival path).
    Done,
}

/// Occupancy statistics of one lockstep batch, for the EXPERIMENTS.md
/// divergence table.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LockstepStats {
    /// Write rounds executed.
    pub rounds: u64,
    /// Rounds in which every lane of the batch contributed a write.
    pub full_rounds: u64,
    /// Sampled writes issued in total.
    pub writes: u64,
    /// Sampled writes issued in rounds with at least two live lanes —
    /// i.e. writes whose compression actually ran shoulder to shoulder.
    pub lockstep_writes: u64,
}

/// One line's complete simulation state, advanced round by round.
///
/// Field names and update order mirror the locals of the scalar
/// `simulate_line_with` loop one for one; see that function for the
/// model-level comments.
struct Lane {
    seed: u64,
    line: ManagedLine,
    block: BlockStream,
    meta: HostMeta,
    writes: u64,
    rotation: usize,
    residency_left: u64,
    block_counter: u64,
    events: Vec<u64>,
    first_death: Option<u64>,
    faults_at_death: Option<u32>,
    death_fault_counts: Vec<u32>,
    flip_sum: u64,
    sampled: u64,
    // Current-segment state.
    counts: [u32; DATA_BITS],
    flip_acc: simd::MaskAccumulator,
    seg: u64,
    k: u64,
    done: u64,
    died: bool,
    pending: Line512,
    phase: Phase,
}

impl Lane {
    fn new(cfg: &LineSimConfig, seed: u64) -> Self {
        let sys = &cfg.system;
        let mut rng = seeded_rng(child_seed(seed, 0));
        // pcm-audit: allow(hotpath-alloc) — one-time per-lane endurance sampling, outside the write rounds
        let line = ManagedLine::sample_with_tech(&sys.endurance, sys.tech, &mut rng);
        // pcm-audit: allow(hotpath-alloc) — profile clone happens once per residency, amortized over residency_writes writes
        let block = BlockStream::new(cfg.profile.clone(), child_seed(seed, 1));
        let max_events = if sys.kind.slides() {
            ((cfg.max_writes / sys.residency_writes.max(1)).min(512) as usize + 1) * 2
        } else {
            1
        };
        Lane {
            seed,
            line,
            block,
            meta: HostMeta::default(),
            writes: 0,
            rotation: 0,
            residency_left: sys.residency_writes,
            block_counter: 2,
            events: Vec::with_capacity(max_events),
            first_death: None,
            faults_at_death: None,
            death_fault_counts: Vec::with_capacity(max_events / 2 + 1),
            flip_sum: 0,
            sampled: 0,
            counts: [0; DATA_BITS],
            flip_acc: simd::MaskAccumulator::new(),
            seg: 0,
            k: 0,
            done: 0,
            died: false,
            pending: Line512::zero(),
            phase: Phase::Top,
        }
    }

    /// Runs the lane forward until it either surfaces its next sampled
    /// write (`true`; the trace line is in `self.pending`) or terminates
    /// (`false`). All boundary logic — dead-line handling, segment setup,
    /// fast-forward, rotation, relocation — replays the scalar loop
    /// verbatim.
    fn advance(
        &mut self,
        cfg: &LineSimConfig,
        engine: &EccEngine,
        rotation_period: u64,
        bufs: &mut PayloadBufs,
    ) -> bool {
        let sys = &cfg.system;
        loop {
            match self.phase {
                Phase::Done => return false,
                Phase::Top => {
                    if self.writes >= cfg.max_writes {
                        self.phase = Phase::Done;
                        return false;
                    }
                    if self.line.is_dead() {
                        if !sys.kind.slides() {
                            self.phase = Phase::Done;
                            return false;
                        }
                        self.writes += self.residency_left;
                        if self.writes >= cfg.max_writes {
                            self.phase = Phase::Done;
                            return false;
                        }
                        let bseed = child_seed(self.seed, self.block_counter);
                        // pcm-audit: allow(hotpath-alloc) — per-residency block refresh, amortized over residency_writes writes
                        self.block = BlockStream::new(cfg.profile.clone(), bseed);
                        self.block_counter += 1;
                        self.meta = HostMeta::default();
                        self.residency_left = sys.residency_writes;
                        let incoming = self.block.current();
                        let (_, _, fallback) = choose_payload(sys, self.meta, &incoming, bufs);
                        let preferred = if sys.kind.rotates() { self.rotation } else { 0 };
                        let len = if fallback.is_some() {
                            bufs.fallback().len()
                        } else {
                            bufs.chosen().len()
                        }
                        .min(bufs.chosen().len());
                        if self
                            .line
                            .can_host_with_step(engine, len, preferred, true, sys.window_step)
                            .is_some()
                        {
                            self.line.revive();
                            // pcm-audit: allow(hotpath-alloc) — stays within the with_capacity reservation made at entry
                            self.events.push(self.writes);
                        }
                        continue;
                    }
                    // Segment setup.
                    let to_rotation = if rotation_period == u64::MAX {
                        u64::MAX
                    } else {
                        rotation_period - (self.writes % rotation_period)
                    };
                    self.seg = self
                        .residency_left
                        .min(to_rotation)
                        .min(cfg.max_writes - self.writes)
                        .max(1);
                    self.k = (cfg.sample_writes as u64).min(self.seg);
                    self.counts.fill(0);
                    self.flip_acc = simd::MaskAccumulator::new();
                    self.done = 0;
                    self.died = false;
                    self.phase = Phase::Write;
                }
                Phase::Write => {
                    if !self.died && self.done < self.k {
                        self.pending = self.block.next_data();
                        return true;
                    }
                    // Segment end: commit the sampled writes, then either
                    // record a death or fast-forward the remainder.
                    self.writes += self.done;
                    self.residency_left = self.residency_left.saturating_sub(self.done);
                    if self.died {
                        if self.first_death.is_none() {
                            self.first_death = Some(self.writes);
                        }
                        self.faults_at_death = Some(self.line.faults().count());
                        // pcm-audit: allow(hotpath-alloc) — stays within the with_capacity reservation made at entry
                        self.death_fault_counts.push(self.line.faults().count());
                        // pcm-audit: allow(hotpath-alloc) — stays within the with_capacity reservation made at entry
                        self.events.push(self.writes);
                        self.phase = Phase::Top;
                        continue;
                    }
                    let mut extra = self.seg - self.done;
                    if extra > 0 && self.done > 0 {
                        self.flip_acc.drain_into(&mut self.counts);
                        extra =
                            self.line
                                .wear()
                                .project_first_failure(&self.counts, self.done, extra);
                        let done = self.done;
                        let scale =
                            |c: u32| ((c as u64 * extra) as f64 / done as f64).round() as u32;
                        let mut grants = [0u32; DATA_BITS];
                        if done <= 64 {
                            let mut memo: [Option<u32>; 65] = [None; 65];
                            for (pos, &c) in self.counts.iter().enumerate() {
                                if c != 0 {
                                    grants[pos] = *memo[c as usize].get_or_insert_with(|| scale(c));
                                }
                            }
                        } else {
                            for (pos, &c) in self.counts.iter().enumerate() {
                                if c != 0 {
                                    grants[pos] = scale(c);
                                }
                            }
                        }
                        self.line.add_wear_bulk(&grants);
                        self.writes += extra;
                        self.residency_left = self.residency_left.saturating_sub(extra);
                    }
                    if sys.kind.rotates() && self.writes % rotation_period == 0 {
                        self.rotation = (self.rotation + 1) % DATA_BYTES;
                    }
                    if self.residency_left == 0 {
                        let bseed = child_seed(self.seed, self.block_counter);
                        // pcm-audit: allow(hotpath-alloc) — per-residency block refresh, amortized over residency_writes writes
                        self.block = BlockStream::new(cfg.profile.clone(), bseed);
                        self.block_counter += 1;
                        self.meta = HostMeta::default();
                        self.residency_left = sys.residency_writes;
                    }
                    self.phase = Phase::Top;
                }
            }
        }
    }

    /// Executes the pending sampled write, optionally with the compression
    /// stage already done by the round's batch kernel (`pre` carries the
    /// lane's method and payload from [`compress_best_batch`]).
    fn apply_pending(
        &mut self,
        sys: &SystemConfig,
        engine: &EccEngine,
        bufs: &mut PayloadBufs,
        pre: Option<(Method, &[u8])>,
    ) {
        let (mut method, new_meta, fallback) = match pre {
            Some((m, payload)) => {
                choose_payload_precompressed(sys, self.meta, &self.pending, m, payload, bufs)
            }
            None => choose_payload(sys, self.meta, &self.pending, bufs),
        };
        self.meta = new_meta;
        let mut bytes: &[u8] = bufs.chosen();
        let preferred = if sys.kind.rotates() { self.rotation } else { 0 };
        if let Some(fb_method) = fallback {
            if self
                .line
                .can_host_with_step(
                    engine,
                    bytes.len(),
                    preferred,
                    sys.kind.slides(),
                    sys.window_step,
                )
                .is_none()
                && self
                    .line
                    .can_host_with_step(
                        engine,
                        bufs.fallback().len(),
                        preferred,
                        sys.kind.slides(),
                        sys.window_step,
                    )
                    .is_some()
            {
                bytes = bufs.fallback();
                method = fb_method;
            }
        }
        match self.line.write_with_step(
            engine,
            Payload { method, bytes },
            preferred,
            sys.kind.slides(),
            sys.window_step,
        ) {
            Ok(r) => {
                self.flip_sum += r.flips as u64;
                self.sampled += 1;
                self.flip_acc
                    .accumulate(&mut self.counts, &r.flip_mask.words());
                self.meta.last_size = bytes.len();
                self.done += 1;
            }
            Err(_) => {
                self.died = true;
                self.done += 1;
            }
        }
    }

    fn into_record(self, cfg: &LineSimConfig) -> LineRecord {
        LineRecord {
            first_death: self.first_death,
            events: self.events,
            faults_at_death: self.faults_at_death,
            death_fault_counts: self.death_fault_counts,
            final_faults: self.line.faults().count(),
            mean_flips_per_write: if self.sampled > 0 {
                self.flip_sum as f64 / self.sampled as f64
            } else {
                0.0
            },
            demand_writes: self.writes,
            horizon: cfg.max_writes,
        }
    }
}

/// Lanes advanced together per wave; see the module docs for the measured
/// locality trade behind this width.
pub(crate) const WAVE_LANES: usize = 8;

/// Simulates `seeds.len()` lines in lockstep rounds (waves of
/// [`WAVE_LANES`] lanes), returning records in seed order plus
/// round-occupancy statistics accumulated across the waves.
///
/// Non-compressing kinds bypass the round machinery entirely (nothing to
/// batch) and return all-zero stats.
// pcm-audit: root(hotpath-alloc) — lockstep stepper of the campaign runner; per-round state lives in fixed lane planes and stack arrays
pub(crate) fn simulate_line_batch_lockstep(
    cfg: &LineSimConfig,
    seeds: &[u64],
    scratch: &mut LineScratch,
) -> (Vec<LineRecord>, LockstepStats) {
    assert!(
        seeds.len() <= BATCH_LANES,
        "a batch holds at most {} lines, got {}",
        BATCH_LANES,
        seeds.len()
    );
    let mut stats = LockstepStats::default();
    if !cfg.system.kind.compresses() {
        // pcm-audit: allow(hotpath-alloc) — one record Vec per batch
        let records = seeds
            .iter()
            .map(|&s| simulate_line_with(cfg, s, scratch))
            .collect();
        return (records, stats);
    }
    // pcm-audit: allow(hotpath-alloc) — one record Vec per batch, filled wave by wave
    let mut records = Vec::with_capacity(seeds.len());
    for wave in seeds.chunks(WAVE_LANES) {
        run_wave(cfg, wave, scratch, &mut stats, &mut records);
    }
    (records, stats)
}

/// Runs one wave of lanes to completion, appending records in seed order.
// pcm-audit: root(hotpath-alloc) — per-wave round loop of the lockstep driver
fn run_wave(
    cfg: &LineSimConfig,
    seeds: &[u64],
    scratch: &mut LineScratch,
    stats: &mut LockstepStats,
    records: &mut Vec<LineRecord>,
) {
    let sys = &cfg.system;
    // pcm-audit: allow(hotpath-alloc) — one stateless engine shared by every lane, constructed once per wave
    let engine = EccEngine::new(sys.ecc);
    let rotation_period = if sys.kind.rotates() {
        sys.rotation_period
    } else {
        u64::MAX
    };
    // pcm-audit: allow(hotpath-alloc) — one Lane per seed, built once per wave outside the write rounds
    let mut lanes: Vec<Lane> = seeds.iter().map(|&s| Lane::new(cfg, s)).collect();

    let mut payloads = [[0u8; DATA_BYTES]; BATCH_LANES];
    let mut methods = [(Method::Uncompressed, 0usize); BATCH_LANES];
    let mut pending_lane = [0usize; BATCH_LANES];
    let mut batch = LineBatch64::new();
    loop {
        batch.clear();
        let mut n_pending = 0usize;
        for (i, lane) in lanes.iter_mut().enumerate() {
            if lane.advance(cfg, &engine, rotation_period, &mut scratch.bufs) {
                pending_lane[n_pending] = i;
                // pcm-audit: allow(hotpath-alloc) — LineBatch64::push transposes into fixed lane planes; no heap involved
                batch.push(&lane.pending);
                n_pending += 1;
            }
        }
        if n_pending == 0 {
            break;
        }
        stats.rounds += 1;
        if n_pending == lanes.len() {
            stats.full_rounds += 1;
        }
        stats.writes += n_pending as u64;
        if n_pending >= 2 {
            stats.lockstep_writes += n_pending as u64;
            compress_best_batch(
                &batch,
                &mut payloads[..n_pending],
                &mut methods[..n_pending],
            );
            for j in 0..n_pending {
                let (m, len) = methods[j];
                lanes[pending_lane[j]].apply_pending(
                    sys,
                    &engine,
                    &mut scratch.bufs,
                    Some((m, &payloads[j][..len])),
                );
            }
        } else {
            // A lone live lane gains nothing from the transpose/gather
            // round-trip: let choose_payload compress it in place, exactly
            // as the scalar path would.
            lanes[pending_lane[0]].apply_pending(sys, &engine, &mut scratch.bufs, None);
        }
    }
    records.extend(lanes.into_iter().map(|l| l.into_record(cfg)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_trace::SpecApp;

    fn quick_cfg(kind: SystemKind, mean: f64, app: SpecApp) -> LineSimConfig {
        let system = SystemConfig::new(kind).with_endurance_mean(mean);
        let mut cfg = LineSimConfig::new(system, app.profile());
        cfg.sample_writes = 8;
        cfg
    }

    fn scalar_records(cfg: &LineSimConfig, seeds: &[u64]) -> Vec<LineRecord> {
        let mut scratch = LineScratch::new();
        seeds
            .iter()
            .map(|&s| simulate_line_with(cfg, s, &mut scratch))
            .collect()
    }

    fn assert_lockstep_matches_scalar(cfg: &LineSimConfig, n: usize) {
        let seeds: Vec<u64> = (0..n as u64).map(|i| child_seed(0xBA7C4, i)).collect();
        let mut scratch = LineScratch::new();
        let (got, _) = simulate_line_batch_lockstep(cfg, &seeds, &mut scratch);
        let want = scalar_records(cfg, &seeds);
        assert_eq!(
            got, want,
            "lockstep diverged (kind {:?}, n {})",
            cfg.system.kind, n
        );
    }

    #[test]
    fn lockstep_matches_scalar_every_kind() {
        // Low endurance forces the divergence-heavy paths: deaths for
        // every kind, revivals and relocations for Comp+WF, rotations for
        // the wear-leveled kinds.
        for kind in SystemKind::ALL {
            let cfg = quick_cfg(kind, 600.0, SpecApp::Milc);
            assert_lockstep_matches_scalar(&cfg, 9);
        }
    }

    #[test]
    fn lockstep_matches_scalar_at_batch_edges() {
        // A single lane, a full batch, and one short of full — the
        // occupancy bookkeeping must not leak into lane behavior.
        let cfg = quick_cfg(SystemKind::CompWF, 400.0, SpecApp::Sjeng);
        for n in [1usize, 63, 64] {
            assert_lockstep_matches_scalar(&cfg, n);
        }
    }

    #[test]
    fn lockstep_matches_scalar_on_incompressible_data() {
        // lbm's near-random payloads exercise the Uncompressed early
        // return and the heuristic fallback revert.
        for kind in [SystemKind::Comp, SystemKind::CompWF] {
            let cfg = quick_cfg(kind, 900.0, SpecApp::Lbm);
            assert_lockstep_matches_scalar(&cfg, 7);
        }
    }

    #[test]
    fn stats_reflect_round_occupancy() {
        let cfg = quick_cfg(SystemKind::CompWF, 600.0, SpecApp::Milc);
        let seeds: Vec<u64> = (0..16).map(|i| child_seed(7, i)).collect();
        let mut scratch = LineScratch::new();
        let (recs, stats) = simulate_line_batch_lockstep(&cfg, &seeds, &mut scratch);
        assert_eq!(recs.len(), seeds.len());
        assert!(stats.rounds > 0);
        assert!(stats.full_rounds <= stats.rounds);
        assert!(stats.lockstep_writes <= stats.writes);
        // With 16 concurrently-live lanes nearly every write should run in
        // a multi-lane round.
        assert!(
            stats.lockstep_writes * 10 >= stats.writes * 9,
            "expected ≥90% lockstep occupancy, got {}/{}",
            stats.lockstep_writes,
            stats.writes
        );
    }

    #[test]
    fn non_compressing_kinds_take_the_scalar_path() {
        // Baseline has no compression stage to batch, so the driver
        // bypasses the round machinery: records still match the scalar
        // loop (pinned above) and the occupancy stats stay zero.
        let cfg = quick_cfg(SystemKind::Baseline, 600.0, SpecApp::Milc);
        let seeds: Vec<u64> = (0..8).map(|i| child_seed(9, i)).collect();
        let mut scratch = LineScratch::new();
        let (recs, stats) = simulate_line_batch_lockstep(&cfg, &seeds, &mut scratch);
        assert_eq!(recs, scalar_records(&cfg, &seeds));
        assert_eq!(stats.rounds, 0);
        assert_eq!(stats.writes, 0);
        assert_eq!(stats.lockstep_writes, 0);
    }

    /// Not an invariant check: prints the per-SystemKind divergence table
    /// for EXPERIMENTS.md (`cargo test -p pcm-core lockstep_divergence -- --nocapture --ignored`).
    #[test]
    #[ignore]
    fn lockstep_divergence_table() {
        for kind in SystemKind::ALL {
            let cfg = quick_cfg(kind, 2_000.0, SpecApp::Milc);
            let seeds: Vec<u64> = (0..64).map(|i| child_seed(300, i)).collect();
            let mut scratch = LineScratch::new();
            let (_, s) = simulate_line_batch_lockstep(&cfg, &seeds, &mut scratch);
            println!(
                "{:?}: rounds {} full {} writes {} lockstep {} ({:.1}%)",
                kind,
                s.rounds,
                s.full_rounds,
                s.writes,
                s.lockstep_writes,
                100.0 * s.lockstep_writes as f64 / s.writes.max(1) as f64,
            );
        }
    }
}
