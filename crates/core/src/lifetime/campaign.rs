//! Whole-memory lifetime campaigns over many independent lines.

use super::linesim::{simulate_line_batch, LineRecord, LineScratch, LineSimConfig};
use pcm_util::{child_seed, Pool, BATCH_LANES};
use serde::{Deserialize, Serialize};

/// Assumed per-core IPC for the Table IV months conversion (see
/// [`LifetimeResult::months`]).
pub const TABLE4_IPC: f64 = 0.25;

/// Configuration of a lifetime campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The per-line simulation configuration.
    pub line: LineSimConfig,
    /// Number of independent lines to simulate (the statistical sample of
    /// the memory's physical lines).
    pub lines: usize,
    /// Base seed.
    pub seed: u64,
    /// Worker threads; 0 selects available parallelism.
    pub threads: usize,
}

impl CampaignConfig {
    /// A campaign with the given per-line config and a default sample of
    /// 128 lines.
    pub fn new(line: LineSimConfig, seed: u64) -> Self {
        CampaignConfig {
            line,
            lines: 128,
            seed,
            threads: 0,
        }
    }
}

/// The outcome of a lifetime campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifetimeResult {
    /// Per-line demand writes at which 50% of lines are simultaneously
    /// dead (`None` when the memory outlives every line's horizon).
    pub writes_to_half_capacity: Option<u64>,
    /// 90% bootstrap confidence interval of
    /// [`writes_to_half_capacity`](Self::writes_to_half_capacity),
    /// resampling lines (`None` when the point estimate is `None`).
    pub half_capacity_ci: Option<(u64, u64)>,
    /// Mean faulty cells in a failed line, averaged over every death
    /// event — the paper's Fig. 12 metric. `None` if no line died.
    pub mean_faults_at_death: Option<f64>,
    /// Mean faulty cells at a line's *final* death (end-of-life fault
    /// population).
    pub mean_final_death_faults: Option<f64>,
    /// Mean programmed cells per demand write.
    pub mean_flips_per_write: f64,
    /// Fraction of lines that ever died.
    pub lines_died: f64,
    /// Fraction of lines that revived at least once (Comp+WF).
    pub lines_revived: f64,
    /// Lines simulated.
    pub lines: usize,
    /// Horizon (per-line writes).
    pub horizon: u64,
}

impl LifetimeResult {
    /// Writes-to-failure with the horizon as a (censored) fallback.
    pub fn lifetime_writes(&self) -> u64 {
        self.writes_to_half_capacity.unwrap_or(self.horizon)
    }

    /// Normalized lifetime against a baseline result (Fig. 10's y-axis).
    pub fn normalized_against(&self, baseline: &LifetimeResult) -> f64 {
        self.lifetime_writes() as f64 / baseline.lifetime_writes() as f64
    }

    /// Converts to months of operation (Table IV).
    ///
    /// `wpki` is the workload's write-backs per kilo-instruction;
    /// `endurance_scale` compensates for running the campaign at reduced
    /// endurance (e.g. `1e7 / 2e4`). The machine model matches the paper:
    /// 16 cores at 2.5 GHz over a 4 GB memory (2²⁶ lines) with writes
    /// spread by Start-Gap. The paper never states the cores' achieved
    /// IPC; we use [`TABLE4_IPC`] = 0.25, a representative value for
    /// memory-intensive SPEC on PCM-latency memory, calibrated once so the
    /// baseline average lands near the paper's 22 months (DESIGN.md §3.4).
    pub fn months(&self, wpki: f64, endurance_scale: f64) -> f64 {
        let writes_per_second = 16.0 * 2.5e9 * TABLE4_IPC * wpki / 1000.0;
        let total_lines = (4u64 << 30) as f64 / 64.0;
        let total_writes = self.lifetime_writes() as f64 * endurance_scale * total_lines;
        let seconds = total_writes / writes_per_second;
        seconds / (30.44 * 24.0 * 3600.0)
    }
}

/// Runs `cfg.lines` independent line simulations (in parallel) and sweeps
/// the death/revival events for the 50%-capacity failure time.
///
/// Convenience wrapper that builds a one-shot [`Pool`] from `cfg.threads`;
/// callers that already own a pool (e.g. `pcm-lab run-all`) should use
/// [`run_campaign_on`] so parallelism is resolved exactly once.
pub fn run_campaign(cfg: &CampaignConfig) -> LifetimeResult {
    run_campaign_on(&Pool::new(cfg.threads), cfg)
}

/// [`run_campaign`] on a caller-provided pool. Lines drain from the pool's
/// shared queue in whole batches (work-stealing, not static striping), so
/// an early-dying batch frees its worker for the stragglers; per-line
/// seeds are `child_seed(cfg.seed, i)` regardless of how batches land on
/// workers, making results scheduling-invariant.
pub fn run_campaign_on(pool: &Pool, cfg: &CampaignConfig) -> LifetimeResult {
    assert!(cfg.lines > 0, "need at least one line");
    // Campaigns consume whole [`pcm_util::BATCH_LANES`]-line batches: one
    // contiguous chunk of the seed stream per pool job, records spliced
    // back in seed order — byte-identical to the per-line path.
    let batches = cfg.lines.div_ceil(BATCH_LANES);
    let record_batches: Vec<Vec<LineRecord>> =
        pool.map_indexed_with(batches, 1, LineScratch::new, |scratch, b| {
            let lo = b * BATCH_LANES;
            let hi = (lo + BATCH_LANES).min(cfg.lines);
            let seeds: Vec<u64> = (lo..hi).map(|i| child_seed(cfg.seed, i as u64)).collect();
            simulate_line_batch(&cfg.line, &seeds, scratch)
        });
    let records: Vec<LineRecord> = record_batches.into_iter().flatten().collect();
    summarize(&records, cfg.line.max_writes)
}

/// The 50%-simultaneously-dead sweep, shared by the point estimate and
/// every bootstrap resample. Event deltas are flattened and sorted **once**
/// per record set; each sweep then weights them by per-line multiplicity
/// (1 for the point estimate, a with-replacement draw count for bootstrap
/// resamples). The crossing time it reports is identical to rebuilding and
/// re-sorting the resampled deltas: ties sort `-1` before `+1` at equal
/// `t`, a crossing can only happen inside a `+1` group, and every member
/// of that group shares the same `t`.
struct DeathSweep {
    len: usize,
    /// `(event time, ±1, record index)`, sorted.
    deltas: Vec<(u64, i64, u32)>,
    /// Per-record multiplicity buffer, reused across sweeps.
    counts: Vec<u32>,
}

impl DeathSweep {
    fn new(records: &[LineRecord]) -> Self {
        let total: usize = records.iter().map(|r| r.events.len()).sum();
        let mut deltas = Vec::with_capacity(total);
        for (idx, r) in records.iter().enumerate() {
            for (i, &t) in r.events.iter().enumerate() {
                deltas.push((t, if i % 2 == 0 { 1 } else { -1 }, idx as u32));
            }
        }
        deltas.sort_unstable();
        DeathSweep {
            len: records.len(),
            deltas,
            counts: vec![0; records.len()],
        }
    }

    /// The crossing with every line counted once.
    fn half_capacity_time(&mut self) -> Option<u64> {
        self.counts.fill(1);
        self.crossing()
    }

    /// The crossing for one bootstrap resample (lines drawn with
    /// replacement). The RNG call sequence matches materializing the
    /// resampled record set, so CIs are bit-identical to the historical
    /// rebuild-per-resample implementation.
    fn resample_time(&mut self, rng: &mut rand::rngs::StdRng) -> Option<u64> {
        use rand::RngExt;
        self.counts.fill(0);
        for _ in 0..self.len {
            self.counts[rng.random_range(0..self.len)] += 1;
        }
        self.crossing()
    }

    fn crossing(&self) -> Option<u64> {
        let mut dead = 0i64;
        let half = self.len as i64 / 2 + self.len as i64 % 2;
        for &(t, d, idx) in &self.deltas {
            dead += d * i64::from(self.counts[idx as usize]);
            if dead >= half {
                return Some(t);
            }
        }
        None
    }
}

/// Aggregates per-line records into a memory-level result.
pub fn summarize(records: &[LineRecord], horizon: u64) -> LifetimeResult {
    let mut sweep = DeathSweep::new(records);
    let writes_to_half_capacity = sweep.half_capacity_time();

    // Bootstrap the failure time by resampling lines (they are iid under
    // the engine's exchangeability assumption).
    let half_capacity_ci = writes_to_half_capacity.map(|_| {
        let mut rng = pcm_util::seeded_rng(0xB007_57A9);
        let resamples = 100;
        let mut times: Vec<u64> = (0..resamples)
            .map(|_| sweep.resample_time(&mut rng).unwrap_or(horizon))
            .collect();
        times.sort_unstable();
        (times[resamples / 20], times[resamples - 1 - resamples / 20])
    });

    let deaths: Vec<f64> = records
        .iter()
        .flat_map(|r| r.death_fault_counts.iter().map(|&f| f as f64))
        .collect();
    let finals: Vec<f64> = records
        .iter()
        .filter_map(|r| r.faults_at_death.map(|f| f as f64))
        .collect();
    let died = records.iter().filter(|r| r.first_death.is_some()).count();
    let revived = records.iter().filter(|r| r.events.len() >= 2).count();
    let flips: Vec<f64> = records.iter().map(|r| r.mean_flips_per_write).collect();

    LifetimeResult {
        writes_to_half_capacity,
        half_capacity_ci,
        mean_faults_at_death: if deaths.is_empty() {
            None
        } else {
            Some(pcm_util::stats::mean(&deaths))
        },
        mean_final_death_faults: if finals.is_empty() {
            None
        } else {
            Some(pcm_util::stats::mean(&finals))
        },
        mean_flips_per_write: pcm_util::stats::mean(&flips),
        lines_died: died as f64 / records.len() as f64,
        lines_revived: revived as f64 / records.len() as f64,
        lines: records.len(),
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SystemConfig, SystemKind};
    use pcm_trace::SpecApp;

    fn quick_campaign(kind: SystemKind, app: SpecApp, lines: usize) -> LifetimeResult {
        let system = SystemConfig::new(kind).with_endurance_mean(1_500.0);
        let mut line = LineSimConfig::new(system, app.profile());
        line.sample_writes = 8;
        let mut cfg = CampaignConfig::new(line, 99);
        cfg.lines = lines;
        cfg.threads = 2;
        run_campaign(&cfg)
    }

    #[test]
    fn baseline_memory_fails() {
        let r = quick_campaign(SystemKind::Baseline, SpecApp::Lbm, 16);
        assert!(r.writes_to_half_capacity.is_some());
        assert_eq!(r.lines_died, 1.0);
        assert!(r.mean_faults_at_death.unwrap() >= 7.0);
    }

    #[test]
    fn compwf_beats_baseline_on_compressible_workload() {
        let base = quick_campaign(SystemKind::Baseline, SpecApp::Zeusmp, 12);
        let wf = quick_campaign(SystemKind::CompWF, SpecApp::Zeusmp, 12);
        let ratio = wf.normalized_against(&base);
        assert!(ratio > 2.0, "Comp+WF normalized lifetime {ratio} too low");
        // Comp+WF tolerates more faults per line than ECP-6 alone.
        if let (Some(b), Some(w)) = (base.mean_faults_at_death, wf.mean_faults_at_death) {
            assert!(w > b, "Comp+WF faults-at-death {w} vs baseline {b}");
        }
    }

    #[test]
    fn summarize_sweep_handles_revivals() {
        let rec = |events: Vec<u64>| LineRecord {
            first_death: events.first().copied(),
            events,
            faults_at_death: Some(10),
            death_fault_counts: vec![10],
            final_faults: 10,
            mean_flips_per_write: 1.0,
            demand_writes: 1000,
            horizon: 1000,
        };
        // Two lines: one dies at 100 and revives at 150; the other dies at
        // 200. 50% (1 of 2) is first reached at t=100.
        let r = summarize(&[rec(vec![100, 150]), rec(vec![200])], 1000);
        assert_eq!(r.writes_to_half_capacity, Some(100));
        assert_eq!(r.lines_revived, 0.5);
    }

    #[test]
    fn months_conversion_scales() {
        let r = LifetimeResult {
            writes_to_half_capacity: Some(1_000),
            half_capacity_ci: Some((900, 1_100)),
            mean_faults_at_death: Some(7.0),
            mean_final_death_faults: Some(7.0),
            mean_flips_per_write: 100.0,
            lines_died: 1.0,
            lines_revived: 0.0,
            lines: 8,
            horizon: 10_000,
        };
        let m1 = r.months(5.0, 1.0);
        let m2 = r.months(5.0, 10.0);
        assert!((m2 / m1 - 10.0).abs() < 1e-9);
        let m3 = r.months(10.0, 1.0);
        assert!((m1 / m3 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick_campaign(SystemKind::Comp, SpecApp::Milc, 8);
        let b = quick_campaign(SystemKind::Comp, SpecApp::Milc, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn lockstep_campaign_matches_scalar_per_line_path() {
        // The lockstep batch driver against the scalar reference, record
        // for record: every worker count must splice the same records in
        // the same order, and batch-unaligned line counts (one short of a
        // batch, one over, two batches plus two) exercise the partial
        // final batch.
        use crate::lifetime::linesim::simulate_line_with;
        use pcm_util::child_seed;

        let system = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(800.0);
        let mut line = LineSimConfig::new(system, SpecApp::Milc.profile());
        line.sample_writes = 8;

        for lines in [63usize, 65, 130] {
            let mut scratch = LineScratch::new();
            let want: Vec<LineRecord> = (0..lines)
                .map(|i| simulate_line_with(&line, child_seed(99, i as u64), &mut scratch))
                .collect();
            let want_summary = summarize(&want, line.max_writes);

            // Record-level identity of the batch splitting itself (the
            // exact chunks run_campaign_on hands the pool).
            let got_records: Vec<LineRecord> = (0..lines.div_ceil(BATCH_LANES))
                .flat_map(|b| {
                    let lo = b * BATCH_LANES;
                    let hi = (lo + BATCH_LANES).min(lines);
                    let seeds: Vec<u64> = (lo..hi).map(|i| child_seed(99, i as u64)).collect();
                    simulate_line_batch(&line, &seeds, &mut scratch)
                })
                .collect();
            assert_eq!(got_records, want, "records diverged at lines={lines}");

            for threads in [1usize, 2, 4, 7] {
                let mut cfg = CampaignConfig::new(line.clone(), 99);
                cfg.lines = lines;
                cfg.threads = threads;
                let got = run_campaign(&cfg);
                assert_eq!(
                    got, want_summary,
                    "campaign diverged from scalar path at lines={lines} threads={threads}"
                );
            }
        }
    }
}
