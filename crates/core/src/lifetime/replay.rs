//! Direct write-by-write lifetime replay through the functional memory.
//!
//! Exact but slow: use small memories and small endurance. Exists to
//! cross-validate the accelerated engine (the integration test compares
//! both at the same endurance) and to mirror the paper's own methodology
//! ("replay the trace until the PCM lifetime limit").

use crate::controller::PcmMemory;
use crate::system::SystemConfig;
use pcm_trace::{TraceGenerator, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Configuration of a direct replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The system under evaluation.
    pub system: SystemConfig,
    /// The workload.
    pub profile: WorkloadProfile,
    /// Logical lines in the simulated memory.
    pub lines: u64,
    /// Stop after this many demand writes even if the memory still lives.
    pub max_writes: u64,
    /// Seed.
    pub seed: u64,
}

/// The outcome of a direct replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// Demand writes until 50% of physical lines were dead (`None` if the
    /// cap was reached first).
    pub writes_to_failure: Option<u64>,
    /// Demand writes actually issued.
    pub writes_issued: u64,
    /// Dead fraction at the end.
    pub final_dead_fraction: f64,
    /// Mean programmed cells per demand write.
    pub mean_flips_per_write: f64,
    /// Mean faulty cells in a line at each uncorrectable failure (the
    /// Fig. 12 metric, for cross-validation against the accelerated
    /// engine). `None` if no line died.
    pub mean_faults_at_death: Option<f64>,
}

impl ReplayResult {
    /// Writes-to-failure with the cap as a (censored) fallback.
    pub fn lifetime_writes(&self) -> u64 {
        self.writes_to_failure.unwrap_or(self.writes_issued)
    }
}

/// Replays generated write-backs into a [`PcmMemory`] until the paper's
/// 50%-capacity failure criterion (or the write cap) is reached.
///
/// Failed writes (uncorrectable errors) are counted and skipped — the line
/// is dead, the workload moves on — matching the lifetime simulator
/// semantics of the paper.
pub fn replay_to_failure(cfg: &ReplayConfig) -> ReplayResult {
    let mut memory = PcmMemory::new(cfg.system, cfg.lines, cfg.seed);
    let mut generator =
        TraceGenerator::from_profile(cfg.profile.clone(), cfg.lines, cfg.seed ^ 0xABCD);
    let mut writes = 0u64;
    let mut writes_to_failure = None;
    // Checking dead_fraction() scans all lines; amortize.
    let check_every = (cfg.lines / 4).max(64);
    while writes < cfg.max_writes {
        let w = generator.next_write();
        let _ = memory.write(w.line, w.data);
        writes += 1;
        if writes % check_every == 0 && memory.is_failed() {
            writes_to_failure = Some(writes);
            break;
        }
    }
    let stats = memory.stats();
    ReplayResult {
        writes_to_failure,
        writes_issued: writes,
        final_dead_fraction: memory.dead_fraction(),
        mean_flips_per_write: if stats.demand_writes > 0 {
            stats.total_flips as f64 / stats.demand_writes as f64
        } else {
            0.0
        },
        mean_faults_at_death: (stats.deaths > 0)
            .then(|| stats.death_fault_cells as f64 / stats.deaths as f64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_trace::SpecApp;

    fn quick(kind: SystemKind, mean: f64) -> ReplayResult {
        let system = SystemConfig::new(kind).with_endurance_mean(mean);
        let cfg = ReplayConfig {
            system,
            profile: SpecApp::Lbm.profile(),
            lines: 16,
            max_writes: 3_000_000,
            seed: 11,
        };
        replay_to_failure(&cfg)
    }

    #[test]
    fn baseline_memory_wears_out() {
        let r = quick(SystemKind::Baseline, 300.0);
        assert!(
            r.writes_to_failure.is_some(),
            "final dead fraction {}",
            r.final_dead_fraction
        );
        assert!(r.final_dead_fraction >= 0.5);
        assert!(r.mean_flips_per_write > 0.0);
    }

    #[test]
    fn higher_endurance_lives_longer() {
        let short = quick(SystemKind::Baseline, 200.0);
        let long = quick(SystemKind::Baseline, 800.0);
        assert!(
            long.lifetime_writes() > short.lifetime_writes(),
            "endurance 800 ({}) should outlive 200 ({})",
            long.lifetime_writes(),
            short.lifetime_writes()
        );
    }
}
