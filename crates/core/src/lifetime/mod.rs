//! Trace-driven lifetime simulation (paper §IV "Fault model", Figs. 10,
//! 12, 13, Table IV).
//!
//! The paper replays a Gem5 write-back trace into a lightweight lifetime
//! simulator until 50% of memory capacity is worn out. Replaying at the
//! real 10⁷ endurance takes ~10⁷ × trace-length writes, so this module
//! provides two engines:
//!
//! * [`replay`] — **direct replay** through the functional
//!   [`PcmMemory`](crate::PcmMemory): every write simulated
//!   cell-accurately. Exact but only practical at small endurance; used to
//!   cross-validate the accelerated engine.
//! * [`linesim`] / [`campaign`] — the **accelerated engine**: each physical
//!   line is simulated independently (Start-Gap equalizes long-run
//!   inter-line traffic, so lines are statistically exchangeable). Writes
//!   are simulated in *segments*: a handful of real writes establish the
//!   per-cell flip pattern of the line's current (block, window, rotation,
//!   fault) state, and the remaining writes of the segment are
//!   fast-forwarded analytically onto the per-cell wear counters. Block
//!   relocations (inter-line wear-leveling) swap in a fresh block and give
//!   dead lines their resurrection chance, exactly as §III-A.3 describes.
//!
//! Lifetime is reported in *per-line demand writes to 50% dead capacity*;
//! [`campaign::LifetimeResult`] converts to normalized lifetime (Fig. 10)
//! and months (Table IV).

pub mod campaign;
pub mod linesim;
pub(crate) mod lockstep;
pub mod mix;
pub mod replay;

pub use campaign::{run_campaign, run_campaign_on, CampaignConfig, LifetimeResult};
pub use linesim::{
    simulate_line, simulate_line_batch, simulate_line_with, LineRecord, LineScratch, LineSimConfig,
};
pub use mix::{run_mixed_campaign, WorkloadMix};
pub use replay::{replay_to_failure, ReplayConfig, ReplayResult};
