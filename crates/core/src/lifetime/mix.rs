//! Multiprogrammed workload mixes.
//!
//! The paper runs the *same* program on all 16 cores (§IV), so every line
//! hosts blocks of one workload. Real consolidated machines interleave
//! programs; under Start-Gap any physical line then hosts blocks from
//! *different* programs over its life. This module extends the campaign to
//! weighted workload mixes: each relocation draws the incoming block's
//! profile from the mix, so a line alternates between (say) milc's tiny
//! payloads and lbm's incompressible ones — stressing exactly the
//! dead-block-resurrection machinery of §III-A.3.

use super::campaign::{summarize, LifetimeResult};
use super::linesim::{simulate_line, LineRecord, LineSimConfig};
use crate::system::SystemConfig;
use pcm_trace::WorkloadProfile;
use pcm_util::{child_seed, seeded_rng};
use rand::RngExt;

/// A weighted mix of workload profiles.
///
/// # Examples
///
/// ```
/// use pcm_core::lifetime::WorkloadMix;
/// use pcm_trace::SpecApp;
///
/// let mix = WorkloadMix::new(vec![
///     (SpecApp::Milc.profile(), 3.0),
///     (SpecApp::Lbm.profile(), 1.0),
/// ]);
/// assert_eq!(mix.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadMix {
    entries: Vec<(WorkloadProfile, f64)>,
}

impl WorkloadMix {
    /// Creates a mix from `(profile, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or any weight is non-positive.
    pub fn new(entries: Vec<(WorkloadProfile, f64)>) -> Self {
        assert!(!entries.is_empty(), "mix needs at least one workload");
        assert!(
            entries.iter().all(|(_, w)| *w > 0.0),
            "weights must be positive"
        );
        WorkloadMix { entries }
    }

    /// Number of constituent workloads.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the mix has no entries (construction forbids
    /// it; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weighted-average WPKI of the mix (for months conversions).
    pub fn wpki(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        self.entries.iter().map(|(p, w)| p.wpki * w).sum::<f64>() / total
    }

    /// Samples one profile from the mix.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> &WorkloadProfile {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        let mut u = rng.random::<f64>() * total;
        for (p, w) in &self.entries {
            if u < *w {
                return p;
            }
            u -= w;
        }
        &self.entries[self.entries.len() - 1].0
    }
}

/// Runs a lifetime campaign over a workload mix: each simulated line hosts
/// a profile drawn from the mix.
///
/// This approximates consolidated-machine behaviour where the approximation
/// error is per-residency (a line's profile is fixed for the whole
/// simulation rather than redrawn at each relocation): with many lines the
/// population-level mixture is exact.
///
/// # Panics
///
/// Panics if `lines == 0`.
pub fn run_mixed_campaign(
    system: SystemConfig,
    mix: &WorkloadMix,
    lines: usize,
    sample_writes: u32,
    seed: u64,
) -> LifetimeResult {
    assert!(lines > 0, "need at least one line");
    let mut rng = seeded_rng(child_seed(seed, 0x33));
    let records: Vec<LineRecord> = (0..lines)
        .map(|i| {
            let profile = mix.sample(&mut rng).clone();
            let mut cfg = LineSimConfig::new(system, profile);
            cfg.sample_writes = sample_writes;
            simulate_line(&cfg, child_seed(seed, i as u64))
        })
        .collect();
    let horizon = (system.endurance.mean() * 120.0) as u64;
    summarize(&records, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_trace::SpecApp;

    fn mix_of(a: SpecApp, b: SpecApp) -> WorkloadMix {
        WorkloadMix::new(vec![(a.profile(), 1.0), (b.profile(), 1.0)])
    }

    #[test]
    fn mixed_campaign_lands_between_pure_campaigns() {
        let system = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(4_000.0);
        let pure = |app: SpecApp| {
            let mix = WorkloadMix::new(vec![(app.profile(), 1.0)]);
            run_mixed_campaign(system, &mix, 24, 8, 5).lifetime_writes()
        };
        let lo_app = pure(SpecApp::Lbm);
        let hi_app = pure(SpecApp::Zeusmp);
        let mixed = run_mixed_campaign(system, &mix_of(SpecApp::Lbm, SpecApp::Zeusmp), 24, 8, 5)
            .lifetime_writes();
        assert!(
            mixed >= lo_app.min(hi_app) && mixed <= hi_app.max(lo_app),
            "mixed {mixed} outside [{lo_app}, {hi_app}]"
        );
    }

    #[test]
    fn wpki_is_weighted() {
        let mix = WorkloadMix::new(vec![
            (SpecApp::Astar.profile(), 1.0), // 1.04
            (SpecApp::Lbm.profile(), 1.0),   // 15.6
        ]);
        assert!((mix.wpki() - (1.04 + 15.6) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_weights() {
        let mix = WorkloadMix::new(vec![
            (SpecApp::Milc.profile(), 9.0),
            (SpecApp::Gcc.profile(), 1.0),
        ]);
        let mut rng = seeded_rng(8);
        let milc = (0..5_000)
            .filter(|_| mix.sample(&mut rng).app == SpecApp::Milc)
            .count();
        let frac = milc as f64 / 5_000.0;
        assert!((frac - 0.9).abs() < 0.03, "milc fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_weight() {
        WorkloadMix::new(vec![(SpecApp::Milc.profile(), 0.0)]);
    }
}
