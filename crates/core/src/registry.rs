//! The scheme registry: shared instances and string-named stacks.
//!
//! Every ECC scheme the controller can use is constructed here exactly
//! once per process and shared as a `&'static` reference — SAFER-32 and
//! Aegis 17×31 precompute hundreds of group masks (≈0.6 ms), and the
//! per-call `Box` the old `EccChoice::build` handed out made table
//! construction dominate short-lived setups. [`ecc_scheme`] is the only
//! construction path.
//!
//! [`StackSpec`] names a complete controller stack — system kind, ECC
//! scheme, wear scheme — from a single `kind/ecc/wear` string, so
//! `pcm-lab`, `pcm-verify`, and `pcm-serve` can select any combination
//! without a code change.

use crate::system::{EccChoice, SystemConfig, SystemKind, WearChoice};
use pcm_ecc::{Aegis, Coset, Ecp, HardErrorScheme, Safer, Secded};
use std::sync::OnceLock;

/// The process-wide SAFER-32 instance (shared partition tables).
pub fn shared_safer32() -> &'static Safer {
    static SAFER32: OnceLock<Safer> = OnceLock::new();
    // pcm-audit: allow(hotpath-alloc) — OnceLock construction runs at most once per process
    SAFER32.get_or_init(|| Safer::new(32))
}

/// The process-wide Aegis 17×31 instance (shared partition tables).
pub fn shared_aegis_17x31() -> &'static Aegis {
    static AEGIS: OnceLock<Aegis> = OnceLock::new();
    // pcm-audit: allow(hotpath-alloc) — OnceLock construction runs at most once per process
    AEGIS.get_or_init(|| Aegis::new(17, 31))
}

/// The process-wide restricted-coset scheme (shared mask table).
pub(crate) fn shared_coset() -> &'static Coset {
    static COSET: OnceLock<Coset> = OnceLock::new();
    COSET.get_or_init(Coset::new)
}

/// The process-wide SECDED instance.
pub(crate) fn shared_secded() -> &'static Secded {
    static SECDED: OnceLock<Secded> = OnceLock::new();
    SECDED.get_or_init(Secded::new)
}

/// The process-wide ECP-`n` instance for any entry count `1..=51`.
pub fn shared_ecp(entries: u32) -> &'static Ecp {
    const NONE: OnceLock<Ecp> = OnceLock::new();
    static ECPS: [OnceLock<Ecp>; 52] = [NONE; 52];
    assert!(
        (1..=51).contains(&entries),
        "ECP entries must be 1..=51, got {entries}"
    );
    ECPS[entries as usize].get_or_init(|| Ecp::new(entries))
}

/// The shared instance behind an [`EccChoice`] — the single construction
/// path for hard-error schemes.
pub fn ecc_scheme(choice: EccChoice) -> &'static dyn HardErrorScheme {
    match choice {
        EccChoice::Ecp6 => shared_ecp(6),
        EccChoice::Safer32 => shared_safer32(),
        EccChoice::Aegis17x31 => shared_aegis_17x31(),
        EccChoice::Secded => shared_secded(),
        EccChoice::Coset => shared_coset(),
        EccChoice::EcpN(n) => shared_ecp(n as u32),
    }
}

/// A complete controller stack named by its three layers.
///
/// The canonical string form is `kind/ecc/wear` (case-insensitive), with
/// trailing layers optional: `"Comp+WF"`, `"Comp+WF/coset"`, and
/// `"Comp+WF/coset/wolfram"` all parse.
///
/// # Examples
///
/// ```
/// use pcm_core::registry::StackSpec;
/// use pcm_core::{EccChoice, SystemKind, WearChoice};
///
/// let spec: StackSpec = "compwf/coset/wolfram".parse().unwrap();
/// assert_eq!(spec.kind, SystemKind::CompWF);
/// assert_eq!(spec.ecc, EccChoice::Coset);
/// assert_eq!(spec.wear, WearChoice::Wolfram);
/// assert_eq!(spec.to_string(), "Comp+WF/Coset-ECP6/WoLFRaM");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StackSpec {
    /// Which of the paper's four systems.
    pub kind: SystemKind,
    /// Hard-error scheme.
    pub ecc: EccChoice,
    /// Inter-line wear-leveling scheme.
    pub wear: WearChoice,
}

impl StackSpec {
    /// The paper's default stack for a system kind (ECP-6 + Start-Gap).
    pub fn of(kind: SystemKind) -> Self {
        StackSpec {
            kind,
            ecc: EccChoice::Ecp6,
            wear: WearChoice::StartGap,
        }
    }

    /// The full configuration for this stack (paper defaults elsewhere).
    pub fn to_config(self) -> SystemConfig {
        SystemConfig::new(self.kind)
            .with_ecc(self.ecc)
            .with_wear(self.wear)
    }
}

impl std::fmt::Display for StackSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.kind, self.ecc, self.wear)
    }
}

impl std::str::FromStr for StackSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut parts = s.split('/');
        let kind = parse_kind(parts.next().unwrap_or_default())?;
        let ecc = match parts.next() {
            Some(e) => parse_ecc(e)?,
            None => EccChoice::Ecp6,
        };
        let wear = match parts.next() {
            Some(w) => parse_wear(w)?,
            None => WearChoice::StartGap,
        };
        if let Some(extra) = parts.next() {
            return Err(format!("unexpected stack component '{extra}' in '{s}'"));
        }
        Ok(StackSpec { kind, ecc, wear })
    }
}

/// Normalizes a layer name: lowercase, separators dropped.
fn canon(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, '-' | '_' | '+' | ' '))
        .flat_map(char::to_lowercase)
        .collect()
}

/// Parses a system-kind name (`baseline`, `comp`, `compw`, `compwf`).
pub fn parse_kind(s: &str) -> Result<SystemKind, String> {
    SystemKind::ALL
        .into_iter()
        .find(|k| canon(&k.to_string()) == canon(s))
        .ok_or_else(|| format!("unknown system '{s}' (baseline|comp|compw|compwf)"))
}

/// Parses an ECC-scheme name (`ecp6`, `safer32`, `aegis`, `secded`,
/// `coset`, `ecpN`).
pub fn parse_ecc(s: &str) -> Result<EccChoice, String> {
    let c = canon(s);
    if let Some(n) = c.strip_prefix("ecp").and_then(|n| n.parse::<u8>().ok()) {
        return Ok(if n == 6 {
            EccChoice::Ecp6
        } else {
            EccChoice::EcpN(n)
        });
    }
    match c.as_str() {
        "safer32" | "safer" => Ok(EccChoice::Safer32),
        "aegis17x31" | "aegis" => Ok(EccChoice::Aegis17x31),
        "secded" => Ok(EccChoice::Secded),
        "cosetecp6" | "coset" => Ok(EccChoice::Coset),
        _ => Err(format!(
            "unknown ECC scheme '{s}' (ecp6|safer32|aegis|secded|coset|ecpN)"
        )),
    }
}

/// Parses a wear-scheme name (`startgap`, `secref`, `wolfram`).
pub fn parse_wear(s: &str) -> Result<WearChoice, String> {
    match canon(s).as_str() {
        "startgap" => Ok(WearChoice::StartGap),
        "securityrefresh" | "secref" => Ok(WearChoice::SecurityRefresh),
        "wolfram" => Ok(WearChoice::Wolfram),
        _ => Err(format!(
            "unknown wear scheme '{s}' (startgap|secref|wolfram)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_instances_are_shared() {
        assert!(std::ptr::eq(shared_safer32(), shared_safer32()));
        assert!(std::ptr::eq(shared_ecp(6), shared_ecp(6)));
        assert!(std::ptr::eq(
            ecc_scheme(EccChoice::Ecp6) as *const _ as *const u8,
            ecc_scheme(EccChoice::Ecp6) as *const _ as *const u8,
        ));
        assert!(!std::ptr::eq(shared_ecp(4), shared_ecp(5)));
    }

    #[test]
    fn every_choice_resolves() {
        for ecc in EccChoice::ALL {
            assert!(ecc_scheme(ecc).metadata_bits() <= 64, "{ecc}");
        }
        assert_eq!(ecc_scheme(EccChoice::EcpN(12)).guaranteed(), 12);
    }

    #[test]
    fn stack_specs_round_trip_through_display() {
        for kind in SystemKind::ALL {
            for ecc in EccChoice::ALL {
                for wear in WearChoice::ALL {
                    let spec = StackSpec { kind, ecc, wear };
                    let back: StackSpec = spec.to_string().parse().unwrap();
                    assert_eq!(back, spec);
                }
            }
        }
    }

    #[test]
    fn parse_accepts_shorthand() {
        let spec: StackSpec = "Comp+WF".parse().unwrap();
        assert_eq!(spec, StackSpec::of(SystemKind::CompWF));
        let spec: StackSpec = "comp/safer".parse().unwrap();
        assert_eq!(spec.ecc, EccChoice::Safer32);
        assert_eq!(spec.wear, WearChoice::StartGap);
        let spec: StackSpec = "baseline/ecp4/secref".parse().unwrap();
        assert_eq!(spec.ecc, EccChoice::EcpN(4));
        assert_eq!(spec.wear, WearChoice::SecurityRefresh);
        assert!("comp/ecp6/bogus".parse::<StackSpec>().is_err());
        assert!("bogus".parse::<StackSpec>().is_err());
    }

    #[test]
    fn to_config_carries_all_layers() {
        let cfg = StackSpec {
            kind: SystemKind::Comp,
            ecc: EccChoice::Coset,
            wear: WearChoice::Wolfram,
        }
        .to_config();
        assert_eq!(cfg.kind, SystemKind::Comp);
        assert_eq!(cfg.ecc, EccChoice::Coset);
        assert_eq!(cfg.wear, WearChoice::Wolfram);
    }
}
