//! The DSN'17 collaborative compression + hard-error tolerance PCM design.
//!
//! This crate is the paper's primary contribution: a memory controller that
//! stores LLC write-backs *compressed* in a sliding **compression window**,
//! and uses that window to collaborate with differential writes, intra-line
//! wear-leveling, and hard-error tolerance:
//!
//! * [`heuristic`] — the saturating-counter compression heuristic (Fig. 8)
//!   that avoids compressing blocks whose compressed size fluctuates (which
//!   would *increase* bit flips under differential writes);
//! * [`meta`] — the 13-bit per-line metadata (6-bit window start pointer,
//!   5-bit encoding, 2-bit saturating counter, §III-B);
//! * [`window`] — wrapped-window placement and the fault-dodging window
//!   search of Comp+WF (§III-A);
//! * [`line`](mod@line) — [`ManagedLine`]: one physical line's full write/read
//!   machinery (compression window + ECC encode/decode + wear + fault
//!   verify-and-retry);
//! * [`controller`] — [`PcmMemory`]: a functional whole-memory model with
//!   Start-Gap, per-bank intra-line wear-leveling, and dead-block
//!   resurrection;
//! * [`lifetime`] — the trace-driven lifetime simulator, both a direct
//!   write-by-write replay and an accelerated segment-sampled engine
//!   (Figs. 10/12/13, Table IV);
//! * [`perf`] — the decompression-latency performance study (§V.B);
//! * [`system`] — the four evaluated configurations: `Baseline`, `Comp`,
//!   `Comp+W`, `Comp+WF` (§IV);
//! * [`verify`] — the deterministic fault-injection churn harness and the
//!   replay-vs-engine differential oracle (DESIGN.md "Verification").
//!
//! # Examples
//!
//! ```
//! use pcm_core::{PcmMemory, SystemConfig, SystemKind};
//! use pcm_util::Line512;
//!
//! let cfg = SystemConfig::new(SystemKind::CompWF).with_endurance_mean(10_000.0);
//! let mut mem = PcmMemory::new(cfg, 64, 42);
//! let data = Line512::from_fn(|i| i % 7 == 0);
//! mem.write(3, data).unwrap();
//! assert_eq!(mem.read(3).unwrap(), data);
//! ```

pub mod bank;
pub mod controller;
pub mod heuristic;
pub mod lifetime;
pub mod line;
pub mod meta;
mod payload;
pub mod perf;
pub mod registry;
pub mod system;
pub mod verify;
pub mod window;

pub use bank::BankCtl;
pub use controller::{MemoryStats, PcmMemory, WriteError, WriteReport};
pub use heuristic::{CompressionHeuristic, Decision};
pub use line::{LineWriteReport, ManagedLine, MetaUpdateCounts};
pub use meta::LineMetadata;
pub use registry::StackSpec;
pub use system::{EccChoice, SystemConfig, SystemKind, WearChoice};
