//! The controller's per-write storage decision, shared by the functional
//! memory model ([`crate::controller`]) and the accelerated line simulator
//! ([`crate::lifetime::linesim`]). One implementation means the two engines
//! can never drift apart on the compress-vs-store-raw choice — and it is
//! allocation-free: payloads land in caller-owned [`PayloadBufs`] instead
//! of per-write `Vec`s.

use crate::heuristic::Decision;
use crate::system::SystemConfig;
use pcm_compress::{compress_best_into, Method};
use pcm_util::{Line512, DATA_BYTES};

/// Per-block controller metadata carried across writes (mirrored to the
/// LLC, §III-B).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HostMeta {
    /// The Fig. 8 heuristic's saturating counter.
    pub sc: u8,
    /// Compressed size of the previous write-back of this block.
    pub last_size: usize,
}

impl Default for HostMeta {
    fn default() -> Self {
        HostMeta {
            sc: 0,
            last_size: DATA_BYTES,
        }
    }
}

/// Reusable buffers for one storage decision: the chosen payload plus, when
/// the heuristic preferred uncompressed storage of compressible data, the
/// compressed *fallback* the controller reverts to if the full line no
/// longer fits (storing uncompressed is a flip optimization, never a
/// requirement).
#[derive(Debug)]
pub(crate) struct PayloadBufs {
    chosen: [u8; DATA_BYTES],
    chosen_len: usize,
    fallback: [u8; DATA_BYTES],
    fallback_len: usize,
}

impl Default for PayloadBufs {
    fn default() -> Self {
        Self::new()
    }
}

impl PayloadBufs {
    pub fn new() -> Self {
        PayloadBufs {
            chosen: [0; DATA_BYTES],
            chosen_len: 0,
            fallback: [0; DATA_BYTES],
            fallback_len: 0,
        }
    }

    /// The payload selected by the last [`choose_payload`] call.
    pub fn chosen(&self) -> &[u8] {
        &self.chosen[..self.chosen_len]
    }

    /// The compressed fallback payload (valid only when the last
    /// [`choose_payload`] returned a fallback method).
    pub fn fallback(&self) -> &[u8] {
        &self.fallback[..self.fallback_len]
    }
}

/// Chooses compressed vs. uncompressed storage for one write-back.
///
/// Fills `bufs.chosen` with the payload to write and returns the method,
/// the updated per-block metadata, and — when the heuristic chose raw
/// storage of compressible data — the method of the compressed fallback
/// left in `bufs.fallback`.
pub(crate) fn choose_payload(
    cfg: &SystemConfig,
    meta: HostMeta,
    data: &Line512,
    bufs: &mut PayloadBufs,
) -> (Method, HostMeta, Option<Method>) {
    bufs.fallback_len = 0;
    if !cfg.kind.compresses() {
        bufs.chosen.copy_from_slice(&data.to_bytes());
        bufs.chosen_len = DATA_BYTES;
        return (Method::Uncompressed, meta, None);
    }
    let (method, len) = compress_best_into(data, &mut bufs.chosen);
    bufs.chosen_len = len;
    finish_choice(cfg, meta, data, method, bufs)
}

/// [`choose_payload`] with the compression stage already done.
///
/// `method` and `payload` must be exactly what `compress_best_into(data)`
/// would produce — the batch selector
/// (`pcm_compress::compress_best_batch`) guarantees this lane for lane, so
/// a batched caller can compress up to 64 lines in one kernel call and
/// still reach byte-identical storage decisions: compression is a pure
/// function of the data, and the stateful heuristic finish below runs per
/// write in program order either way.
pub(crate) fn choose_payload_precompressed(
    cfg: &SystemConfig,
    meta: HostMeta,
    data: &Line512,
    method: Method,
    payload: &[u8],
    bufs: &mut PayloadBufs,
) -> (Method, HostMeta, Option<Method>) {
    debug_assert!(cfg.kind.compresses());
    #[cfg(debug_assertions)]
    {
        let mut check = [0u8; DATA_BYTES];
        let (m, l) = compress_best_into(data, &mut check);
        debug_assert_eq!(m, method, "precompressed method drifted from the selector");
        debug_assert_eq!(&check[..l], payload, "precompressed payload drifted");
    }
    bufs.fallback_len = 0;
    bufs.chosen[..payload.len()].copy_from_slice(payload);
    bufs.chosen_len = payload.len();
    finish_choice(cfg, meta, data, method, bufs)
}

/// The heuristic finishing step shared by [`choose_payload`] and
/// [`choose_payload_precompressed`]: `bufs.chosen` already holds the
/// selector's output for `data`.
fn finish_choice(
    cfg: &SystemConfig,
    meta: HostMeta,
    data: &Line512,
    method: Method,
    bufs: &mut PayloadBufs,
) -> (Method, HostMeta, Option<Method>) {
    let len = bufs.chosen_len;
    if method == Method::Uncompressed {
        // The selector already materialized the 64 raw bytes in `chosen`.
        return (Method::Uncompressed, meta, None);
    }
    if cfg.use_heuristic {
        let (decision, sc) = cfg.heuristic.decide(len, meta.last_size, meta.sc);
        let new_meta = HostMeta {
            sc,
            last_size: meta.last_size,
        };
        match decision {
            Decision::Compressed => (method, new_meta, None),
            Decision::Uncompressed => {
                bufs.fallback[..len].copy_from_slice(&bufs.chosen[..len]);
                bufs.fallback_len = len;
                bufs.chosen.copy_from_slice(&data.to_bytes());
                bufs.chosen_len = DATA_BYTES;
                (Method::Uncompressed, new_meta, Some(method))
            }
        }
    } else {
        (method, meta, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use pcm_compress::compress_best;

    #[test]
    fn matches_standalone_selector() {
        let mut rng = pcm_util::seeded_rng(31);
        let mut bufs = PayloadBufs::new();
        let cfg = SystemConfig::new(SystemKind::Comp);
        for _ in 0..64 {
            let line = Line512::random(&mut rng);
            let c = compress_best(&line);
            let (method, _, fb) = choose_payload(&cfg, HostMeta::default(), &line, &mut bufs);
            // Comp (no heuristic) always stores the selector's choice.
            assert_eq!(method, c.method());
            assert_eq!(bufs.chosen(), c.bytes());
            assert!(fb.is_none());
        }
    }

    #[test]
    fn baseline_stores_raw() {
        let mut bufs = PayloadBufs::new();
        let cfg = SystemConfig::new(SystemKind::Baseline);
        let line = Line512::ones();
        let (method, meta, fb) = choose_payload(&cfg, HostMeta::default(), &line, &mut bufs);
        assert_eq!(method, Method::Uncompressed);
        assert_eq!(bufs.chosen(), &line.to_bytes());
        assert_eq!(meta.last_size, DATA_BYTES);
        assert!(fb.is_none());
    }

    #[test]
    fn heuristic_fallback_carries_compressed_form() {
        // Force the volatile-size path: a compressible line whose size
        // differs from last_size pushes the heuristic toward raw storage
        // once the saturating counter is high.
        let cfg = SystemConfig::new(SystemKind::CompWF);
        assert!(cfg.use_heuristic);
        let mut bufs = PayloadBufs::new();
        let line = Line512::zero();
        let mut meta = HostMeta {
            sc: 3,
            last_size: 40,
        };
        let (method, new_meta, fb) = choose_payload(&cfg, meta, &line, &mut bufs);
        if let Some(fb_method) = fb {
            assert_eq!(method, Method::Uncompressed);
            assert_eq!(bufs.chosen().len(), DATA_BYTES);
            let c = compress_best(&line);
            assert_eq!(fb_method, c.method());
            assert_eq!(bufs.fallback(), c.bytes());
        }
        meta = new_meta;
        let _ = meta;
    }
}
