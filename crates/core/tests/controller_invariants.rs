//! Controller invariants under churn: Start-Gap relocation, rotation,
//! metadata, and the interplay with compression heuristics.

use pcm_compress::Method;
use pcm_core::{EccChoice, LineMetadata, PcmMemory, SystemConfig, SystemKind};
use pcm_trace::{SpecApp, TraceGenerator};
use pcm_util::{seeded_rng, Line512};
use rand::RngExt;
use std::collections::HashMap;

fn healthy(kind: SystemKind) -> SystemConfig {
    SystemConfig::new(kind).with_endurance_mean(1e9)
}

#[test]
fn aggressive_gap_movement_never_loses_data() {
    for kind in SystemKind::ALL {
        let mut cfg = healthy(kind);
        cfg.start_gap_psi = 2; // a gap move every other write
        let mut memory = PcmMemory::new(cfg, 24, 31);
        let mut rng = seeded_rng(32);
        let mut expected: HashMap<u64, Line512> = HashMap::new();
        for _ in 0..4_000 {
            let l = rng.random_range(0..24);
            let d = Line512::random(&mut rng);
            memory.write(l, d).unwrap();
            expected.insert(l, d);
        }
        for (&l, &d) in &expected {
            assert_eq!(memory.read(l).unwrap(), d, "{kind}: line {l}");
        }
        assert!(memory.stats().gap_moves > 1_500, "{kind}");
    }
}

#[test]
fn rotation_spreads_window_starts() {
    // With a tiny bank counter, the same logical line's payload must land
    // at many different offsets over time.
    let mut cfg = healthy(SystemKind::CompW);
    cfg.bank_counter_period = 4;
    let mut memory = PcmMemory::new(cfg, 8, 33);
    let mut offsets = std::collections::HashSet::new();
    for i in 0..200u64 {
        // Highly compressible content -> small window whose offset shows.
        let mut b = [0u8; 64];
        b[0] = i as u8;
        let data = Line512::from_bytes(&b);
        let r = memory.write(0, data).unwrap();
        offsets.insert(r.line.offset);
        assert_eq!(memory.read(0).unwrap(), data);
    }
    assert!(
        offsets.len() > 16,
        "rotation should move the window, saw {offsets:?}"
    );
}

#[test]
fn heuristic_mode_still_round_trips() {
    let cfg = healthy(SystemKind::CompWF).with_heuristic();
    let mut memory = PcmMemory::new(cfg, 16, 34);
    let mut generator = TraceGenerator::from_profile(SpecApp::Bzip2.profile(), 16, 35);
    let mut expected = HashMap::new();
    for _ in 0..4_000 {
        let w = generator.next_write();
        memory.write(w.line, w.data).unwrap();
        expected.insert(w.line, w.data);
    }
    for (&l, &d) in &expected {
        assert_eq!(memory.read(l).unwrap(), d);
    }
    // bzip2 is volatile: the heuristic must have forced some writes
    // uncompressed.
    let stats = memory.stats();
    assert!(
        stats.compressed_writes < stats.demand_writes,
        "heuristic should store some volatile blocks uncompressed: {stats:?}"
    );
}

#[test]
fn every_scheme_choice_serves_the_same_workload() {
    for ecc in [
        EccChoice::Ecp6,
        EccChoice::EcpN(3),
        EccChoice::Safer32,
        EccChoice::Aegis17x31,
        EccChoice::Secded,
    ] {
        let cfg = healthy(SystemKind::CompWF).with_ecc(ecc);
        let mut memory = PcmMemory::new(cfg, 8, 36);
        let mut generator = TraceGenerator::from_profile(SpecApp::Calculix.profile(), 8, 37);
        for _ in 0..500 {
            let w = generator.next_write();
            memory
                .write(w.line, w.data)
                .unwrap_or_else(|e| panic!("{ecc:?}: {e}"));
            assert_eq!(memory.read(w.line).unwrap(), w.data, "{ecc:?}");
        }
    }
}

#[test]
fn line_metadata_wire_format_is_total_over_runtime_states() {
    // Pack/unpack every (offset, method, sc) combination the controller
    // can produce.
    let methods = [
        Method::Uncompressed,
        Method::Fpc,
        Method::Bdi(pcm_compress::BdiEncoding::Zeros),
        Method::Bdi(pcm_compress::BdiEncoding::B8D4),
    ];
    for start in 0..64u8 {
        for &m in &methods {
            for sc in 0..4u8 {
                let meta = LineMetadata::new(start, m, sc);
                let unpacked = LineMetadata::unpack(meta.pack()).unwrap();
                assert_eq!(unpacked, meta);
            }
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    let mut memory = PcmMemory::new(healthy(SystemKind::Comp), 16, 38);
    let mut generator = TraceGenerator::from_profile(SpecApp::Sjeng.profile(), 16, 39);
    for _ in 0..2_000 {
        let w = generator.next_write();
        memory.write(w.line, w.data).unwrap();
    }
    let s = memory.stats();
    assert_eq!(s.demand_writes, 2_000);
    assert!(s.compressed_writes <= s.demand_writes + s.gap_moves);
    // sjeng is highly compressible: nearly everything compresses.
    assert!(
        s.compressed_writes as f64 > 0.9 * s.demand_writes as f64,
        "sjeng should compress >90% of writes: {s:?}"
    );
    assert!(s.total_flips > 0);
}
