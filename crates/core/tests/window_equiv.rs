//! Equivalence suite for the wrapped compression-window kernels.
//!
//! `window_mask`, `place`, `extract`, and the fault queries are implemented
//! with precomputed bit-range masks and word-level splices; the references
//! here walk the wrapped byte indices one at a time via `window_bytes`,
//! which is the definitional layout of a window that wraps at byte 64
//! (paper §III-B).

use pcm_core::window;
use pcm_util::fault::StuckAt;
use pcm_util::{FaultMap, FaultPlan, Line512, DATA_BYTES};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

fn arb_window() -> impl Strategy<Value = (usize, usize)> {
    (0usize..DATA_BYTES, 1usize..=DATA_BYTES)
}

fn arb_faults() -> impl Strategy<Value = FaultMap> {
    (any::<u64>(), 0u32..64, any::<f64>())
        .prop_map(|(seed, count, frac)| FaultPlan::with_count(seed, count, frac).for_line(0))
}

fn ref_window_mask(offset: usize, len: usize) -> Line512 {
    let mut mask = Line512::zero();
    for byte in window::window_bytes(offset, len) {
        for bit in byte * 8..(byte + 1) * 8 {
            mask.set_bit(bit, true);
        }
    }
    mask
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The (possibly two-piece) precomputed window mask covers exactly the
    /// wrapped byte span.
    #[test]
    fn window_mask_matches_wrapped_bytes(w in arb_window()) {
        let (offset, len) = w;
        prop_assert_eq!(window::window_mask(offset, len), ref_window_mask(offset, len));
    }

    /// The two-splice `place` equals writing payload bytes one at a time
    /// along the wrapped order, and `extract` reads them back.
    #[test]
    fn place_extract_match_per_byte(
        current in arb_line(),
        offset in 0usize..DATA_BYTES,
        payload in prop::collection::vec(any::<u8>(), 1..=DATA_BYTES),
    ) {
        let fast = window::place(&current, offset, &payload);
        let mut slow = current;
        for (i, byte) in window::window_bytes(offset, payload.len()).enumerate() {
            slow.set_byte(byte, payload[i]);
        }
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(window::extract(&fast, offset, payload.len()), payload);
    }

    /// Fault queries agree with filtering every fault through the wrapped
    /// byte span, in both the position-list and FaultMap forms.
    #[test]
    fn fault_queries_match_per_fault_filter(
        faults in arb_faults(),
        w in arb_window(),
    ) {
        let (offset, len) = w;
        let in_window: Vec<StuckAt> = faults
            .iter()
            .filter(|f| {
                window::window_bytes(offset, len).any(|b| b == f.pos as usize / 8)
            })
            .collect();

        let positions = window::faults_in(&faults, offset, len);
        let expected: Vec<u16> = in_window.iter().map(|f| f.pos).collect();
        prop_assert_eq!(&positions, &expected, "faults_in must list positions in bit order");

        let mut scratch = Vec::new();
        window::faults_in_scratch(&faults, offset, len, &mut scratch);
        prop_assert_eq!(&scratch, &expected);

        let map = window::fault_map_in(&faults, offset, len);
        prop_assert_eq!(map.count() as usize, in_window.len());
        for f in in_window {
            prop_assert_eq!(map.stuck_value(f.pos as usize), Some(f.value));
        }
    }

    /// A window never sees faults outside itself: applying the windowed
    /// fault map perturbs no cell outside the window mask.
    #[test]
    fn windowed_faults_stay_inside_window(
        faults in arb_faults(),
        w in arb_window(),
        line in arb_line(),
    ) {
        let (offset, len) = w;
        let map = window::fault_map_in(&faults, offset, len);
        let outside = window::window_mask(offset, len) ^ Line512::ones();
        let changed = line ^ map.apply(line);
        prop_assert!((changed & outside).is_zero());
    }
}
