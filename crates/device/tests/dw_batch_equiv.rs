//! Differential rig for the batch differential-write path and the SLC
//! lane-kernel wear model.
//!
//! Two layers are pinned here. The batch entry points
//! (`diff_write_batch`, `flip_n_write_batch`) must match their per-line
//! twins lane for lane on partial batches. Below them, `LineWear`'s SLC
//! write path — whole-line lane kernels plus the death-free slack fast
//! path — must match an *independent* per-bit model reimplemented from
//! the documented semantics, over long write/fast-forward sequences that
//! drive cells through death (the only events where the fast path, the
//! stale-bound recomputation, and the fault materialization interact).

use pcm_device::{diff_write, diff_write_batch, flip_n_write_batch, FlipNWrite, LineWear};
use pcm_util::simd::{LineBatch64, BATCH_LANES};
use pcm_util::{Line512, DATA_BITS};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

/// Two equally long line vectors (lane-paired batches).
fn arb_line_pairs() -> impl Strategy<Value = (Vec<Line512>, Vec<Line512>)> {
    (1..=BATCH_LANES).prop_flat_map(|n| {
        (
            prop::collection::vec(arb_line(), n),
            prop::collection::vec(arb_line(), n),
        )
    })
}

/// One step of a wear-model interaction: a differential write or an
/// accelerated fast-forward of one cell.
#[derive(Debug, Clone)]
enum Op {
    Write(Line512),
    AddWear(usize, u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        arb_line().prop_map(Op::Write),
        (0..DATA_BITS, 0u32..4).prop_map(|(pos, events)| Op::AddWear(pos, events)),
    ];
    prop::collection::vec(op, 1..=60)
}

/// Independent per-bit SLC wear model, written from the documented
/// semantics only: each differing cell takes one programming pulse; a
/// stuck cell absorbs the pulse with no effect; a healthy cell wears by
/// one and either flips or — when its budget is exhausted — sticks at
/// the value it still holds.
struct RefSlc {
    endurance: Vec<u32>,
    wear: Vec<u32>,
    stored: Line512,
    stuck: Vec<Option<bool>>,
}

impl RefSlc {
    fn new(endurance: Vec<u32>) -> Self {
        RefSlc {
            endurance,
            wear: vec![0; DATA_BITS],
            stored: Line512::zero(),
            stuck: vec![None; DATA_BITS],
        }
    }

    /// Returns (flips, flip mask, new faults as (pos, stuck value)).
    fn write(&mut self, target: &Line512) -> (u32, Line512, Vec<(u16, bool)>) {
        let diff = self.stored ^ *target;
        let mut flips = 0u32;
        let mut new_faults = Vec::new();
        for pos in 0..DATA_BITS {
            if !diff.bit(pos) {
                continue;
            }
            flips += 1;
            if self.stuck[pos].is_some() {
                continue;
            }
            self.wear[pos] += 1;
            if self.wear[pos] > self.endurance[pos] {
                let value = self.stored.bit(pos);
                self.stuck[pos] = Some(value);
                new_faults.push((pos as u16, value));
            } else {
                self.stored.flip_bit(pos);
            }
        }
        (flips, diff, new_faults)
    }

    fn add_wear(&mut self, pos: usize, events: u32) {
        if self.stuck[pos].is_some() || events == 0 {
            return;
        }
        self.wear[pos] = self.wear[pos].saturating_add(events);
        if self.wear[pos] > self.endurance[pos] {
            self.stuck[pos] = Some(self.stored.bit(pos));
        }
    }
}

/// Asserts every observable of `line` matches the reference model.
fn assert_state_matches(line: &LineWear, model: &RefSlc) -> Result<(), String> {
    prop_assert_eq!(line.stored(), model.stored);
    for pos in 0..DATA_BITS {
        prop_assert_eq!(line.wear_of(pos), model.wear[pos], "wear at {}", pos);
        let impl_stuck = line.faults().is_faulty(pos);
        prop_assert_eq!(impl_stuck, model.stuck[pos].is_some(), "fault at {}", pos);
        if let Some(value) = model.stuck[pos] {
            // A stuck cell reads back its frozen value through the line.
            prop_assert_eq!(line.stored().bit(pos), value, "stuck value at {}", pos);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every lane of a batch differential write matches the per-line
    /// `diff_write`, including the derived per-lane statistics.
    #[test]
    fn diff_write_batch_matches_per_lane(pair in arb_line_pairs()) {
        let (olds, news) = pair;
        let old = LineBatch64::from_lines(&olds);
        let new = LineBatch64::from_lines(&news);
        let batch = diff_write_batch(&old, &new);
        prop_assert_eq!(batch.len(), olds.len());
        let flips = batch.flips();
        let sets = batch.sets();
        let window = batch.flips_in_window(9, 48);
        for lane in 0..olds.len() {
            let dw = diff_write(&olds[lane], &news[lane]);
            prop_assert_eq!(batch.lane(lane), dw, "lane {}", lane);
            prop_assert_eq!(flips[lane], dw.flips());
            prop_assert_eq!(sets[lane], dw.sets());
            prop_assert_eq!(window[lane], dw.flips_in_window(9, 48));
            prop_assert_eq!(batch.flip_batch().lane(lane), dw.flip_mask());
        }
        for lane in olds.len()..BATCH_LANES {
            prop_assert_eq!(flips[lane], 0);
            prop_assert_eq!(sets[lane], 0);
            prop_assert_eq!(window[lane], 0);
        }
    }

    /// Every lane of a batch Flip-N-Write matches the per-line encoder
    /// run on an identical cloned state, and decodes back to the data.
    #[test]
    fn flip_n_write_batch_matches_per_lane(
        pair in arb_line_pairs(),
        chunk_bits in prop::sample::select(vec![4usize, 8, 16, 32, 64, 128]),
    ) {
        let (stored_lines, data_lines) = pair;
        let stored = LineBatch64::from_lines(&stored_lines);
        let data = LineBatch64::from_lines(&data_lines);
        let mut fnws = vec![FlipNWrite::new(chunk_bits); stored_lines.len()];
        let mut refs = fnws.clone();
        let (out, flips) = flip_n_write_batch(&mut fnws, &stored, &data);
        prop_assert_eq!(out.len(), stored_lines.len());
        for lane in 0..stored_lines.len() {
            let (want_stored, want_flips) =
                refs[lane].write(&stored_lines[lane], &data_lines[lane]);
            prop_assert_eq!(out.lane(lane), want_stored, "lane {}", lane);
            prop_assert_eq!(flips[lane], want_flips, "lane {}", lane);
            prop_assert_eq!(fnws[lane].decode(&out.lane(lane)), data_lines[lane]);
        }
        for lane in stored_lines.len()..BATCH_LANES {
            prop_assert_eq!(flips[lane], 0);
        }
    }

    /// The SLC lane-kernel write path (slack fast path, `wear_step`,
    /// fault materialization, stale-bound recomputation) matches the
    /// independent per-bit model over arbitrary write / fast-forward
    /// sequences on tight-endurance lines, where most sequences kill
    /// cells mid-stream.
    #[test]
    fn slc_write_sequence_matches_per_bit_model(
        endurance in prop::collection::vec(0u32..5, DATA_BITS),
        ops in arb_ops(),
    ) {
        let mut line = LineWear::with_endurance(endurance.clone());
        let mut model = RefSlc::new(endurance);
        for op in &ops {
            match op {
                Op::Write(target) => {
                    let outcome = line.write(target);
                    let (flips, flip_mask, new_faults) = model.write(target);
                    prop_assert_eq!(outcome.flips, flips);
                    prop_assert_eq!(outcome.flip_mask, flip_mask);
                    let got_faults: Vec<(u16, bool)> = outcome
                        .new_faults
                        .iter()
                        .map(|f| (f.pos, f.value))
                        .collect();
                    prop_assert_eq!(got_faults, new_faults);
                }
                Op::AddWear(pos, events) => {
                    let fault = line.add_wear(*pos, *events);
                    let was_stuck = model.stuck[*pos].is_some();
                    model.add_wear(*pos, *events);
                    prop_assert_eq!(
                        fault.is_some(),
                        !was_stuck && model.stuck[*pos].is_some()
                    );
                }
            }
        }
        assert_state_matches(&line, &model)?;
    }

    /// `add_wear_bulk` equals the ascending per-position `add_wear` loop
    /// it replaces, including the faults each one materializes.
    #[test]
    fn add_wear_bulk_matches_sequence(
        endurance in prop::collection::vec(0u32..6, DATA_BITS),
        seed_writes in prop::collection::vec(arb_line(), 0..4),
        grant_list in prop::collection::vec((0..DATA_BITS, 1u32..5), 0..80),
    ) {
        let mut bulk = LineWear::with_endurance(endurance);
        for target in &seed_writes {
            bulk.write(target);
        }
        let mut seq = bulk.clone();
        let mut grants = [0u32; DATA_BITS];
        for &(pos, g) in &grant_list {
            grants[pos] = grants[pos].saturating_add(g);
        }
        bulk.add_wear_bulk(&grants);
        for (pos, &g) in grants.iter().enumerate() {
            if g > 0 {
                let _ = seq.add_wear(pos, g);
            }
        }
        // `PartialEq` covers tech, endurance, wear, stored, and faults
        // (the slack cache is deliberately excluded).
        prop_assert_eq!(&bulk, &seq);
        // And the fast path must still be sound afterwards: more writes
        // agree too.
        let target = Line512::ones();
        prop_assert_eq!(bulk.write(&target), seq.write(&target));
    }

    /// `project_first_failure` equals the closed-form minimum over all
    /// healthy profiled cells of the first write count whose scaled
    /// replay kills the cell.
    #[test]
    fn project_first_failure_matches_bruteforce(
        endurance in prop::collection::vec(0u32..40, DATA_BITS),
        seed_writes in prop::collection::vec(arb_line(), 1..4),
        count_list in prop::collection::vec((0..DATA_BITS, 1u32..6), 1..60),
        done in 1u64..200,
        extra in 1u64..10_000,
    ) {
        let mut line = LineWear::with_endurance(endurance);
        for target in &seed_writes {
            line.write(target);
        }
        let mut counts = [0u32; DATA_BITS];
        for &(pos, c) in &count_list {
            counts[pos] = counts[pos].saturating_add(c);
        }
        let got = line.project_first_failure(&counts, done, extra);
        // Reference: cell `pos` (healthy, profiled) survives `remaining`
        // more events and dies on the next; at `c` events per `done`
        // writes the first fatal write count is
        // ceil((remaining + 1) * done / c). The projection is the
        // minimum over cells, capped at the requested span.
        let want = (0..DATA_BITS)
            .filter(|&pos| counts[pos] > 0 && !line.faults().is_faulty(pos))
            .map(|pos| {
                let remaining =
                    line.endurance_of(pos).saturating_sub(line.wear_of(pos)) as u64;
                (remaining + 1)
                    .saturating_mul(done)
                    .div_ceil(counts[pos] as u64)
            })
            .min()
            .map_or(extra, |first_fatal| extra.min(first_fatal));
        prop_assert_eq!(got, want);
    }
}

/// Zero-endurance adversarial case: the very first all-ones write kills
/// every cell, each stuck at the reset value it never left.
#[test]
fn zero_endurance_line_dies_whole() {
    let mut line = LineWear::with_endurance(vec![0; DATA_BITS]);
    let outcome = line.write(&Line512::ones());
    assert_eq!(outcome.flips, 512);
    assert_eq!(outcome.new_faults.len(), DATA_BITS);
    assert!(outcome.new_faults.iter().all(|f| !f.value));
    assert_eq!(line.stored(), Line512::zero());
    // A dead line absorbs further writes without effect or new faults.
    let again = line.write(&Line512::ones());
    assert_eq!(again.flips, 512);
    assert!(again.new_faults.is_empty());
    assert_eq!(line.stored(), Line512::zero());
}

/// The slack fast path never defers a death: with uniform endurance E,
/// alternating all-ones/all-zeros writes must kill every cell on exactly
/// write E + 1, not a write later.
#[test]
fn death_lands_on_exact_write() {
    const E: u32 = 9;
    let mut line = LineWear::with_endurance(vec![E; DATA_BITS]);
    let targets = [Line512::ones(), Line512::zero()];
    for w in 0..E {
        let outcome = line.write(&targets[(w % 2) as usize]);
        assert!(outcome.new_faults.is_empty(), "early death at write {w}");
    }
    let outcome = line.write(&targets[(E % 2) as usize]);
    assert_eq!(
        outcome.new_faults.len(),
        DATA_BITS,
        "death must land on write E + 1"
    );
}
