//! Equivalence suite for the differential-write and Flip-N-Write kernels.
//!
//! `diff_write` and `FlipNWrite::write` run on whole `u64` words; the
//! references here recompute every outcome bit by bit from the documented
//! semantics (program only differing cells; per chunk store data or its
//! complement, whichever flips fewer cells, counting flag-cell flips).

use pcm_device::dw::{diff_write, FlipNWrite};
use pcm_util::{Line512, DATA_BITS};
use proptest::prelude::*;

fn arb_line() -> impl Strategy<Value = Line512> {
    prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words)
}

/// Chunk widths accepted by `FlipNWrite::new` (divisors of 512, >= 2).
fn arb_chunk_bits() -> impl Strategy<Value = usize> {
    prop::sample::select(vec![2usize, 4, 8, 16, 32, 64, 128, 256, 512])
}

/// Per-bit reference for one Flip-N-Write step: returns the stored image,
/// the flip count, and the new flags.
fn ref_fnw_step(
    chunk_bits: usize,
    old_flags: &[bool],
    stored: &Line512,
    data: &Line512,
) -> (Line512, u32, Vec<bool>) {
    let mut out = Line512::zero();
    let mut flips = 0u32;
    let mut flags = Vec::with_capacity(old_flags.len());
    for (chunk, &old_flag) in old_flags.iter().enumerate() {
        let bits = chunk * chunk_bits..(chunk + 1) * chunk_bits;
        let direct: u32 = bits
            .clone()
            .filter(|&i| stored.bit(i) != data.bit(i))
            .count() as u32;
        let complement = chunk_bits as u32 - direct;
        let invert = complement < direct;
        flips += direct.min(complement) + (old_flag != invert) as u32;
        for i in bits {
            out.set_bit(i, data.bit(i) != invert);
        }
        flags.push(invert);
    }
    (out, flips, flags)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `diff_write` masks agree with comparing old and new bit by bit.
    #[test]
    fn diff_write_matches_per_bit(old in arb_line(), new in arb_line()) {
        let dw = diff_write(&old, &new);
        let mut flips = 0u32;
        let mut sets = 0u32;
        let mut resets = 0u32;
        for i in 0..DATA_BITS {
            match (old.bit(i), new.bit(i)) {
                (false, true) => { flips += 1; sets += 1; }
                (true, false) => { flips += 1; resets += 1; }
                _ => prop_assert!(!dw.flip_mask().bit(i), "bit {} must not flip", i),
            }
        }
        prop_assert_eq!(dw.flips(), flips);
        prop_assert_eq!(dw.sets(), sets);
        prop_assert_eq!(dw.resets(), resets);
        prop_assert_eq!(dw.flip_mask(), old ^ new);
    }

    /// Windowed flip counts agree with a per-bit scan of the window.
    #[test]
    fn diff_write_window_matches_per_bit(
        old in arb_line(),
        new in arb_line(),
        offset in 0usize..64,
        raw_len in 1usize..=64,
    ) {
        let len = raw_len.min(64 - offset);
        let dw = diff_write(&old, &new);
        let expected = (offset * 8..(offset + len) * 8)
            .filter(|&i| old.bit(i) != new.bit(i))
            .count() as u32;
        prop_assert_eq!(dw.flips_in_window(offset, len), expected);
    }

    /// A multi-step Flip-N-Write history (flags carried between writes)
    /// matches the per-bit reference at every step, and decode recovers
    /// the logical data.
    #[test]
    fn flip_n_write_matches_per_bit_reference(
        chunk_bits in arb_chunk_bits(),
        writes in prop::collection::vec(
            prop::array::uniform8(any::<u64>()).prop_map(Line512::from_words), 1..6),
    ) {
        let mut fnw = FlipNWrite::new(chunk_bits);
        let mut ref_flags = vec![false; 512 / chunk_bits];
        let mut stored = Line512::zero();
        for data in writes {
            let (ref_stored, ref_flips, new_flags) =
                ref_fnw_step(chunk_bits, &ref_flags, &stored, &data);
            let (fast_stored, fast_flips) = fnw.write(&stored, &data);
            prop_assert_eq!(fast_stored, ref_stored);
            prop_assert_eq!(fast_flips, ref_flips);
            prop_assert_eq!(fnw.decode(&fast_stored), data);
            ref_flags = new_flags;
            stored = fast_stored;
        }
    }
}
