//! Device-model behavioural tests spanning cells, DW, timing and queues.

use pcm_device::access::{simulate, AccessConfig, Op, Request};
use pcm_device::dw::{diff_write, FlipNWrite};
use pcm_device::energy::EnergyModel;
use pcm_device::{CellTech, EnduranceModel, LineWear, MemoryGeometry, TimingParams};
use pcm_util::{seeded_rng, Line512};
use rand::RngExt;

#[test]
fn wear_accumulates_exactly_with_write_history() {
    // Replay a random write history and check per-cell wear equals the
    // number of times each cell's value changed.
    let mut rng = seeded_rng(81);
    let mut line = LineWear::with_endurance(vec![u32::MAX; 512]);
    let mut expected = vec![0u32; 512];
    let mut current = Line512::zero();
    for _ in 0..200 {
        let target = if rng.random_bool(0.5) {
            Line512::random(&mut rng)
        } else {
            let mut t = current;
            t.set_byte(rng.random_range(0..64), rng.random());
            t
        };
        for pos in (current ^ target).iter_ones() {
            expected[pos] += 1;
        }
        line.write(&target);
        current = target;
    }
    for pos in 0..512 {
        assert_eq!(line.wear_of(pos), expected[pos], "cell {pos}");
    }
    assert_eq!(line.stored(), current);
}

#[test]
fn endurance_variation_spreads_failure_times() {
    // With CoV 0.15, cells under identical load must fail at different
    // times.
    let model = EnduranceModel::new(500.0, 0.15);
    let mut rng = seeded_rng(82);
    let mut line = LineWear::sample(&model, &mut rng);
    let mut failure_times = Vec::new();
    for round in 0..1500u32 {
        let target = if round % 2 == 0 {
            Line512::ones()
        } else {
            Line512::zero()
        };
        let out = line.write(&target);
        for _ in out.new_faults {
            failure_times.push(round);
        }
    }
    assert!(failure_times.len() > 400, "most cells should have failed");
    let first = failure_times.first().copied().unwrap();
    let last = failure_times.last().copied().unwrap();
    assert!(
        last - first > 100,
        "failures should spread over rounds: {first}..{last}"
    );
}

#[test]
fn mlc_line_dies_roughly_twice_as_fast_per_cell_budget() {
    // Same endurance draw; MLC has half the cells, so alternating full-line
    // writes exhaust it in the same number of writes, but each cell failure
    // takes out two bits.
    let model = EnduranceModel::new(100.0, 0.0);
    let mut rng = seeded_rng(83);
    let mut slc = LineWear::sample_with_tech(&model, CellTech::Slc, &mut rng);
    let mut mlc = LineWear::sample_with_tech(&model, CellTech::Mlc2, &mut rng);
    let mut slc_faults = 0;
    let mut mlc_faults = 0;
    for round in 0..300u32 {
        let target = if round % 2 == 0 {
            Line512::ones()
        } else {
            Line512::zero()
        };
        slc_faults += slc.write(&target).new_faults.len();
        mlc_faults += mlc.write(&target).new_faults.len();
    }
    assert_eq!(slc_faults, 512);
    assert_eq!(
        mlc_faults, 512,
        "every MLC bit also freezes (in cell pairs)"
    );
}

#[test]
fn access_sim_latency_monotone_in_load() {
    let cfg = AccessConfig::paper();
    let make = |gap: u64| -> Vec<Request> {
        (0..2_000)
            .map(|i| Request {
                arrival: i * gap,
                bank: (i % 8) as u32,
                op: if i % 4 == 0 { Op::Write } else { Op::Read },
                decompression_cycles: 0,
            })
            .collect()
    };
    let light = simulate(&cfg, &make(200));
    let heavy = simulate(&cfg, &make(10));
    assert!(
        heavy.avg_read_latency >= light.avg_read_latency,
        "heavier load must not reduce latency: {} vs {}",
        heavy.avg_read_latency,
        light.avg_read_latency
    );
    assert_eq!(light.reads + light.writes, 2_000);
    assert_eq!(heavy.reads + heavy.writes, 2_000);
}

#[test]
fn geometry_and_timing_are_self_consistent() {
    let g = MemoryGeometry::paper();
    let t = TimingParams::paper();
    // Every line maps to a valid bank, and the flat index is stable.
    let mut rng = seeded_rng(84);
    for _ in 0..1_000 {
        let line = rng.random_range(0..g.lines);
        let flat = g.flat_bank_of(line);
        assert!(flat < g.total_banks());
        assert_eq!(g.flat_bank_of(line), flat, "mapping must be pure");
    }
    // A 64-byte burst at DDR 400MHz moves 72 bits/cycle-edge: 4 cycles.
    assert_eq!(t.burst_cycles(), 4);
}

#[test]
fn fnw_and_dw_agree_on_logical_content() {
    let mut rng = seeded_rng(85);
    let mut fnw = FlipNWrite::new(64);
    let mut stored = Line512::zero();
    for _ in 0..100 {
        let data = Line512::random(&mut rng);
        let (s, _) = fnw.write(&stored, &data);
        assert_eq!(fnw.decode(&s), data);
        stored = s;
    }
}

#[test]
fn energy_accounting_matches_flip_polarity() {
    let mut rng = seeded_rng(86);
    let e = EnergyModel::paper();
    for _ in 0..100 {
        let a = Line512::random(&mut rng);
        let b = Line512::random(&mut rng);
        let dw = diff_write(&a, &b);
        assert_eq!(dw.sets() + dw.resets(), dw.flips());
        let energy = e.write_energy_pj(&dw);
        let lo = dw.flips() as f64 * e.set_pj;
        let hi = dw.flips() as f64 * e.reset_pj;
        assert!(
            energy >= lo && energy <= hi,
            "{energy} outside [{lo}, {hi}]"
        );
    }
}
