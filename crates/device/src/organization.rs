//! DIMM organization: channels, ranks, 9-chip ECC ranks, banks, and the
//! cache-line interleaving across them (paper Fig. 2b, Table II).
//!
//! A rank is nine ×8 chips — eight data chips plus one ECC chip — driving a
//! 72-bit bus; a 64-byte line moves in a burst of eight transfers, each chip
//! contributing 8 bits per edge. Banks are interleaved across all chips of
//! the rank, and consecutive line addresses interleave first across
//! channels, then across banks, so streaming writes spread over every bank.

use serde::{Deserialize, Serialize};

/// Physical location of a memory line: which channel/DIMM/rank/bank serves
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BankAddress {
    /// Channel index.
    pub channel: u32,
    /// DIMM within the channel.
    pub dimm: u32,
    /// Rank within the DIMM.
    pub rank: u32,
    /// Bank within the rank.
    pub bank: u32,
}

/// The memory geometry of the simulated PCM main memory.
///
/// # Examples
///
/// ```
/// use pcm_device::MemoryGeometry;
///
/// let g = MemoryGeometry::paper();
/// assert_eq!(g.total_capacity_bytes(), 4 << 30);
/// assert_eq!(g.total_banks(), 8); // 2 channels × 4 banks
/// assert_eq!(g.data_chips_per_rank(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryGeometry {
    /// Memory channels, each with its own controller.
    pub channels: u32,
    /// DIMMs per channel.
    pub dimms_per_channel: u32,
    /// Ranks per DIMM.
    pub ranks_per_dimm: u32,
    /// Banks per rank.
    pub banks_per_rank: u32,
    /// Total number of 64-byte lines.
    pub lines: u64,
}

impl MemoryGeometry {
    /// The paper's Table II configuration: 4 GB, 2 channels, 1 DIMM per
    /// channel, 1 rank per DIMM, 9 ×8 devices per rank, 4 banks per rank.
    pub fn paper() -> Self {
        MemoryGeometry {
            channels: 2,
            dimms_per_channel: 1,
            ranks_per_dimm: 1,
            banks_per_rank: 4,
            lines: (4u64 << 30) / 64,
        }
    }

    /// A scaled-down geometry for lifetime simulation: same interleaving,
    /// fewer lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is zero or not a multiple of the bank count.
    pub fn scaled(lines: u64) -> Self {
        let mut g = MemoryGeometry::paper();
        assert!(lines > 0, "need at least one line");
        assert_eq!(
            lines % g.total_banks() as u64,
            0,
            "line count must divide evenly over {} banks",
            g.total_banks()
        );
        g.lines = lines;
        g
    }

    /// Data chips per rank (the ninth chip stores ECC).
    pub fn data_chips_per_rank(&self) -> u32 {
        8
    }

    /// Total banks across the whole memory.
    pub fn total_banks(&self) -> u32 {
        self.channels * self.dimms_per_channel * self.ranks_per_dimm * self.banks_per_rank
    }

    /// Total capacity in data bytes (excluding the ECC chip).
    pub fn total_capacity_bytes(&self) -> u64 {
        self.lines * 64
    }

    /// Lines served by each bank.
    pub fn lines_per_bank(&self) -> u64 {
        self.lines / self.total_banks() as u64
    }

    /// Maps a line address to its [`BankAddress`] (cache-line interleaving:
    /// channel bits first, then bank bits).
    ///
    /// # Panics
    ///
    /// Panics if `line` is out of range.
    pub fn bank_of(&self, line: u64) -> BankAddress {
        assert!(line < self.lines, "line {line} out of range");
        let channel = (line % self.channels as u64) as u32;
        let rest = line / self.channels as u64;
        let bank = (rest % self.banks_per_rank as u64) as u32;
        let rest = rest / self.banks_per_rank as u64;
        let rank = (rest % self.ranks_per_dimm as u64) as u32;
        let rest = rest / self.ranks_per_dimm as u64;
        let dimm = (rest % self.dimms_per_channel as u64) as u32;
        BankAddress {
            channel,
            dimm,
            rank,
            bank,
        }
    }

    /// Flat bank index in `0..total_banks()` for a line address.
    pub fn flat_bank_of(&self, line: u64) -> u32 {
        let a = self.bank_of(line);
        ((a.channel * self.dimms_per_channel + a.dimm) * self.ranks_per_dimm + a.rank)
            * self.banks_per_rank
            + a.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_dimensions() {
        let g = MemoryGeometry::paper();
        assert_eq!(g.lines, 67_108_864);
        assert_eq!(g.total_banks(), 8);
        assert_eq!(g.lines_per_bank(), 8_388_608);
    }

    #[test]
    fn interleaving_spreads_consecutive_lines() {
        let g = MemoryGeometry::paper();
        // Consecutive lines alternate channels.
        assert_ne!(g.bank_of(0).channel, g.bank_of(1).channel);
        // Lines 0 and 2 share a channel but differ in bank.
        assert_eq!(g.bank_of(0).channel, g.bank_of(2).channel);
        assert_ne!(g.bank_of(0).bank, g.bank_of(2).bank);
    }

    #[test]
    fn flat_bank_covers_all_banks_uniformly() {
        let g = MemoryGeometry::scaled(64);
        let mut counts = vec![0u32; g.total_banks() as usize];
        for line in 0..64 {
            counts[g.flat_bank_of(line) as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == 8),
            "uniform spread, got {counts:?}"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bank_of_checks_range() {
        let g = MemoryGeometry::scaled(64);
        g.bank_of(64);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn scaled_rejects_ragged_line_count() {
        MemoryGeometry::scaled(63);
    }
}
