//! PCM device model: cells, endurance, stuck-at faults, differential
//! writes, DIMM organization and DDR-style timing.
//!
//! This crate is the *substrate* under the DSN'17 paper's memory
//! controller: everything that lives on the PCM DIMM side of the bus.
//!
//! * [`dw`] — the chip-level **differential write** (read-modify-write)
//!   circuit: only bits that differ between old and new data are
//!   programmed, plus the optional **Flip-N-Write** enhancement.
//! * [`cell`] — per-cell endurance and wear: every cell draws its write
//!   endurance from `Normal(10^7, CoV·10^7)` and becomes *stuck-at* its
//!   current value once exhausted.
//! * [`organization`] — channels / DIMMs / ranks / 9-chip ECC ranks /
//!   banks, and the line-address interleaving across them (paper Fig. 2,
//!   Table II).
//! * [`timing`] — DDR3-style timing parameters from Table II.
//! * [`access`] — a per-bank, event-driven access-timing simulator with the
//!   paper's 8-entry read / 32-entry write queues, used for the §V.B
//!   performance-overhead analysis.
//!
//! # Examples
//!
//! ```
//! use pcm_device::dw::diff_write;
//! use pcm_util::Line512;
//!
//! let old = Line512::zero();
//! let new = Line512::ones();
//! assert_eq!(diff_write(&old, &new).flips(), 512);
//! ```

pub mod access;
pub mod cell;
pub mod dw;
pub mod energy;
pub mod organization;
pub mod timing;

pub use cell::{CellTech, EnduranceModel, LineWear, WriteOutcome};
pub use dw::{
    diff_write, diff_write_batch, flip_n_write_batch, DiffWrite, DiffWriteBatch, FlipNWrite,
};
pub use energy::EnergyModel;
pub use organization::{BankAddress, MemoryGeometry};
pub use timing::TimingParams;
