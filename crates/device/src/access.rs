//! Event-driven access-timing simulation (paper §IV, §V.B).
//!
//! Models the paper's memory-controller front end: per-bank 8-entry read
//! and 32-entry write FIFOs, reads prioritized over writes, writes drained
//! when a bank is idle or its write queue fills. Decompression latency (1
//! cycle BDI, 5 cycles FPC) is added on the read return path — this is the
//! machinery behind the paper's "read accesses to compressed blocks are
//! delayed by up to 2%, overall slowdown < 0.3%" result.

use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A memory request presented to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time in bus cycles.
    pub arrival: u64,
    /// Flat bank index.
    pub bank: u32,
    /// Read or write.
    pub op: Op,
    /// Extra cycles spent decompressing the returned line (reads only).
    pub decompression_cycles: u64,
}

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Demand read (latency-critical).
    Read,
    /// LLC write-back (posted; buffered in the write queue).
    Write,
}

/// Controller and queue configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessConfig {
    /// Interface timing.
    pub timing: TimingParams,
    /// Number of banks.
    pub banks: u32,
    /// Read queue capacity per bank (paper: 8).
    pub read_queue_cap: usize,
    /// Write queue capacity per bank (paper: 32).
    pub write_queue_cap: usize,
    /// When the write queue reaches capacity the bank drains down to this
    /// many entries before serving reads again.
    pub write_drain_low: usize,
}

impl AccessConfig {
    /// The paper's configuration (Table II).
    pub fn paper() -> Self {
        AccessConfig {
            timing: TimingParams::paper(),
            banks: 8,
            read_queue_cap: 8,
            write_queue_cap: 32,
            write_drain_low: 16,
        }
    }
}

impl Default for AccessConfig {
    fn default() -> Self {
        AccessConfig::paper()
    }
}

/// Aggregate latency statistics from one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct AccessStats {
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// Mean read latency in cycles (arrival to data delivered, including
    /// decompression).
    pub avg_read_latency: f64,
    /// Mean cycles reads spent waiting behind queued work.
    pub avg_read_queueing: f64,
    /// Maximum read latency observed.
    pub max_read_latency: u64,
}

#[derive(Debug, Default)]
struct Bank {
    free_at: u64,
    writes: VecDeque<u64>, // arrival times of queued write-backs
}

/// Simulates a request stream and returns latency statistics as
/// [`AccessStats`].
///
/// Requests must be sorted by arrival time. Reads are served ahead of
/// queued writes unless a bank's write queue is full, in which case the
/// bank drains writes down to the low-water mark first (paper's write-queue
/// policy).
///
/// # Panics
///
/// Panics if requests are unsorted or reference an out-of-range bank.
///
/// # Examples
///
/// ```
/// use pcm_device::access::{simulate, AccessConfig, Op, Request};
///
/// let cfg = AccessConfig::paper();
/// let reqs = vec![
///     Request { arrival: 0, bank: 0, op: Op::Read, decompression_cycles: 0 },
///     Request { arrival: 10, bank: 1, op: Op::Read, decompression_cycles: 1 },
/// ];
/// let stats = simulate(&cfg, &reqs);
/// assert_eq!(stats.reads, 2);
/// assert!(stats.avg_read_latency >= 69.0);
/// ```
pub fn simulate(cfg: &AccessConfig, requests: &[Request]) -> AccessStats {
    let mut banks: Vec<Bank> = (0..cfg.banks).map(|_| Bank::default()).collect();
    let mut stats = AccessStats::default();
    let mut latency_sum = 0u64;
    let mut queueing_sum = 0u64;
    let mut last_arrival = 0u64;

    let write_occ = cfg.timing.write_occupancy_cycles();
    let read_occ = cfg.timing.read_occupancy_cycles();
    let read_lat = cfg.timing.read_latency_cycles();

    for req in requests {
        assert!(
            req.arrival >= last_arrival,
            "requests must be sorted by arrival"
        );
        last_arrival = req.arrival;
        let bank = &mut banks[req.bank as usize];

        // Opportunistically drain queued writes that fit before this
        // request arrives.
        while let Some(&_w) = bank.writes.front() {
            if bank.free_at + write_occ <= req.arrival {
                bank.writes.pop_front();
                bank.free_at = bank.free_at.max(_w) + write_occ;
                stats.writes += 1;
            } else {
                break;
            }
        }

        match req.op {
            Op::Write => {
                bank.writes.push_back(req.arrival);
                // Full write queue forces a drain to the low-water mark.
                if bank.writes.len() >= cfg.write_queue_cap {
                    while bank.writes.len() > cfg.write_drain_low {
                        let w = bank.writes.pop_front().expect("non-empty");
                        bank.free_at = bank.free_at.max(w).max(req.arrival) + write_occ;
                        stats.writes += 1;
                    }
                }
            }
            Op::Read => {
                let start = bank.free_at.max(req.arrival);
                let queueing = start - req.arrival;
                let latency = queueing + read_lat + req.decompression_cycles;
                bank.free_at = start + read_occ;
                stats.reads += 1;
                latency_sum += latency;
                queueing_sum += queueing;
                stats.max_read_latency = stats.max_read_latency.max(latency);
            }
        }
    }

    // Flush remaining writes.
    for bank in &mut banks {
        stats.writes += bank.writes.len() as u64;
        bank.writes.clear();
    }

    if stats.reads > 0 {
        stats.avg_read_latency = latency_sum as f64 / stats.reads as f64;
        stats.avg_read_queueing = queueing_sum as f64 / stats.reads as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(arrival: u64, bank: u32) -> Request {
        Request {
            arrival,
            bank,
            op: Op::Read,
            decompression_cycles: 0,
        }
    }

    fn write(arrival: u64, bank: u32) -> Request {
        Request {
            arrival,
            bank,
            op: Op::Write,
            decompression_cycles: 0,
        }
    }

    #[test]
    fn idle_bank_read_takes_base_latency() {
        let cfg = AccessConfig::paper();
        let stats = simulate(&cfg, &[read(0, 0)]);
        assert_eq!(stats.avg_read_latency, 69.0);
        assert_eq!(stats.avg_read_queueing, 0.0);
    }

    #[test]
    fn back_to_back_reads_queue() {
        let cfg = AccessConfig::paper();
        let stats = simulate(&cfg, &[read(0, 0), read(1, 0)]);
        assert_eq!(stats.reads, 2);
        // Second read waits for the first's occupancy (132 cycles).
        assert!(stats.max_read_latency > 69);
    }

    #[test]
    fn reads_on_different_banks_do_not_interfere() {
        let cfg = AccessConfig::paper();
        let stats = simulate(&cfg, &[read(0, 0), read(0, 1), read(0, 2)]);
        assert_eq!(stats.avg_read_latency, 69.0);
    }

    #[test]
    fn decompression_adds_to_read_latency() {
        let cfg = AccessConfig::paper();
        let plain = simulate(&cfg, &[read(0, 0)]);
        let mut r = read(0, 0);
        r.decompression_cycles = 5;
        let comp = simulate(&cfg, &[r]);
        assert_eq!(comp.avg_read_latency - plain.avg_read_latency, 5.0);
    }

    #[test]
    fn writes_are_posted_and_drain_in_background() {
        let cfg = AccessConfig::paper();
        // A write then a read far in the future: the write drains before
        // the read arrives, so the read sees an idle bank.
        let stats = simulate(&cfg, &[write(0, 0), read(10_000, 0)]);
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.avg_read_latency, 69.0);
    }

    #[test]
    fn read_behind_undrained_write_waits() {
        let cfg = AccessConfig::paper();
        // Not enough slack to drain the write before the read arrives, but
        // the opportunistic drain already started it at cycle 0... the
        // drain check requires completion before arrival; at arrival 10 the
        // write (68 cycles) cannot finish, so the read waits.
        let stats = simulate(&cfg, &[write(0, 0), read(10, 0)]);
        // The write is still queued (not drained): read is served first.
        assert_eq!(stats.avg_read_queueing, 0.0);
        assert_eq!(stats.writes, 1); // flushed at end
    }

    #[test]
    fn full_write_queue_forces_drain() {
        let cfg = AccessConfig::paper();
        let mut reqs: Vec<Request> = (0..32).map(|i| write(i, 0)).collect();
        reqs.push(read(33, 0));
        let stats = simulate(&cfg, &reqs);
        // Drain to low-water mark (16) took 16 × 68 cycles, so the read
        // queues substantially.
        assert!(
            stats.avg_read_queueing > 500.0,
            "queueing {}",
            stats.avg_read_queueing
        );
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted_requests() {
        let cfg = AccessConfig::paper();
        simulate(&cfg, &[read(10, 0), read(0, 0)]);
    }
}
