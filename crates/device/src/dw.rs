//! Differential writes and Flip-N-Write.
//!
//! Every PCM chip carries read-modify-write logic: on a write it reads the
//! old block, compares bit-by-bit with the new data, and programs **only
//! the differing cells** (paper §I, §II-C). This reduces energy and wear,
//! but — as the paper's Fig. 1 shows — leaves a *random* bit-flip pattern
//! over the whole 64-byte block, which is exactly the inefficiency the
//! compression-window design attacks.
//!
//! [`FlipNWrite`] (Cho & Lee, MICRO 2009) is the stronger chip-level
//! variant: per data chunk it stores either the data or its complement
//! (whichever flips fewer cells) plus one flip flag, bounding flips at half
//! the chunk. The paper's baseline uses plain DW; Flip-N-Write is provided
//! as the ablation extension.

use pcm_util::simd::{self, LineBatch64, BATCH_LANES};
use pcm_util::Line512;
use serde::{Deserialize, Serialize};

/// The outcome of a differential write: the mask of programmed cells,
/// split by pulse polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffWrite {
    flip_mask: Line512,
    set_mask: Line512,
}

impl DiffWrite {
    /// The mask of cells the RMW circuit programs.
    pub fn flip_mask(&self) -> Line512 {
        self.flip_mask
    }

    /// Number of programmed (flipped) cells.
    pub fn flips(&self) -> u32 {
        self.flip_mask.count_ones()
    }

    /// Cells programmed 0→1 (SET pulses).
    pub fn sets(&self) -> u32 {
        self.set_mask.count_ones()
    }

    /// Cells programmed 1→0 (RESET pulses).
    pub fn resets(&self) -> u32 {
        (self.flip_mask & !self.set_mask).count_ones()
    }

    /// Number of flips within a byte window `[offset, offset + len)`.
    pub fn flips_in_window(&self, offset: usize, len: usize) -> u32 {
        self.flip_mask.count_ones_in(offset * 8..(offset + len) * 8)
    }
}

/// Computes the differential write of `new` over `old` as a [`DiffWrite`].
///
/// # Examples
///
/// ```
/// use pcm_device::dw::diff_write;
/// use pcm_util::Line512;
///
/// let mut old = Line512::zero();
/// let mut new = Line512::zero();
/// new.set_byte(3, 0xFF);
/// let dw = diff_write(&old, &new);
/// assert_eq!(dw.flips(), 8);
/// assert_eq!(dw.flips_in_window(3, 1), 8);
/// assert_eq!(dw.flips_in_window(0, 3), 0);
/// ```
pub fn diff_write(old: &Line512, new: &Line512) -> DiffWrite {
    let flip_mask = *old ^ *new;
    DiffWrite {
        flip_mask,
        set_mask: flip_mask & *new,
    }
}

/// Flip-N-Write state for one line: per-chunk flip flags.
///
/// # Examples
///
/// ```
/// use pcm_device::dw::FlipNWrite;
/// use pcm_util::Line512;
///
/// let mut fnw = FlipNWrite::new(64); // 64-bit chunks, 8 flags per line
/// let stored = Line512::zero();
/// // Writing all-ones would flip 512 cells under plain DW; Flip-N-Write
/// // instead stores the complement in every chunk, flipping only the
/// // eight flag cells.
/// let (new_stored, flips) = fnw.write(&stored, &Line512::ones());
/// assert_eq!(flips, 8);
/// assert_eq!(fnw.decode(&new_stored), Line512::ones());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlipNWrite {
    chunk_bits: usize,
    /// One bit per chunk, packed into a fixed bitset (at the minimum 2-bit
    /// chunk width there are 256 chunks): no heap allocation per line.
    flags: [u64; 4],
}

impl FlipNWrite {
    /// Creates Flip-N-Write state with the given chunk width in bits.
    ///
    /// # Panics
    ///
    /// Panics unless `chunk_bits` divides 512 and is at least 2.
    pub fn new(chunk_bits: usize) -> Self {
        assert!(
            chunk_bits >= 2 && 512 % chunk_bits == 0,
            "chunk width must divide 512, got {chunk_bits}"
        );
        FlipNWrite {
            chunk_bits,
            flags: [0; 4],
        }
    }

    /// Number of flag bits (one per chunk).
    pub fn flag_bits(&self) -> usize {
        512 / self.chunk_bits
    }

    fn flag(&self, chunk: usize) -> bool {
        self.flags[chunk / 64] >> (chunk % 64) & 1 != 0
    }

    fn set_flag(&mut self, chunk: usize, value: bool) {
        let bit = 1u64 << (chunk % 64);
        if value {
            self.flags[chunk / 64] |= bit;
        } else {
            self.flags[chunk / 64] &= !bit;
        }
    }

    /// Writes `data` over the currently `stored` cells, choosing per chunk
    /// between the data and its complement. Returns the new stored line and
    /// the number of cell flips (including flag-cell flips).
    pub fn write(&mut self, stored: &Line512, data: &Line512) -> (Line512, u32) {
        let diff = *stored ^ *data;
        // All chunk popcounts in one kernel pass (at the minimum 2-bit
        // chunk width there are 256 chunks).
        let mut counts = [0u32; 256];
        simd::chunk_popcounts(&diff.words(), self.chunk_bits, &mut counts);
        let mut total_flips = 0u32;
        for (chunk, &direct) in counts[..self.flag_bits()].iter().enumerate() {
            let complement = self.chunk_bits as u32 - direct;
            let (use_complement, flips) = if complement < direct {
                (true, complement)
            } else {
                (false, direct)
            };
            total_flips += flips + (self.flag(chunk) != use_complement) as u32;
            self.set_flag(chunk, use_complement);
        }
        // Every chunk is rewritten in full, so the stored image is just the
        // data XOR the mask of complemented chunks.
        (*data ^ self.complement_mask(), total_flips)
    }

    /// Decodes the logical data from stored cells using the current flags.
    pub fn decode(&self, stored: &Line512) -> Line512 {
        *stored ^ self.complement_mask()
    }

    /// The mask of cells belonging to chunks whose flag says "complemented".
    fn complement_mask(&self) -> Line512 {
        let mut words = [0u64; 8];
        if self.chunk_bits >= 64 {
            let words_per_chunk = self.chunk_bits / 64;
            for chunk in 0..self.flag_bits() {
                if self.flag(chunk) {
                    let lo = chunk * words_per_chunk;
                    for w in &mut words[lo..lo + words_per_chunk] {
                        *w = u64::MAX;
                    }
                }
            }
        } else {
            let chunks_per_word = 64 / self.chunk_bits;
            let seg = u64::MAX >> (64 - self.chunk_bits);
            for (w, word) in words.iter_mut().enumerate() {
                for c in 0..chunks_per_word {
                    if self.flag(w * chunks_per_word + c) {
                        *word |= seg << (c * self.chunk_bits);
                    }
                }
            }
        }
        Line512::from_words(words)
    }
}

/// The outcome of a batch differential write: per-lane flip and SET masks
/// in struct-of-arrays layout, so flip/pulse statistics for all lanes come
/// out of whole-plane popcount kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffWriteBatch {
    flip: LineBatch64,
    set: LineBatch64,
}

impl DiffWriteBatch {
    /// Number of live lanes.
    pub fn len(&self) -> usize {
        self.flip.len()
    }

    /// Returns `true` if no lane is live.
    pub fn is_empty(&self) -> bool {
        self.flip.is_empty()
    }

    /// The per-lane flip masks as a batch.
    pub fn flip_batch(&self) -> &LineBatch64 {
        &self.flip
    }

    /// One lane's differential write (matches [`diff_write`] on that lane).
    pub fn lane(&self, lane: usize) -> DiffWrite {
        DiffWrite {
            flip_mask: self.flip.lane(lane),
            set_mask: self.set.lane(lane),
        }
    }

    /// Per-lane programmed-cell counts (dead lanes report 0).
    pub fn flips(&self) -> [u32; BATCH_LANES] {
        simd::batch_popcount(&self.flip)
    }

    /// Per-lane SET-pulse counts.
    pub fn sets(&self) -> [u32; BATCH_LANES] {
        simd::batch_popcount(&self.set)
    }

    /// Per-lane flip counts within the byte window `[offset, offset + len)`.
    pub fn flips_in_window(&self, offset: usize, len: usize) -> [u32; BATCH_LANES] {
        simd::batch_window_popcount(&self.flip, offset, len)
    }
}

/// Computes the differential writes of `new` over `old` for every live lane
/// of a batch as a [`DiffWriteBatch`]. Lane `i` matches
/// `diff_write(&old.lane(i), &new.lane(i))`.
///
/// # Panics
///
/// Panics if the batches have different live lanes.
// pcm-audit: root(hotpath-alloc) — whole-plane SIMD kernels only; allocation here would defeat the batch layout
pub fn diff_write_batch(old: &LineBatch64, new: &LineBatch64) -> DiffWriteBatch {
    let flip = simd::batch_xor(old, new);
    let set = simd::batch_and(&flip, new);
    DiffWriteBatch { flip, set }
}

/// Applies Flip-N-Write to every live lane of a batch: `fnws[i]` encodes
/// `data` lane `i` over `stored` lane `i`. Returns the new stored lines as
/// a batch plus the per-lane flip counts (dead lanes report 0).
///
/// Lane `i` matches `fnws[i].write(&stored.lane(i), &data.lane(i))`.
///
/// # Panics
///
/// Panics unless `fnws.len()` equals the batch length and both batches
/// have the same live lanes.
pub fn flip_n_write_batch(
    fnws: &mut [FlipNWrite],
    stored: &LineBatch64,
    data: &LineBatch64,
) -> (LineBatch64, [u32; BATCH_LANES]) {
    assert_eq!(
        stored.live_mask(),
        data.live_mask(),
        "batches have different live lanes"
    );
    assert_eq!(fnws.len(), stored.len(), "one FlipNWrite state per lane");
    let mut out = LineBatch64::new();
    let mut flips = [0u32; BATCH_LANES];
    for (lane, fnw) in fnws.iter_mut().enumerate() {
        let (new_stored, lane_flips) = fnw.write(&stored.lane(lane), &data.lane(lane));
        out.push(&new_stored);
        flips[lane] = lane_flips;
    }
    (out, flips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::seeded_rng;

    #[test]
    fn identical_write_flips_nothing() {
        let mut rng = seeded_rng(51);
        let line = Line512::random(&mut rng);
        assert_eq!(diff_write(&line, &line).flips(), 0);
    }

    #[test]
    fn flip_mask_is_xor() {
        let mut rng = seeded_rng(52);
        for _ in 0..16 {
            let a = Line512::random(&mut rng);
            let b = Line512::random(&mut rng);
            let dw = diff_write(&a, &b);
            assert_eq!(dw.flip_mask(), a ^ b);
            assert_eq!(dw.flips(), a.hamming_distance(&b));
        }
    }

    #[test]
    fn window_flip_counts_partition_total() {
        let mut rng = seeded_rng(53);
        let a = Line512::random(&mut rng);
        let b = Line512::random(&mut rng);
        let dw = diff_write(&a, &b);
        let halves = dw.flips_in_window(0, 32) + dw.flips_in_window(32, 32);
        assert_eq!(halves, dw.flips());
    }

    #[test]
    fn fnw_bounds_flips_at_half_chunk_plus_flag() {
        let mut rng = seeded_rng(54);
        let mut fnw = FlipNWrite::new(64);
        let mut stored = Line512::zero();
        for _ in 0..32 {
            let data = Line512::random(&mut rng);
            let (new_stored, flips) = fnw.write(&stored, &data);
            // Per chunk at most chunk/2 data flips + 1 flag flip.
            assert!(flips <= 8 * (32 + 1), "flips {flips}");
            assert_eq!(fnw.decode(&new_stored), data);
            stored = new_stored;
        }
    }

    #[test]
    fn fnw_never_worse_than_dw_by_more_than_flags() {
        let mut rng = seeded_rng(55);
        let mut fnw = FlipNWrite::new(32);
        let mut stored = Line512::zero();
        let mut logical = Line512::zero();
        for _ in 0..16 {
            let data = Line512::random(&mut rng);
            let dw_flips = diff_write(&logical, &data).flips();
            let (new_stored, flips) = fnw.write(&stored, &data);
            assert!(
                flips <= dw_flips + fnw.flag_bits() as u32,
                "FNW {flips} vs DW {dw_flips}"
            );
            stored = new_stored;
            logical = data;
        }
    }

    #[test]
    fn fnw_decode_round_trip_with_alternating_patterns() {
        let mut fnw = FlipNWrite::new(128);
        let mut stored = Line512::zero();
        for pattern in [
            Line512::ones(),
            Line512::zero(),
            Line512::from_fn(|i| i % 2 == 0),
        ] {
            let (s, _) = fnw.write(&stored, &pattern);
            assert_eq!(fnw.decode(&s), pattern);
            stored = s;
        }
    }

    #[test]
    #[should_panic(expected = "divide 512")]
    fn fnw_rejects_bad_chunk() {
        FlipNWrite::new(7);
    }
}
