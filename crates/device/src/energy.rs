//! Write/read energy accounting.
//!
//! PCM programming is asymmetric: the short, high-current RESET pulse
//! (amorphize → 0) costs more energy per bit than the long SET pulse
//! (crystallize → 1), and both dwarf read sensing. The paper motivates
//! compression partly through energy ("the increase in the number of bit
//! flips leads to increased energy consumption", §I/§III-A.1); this module
//! quantifies that with per-pulse energies from the paper's device
//! baseline (Lee et al., ISCA 2009).

use crate::dw::DiffWrite;
use pcm_util::Line512;
use serde::{Deserialize, Serialize};

/// Per-pulse energy constants in picojoules.
///
/// # Examples
///
/// ```
/// use pcm_device::energy::EnergyModel;
/// use pcm_device::dw::diff_write;
/// use pcm_util::Line512;
///
/// let e = EnergyModel::paper();
/// // Writing all-ones over all-zeros: 512 SET pulses.
/// let dw = diff_write(&Line512::zero(), &Line512::ones());
/// assert_eq!(e.write_energy_pj(&dw), 512.0 * e.set_pj);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one SET (0→1) pulse, pJ.
    pub set_pj: f64,
    /// Energy of one RESET (1→0) pulse, pJ.
    pub reset_pj: f64,
    /// Energy to sense one bit on a read, pJ.
    pub read_pj: f64,
}

impl EnergyModel {
    /// The ISCA'09 PCM device baseline the paper's Table II derives from:
    /// 13.5 pJ SET, 19.2 pJ RESET, ~0.2 pJ read sensing per bit.
    pub fn paper() -> Self {
        EnergyModel {
            set_pj: 13.5,
            reset_pj: 19.2,
            read_pj: 0.2,
        }
    }

    /// Energy of one differential write, pJ: each programmed cell costs a
    /// SET or RESET pulse depending on its new value.
    pub fn write_energy_pj(&self, dw: &DiffWrite) -> f64 {
        dw.sets() as f64 * self.set_pj + dw.resets() as f64 * self.reset_pj
    }

    /// Mean write energy over a sequence of line versions (each element
    /// differentially written over the previous one), pJ per write.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two versions are given.
    pub fn mean_write_energy_pj(&self, versions: &[Line512]) -> f64 {
        assert!(versions.len() >= 2, "need at least one transition");
        let total: f64 = versions
            .windows(2)
            .map(|w| self.write_energy_pj(&crate::dw::diff_write(&w[0], &w[1])))
            .sum();
        total / (versions.len() - 1) as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dw::diff_write;
    use pcm_util::seeded_rng;

    #[test]
    fn set_and_reset_polarity() {
        let e = EnergyModel::paper();
        let ones = Line512::ones();
        let zero = Line512::zero();
        let up = diff_write(&zero, &ones);
        let down = diff_write(&ones, &zero);
        assert_eq!(e.write_energy_pj(&up), 512.0 * 13.5);
        assert_eq!(e.write_energy_pj(&down), 512.0 * 19.2);
        assert!(e.write_energy_pj(&down) > e.write_energy_pj(&up));
    }

    #[test]
    fn identical_write_costs_nothing() {
        let e = EnergyModel::paper();
        let mut rng = seeded_rng(5);
        let line = Line512::random(&mut rng);
        assert_eq!(e.write_energy_pj(&diff_write(&line, &line)), 0.0);
    }

    #[test]
    fn mixed_write_splits_by_direction() {
        let e = EnergyModel::paper();
        let mut old = Line512::zero();
        old.set_byte(0, 0xFF); // bits 0..8 set
        let mut new = Line512::zero();
        new.set_byte(1, 0xFF); // bits 8..16 set
        let dw = diff_write(&old, &new);
        // 8 resets (byte 0 clears) + 8 sets (byte 1 fills).
        assert_eq!(dw.sets(), 8);
        assert_eq!(dw.resets(), 8);
        assert_eq!(e.write_energy_pj(&dw), 8.0 * 13.5 + 8.0 * 19.2);
    }

    #[test]
    fn mean_energy_over_sequence() {
        let e = EnergyModel::paper();
        let seq = [Line512::zero(), Line512::ones(), Line512::zero()];
        let mean = e.mean_write_energy_pj(&seq);
        assert_eq!(mean, (512.0 * 13.5 + 512.0 * 19.2) / 2.0);
    }
}
