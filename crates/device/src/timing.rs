//! DDR-style timing parameters of the PCM interface (paper Table II,
//! following Lee et al., ISCA 2009).
//!
//! The bus runs at 400 MHz (2.5 ns cycles). Array latencies come from the
//! device model: 48 ns reads, 40 ns RESET pulses, 150 ns SET pulses (the
//! SET pulse dominates write occupancy).

use serde::{Deserialize, Serialize};

/// Interface and array timing of the simulated PCM DIMM.
///
/// All `t_*` fields are in bus cycles; array pulse widths are in
/// nanoseconds.
///
/// # Examples
///
/// ```
/// use pcm_device::TimingParams;
///
/// let t = TimingParams::paper();
/// assert_eq!(t.cycle_ns(), 2.5);
/// // Read latency: activate + CAS + burst.
/// assert_eq!(t.read_latency_cycles(), 60 + 5 + 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Bus clock in MHz.
    pub clock_mhz: u32,
    /// Activate-to-CAS delay (row access; dominated by the 48 ns array
    /// read plus interface overhead), cycles.
    pub t_rcd: u32,
    /// CAS latency, cycles.
    pub t_cl: u32,
    /// Write latency (CAS write to first data), cycles.
    pub t_wl: u32,
    /// CAS-to-CAS delay, cycles.
    pub t_ccd: u32,
    /// Write-to-read turnaround, cycles.
    pub t_wtr: u32,
    /// Read-to-precharge, cycles.
    pub t_rtp: u32,
    /// Precharge (write-back of the row), cycles.
    pub t_rp: u32,
    /// Activate-to-activate (different bank) after an activate, cycles.
    pub t_rrd_act: u32,
    /// Activate-to-activate after a precharge, cycles.
    pub t_rrd_pre: u32,
    /// Burst length in transfers (eight transfers move one 64-byte line).
    pub burst_len: u32,
    /// Array read pulse, ns.
    pub read_ns: f64,
    /// RESET pulse, ns.
    pub reset_ns: f64,
    /// SET pulse, ns (dominates write occupancy).
    pub set_ns: f64,
}

impl TimingParams {
    /// The paper's Table II parameters.
    pub fn paper() -> Self {
        TimingParams {
            clock_mhz: 400,
            t_rcd: 60,
            t_cl: 5,
            t_wl: 4,
            t_ccd: 4,
            t_wtr: 4,
            t_rtp: 3,
            t_rp: 60,
            t_rrd_act: 2,
            t_rrd_pre: 11,
            burst_len: 8,
            read_ns: 48.0,
            reset_ns: 40.0,
            set_ns: 150.0,
        }
    }

    /// Bus cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.clock_mhz as f64
    }

    /// Converts nanoseconds to whole bus cycles (rounded up).
    pub fn ns_to_cycles(&self, ns: f64) -> u64 {
        (ns / self.cycle_ns()).ceil() as u64
    }

    /// Data-bus cycles occupied by one line burst (double data rate: eight
    /// transfers in four cycles).
    pub fn burst_cycles(&self) -> u32 {
        self.burst_len / 2
    }

    /// Idle-bank read latency in cycles: activate, CAS, burst.
    pub fn read_latency_cycles(&self) -> u64 {
        (self.t_rcd + self.t_cl + self.burst_cycles()) as u64
    }

    /// Bank occupancy of one read in cycles (through precharge).
    pub fn read_occupancy_cycles(&self) -> u64 {
        (self.t_rcd + self.t_cl + self.burst_cycles() + self.t_rtp + self.t_rp) as u64
    }

    /// Bank occupancy of one write in cycles: the SET pulse dominates the
    /// array programming time.
    pub fn write_occupancy_cycles(&self) -> u64 {
        (self.t_wl + self.burst_cycles()) as u64 + self.ns_to_cycles(self.set_ns)
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_round_trip() {
        let t = TimingParams::paper();
        assert_eq!(t.cycle_ns(), 2.5);
        assert_eq!(t.ns_to_cycles(150.0), 60);
        assert_eq!(t.ns_to_cycles(48.0), 20);
        assert_eq!(t.burst_cycles(), 4);
    }

    #[test]
    fn read_latency_near_paper_array_read() {
        let t = TimingParams::paper();
        // 69 cycles at 2.5ns = 172.5ns end-to-end for an idle bank.
        assert_eq!(t.read_latency_cycles(), 69);
    }

    #[test]
    fn write_occupancy_dominated_by_set() {
        let t = TimingParams::paper();
        assert_eq!(t.write_occupancy_cycles(), 4 + 4 + 60);
        // The 150 ns SET pulse is the dominant component.
        assert!(t.ns_to_cycles(t.set_ns) * 2 > t.write_occupancy_cycles());
        assert!(t.ns_to_cycles(t.set_ns) > t.ns_to_cycles(t.reset_ns));
    }

    #[test]
    fn rounding_up_partial_cycles() {
        let t = TimingParams::paper();
        assert_eq!(t.ns_to_cycles(1.0), 1);
        assert_eq!(t.ns_to_cycles(2.6), 2);
        assert_eq!(t.ns_to_cycles(0.0), 0);
    }
}
