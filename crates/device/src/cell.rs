//! Per-cell endurance, wear accumulation, and stuck-at failure.
//!
//! Every PCM cell endures a finite number of programming events before its
//! heater detaches (stuck-at-RESET) or its GST loses crystallinity
//! (stuck-at-SET). The paper's fault model (§IV): endurance is drawn per
//! cell from a normal distribution with mean `10^7` and CoV 0.15 (0.25 for
//! the §V.C process-variation study); a failed cell is stuck at the value
//! it held when it failed, and — crucially for every scheme in the paper —
//! stuck-at faults are *detected* at write time by the verify step, so the
//! controller always knows the fault positions and stuck values.

use pcm_util::dist::Normal;
use pcm_util::fault::{FaultMap, StuckAt};
use pcm_util::{simd, Line512, DATA_BITS};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The endurance distribution of PCM cells.
///
/// # Examples
///
/// ```
/// use pcm_device::EnduranceModel;
///
/// let paper = EnduranceModel::paper();
/// assert_eq!(paper.mean(), 1e7);
/// assert_eq!(paper.cov(), 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnduranceModel {
    mean: f64,
    cov: f64,
}

impl EnduranceModel {
    /// Creates an endurance model with the given mean write count and
    /// coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics if `mean < 1` or `cov` is negative.
    pub fn new(mean: f64, cov: f64) -> Self {
        assert!(mean >= 1.0, "endurance mean must be at least 1, got {mean}");
        assert!(cov >= 0.0, "CoV must be non-negative");
        EnduranceModel { mean, cov }
    }

    /// The paper's default: mean `10^7`, CoV 0.15 (Table II).
    pub fn paper() -> Self {
        EnduranceModel::new(1e7, 0.15)
    }

    /// Mean endurance.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Coefficient of variation.
    pub fn cov(&self) -> f64 {
        self.cov
    }

    /// Samples one cell's endurance (clamped to at least 1 write).
    pub fn sample_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let n = Normal::from_cov(self.mean, self.cov);
        n.sample_clamped(rng, 1.0).round().min(u32::MAX as f64) as u32
    }
}

/// PCM cell technology: bits stored per physical cell.
///
/// MLC doubles density by storing two bits per cell at the cost of much
/// lower endurance (10^5–10^6 per the paper's footnote) and slower access.
/// In the MLC model, a programming event wears the *cell*; when it sticks,
/// both of its bits freeze.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellTech {
    /// One bit per cell (the paper's baseline).
    Slc,
    /// Two bits per cell.
    Mlc2,
}

impl CellTech {
    /// Bits stored per cell.
    pub(crate) fn bits_per_cell(&self) -> usize {
        match self {
            CellTech::Slc => 1,
            CellTech::Mlc2 => 2,
        }
    }

    /// Physical cells backing a 512-bit line.
    pub fn cells_per_line(&self) -> usize {
        DATA_BITS / self.bits_per_cell()
    }

    /// A representative endurance model for this technology: the paper's
    /// 10^7 for SLC, 10^6 (ITRS/Kang et al. band) for MLC.
    pub fn default_endurance(&self) -> EnduranceModel {
        match self {
            CellTech::Slc => EnduranceModel::paper(),
            CellTech::Mlc2 => EnduranceModel::new(1e6, 0.15),
        }
    }
}

impl std::fmt::Display for CellTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellTech::Slc => write!(f, "SLC"),
            CellTech::Mlc2 => write!(f, "MLC-2"),
        }
    }
}

/// The result of one physical line write.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// Number of cells the RMW circuit attempted to program (bit flips
    /// under differential writes) — the paper's wear/energy metric.
    pub flips: u32,
    /// Mask of the cells that were programmed.
    pub flip_mask: Line512,
    /// Cells that failed *during this write* and are now stuck.
    pub new_faults: Vec<StuckAt>,
}

/// The wear state of one 512-bit line: per-cell endurance, accumulated
/// programming counts, current stored values, and the stuck-at fault map.
///
/// Writes are differential: only differing cells are programmed, each
/// programming event consumes one endurance unit, and a cell whose budget
/// is exhausted sticks at the value it currently holds (the new value fails
/// to program).
///
/// # Examples
///
/// ```
/// use pcm_device::{EnduranceModel, LineWear};
/// use pcm_util::Line512;
///
/// let mut rng = pcm_util::seeded_rng(3);
/// let mut line = LineWear::sample(&EnduranceModel::new(100.0, 0.0), &mut rng);
/// let outcome = line.write(&Line512::ones());
/// assert_eq!(outcome.flips, 512);
/// assert!(outcome.new_faults.is_empty());
/// assert_eq!(line.stored(), Line512::ones());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LineWear {
    tech: CellTech,
    endurance: Vec<u32>,
    wear: Vec<u32>,
    stored: Line512,
    faults: FaultMap,
    /// Death-free write budget: a lower bound on `endurance - wear` over
    /// every healthy cell. While positive, a differential write cannot
    /// kill any cell (each write programs a cell at most once), so the
    /// SLC hot path skips the per-cell death check entirely and just
    /// decrements the bound. Pure cache: 0 is always safe (the next
    /// write runs the full check and recomputes), so it is excluded from
    /// equality.
    slack: u32,
    /// Whether `slack` has never been computed for the current fault set.
    /// The bound only *rises* when a dying cell leaves the healthy set, so
    /// the full write path recomputes it exactly then (or on first use)
    /// instead of on every slow-path write.
    slack_stale: bool,
}

impl PartialEq for LineWear {
    fn eq(&self, other: &Self) -> bool {
        // `slack` is a conservative cache, not state: two lines that took
        // different code paths to identical wear may hold different slack.
        self.tech == other.tech
            && self.endurance == other.endurance
            && self.wear == other.wear
            && self.stored == other.stored
            && self.faults == other.faults
    }
}

impl Eq for LineWear {}

impl LineWear {
    /// Samples a fresh SLC line from an endurance model. Cells start at
    /// zero (RESET) with no wear.
    pub fn sample<R: Rng + ?Sized>(model: &EnduranceModel, rng: &mut R) -> Self {
        LineWear::sample_with_tech(model, CellTech::Slc, rng)
    }

    /// Samples a fresh line with the given cell technology.
    pub fn sample_with_tech<R: Rng + ?Sized>(
        model: &EnduranceModel,
        tech: CellTech,
        rng: &mut R,
    ) -> Self {
        let cells = tech.cells_per_line();
        let endurance = (0..cells).map(|_| model.sample_cell(rng)).collect();
        LineWear {
            tech,
            endurance,
            wear: vec![0; cells],
            stored: Line512::zero(),
            faults: FaultMap::new(),
            slack: 0,
            slack_stale: true,
        }
    }

    /// Creates an SLC line with explicit per-cell endurance (for tests).
    ///
    /// # Panics
    ///
    /// Panics unless exactly 512 values are given.
    pub fn with_endurance(endurance: Vec<u32>) -> Self {
        assert_eq!(endurance.len(), DATA_BITS, "need one endurance per cell");
        LineWear {
            tech: CellTech::Slc,
            endurance,
            wear: vec![0; DATA_BITS],
            stored: Line512::zero(),
            faults: FaultMap::new(),
            slack: 0,
            slack_stale: true,
        }
    }

    /// Creates an SLC line with infinite-endurance healthy cells and the
    /// given pre-existing stuck-at faults (stored values start at each
    /// fault's stuck value, zero elsewhere).
    ///
    /// This is the fault-injection entry point of the verification
    /// harness: it realizes a planned fault set *exactly* — position and
    /// stuck polarity — where wearing cells out through writes would leave
    /// the stuck value dependent on the data stream.
    pub fn with_faults(faults: &FaultMap) -> Self {
        let mut endurance = vec![u32::MAX; DATA_BITS];
        let mut wear = vec![0; DATA_BITS];
        for f in faults.iter() {
            endurance[f.pos as usize] = 0;
            wear[f.pos as usize] = 0;
        }
        LineWear {
            tech: CellTech::Slc,
            endurance,
            wear,
            stored: faults.apply(Line512::zero()),
            faults: *faults,
            slack: 0,
            slack_stale: true,
        }
    }

    /// The cell technology of this line.
    pub fn tech(&self) -> CellTech {
        self.tech
    }

    /// Physical cell index backing bit `pos`.
    fn cell_of(&self, pos: usize) -> usize {
        pos / self.tech.bits_per_cell()
    }

    /// The values physically held by the cells right now.
    pub fn stored(&self) -> Line512 {
        self.stored
    }

    /// The stuck-at faults accumulated so far.
    pub fn faults(&self) -> &FaultMap {
        &self.faults
    }

    /// Remaining endurance of cell `pos` (0 when stuck).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 512`.
    pub fn remaining(&self, pos: usize) -> u32 {
        let c = self.cell_of(pos);
        self.endurance[c].saturating_sub(self.wear[c])
    }

    /// Sampled endurance of the cell backing bit `pos`.
    pub fn endurance_of(&self, pos: usize) -> u32 {
        self.endurance[self.cell_of(pos)]
    }

    /// Accumulated programming events of the cell backing bit `pos`.
    pub fn wear_of(&self, pos: usize) -> u32 {
        self.wear[self.cell_of(pos)]
    }

    /// Performs a differential write of `target` over the stored values.
    ///
    /// Only differing cells are programmed. A cell that exhausts its
    /// endurance during this write keeps its *old* value and becomes stuck
    /// there; the failure is reported in the [`WriteOutcome`] (write-verify), so the
    /// caller can immediately re-encode around it.
    pub fn write(&mut self, target: &Line512) -> WriteOutcome {
        let diff = self.stored ^ *target;
        if self.tech == CellTech::Slc {
            return self.write_slc(diff);
        }
        self.write_per_bit(diff)
    }

    /// SLC fast path: with one bit per cell, every differing cell is
    /// independent, so the per-bit loop collapses into whole-line lane
    /// kernels — program the non-stuck diff bits, step their wear lanes,
    /// and materialize stuck-at faults for the lanes that just died. The
    /// per-bit loop below ([`Self::write_per_bit`]) is the reference
    /// semantic; the differential rig in `tests/dw_batch_equiv.rs` pins
    /// the equivalence against an independent model.
    fn write_slc(&mut self, diff: Line512) -> WriteOutcome {
        let flips = diff.count_ones();
        let program = diff & !self.faults.positions();
        // Death-free fast path: while the slack bound is positive, no
        // programmed cell can exhaust its endurance on this write (each
        // write programs a cell at most once), so the death scan, fault
        // materialization, and bound recomputation are all skipped.
        if self.slack > 0 {
            if !program.is_zero() {
                self.slack -= 1;
                simd::mask_accumulate(&mut self.wear, &program.words());
                self.stored = self.stored ^ program;
            }
            return WriteOutcome {
                flips,
                flip_mask: diff,
                // pcm-audit: allow(hotpath-alloc) — Vec::new does not allocate; the fast path returns an empty fault list
                new_faults: Vec::new(),
            };
        }
        let died_words = if program.is_zero() {
            [0u64; 8]
        } else {
            simd::wear_step(&mut self.wear, &self.endurance, &program.words())
        };
        let died = Line512::from_words(died_words);
        // Programmed cells that survived take the new value; dead cells
        // keep the value they held (stuck at the old value).
        self.stored = self.stored ^ (program & !died);
        // pcm-audit: allow(hotpath-alloc) — allocation deferred to the first cell death, a once-per-cell event
        let mut new_faults = Vec::new();
        if !died.is_zero() {
            for pos in died.iter_ones() {
                let fault = StuckAt {
                    pos: pos as u16,
                    value: self.stored.bit(pos),
                };
                self.faults.insert(fault);
                // pcm-audit: allow(hotpath-alloc) — pushes only when a cell dies, a once-per-cell event
                new_faults.push(fault);
            }
        }
        // Re-arm the fast path only when the bound can have risen: a death
        // removed the weakest cell from the healthy set, or it was never
        // computed. While a healthy cell sits at zero remaining the bound
        // stays zero, and rescanning every write would cost more than the
        // death check it is meant to avoid.
        if self.slack_stale || !new_faults.is_empty() {
            let healthy = !self.faults.positions();
            self.slack = simd::min_remaining(&self.wear, &self.endurance, &healthy.words());
            self.slack_stale = false;
        }
        WriteOutcome {
            flips,
            flip_mask: diff,
            new_faults,
        }
    }

    /// Reference per-bit write loop; the only live path for MLC, where
    /// bits share cells (one wear event per cell per write, cell death
    /// freezes every bit of the cell).
    fn write_per_bit(&mut self, diff: Line512) -> WriteOutcome {
        // The per-bit path never maintains the slack bound (MLC wear is
        // per-cell, not per-bit); drop it so SLC fast-path assumptions
        // cannot leak across a tech boundary.
        self.slack = 0;
        // pcm-audit: allow(hotpath-alloc) — allocation deferred to the first cell death, a once-per-cell event
        let mut new_faults = Vec::new();
        let mut flips = 0u32;
        let bpc = self.tech.bits_per_cell();
        let mut last_worn_cell = usize::MAX;
        for pos in diff.iter_ones() {
            flips += 1;
            // (every differing cell receives a programming pulse, stuck or
            // not — `diff` doubles as the flip mask below)
            if self.faults.is_faulty(pos) {
                // Programming pulse hits a stuck cell: no effect.
                continue;
            }
            let cell = self.cell_of(pos);
            // One programming event per *cell* per write, even when both
            // of an MLC cell's bits change.
            if cell != last_worn_cell {
                self.wear[cell] += 1;
                last_worn_cell = cell;
            }
            if self.wear[cell] > self.endurance[cell] {
                // The whole cell sticks: every bit it backs freezes at its
                // current value.
                for bit in cell * bpc..(cell + 1) * bpc {
                    if !self.faults.is_faulty(bit) {
                        let fault = StuckAt {
                            pos: bit as u16,
                            value: self.stored.bit(bit),
                        };
                        self.faults.insert(fault);
                        // pcm-audit: allow(hotpath-alloc) — pushes only when a cell dies, a once-per-cell event
                        new_faults.push(fault);
                    }
                }
            } else {
                self.stored.flip_bit(pos);
            }
        }
        WriteOutcome {
            flips,
            flip_mask: diff,
            new_faults,
        }
    }

    /// Fast-forwards wear on a cell by `events` programming events without
    /// changing its stored value, returning the fault if it fails.
    ///
    /// The accelerated lifetime engine uses this to skip millions of
    /// identical trace passes.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 512`.
    pub fn add_wear(&mut self, pos: usize, events: u32) -> Option<StuckAt> {
        if self.faults.is_faulty(pos) {
            return None;
        }
        // One cell absorbing `events` can lower the line-wide minimum by
        // at most `events`; shrinking the bound keeps it conservative.
        self.slack = self.slack.saturating_sub(events);
        let cell = self.cell_of(pos);
        self.wear[cell] = self.wear[cell].saturating_add(events);
        if self.wear[cell] > self.endurance[cell] {
            let bpc = self.tech.bits_per_cell();
            let mut first = None;
            for bit in cell * bpc..(cell + 1) * bpc {
                if !self.faults.is_faulty(bit) {
                    let fault = StuckAt {
                        pos: bit as u16,
                        value: self.stored.bit(bit),
                    };
                    self.faults.insert(fault);
                    first.get_or_insert(fault);
                }
            }
            first
        } else {
            None
        }
    }

    /// Number of writes the healthiest cell of the line can still absorb
    /// (the line is far from dead while this is large).
    pub fn max_remaining(&self) -> u32 {
        (0..DATA_BITS).map(|p| self.remaining(p)).max().unwrap_or(0)
    }

    /// Projects the write count at which proportional wear replay first
    /// kills a cell.
    ///
    /// The accelerated lifetime engine observes per-bit flip `counts`
    /// over `done` sampled writes and then replays the rest of a segment
    /// analytically: bit `pos` is charged `counts[pos] * extra / done`
    /// further programming events. This scans every worn, healthy cell
    /// and tightens `extra` to the earliest write at which one of them is
    /// projected to exceed its endurance, so the caller never overshoots
    /// a death inside a fast-forwarded span. Bulk twin of the per-cell
    /// bound the engine previously computed through [`Self::remaining`];
    /// the whole scan stays inside this line's slices.
    ///
    /// # Panics
    ///
    /// Panics if `done` is zero (there is no flip profile to scale).
    pub fn project_first_failure(&self, counts: &[u32; DATA_BITS], done: u64, extra: u64) -> u64 {
        assert!(done > 0, "cannot project wear from zero sampled writes");
        let healthy = !self.faults.positions();
        let mut extra = extra;
        let slc = self.tech == CellTech::Slc;
        for (pos, &c) in counts.iter().enumerate() {
            if c == 0 || !healthy.bit(pos) {
                continue;
            }
            let cell = if slc { pos } else { self.cell_of(pos) };
            let remaining = self.endurance[cell].saturating_sub(self.wear[cell]);
            // The cell survives `remaining` more events and fails on the
            // next; at `c` events per `done` writes that is
            // `ceil(scaled_events / c)` writes. Divide only on strict
            // improvements of the running bound (it is monotone, so that
            // is a handful of divisions per call).
            let events_to_fail = remaining as u64 + 1;
            let scaled_events = events_to_fail.saturating_mul(done);
            if scaled_events <= (extra - 1).saturating_mul(c as u64) {
                extra = extra.min(scaled_events.div_ceil(c as u64));
            }
        }
        extra
    }

    /// Fast-forwards wear on every bit at once: bit `pos` absorbs
    /// `grants[pos]` programming events (zero grants and stuck bits are
    /// skipped), and each cell pushed past its endurance sticks at its
    /// current stored value, exactly as [`Self::add_wear`] would
    /// position-by-position in ascending order. One slack-bound
    /// recomputation at the end replaces 512 conservative decrements.
    pub fn add_wear_bulk(&mut self, grants: &[u32; DATA_BITS]) {
        if self.tech != CellTech::Slc {
            // MLC shares cells between bits; keep the reference per-bit
            // semantics (fault spread across the cell's bits).
            for (pos, &g) in grants.iter().enumerate() {
                if g > 0 {
                    let _ = self.add_wear(pos, g);
                }
            }
            return;
        }
        for (pos, &g) in grants.iter().enumerate() {
            if g == 0 || self.faults.is_faulty(pos) {
                continue;
            }
            self.wear[pos] = self.wear[pos].saturating_add(g);
            if self.wear[pos] > self.endurance[pos] {
                self.faults.insert(StuckAt {
                    pos: pos as u16,
                    value: self.stored.bit(pos),
                });
            }
        }
        let healthy = !self.faults.positions();
        self.slack = simd::min_remaining(&self.wear, &self.endurance, &healthy.words());
        self.slack_stale = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_util::seeded_rng;

    #[test]
    fn with_faults_realizes_positions_and_polarity() {
        let faults: FaultMap = [
            StuckAt {
                pos: 0,
                value: true,
            },
            StuckAt {
                pos: 77,
                value: false,
            },
            StuckAt {
                pos: 511,
                value: true,
            },
        ]
        .into_iter()
        .collect();
        let mut line = LineWear::with_faults(&faults);
        assert_eq!(*line.faults(), faults);
        assert!(line.stored().bit(0) && line.stored().bit(511));
        assert!(!line.stored().bit(77));
        // Writing against the stuck values programs but does not change them,
        // and healthy cells have effectively infinite endurance.
        let outcome = line.write(&Line512::zero());
        assert!(outcome.new_faults.is_empty());
        assert!(!line.stored().bit(77));
        assert!(line.stored().bit(0), "stuck-at-1 survives a zero write");
        // Healthy cells were not programmed (the diff only covered the two
        // stuck-at-1 positions), so their endurance budget is untouched.
        assert_eq!(line.remaining(100), u32::MAX);
        assert_eq!(line.remaining(0), 0, "stuck cell has no budget left");
    }

    #[test]
    fn endurance_sampling_matches_model() {
        let model = EnduranceModel::new(1000.0, 0.1);
        let mut rng = seeded_rng(61);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| model.sample_cell(&mut rng) as f64)
            .collect();
        let mean = pcm_util::stats::mean(&samples);
        let sd = pcm_util::stats::std_dev(&samples);
        assert!((mean - 1000.0).abs() < 5.0, "mean {mean}");
        assert!((sd - 100.0).abs() < 5.0, "sd {sd}");
    }

    #[test]
    fn zero_cov_is_deterministic() {
        let model = EnduranceModel::new(50.0, 0.0);
        let mut rng = seeded_rng(62);
        for _ in 0..100 {
            assert_eq!(model.sample_cell(&mut rng), 50);
        }
    }

    #[test]
    fn differential_write_only_programs_diff() {
        let mut line = LineWear::with_endurance(vec![100; 512]);
        let mut target = Line512::zero();
        target.set_byte(0, 0xFF);
        let o1 = line.write(&target);
        assert_eq!(o1.flips, 8);
        // Re-writing identical data programs nothing.
        let o2 = line.write(&target);
        assert_eq!(o2.flips, 0);
        assert_eq!(line.wear_of(0), 1);
        assert_eq!(line.wear_of(8), 0);
    }

    #[test]
    fn cell_sticks_at_old_value_when_exhausted() {
        // Cell 0 endures exactly 2 programming events.
        let mut endurance = vec![1000u32; 512];
        endurance[0] = 2;
        let mut line = LineWear::with_endurance(endurance);
        let mut one = Line512::zero();
        one.set_bit(0, true);
        let zero = Line512::zero();

        assert!(line.write(&one).new_faults.is_empty()); // wear 1
        assert!(line.write(&zero).new_faults.is_empty()); // wear 2
        let outcome = line.write(&one); // wear 3 > 2: fails
        assert_eq!(
            outcome.new_faults,
            vec![StuckAt {
                pos: 0,
                value: false
            }]
        );
        assert!(!line.stored().bit(0), "stuck at old value 0");
        assert_eq!(line.remaining(0), 0);

        // Further writes to the stuck cell change nothing and report no new
        // faults.
        let again = line.write(&one);
        assert_eq!(again.flips, 1);
        assert!(again.new_faults.is_empty());
        assert!(!line.stored().bit(0));
    }

    #[test]
    fn add_wear_fast_forward_matches_write_loop() {
        let mut endurance = vec![u32::MAX; 512];
        endurance[7] = 10;
        let mut by_writes = LineWear::with_endurance(endurance.clone());
        let mut by_ff = LineWear::with_endurance(endurance);

        // Toggle bit 7 ten times: ten programming events, no failure.
        let mut flip = Line512::zero();
        for i in 0..10 {
            flip.set_bit(7, i % 2 == 0);
            assert!(by_writes.write(&flip).new_faults.is_empty());
        }
        assert!(by_ff.add_wear(7, 10).is_none());
        assert_eq!(by_writes.wear_of(7), by_ff.wear_of(7));

        // The 11th event kills the cell in both models.
        flip.set_bit(7, true);
        assert_eq!(by_writes.write(&flip).new_faults.len(), 1);
        assert!(by_ff.add_wear(7, 1).is_some());
    }

    #[test]
    fn faults_respected_on_later_writes() {
        let mut endurance = vec![u32::MAX; 512];
        endurance[100] = 0; // dies on first programming
        let mut line = LineWear::with_endurance(endurance);
        let mut target = Line512::zero();
        target.set_bit(100, true);
        let o = line.write(&target);
        assert_eq!(o.new_faults.len(), 1);
        assert_eq!(line.faults().count(), 1);
        assert_eq!(line.faults().stuck_value(100), Some(false));
    }

    #[test]
    fn mlc_cell_failure_freezes_both_bits() {
        let model = EnduranceModel::new(2.0, 0.0);
        let mut rng = seeded_rng(65);
        let mut line = LineWear::sample_with_tech(&model, CellTech::Mlc2, &mut rng);
        assert_eq!(line.tech(), CellTech::Mlc2);
        // Toggle bit 0 (cell 0) until the cell dies; bit 1 must freeze too.
        let mut flip = Line512::zero();
        flip.set_bit(0, true);
        assert!(line.write(&flip).new_faults.is_empty()); // wear 1
        flip.set_bit(0, false);
        assert!(line.write(&flip).new_faults.is_empty()); // wear 2
        flip.set_bit(0, true);
        let out = line.write(&flip); // wear 3 > 2: cell 0 dies
        assert_eq!(out.new_faults.len(), 2, "both bits of the cell stick");
        assert!(line.faults().is_faulty(0));
        assert!(line.faults().is_faulty(1));
        assert!(!line.faults().is_faulty(2), "cell 1 unaffected");
    }

    #[test]
    fn mlc_double_bit_change_is_one_programming_event() {
        let model = EnduranceModel::new(100.0, 0.0);
        let mut rng = seeded_rng(66);
        let mut line = LineWear::sample_with_tech(&model, CellTech::Mlc2, &mut rng);
        // Flip both bits of cell 0 in one write: one wear event.
        let mut target = Line512::zero();
        target.set_bit(0, true);
        target.set_bit(1, true);
        let out = line.write(&target);
        assert_eq!(out.flips, 2, "two bit flips");
        assert_eq!(line.wear_of(0), 1, "one cell programming event");
        assert_eq!(line.wear_of(1), 1, "same cell");
        assert_eq!(line.wear_of(2), 0);
    }

    #[test]
    fn cell_tech_geometry() {
        assert_eq!(CellTech::Slc.cells_per_line(), 512);
        assert_eq!(CellTech::Mlc2.cells_per_line(), 256);
        assert_eq!(CellTech::Mlc2.default_endurance().mean(), 1e6);
        assert_eq!(CellTech::Mlc2.to_string(), "MLC-2");
    }

    #[test]
    fn mlc_add_wear_maps_bits_to_cells() {
        let model = EnduranceModel::new(10.0, 0.0);
        let mut rng = seeded_rng(67);
        let mut line = LineWear::sample_with_tech(&model, CellTech::Mlc2, &mut rng);
        assert!(line.add_wear(5, 10).is_none()); // cell 2 at its limit
        let fault = line.add_wear(4, 1); // same cell, one more event: dies
        assert!(fault.is_some());
        assert!(line.faults().is_faulty(4));
        assert!(line.faults().is_faulty(5));
    }

    #[test]
    fn max_remaining_tracks_healthiest_cell() {
        let mut endurance = vec![5u32; 512];
        endurance[3] = 50;
        let mut line = LineWear::with_endurance(endurance);
        assert_eq!(line.max_remaining(), 50);
        line.add_wear(3, 20);
        assert_eq!(line.max_remaining(), 30);
    }
}
