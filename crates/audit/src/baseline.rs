//! The grandfathering baseline: `audit-baseline.toml`.
//!
//! Pre-existing findings are tracked per `(rule, file)` with a count and a
//! mandatory reason, so the gate can be strict for *new* code while old
//! debt is paid down incrementally. Counts only ratchet down: a group that
//! exceeds its baselined count fails the audit, a group that shrinks is
//! reported as a stale entry to tighten.
//!
//! The format is the TOML subset below (parsed in-tree — the workspace is
//! offline, so no external TOML crate):
//!
//! ```toml
//! [[allow]]
//! rule = "panic-unwrap"
//! file = "crates/compress/src/bdi.rs"
//! count = 2
//! reason = "decoder invariants guarded by round-trip proptests"
//! ```

use crate::rules::{rule, Finding};
use std::collections::BTreeMap;

/// One grandfathered `(rule, file)` group.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id from the rule table.
    pub rule: String,
    /// Repo-relative file the findings live in.
    pub file: String,
    /// Number of findings grandfathered in that file.
    pub count: usize,
    /// Why these findings are acceptable for now.
    pub reason: String,
}

/// Parses `audit-baseline.toml`.
///
/// # Errors
///
/// Returns a message naming the offending line for syntax errors, unknown
/// keys or rule ids, missing reasons, and duplicate `(rule, file)` pairs.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let at = |msg: String| format!("audit-baseline.toml:{}: {msg}", no + 1);
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(BaselineEntry {
                count: 1,
                ..Default::default()
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(at(format!("expected `key = value`, got `{line}`")));
        };
        let Some(entry) = entries.last_mut() else {
            return Err(at("key before the first [[allow]] header".to_string()));
        };
        let (key, value) = (key.trim(), value.trim());
        let unquote = |v: &str| -> Result<String, String> {
            let inner = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| at(format!("`{key}` must be a quoted string")))?;
            Ok(inner.to_string())
        };
        match key {
            "rule" => entry.rule = unquote(value)?,
            "file" => entry.file = unquote(value)?,
            "reason" => entry.reason = unquote(value)?,
            "count" => {
                entry.count = value
                    .parse()
                    .map_err(|_| at(format!("`count` must be an integer, got `{value}`")))?
            }
            other => return Err(at(format!("unknown key `{other}`"))),
        }
    }
    let mut seen = BTreeMap::new();
    for e in &entries {
        if rule(&e.rule).is_none() {
            return Err(format!("baseline entry names unknown rule '{}'", e.rule));
        }
        if e.file.is_empty() {
            return Err(format!("baseline entry for rule '{}' has no file", e.rule));
        }
        if e.reason.trim().is_empty() {
            return Err(format!(
                "baseline entry {}/{} needs a reason",
                e.rule, e.file
            ));
        }
        if e.count == 0 {
            return Err(format!(
                "baseline entry {}/{} has count 0; delete it instead",
                e.rule, e.file
            ));
        }
        if seen.insert((e.rule.clone(), e.file.clone()), ()).is_some() {
            return Err(format!("duplicate baseline entry {}/{}", e.rule, e.file));
        }
    }
    Ok(entries)
}

/// The result of filtering findings through the baseline.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not covered by the baseline (these fail the audit).
    pub visible: Vec<Finding>,
    /// Number of findings the baseline suppressed.
    pub baselined: usize,
    /// Groups that exceeded their baselined count (`rule/file: N > M`).
    pub exceeded: Vec<String>,
    /// Entries whose group shrank or vanished (safe to tighten).
    pub stale: Vec<String>,
}

/// Filters sorted findings through the baseline.
///
/// A group at or under its baselined count is suppressed entirely; a group
/// over it keeps **all** its findings visible (plus an `exceeded` note), so
/// a regression cannot hide behind grandfathered neighbors.
pub fn apply(findings: Vec<Finding>, entries: &[BaselineEntry]) -> Applied {
    let mut groups: BTreeMap<(String, String), Vec<Finding>> = BTreeMap::new();
    for f in findings {
        groups
            .entry((f.rule.to_string(), f.file.clone()))
            .or_default()
            .push(f);
    }
    let mut applied = Applied::default();
    for e in entries {
        let key = (e.rule.clone(), e.file.clone());
        match groups.get(&key) {
            None => applied.stale.push(format!(
                "{}/{}: 0 findings vs count {}",
                e.rule, e.file, e.count
            )),
            Some(group) if group.len() <= e.count => {
                if group.len() < e.count {
                    applied.stale.push(format!(
                        "{}/{}: {} finding(s) vs count {}",
                        e.rule,
                        e.file,
                        group.len(),
                        e.count
                    ));
                }
                applied.baselined += group.len();
                groups.remove(&key);
            }
            Some(group) => applied.exceeded.push(format!(
                "{}/{}: {} finding(s) vs baselined {}",
                e.rule,
                e.file,
                group.len(),
                e.count
            )),
        }
    }
    applied.visible = groups.into_values().flatten().collect();
    applied.visible.sort();
    applied.stale.sort();
    applied.exceeded.sort();
    applied
}

/// Renders findings as a fresh baseline file (reasons left as TODOs).
pub fn render(findings: &[Finding]) -> String {
    let mut groups: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in findings {
        *groups.entry((f.rule, f.file.as_str())).or_default() += 1;
    }
    let mut out = String::from(
        "# pcm-audit grandfathered findings. Counts only ratchet down; every\n\
         # entry needs a reason. See DESIGN.md §11 for the policy.\n",
    );
    for ((rule, file), count) in groups {
        out.push_str(&format!(
            "\n[[allow]]\nrule = \"{rule}\"\nfile = \"{file}\"\ncount = {count}\n\
             reason = \"TODO: justify or fix\"\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            message: "m".to_string(),
        }
    }

    #[test]
    fn parse_round_trips_render() {
        let findings = vec![
            finding("panic-unwrap", "a.rs", 1),
            finding("panic-unwrap", "a.rs", 2),
            finding("panic-macro", "b.rs", 3),
        ];
        let text = render(&findings).replace("TODO: justify or fix", "because");
        let entries = parse(&text).expect("rendered baseline must parse");
        assert_eq!(entries.len(), 2);
        let a = entries
            .iter()
            .find(|e| e.file == "a.rs")
            .expect("a.rs entry");
        assert_eq!((a.rule.as_str(), a.count), ("panic-unwrap", 2));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(
            parse("rule = \"panic-unwrap\"").is_err(),
            "key before header"
        );
        assert!(parse("[[allow]]\nrule = \"nope\"\nfile = \"a\"\nreason = \"r\"").is_err());
        assert!(
            parse("[[allow]]\nrule = \"pragma\"\nfile = \"a\"").is_err(),
            "no reason"
        );
        assert!(
            parse("[[allow]]\nrule = \"pragma\"\nfile = \"a\"\nreason = \"r\"\ncount = x").is_err()
        );
        let dup = "[[allow]]\nrule = \"pragma\"\nfile = \"a\"\nreason = \"r\"\n\
                   [[allow]]\nrule = \"pragma\"\nfile = \"a\"\nreason = \"r\"\n";
        assert!(parse(dup).is_err(), "duplicate entries");
    }

    #[test]
    fn apply_suppresses_exact_and_under_counts() {
        let entries = parse(
            "[[allow]]\nrule = \"panic-unwrap\"\nfile = \"a.rs\"\ncount = 2\nreason = \"r\"\n\
             [[allow]]\nrule = \"panic-macro\"\nfile = \"gone.rs\"\ncount = 1\nreason = \"r\"\n",
        )
        .expect("baseline parses");
        let out = apply(
            vec![
                finding("panic-unwrap", "a.rs", 1),
                finding("panic-unwrap", "a.rs", 2),
            ],
            &entries,
        );
        assert!(out.visible.is_empty());
        assert_eq!(out.baselined, 2);
        assert_eq!(out.stale.len(), 1, "vanished group is stale");
    }

    #[test]
    fn apply_fails_whole_group_on_excess() {
        let entries = parse(
            "[[allow]]\nrule = \"panic-unwrap\"\nfile = \"a.rs\"\ncount = 1\nreason = \"r\"\n",
        )
        .expect("baseline parses");
        let out = apply(
            vec![
                finding("panic-unwrap", "a.rs", 1),
                finding("panic-unwrap", "a.rs", 2),
            ],
            &entries,
        );
        assert_eq!(out.visible.len(), 2, "excess keeps the whole group visible");
        assert_eq!(out.exceeded.len(), 1);
    }
}
