//! The audit rule table and rule implementations.
//!
//! Every rule has an id, a scope, and a one-line summary; `--list-rules`
//! prints this table and DESIGN.md §11 documents it. Adding a rule means
//! adding one [`RuleInfo`] row plus its check body here — the engine,
//! pragma filter, baseline, and CLI all key off the table.

use crate::lexer::{Comment, Kind, Lexed};

/// Where a rule runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Once per `.rs` file.
    File,
    /// Once per workspace (manifests, gate script, artifacts).
    Workspace,
}

/// One row of the rule table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, used in pragmas and the baseline.
    pub id: &'static str,
    /// Scope the rule runs at.
    pub scope: Scope,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
}

/// Every rule the auditor knows, in presentation order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wallclock",
        scope: Scope::File,
        summary: "Instant::now/SystemTime outside the timing allowlist breaks replayability",
    },
    RuleInfo {
        id: "map-order",
        scope: Scope::File,
        summary: "default-hasher HashMap/HashSet in result-path crates (core/trace/bench); \
                  use BTreeMap/BTreeSet or sort before folding",
    },
    RuleInfo {
        id: "rng-source",
        scope: Scope::File,
        summary: "RNG constructed outside pcm_util::seeded_rng/split_seed plumbing",
    },
    RuleInfo {
        id: "thread-spawn",
        scope: Scope::File,
        summary: "thread::spawn/scope outside pcm_util::pool; ad-hoc parallelism can \
                  reintroduce scheduling-dependent results",
    },
    RuleInfo {
        id: "panic-unwrap",
        scope: Scope::File,
        summary: "bare unwrap() in library code; return Result or expect() with a message",
    },
    RuleInfo {
        id: "panic-macro",
        scope: Scope::File,
        summary: "panic!/unreachable!/todo!/unimplemented! in library code",
    },
    RuleInfo {
        id: "unsafe-block",
        scope: Scope::File,
        summary: "unsafe without an adjacent `// SAFETY:` comment; commented sites land \
                  in the inventory (and simd-confine pins where they may live)",
    },
    RuleInfo {
        id: "simd-confine",
        scope: Scope::File,
        summary: "unsafe, CPU intrinsics, or cfg(feature = \"simd\") outside \
                  crates/util/src/simd.rs; the dual scalar/vector file owns all \
                  lane machinery",
    },
    RuleInfo {
        id: "serve-ownership",
        scope: Scope::File,
        summary: "Arc<Mutex/RwLock> in serve/core library code; bank state is owned by \
                  value and handed out as &mut through the pool, never shared",
    },
    RuleInfo {
        id: "pragma",
        scope: Scope::File,
        summary: "malformed pcm-audit pragma (unknown rule id, missing reason, or a \
                  root() mark that attaches to no fn)",
    },
    RuleInfo {
        id: "hotpath-alloc",
        scope: Scope::File,
        summary: "allocating call (Vec::new/Box::new/push/clone/to_string/format!/vec!) \
                  reachable from a `root(hotpath-alloc)`-annotated hot-path fn",
    },
    RuleInfo {
        id: "panic-reach",
        scope: Scope::File,
        summary: "panic!/unwrap (everywhere) or expect/slice-indexing (serve crate) \
                  reachable from a `root(panic-reach)`-annotated connection handler",
    },
    RuleInfo {
        id: "pub-dead",
        scope: Scope::File,
        summary: "pub item in library code never referenced outside its defining crate \
                  (tests/bins/doctests count as outside)",
    },
    RuleInfo {
        id: "registry-dep",
        scope: Scope::Workspace,
        summary: "Cargo.toml dependency that is not a path/workspace dep (offline build)",
    },
    RuleInfo {
        id: "gate-stages",
        scope: Scope::Workspace,
        summary: "scripts_run_all.sh is missing a required gate stage",
    },
    RuleInfo {
        id: "artifact-sync",
        scope: Scope::Workspace,
        summary: "REGISTRY names, results/*.json, and EXPERIMENTS.md rows out of sync",
    },
];

/// Rules that accept `// pcm-audit: root(<rule>)` entry-point marks.
pub const ROOT_RULES: &[&str] = &["hotpath-alloc", "panic-reach"];

/// Looks a rule up by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line, or 0 for whole-file/workspace findings.
    pub line: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable message.
    pub message: String,
}

impl Finding {
    /// Renders as `file:line: [rule] message` (no `:line` when 0).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

// ---------------------------------------------------------------- scoping

/// Files whose whole point is measuring wall-clock time.
const WALLCLOCK_ALLOW: &[&str] = &[
    "crates/criterion/",
    "crates/bench/src/hotpath.rs",
    "crates/bench/src/registry.rs",
    "crates/bench/src/bin/pcm-lab.rs",
];

/// Crates whose outputs feed Report tables/series (the determinism
/// surface the `map-order` rule protects).
const MAP_ORDER_SCOPE: &[&str] = &["crates/core/src", "crates/trace/src", "crates/bench/src"];

/// The sanctioned home of RNG construction.
const RNG_ALLOW: &[&str] = &["crates/util/", "crates/rand/", "crates/proptest/"];

/// The sanctioned homes of thread creation: the deterministic job pool and
/// the auditor's own file walker (which never touches simulation results).
const THREAD_ALLOW: &[&str] = &["crates/util/src/pool.rs", "crates/audit/"];

/// Crates holding controller/bank state, where shared-ownership wrappers
/// would defeat the strict per-bank ownership the serve design rests on.
const SERVE_OWNERSHIP_SCOPE: &[&str] = &["crates/serve/src", "crates/core/src"];

/// The single file allowed to hold vector-lane machinery: `unsafe`, CPU
/// intrinsics, `target_feature`, and the `simd` cargo-feature gate. Keeping
/// them in one dual-implementation file is what makes the scalar/vector
/// differential test rig total.
const SIMD_CONFINE_ALLOW: &[&str] = &["crates/util/src/simd.rs"];

/// Stage markers the gate script must keep, in order of appearance.
pub const GATE_STAGES: &[&str] = &[
    "== fmt check ==",
    "== audit ==",
    "== verify ==",
    "== examples ==",
    "== bench hotpath ==",
    "== simd ==",
    "== experiments ==",
    "== serve ==",
    "== rivals ==",
];

/// Non-experiment artifact stems the gate script itself writes.
const ARTIFACT_STEM_ALLOW: &[&str] =
    &["audit", "bench_hotpath", "fmt", "rivals", "serve", "verify"];

/// Non-experiment artifact stem prefixes (bench harness, example smoke).
const ARTIFACT_PREFIX_ALLOW: &[&str] = &["BENCH_", "example_", "simd_"];

/// True for library code: under a crate's `src/` (or the root `src/`)
/// and not a binary target. Tests, benches, and examples live outside
/// `src/` and are excluded by construction.
pub fn is_lib_code(rel: &str) -> bool {
    let in_src = rel.starts_with("src/") || (rel.starts_with("crates/") && rel.contains("/src/"));
    in_src && !rel.contains("src/bin/") && !rel.ends_with("src/main.rs")
}

fn path_allowed(rel: &str, allow: &[&str]) -> bool {
    allow.iter().any(|a| rel == *a || rel.starts_with(a))
}

// ---------------------------------------------------------------- pragmas

/// A parsed allow pragma: the `pcm-audit:` marker, a rule id in
/// parentheses, and a mandatory reason.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment starts on; it covers this line and the next.
    pub line: u32,
    /// Rule id being allowed.
    pub rule: String,
    /// Justification text (must be non-empty).
    pub reason: String,
}

/// Extracts pragmas from a file's comments; malformed ones become
/// findings under the `pragma` rule.
pub fn collect_pragmas(
    rel: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<Pragma> {
    let mut pragmas = Vec::new();
    for c in comments {
        // Doc comments describe the syntax; only plain comments suppress.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("pcm-audit:") else {
            continue;
        };
        // Only `pcm-audit:` immediately followed by `allow(` is a pragma;
        // prose that merely mentions the tool is left alone.
        let rest = c.text[at + "pcm-audit:".len()..].trim_start();
        if !rest.starts_with("allow(") {
            continue;
        }
        let bad = |findings: &mut Vec<Finding>, msg: &str| {
            findings.push(Finding {
                file: rel.to_string(),
                line: c.line,
                rule: "pragma",
                message: msg.to_string(),
            });
        };
        let Some(close) = rest.find(')') else {
            bad(
                findings,
                "pragma is missing the closing ')' after the rule id",
            );
            continue;
        };
        let id = rest["allow(".len()..close].trim();
        if rule(id).is_none() {
            bad(findings, &format!("pragma names unknown rule '{id}'"));
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '-', '—', ':', '–'])
            .trim();
        if reason.is_empty() {
            bad(
                findings,
                &format!("pragma allow({id}) needs a reason after the rule id"),
            );
            continue;
        }
        pragmas.push(Pragma {
            line: c.line,
            rule: id.to_string(),
            reason: reason.to_string(),
        });
    }
    pragmas
}

/// A `root(<rule>)` mark declaring the next fn item an analysis entry
/// point for one of the [`ROOT_RULES`].
#[derive(Debug, Clone)]
pub struct RootMark {
    /// Line the mark comment starts on; it annotates the next fn item.
    pub line: u32,
    /// The rule whose reachability analysis starts here.
    pub rule: &'static str,
}

/// Extracts `root(<rule>)` marks from a file's comments; malformed ones
/// (unknown rule, non-root rule, missing reason) become `pragma`
/// findings.
pub fn collect_root_marks(
    rel: &str,
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) -> Vec<RootMark> {
    let mut marks = Vec::new();
    for c in comments {
        // Doc comments describe the syntax; only plain comments carry marks.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("pcm-audit:") else {
            continue;
        };
        let rest = c.text[at + "pcm-audit:".len()..].trim_start();
        if !rest.starts_with("root(") {
            continue;
        }
        let bad = |findings: &mut Vec<Finding>, msg: String| {
            findings.push(Finding {
                file: rel.to_string(),
                line: c.line,
                rule: "pragma",
                message: msg,
            });
        };
        let Some(close) = rest.find(')') else {
            bad(
                findings,
                "root mark is missing the closing ')' after the rule id".to_string(),
            );
            continue;
        };
        let id = rest["root(".len()..close].trim();
        let Some(info) = rule(id) else {
            bad(findings, format!("root mark names unknown rule '{id}'"));
            continue;
        };
        if !ROOT_RULES.contains(&info.id) {
            bad(
                findings,
                format!("rule '{id}' does not take root() marks (only {ROOT_RULES:?} do)"),
            );
            continue;
        }
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '-', '—', ':', '–'])
            .trim();
        if reason.is_empty() {
            bad(
                findings,
                format!("root({id}) needs a reason describing the hot-path contract"),
            );
            continue;
        }
        marks.push(RootMark {
            line: c.line,
            rule: info.id,
        });
    }
    marks
}

/// Drops findings covered by a pragma on the same or preceding line.
pub fn apply_pragmas(findings: Vec<Finding>, pragmas: &[Pragma]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            !pragmas
                .iter()
                .any(|p| p.rule == f.rule && (f.line == p.line || f.line == p.line + 1))
        })
        .collect()
}

// ---------------------------------------------------------------- file rules

// `#[cfg(test)]` region marking moved to the item parser, which shares it
// with the symbol index.
pub use crate::parser::test_region_flags;

/// Output of the per-file checks.
#[derive(Debug, Default)]
pub struct FileOutput {
    /// Findings (pragmas already applied).
    pub findings: Vec<Finding>,
    /// `file:line` entries for `unsafe` sites carrying a SAFETY comment.
    pub unsafe_inventory: Vec<String>,
}

/// Runs every file-scoped rule over one lexed `.rs` file.
pub fn check_file(rel: &str, lexed: &Lexed) -> FileOutput {
    let mut out = FileOutput::default();
    let mut findings = Vec::new();
    let pragmas = collect_pragmas(rel, &lexed.comments, &mut findings);
    let in_test = test_region_flags(&lexed.tokens);
    let lib = is_lib_code(rel);
    let toks = &lexed.tokens;

    let ident = |i: usize| toks.get(i).filter(|t| t.kind == Kind::Ident);
    let punct = |i: usize, c: &str| {
        toks.get(i)
            .is_some_and(|t| t.kind == Kind::Punct && t.text == c)
    };

    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            continue;
        }

        // wallclock: ambient time sources outside the timing allowlist.
        if !path_allowed(rel, WALLCLOCK_ALLOW) {
            let instant_now = t.text == "Instant"
                && punct(i + 1, ":")
                && punct(i + 2, ":")
                && ident(i + 3).is_some_and(|n| n.text == "now");
            if instant_now || t.text == "SystemTime" {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "wallclock",
                    message: format!(
                        "ambient time source `{}` outside the timing allowlist; \
                         thread timing through a parameter or move it to an allowlisted file",
                        if instant_now {
                            "Instant::now"
                        } else {
                            "SystemTime"
                        }
                    ),
                });
            }
        }

        // map-order: default-hasher maps in result-path crates.
        if !in_test[i]
            && path_allowed(rel, MAP_ORDER_SCOPE)
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "map-order",
                message: format!(
                    "`{}` in a result-path crate: iteration order is nondeterministic; \
                     use BTreeMap/BTreeSet, sort before folding, or pragma-annotate \
                     a genuinely order-free use",
                    t.text
                ),
            });
        }

        // rng-source: RNG construction outside the seeded plumbing.
        if !path_allowed(rel, RNG_ALLOW)
            && matches!(
                t.text.as_str(),
                "seed_from_u64" | "SeedableRng" | "from_entropy" | "thread_rng"
            )
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "rng-source",
                message: format!(
                    "`{}` outside pcm-util: derive RNGs via pcm_util::seeded_rng / split_seed \
                     so every stream is pinned to an experiment seed",
                    t.text
                ),
            });
        }

        // thread-spawn: ad-hoc thread creation outside the job pool.
        if !in_test[i]
            && !path_allowed(rel, THREAD_ALLOW)
            && t.text == "thread"
            && punct(i + 1, ":")
            && punct(i + 2, ":")
        {
            if let Some(entry) = ident(i + 3).filter(|n| n.text == "spawn" || n.text == "scope") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "thread-spawn",
                    message: format!(
                        "`thread::{}` outside pcm_util::pool: route parallel work through \
                         the shared Pool so results stay scheduling-invariant",
                        entry.text
                    ),
                });
            }
        }

        // panic-unwrap / panic-macro: library code only, tests excluded.
        if lib && !in_test[i] {
            if t.text == "unwrap" && punct(i + 1, "(") && punct(i + 2, ")") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "panic-unwrap",
                    message: "bare unwrap() in library code: return a Result, or use \
                              expect() with an invariant message, or pragma-annotate"
                        .to_string(),
                });
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && punct(i + 1, "!")
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "panic-macro",
                    message: format!(
                        "`{}!` in library code: return an error or pragma-annotate the invariant",
                        t.text
                    ),
                });
            }
        }

        // serve-ownership: Arc<Mutex/RwLock> around bank/controller state.
        if !in_test[i]
            && path_allowed(rel, SERVE_OWNERSHIP_SCOPE)
            && t.text == "Arc"
            && punct(i + 1, "<")
        {
            // The wrapped type may be a path (`std::sync::Mutex`): walk
            // `ident (:: ident)*` until the path ends.
            let mut j = i + 2;
            while let Some(tok) = toks.get(j) {
                match tok.kind {
                    Kind::Ident => {
                        if tok.text == "Mutex" || tok.text == "RwLock" {
                            findings.push(Finding {
                                file: rel.to_string(),
                                line: t.line,
                                rule: "serve-ownership",
                                message: format!(
                                    "`Arc<{}>` shared state in an ownership-critical crate: \
                                     bank/controller state must be owned by value and handed \
                                     out as &mut (Pool::map_each_mut), never lock-shared",
                                    tok.text
                                ),
                            });
                            break;
                        }
                        j += 1;
                    }
                    Kind::Punct if tok.text == ":" => j += 1,
                    _ => break,
                }
            }
        }

        // simd-confine: vector-lane machinery outside the one dual-impl file.
        if lib && !in_test[i] && !path_allowed(rel, SIMD_CONFINE_ALLOW) {
            let arch_path = (t.text == "std" || t.text == "core")
                && punct(i + 1, ":")
                && punct(i + 2, ":")
                && ident(i + 3).is_some_and(|n| n.text == "arch");
            let cfg_simd = t.text == "feature"
                && punct(i + 1, "=")
                && toks
                    .get(i + 2)
                    .is_some_and(|s| s.kind == Kind::Str && s.text == "simd");
            let offender = if t.text == "unsafe" {
                Some("`unsafe`")
            } else if t.text == "target_feature" {
                Some("`target_feature`")
            } else if arch_path {
                Some("CPU intrinsics (`::arch`)")
            } else if cfg_simd {
                Some("`cfg(feature = \"simd\")`")
            } else {
                None
            };
            if let Some(what) = offender {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "simd-confine",
                    message: format!(
                        "{what} outside crates/util/src/simd.rs: all lane machinery \
                         (unsafe, intrinsics, the simd feature gate) lives in the one \
                         dual scalar/vector file so the differential rig covers it"
                    ),
                });
            }
        }

        // unsafe-block: inventory with SAFETY comment, finding without.
        if t.text == "unsafe" {
            let has_safety = lexed
                .comments
                .iter()
                .any(|c| c.text.contains("SAFETY:") && c.line + 3 >= t.line && c.line <= t.line);
            if has_safety {
                out.unsafe_inventory.push(format!("{rel}:{}", t.line));
            } else {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "unsafe-block",
                    message: "`unsafe` without an adjacent `// SAFETY:` comment; the workspace \
                              is unsafe-free by policy"
                        .to_string(),
                });
            }
        }
    }

    out.findings = apply_pragmas(findings, &pragmas);
    out.findings.sort();
    out.findings.dedup();
    out
}

// ------------------------------------------------------------ workspace rules

/// Inputs for the workspace-scoped rules, gathered by the walker.
#[derive(Debug, Default)]
pub struct WorkspaceCtx {
    /// `(rel path, content)` of every Cargo.toml.
    pub manifests: Vec<(String, String)>,
    /// Content of `scripts_run_all.sh`, if present.
    pub gate_script: Option<String>,
    /// Experiment names extracted from `crates/bench/src/experiments/*.rs`.
    pub registry_names: Vec<String>,
    /// File names (not paths) under `results/`.
    pub results_files: Vec<String>,
    /// Content of `EXPERIMENTS.md`, if present.
    pub experiments_md: Option<String>,
}

/// Extracts registry names from a lexed experiments source file: the
/// first string literal following each `fn name` item header.
pub fn registry_names_in(lexed: &Lexed) -> Vec<String> {
    let toks = &lexed.tokens;
    let mut names = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == Kind::Ident
            && toks[i].text == "fn"
            && toks.get(i + 1).is_some_and(|t| t.text == "name")
        {
            for t in toks.iter().skip(i + 2).take(16) {
                if t.kind == Kind::Str {
                    names.push(t.text.clone());
                    break;
                }
                if t.text == "}" || t.text == ";" {
                    break;
                }
            }
        }
    }
    names
}

/// Runs every workspace-scoped rule.
pub fn check_workspace(ctx: &WorkspaceCtx) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_registry_deps(ctx, &mut findings);
    check_gate_stages(ctx, &mut findings);
    check_artifact_sync(ctx, &mut findings);
    findings.sort();
    findings.dedup();
    findings
}

/// Offline hygiene: every dependency must resolve inside the workspace.
fn check_registry_deps(ctx: &WorkspaceCtx, findings: &mut Vec<Finding>) {
    for (rel, text) in &ctx.manifests {
        let mut section = String::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                section = line.trim_matches(['[', ']']).to_string();
                continue;
            }
            let dep_section = matches!(
                section.as_str(),
                "dependencies"
                    | "dev-dependencies"
                    | "build-dependencies"
                    | "workspace.dependencies"
            );
            if !dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, value)) = line.split_once('=') else {
                continue;
            };
            let (name, value) = (name.trim(), value.trim());
            // `foo.workspace = true` inherits the workspace (path) dep;
            // `foo = { path = … }` / `{ workspace = true }` are inline.
            if name.ends_with(".workspace") || value.contains("path") || value.contains("workspace")
            {
                continue;
            }
            findings.push(Finding {
                file: rel.clone(),
                line: lineno as u32 + 1,
                rule: "registry-dep",
                message: format!(
                    "dependency `{}` is not a path/workspace dep; registry deps cannot \
                     resolve in the offline container",
                    name.trim()
                ),
            });
        }
    }
}

/// The gate script must keep every stage (and the drivers they invoke).
fn check_gate_stages(ctx: &WorkspaceCtx, findings: &mut Vec<Finding>) {
    let Some(script) = &ctx.gate_script else {
        return;
    };
    for marker in GATE_STAGES {
        if !script.contains(marker) {
            findings.push(Finding {
                file: "scripts_run_all.sh".to_string(),
                line: 0,
                rule: "gate-stages",
                message: format!("required stage marker `{marker}` is missing"),
            });
        }
    }
    for driver in ["pcm-audit", "pcm-lab", "pcm-verify", "pcm-serve"] {
        if !script.contains(driver) {
            findings.push(Finding {
                file: "scripts_run_all.sh".to_string(),
                line: 0,
                rule: "gate-stages",
                message: format!("gate script no longer invokes `{driver}`"),
            });
        }
    }
}

fn stem_allowed(stem: &str, names: &[String]) -> bool {
    names.iter().any(|n| n == stem)
        || ARTIFACT_STEM_ALLOW.contains(&stem)
        || ARTIFACT_PREFIX_ALLOW.iter().any(|p| stem.starts_with(p))
}

/// Registry names ↔ tracked results ↔ EXPERIMENTS.md rows, both ways.
fn check_artifact_sync(ctx: &WorkspaceCtx, findings: &mut Vec<Finding>) {
    let mut push = |file: String, message: String| {
        findings.push(Finding {
            file,
            line: 0,
            rule: "artifact-sync",
            message,
        });
    };
    // The audit gate's machine-readable artifact: whenever a results/
    // tree is tracked, `results/audit.json` and the gate script's
    // `--json` emission must appear together or not at all.
    if !ctx.results_files.is_empty() {
        if let Some(script) = &ctx.gate_script {
            let script_writes = script.contains("results/audit.json");
            let tracked = ctx.results_files.iter().any(|f| f == "audit.json");
            if script_writes && !tracked {
                push(
                    "results/audit.json".to_string(),
                    "the gate script writes results/audit.json but no such artifact \
                     is tracked"
                        .to_string(),
                );
            }
            if tracked && !script_writes {
                push(
                    "results/audit.json".to_string(),
                    "tracked results/audit.json is not regenerated by the gate script \
                     (the audit stage's --json emission is missing)"
                        .to_string(),
                );
            }
        }
    }
    let names = &ctx.registry_names;
    if names.is_empty() {
        return;
    }
    for name in names {
        if !ctx
            .results_files
            .iter()
            .any(|f| f == &format!("{name}.json"))
        {
            push(
                format!("results/{name}.json"),
                format!("registry experiment `{name}` has no tracked results/{name}.json"),
            );
        }
        if let Some(md) = &ctx.experiments_md {
            if !md.contains(name.as_str()) {
                push(
                    "EXPERIMENTS.md".to_string(),
                    format!("registry experiment `{name}` has no EXPERIMENTS.md row"),
                );
            }
        }
    }
    for f in &ctx.results_files {
        let Some((stem, ext)) = f.rsplit_once('.') else {
            continue;
        };
        if matches!(ext, "json" | "txt") && !stem_allowed(stem, names) {
            push(
                format!("results/{f}"),
                format!("tracked artifact `{f}` matches no registry experiment"),
            );
        }
    }
    if let Some(md) = &ctx.experiments_md {
        for stem in referenced_stems(md) {
            if !stem_allowed(&stem, names) {
                push(
                    "EXPERIMENTS.md".to_string(),
                    format!(
                        "EXPERIMENTS.md references `{stem}`, which is not a registry experiment"
                    ),
                );
            }
        }
    }
}

/// Stems of `<word>.txt` / `<word>.json` references in a markdown file.
fn referenced_stems(md: &str) -> Vec<String> {
    let mut stems = Vec::new();
    let bytes = md.as_bytes();
    for ext in [".txt", ".json"] {
        let mut from = 0;
        while let Some(at) = md[from..].find(ext) {
            let end = from + at;
            let mut start = end;
            while start > 0
                && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_')
            {
                start -= 1;
            }
            if start < end {
                stems.push(md[start..end].to_string());
            }
            from = end + ext.len();
        }
    }
    stems.sort();
    stems.dedup();
    stems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len());
        assert!(rule("wallclock").is_some());
        assert!(rule("nope").is_none());
    }

    #[test]
    fn cfg_test_region_is_skipped() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        let out = check_file("crates/core/src/x.rs", &lex(src));
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn unwrap_in_lib_code_is_flagged_not_in_bins() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            check_file("crates/core/src/x.rs", &lex(src)).findings.len(),
            1
        );
        assert!(check_file("crates/core/src/bin/x.rs", &lex(src))
            .findings
            .is_empty());
        assert!(check_file("crates/core/tests/x.rs", &lex(src))
            .findings
            .is_empty());
    }

    #[test]
    fn pragma_suppresses_and_requires_reason() {
        let good = "// pcm-audit: allow(panic-unwrap) — trusted input, fuzzed in tests\n\
                    pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(check_file("crates/core/src/x.rs", &lex(good))
            .findings
            .is_empty());
        let bare = "// pcm-audit: allow(panic-unwrap)\n\
                    pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let out = check_file("crates/core/src/x.rs", &lex(bare));
        assert!(out.findings.iter().any(|f| f.rule == "pragma"));
        assert!(out.findings.iter().any(|f| f.rule == "panic-unwrap"));
    }

    #[test]
    fn registry_name_extraction() {
        let src = "impl Experiment for A { fn name(&self) -> &'static str { \"fig10\" } }\n\
                   impl Experiment for B { fn name(&self) -> &'static str { \"tbl4\" } }\n";
        assert_eq!(registry_names_in(&lex(src)), vec!["fig10", "tbl4"]);
    }

    #[test]
    fn referenced_stem_extraction() {
        let md = "see results/fig10_lifetime.txt and `BENCH_hotpath.json`, not file.rs";
        assert_eq!(
            referenced_stems(md),
            vec!["BENCH_hotpath".to_string(), "fig10_lifetime".to_string()]
        );
    }
}
