//! Workspace symbol index: every function-like item in every scanned
//! file, keyed for the conservative call-graph resolution in
//! [`crate::graph`].
//!
//! The index is built once per scan from the per-file parser output
//! ([`crate::parser`]) plus the workspace manifests. All maps are
//! `BTreeMap`s and all id vectors are sorted, so iteration order — and
//! therefore the final report — is independent of `--jobs` scheduling.

use crate::lexer::Lexed;
use crate::parser::ParsedFile;
use crate::rules::{self, Pragma, RootMark};
use std::collections::{BTreeMap, BTreeSet};

/// Everything one scanned `.rs` file contributes to the workspace pass:
/// its tokens, parsed items, pragmas, and hot-path root annotations.
#[derive(Debug)]
pub struct Unit {
    /// Repo-relative path with forward slashes.
    pub rel: String,
    /// Lexed token stream (bodies are analyzed straight off the tokens).
    pub lexed: Lexed,
    /// Parsed item structure.
    pub parsed: ParsedFile,
    /// Allow pragmas, applied to inter-procedural findings by the caller.
    pub pragmas: Vec<Pragma>,
    /// `root(<rule>)` annotations marking analysis entry points.
    pub roots: Vec<RootMark>,
}

/// One function-like node in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the defining file in the unit list.
    pub file: usize,
    /// Index of the item within that file's `parsed.fns`.
    pub fn_idx: usize,
    /// Crate key (directory name under `crates/`, or `__root`).
    pub krate: String,
    /// Item name.
    pub name: String,
    /// 1-based line of the header.
    pub line: u32,
    /// `impl`/`trait` self type, when the item is a method.
    pub owner: Option<String>,
    /// Half-open token range of the body.
    pub body: (usize, usize),
    /// `macro_rules!` pseudo-function.
    pub is_macro: bool,
    /// Resolvable callee: library code, outside `#[cfg(test)]`, not a
    /// macro. Non-targets (bins, tests) still act as callers when rooted.
    pub is_target: bool,
}

/// The workspace-wide symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// All function-like nodes, in (file, declaration) order.
    pub nodes: Vec<FnNode>,
    /// name → target node ids (call-graph callees only).
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// (owner, name) → target node ids, for `Type::method` paths.
    pub by_owner: BTreeMap<(String, String), Vec<usize>>,
    /// file index → all node ids declared in that file.
    pub by_file: Vec<Vec<usize>>,
    /// name → macro pseudo-fn node ids.
    pub macros: BTreeMap<String, Vec<usize>>,
    /// crate key → transitive dependency closure (including itself).
    /// Crates without a manifest (fixture trees) get the all-crates set.
    pub deps: BTreeMap<String, BTreeSet<String>>,
    /// Path-head identifier → crate key (`pcm_util` → `util`).
    pub crate_idents: BTreeMap<String, String>,
    /// Every crate key seen in the scan.
    pub all_crates: BTreeSet<String>,
}

/// Crate key for a repo-relative path: the directory name under
/// `crates/`, or `__root` for root `src/`, `tests/`, etc.
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    "__root".to_string()
}

impl SymbolIndex {
    /// Builds the index over `units` (already sorted by path) and the
    /// workspace manifests (`(rel, content)` pairs).
    pub fn build(units: &[Unit], manifests: &[(String, String)]) -> SymbolIndex {
        let mut idx = SymbolIndex {
            by_file: vec![Vec::new(); units.len()],
            ..Default::default()
        };
        for (file, unit) in units.iter().enumerate() {
            let krate = crate_of(&unit.rel);
            idx.all_crates.insert(krate.clone());
            let lib = rules::is_lib_code(&unit.rel);
            for (fn_idx, f) in unit.parsed.fns.iter().enumerate() {
                let id = idx.nodes.len();
                let is_target = lib && !f.in_test && !f.is_macro;
                if is_target {
                    idx.by_name.entry(f.name.clone()).or_default().push(id);
                    if let Some(owner) = &f.owner {
                        idx.by_owner
                            .entry((owner.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
                if f.is_macro && lib && !f.in_test {
                    idx.macros.entry(f.name.clone()).or_default().push(id);
                }
                idx.by_file[file].push(id);
                idx.nodes.push(FnNode {
                    file,
                    fn_idx,
                    krate: krate.clone(),
                    name: f.name.clone(),
                    line: f.line,
                    owner: f.owner.clone(),
                    body: f.body,
                    is_macro: f.is_macro,
                    is_target,
                });
            }
        }
        idx.build_crate_maps(manifests);
        idx
    }

    /// Parses package names and `[dependencies]` sections out of the
    /// manifests, registers path-head identifiers, and closes the
    /// dependency relation transitively.
    fn build_crate_maps(&mut self, manifests: &[(String, String)]) {
        // First pass: package name → crate key, and path-head idents.
        let mut pkg_to_key: BTreeMap<String, String> = BTreeMap::new();
        for (rel, text) in manifests {
            let key = manifest_crate(rel);
            if let Some(pkg) = package_name(text) {
                pkg_to_key.insert(pkg.clone(), key.clone());
                self.crate_idents.insert(pkg.replace('-', "_"), key.clone());
            }
        }
        for key in &self.all_crates {
            // `core` would shadow the std `core::…` paths; every pcm crate
            // is addressed by its `pcm_…` package ident anyway.
            if !matches!(key.as_str(), "core" | "std" | "alloc" | "__root") {
                self.crate_idents.insert(key.clone(), key.clone());
            }
            self.crate_idents.insert(format!("pcm_{key}"), key.clone());
        }
        // Second pass: direct [dependencies] edges (dev-dependencies are
        // excluded: test-only edges must not widen hot-path reachability).
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for (rel, text) in manifests {
            let key = manifest_crate(rel);
            let entry = direct.entry(key).or_default();
            let mut section = String::new();
            for raw in text.lines() {
                let line = raw.trim();
                if line.starts_with('[') {
                    section = line.trim_matches(['[', ']']).to_string();
                    continue;
                }
                if section != "dependencies" || line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let Some((name, _)) = line.split_once('=') else {
                    continue;
                };
                let name = name.trim().trim_end_matches(".workspace").trim();
                let dep_key = pkg_to_key
                    .get(name)
                    .cloned()
                    .or_else(|| name.strip_prefix("pcm-").map(str::to_string))
                    .unwrap_or_else(|| name.replace('-', "_"));
                if self.all_crates.contains(&dep_key) {
                    entry.insert(dep_key);
                }
            }
        }
        // Transitive closure, self always included.
        for key in &self.all_crates {
            let mut closure: BTreeSet<String> = BTreeSet::new();
            if let Some(seed) = direct.get(key) {
                closure.insert(key.clone());
                let mut frontier: Vec<String> = seed.iter().cloned().collect();
                while let Some(k) = frontier.pop() {
                    if closure.insert(k.clone()) {
                        if let Some(next) = direct.get(&k) {
                            frontier.extend(next.iter().cloned());
                        }
                    }
                }
            } else {
                // No manifest for this crate (fixture tree): conservative
                // fallback, every crate is reachable.
                closure = self.all_crates.clone();
            }
            self.deps.insert(key.clone(), closure);
        }
    }

    /// Dependency closure of a crate (always contains the crate itself).
    pub fn closure(&self, krate: &str) -> &BTreeSet<String> {
        static EMPTY: BTreeSet<String> = BTreeSet::new();
        self.deps.get(krate).unwrap_or(&EMPTY)
    }

    /// Node ids of the local-fn children of `node` (used to carve nested
    /// bodies out of a parent's site scan).
    pub fn children(&self, units: &[Unit], node: usize) -> Vec<usize> {
        let n = &self.nodes[node];
        self.by_file[n.file]
            .iter()
            .copied()
            .filter(|&c| {
                units[self.nodes[c].file].parsed.fns[self.nodes[c].fn_idx].parent == Some(n.fn_idx)
            })
            .collect()
    }
}

/// Crate key owning a manifest path.
fn manifest_crate(rel: &str) -> String {
    if rel == "Cargo.toml" {
        "__root".to_string()
    } else {
        crate_of(rel)
    }
}

/// `name = "…"` out of the `[package]` section.
fn package_name(text: &str) -> Option<String> {
    let mut in_package = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some((k, v)) = line.split_once('=') {
            if k.trim() == "name" {
                return Some(v.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn unit(rel: &str, src: &str) -> Unit {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        Unit {
            rel: rel.to_string(),
            lexed,
            parsed,
            pragmas: Vec::new(),
            roots: Vec::new(),
        }
    }

    #[test]
    fn crate_keys() {
        assert_eq!(crate_of("crates/core/src/lib.rs"), "core");
        assert_eq!(crate_of("crates/serve/tests/replay.rs"), "serve");
        assert_eq!(crate_of("src/bin/pcm-verify.rs"), "__root");
        assert_eq!(crate_of("tests/audit_gate.rs"), "__root");
    }

    #[test]
    fn targets_exclude_tests_and_bins() {
        let units = vec![
            unit(
                "crates/core/src/lib.rs",
                "pub fn api() {}\n#[cfg(test)]\nmod t { fn inner() {} }\n",
            ),
            unit("crates/core/src/bin/tool.rs", "fn main() {}\n"),
            unit("crates/core/tests/smoke.rs", "fn probe() {}\n"),
        ];
        let idx = SymbolIndex::build(&units, &[]);
        assert_eq!(idx.by_name.get("api").map(Vec::len), Some(1));
        assert!(idx.by_name.get("main").is_none());
        assert!(idx.by_name.get("probe").is_none());
        assert!(idx.by_name.get("inner").is_none());
        // Non-targets still exist as nodes (callers), just not callees.
        assert_eq!(idx.nodes.len(), 4);
    }

    #[test]
    fn owner_map_keys_methods() {
        let units = vec![unit(
            "crates/serve/src/engine.rs",
            "pub struct Engine;\nimpl Engine { pub fn write(&mut self) {} }\n",
        )];
        let idx = SymbolIndex::build(&units, &[]);
        assert_eq!(
            idx.by_owner
                .get(&("Engine".to_string(), "write".to_string()))
                .map(Vec::len),
            Some(1)
        );
    }

    #[test]
    fn dep_closure_is_transitive_and_reflexive() {
        let manifests = vec![
            (
                "crates/serve/Cargo.toml".to_string(),
                "[package]\nname = \"pcm-serve\"\n[dependencies]\npcm-core.workspace = true\n"
                    .to_string(),
            ),
            (
                "crates/core/Cargo.toml".to_string(),
                "[package]\nname = \"pcm-core\"\n[dependencies]\npcm-util = { path = \"../util\" }\n[dev-dependencies]\nproptest.workspace = true\n"
                    .to_string(),
            ),
            (
                "crates/util/Cargo.toml".to_string(),
                "[package]\nname = \"pcm-util\"\n[dependencies]\n".to_string(),
            ),
        ];
        let units = vec![
            unit("crates/serve/src/lib.rs", "pub fn s() {}\n"),
            unit("crates/core/src/lib.rs", "pub fn c() {}\n"),
            unit("crates/util/src/lib.rs", "pub fn u() {}\n"),
        ];
        let idx = SymbolIndex::build(&units, &manifests);
        let serve = idx.closure("serve");
        assert!(serve.contains("serve") && serve.contains("core") && serve.contains("util"));
        let util = idx.closure("util");
        assert_eq!(util.len(), 1, "leaf crate only reaches itself: {util:?}");
        assert_eq!(
            idx.crate_idents.get("pcm_core").map(String::as_str),
            Some("core")
        );
        // `core` alone must NOT map to the pcm crate — it would shadow
        // std's `core::…` paths.
        assert!(!idx.crate_idents.contains_key("core") || idx.crate_idents["core"] != "core");
    }

    #[test]
    fn missing_manifest_falls_back_to_all_crates() {
        let units = vec![
            unit("crates/core/src/lib.rs", "pub fn c() {}\n"),
            unit("crates/serve/src/lib.rs", "pub fn s() {}\n"),
        ];
        let idx = SymbolIndex::build(&units, &[]);
        assert_eq!(idx.closure("core").len(), 2);
    }
}
