//! `pcm-audit` — workspace-wide determinism & hygiene lints.
//!
//! Every number this reproduction reports is only trustworthy because the
//! pipeline is deterministic under a pinned seed. The runtime harnesses
//! (`pcm-verify`, `pcm-lab diff`, the thread-invariance tests) check that
//! property *after the fact*; this crate enforces it *by construction*
//! with a static pass over every `.rs` file, `Cargo.toml`, and the gate
//! script. See DESIGN.md §11 for the rule table and policy.
//!
//! The crate is fully self-contained: its own minimal Rust lexer
//! ([`lexer`]), a table-driven rule engine ([`rules`]), and a
//! grandfathering baseline ([`baseline`]) — no external dependencies, so
//! it builds first and fast in the offline container.
//!
//! # Examples
//!
//! ```no_run
//! use std::path::Path;
//!
//! let report = pcm_audit::scan(Path::new("."), 1).expect("workspace scan");
//! let applied = pcm_audit::baseline::apply(report.findings.clone(), &[]);
//! println!("{}", pcm_audit::render(&report, &applied));
//! ```

pub mod baseline;
pub mod lexer;
pub mod rules;

pub use rules::{Finding, RuleInfo, RULES};

use rules::{FileOutput, WorkspaceCtx};
use std::path::{Path, PathBuf};

/// Directory subtrees the walker never descends into, relative to root.
const SKIP_DIRS: &[&str] = &["target", ".git", "crates/audit/tests/fixtures"];

/// Everything one scan produced, before baseline filtering.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Source files scanned (`.rs` + manifests + script + docs).
    pub files_scanned: usize,
    /// All findings, sorted by (file, line, rule, message).
    pub findings: Vec<Finding>,
    /// `file:line` of every `unsafe` site carrying a SAFETY comment.
    pub unsafe_inventory: Vec<String>,
}

/// Walks the workspace at `root` and runs every rule, fanning file checks
/// out over `jobs` threads. Output is independent of `jobs`: findings are
/// merged and sorted before reporting.
///
/// # Errors
///
/// Returns a message if the workspace cannot be read.
pub fn scan(root: &Path, jobs: usize) -> Result<ScanReport, String> {
    let mut rs_files = Vec::new();
    let mut manifests = Vec::new();
    walk(root, root, &mut rs_files, &mut manifests)?;
    rs_files.sort();
    manifests.sort();

    let mut report = ScanReport {
        files_scanned: rs_files.len() + manifests.len(),
        ..Default::default()
    };

    // File-scoped rules, optionally in parallel. Chunked round-robin so a
    // directory of heavy files spreads across workers; determinism comes
    // from the sort below, not the schedule.
    let jobs = jobs.max(1).min(rs_files.len().max(1));
    let mut registry_sources: Vec<(String, String)> = Vec::new();
    let outputs: Vec<(FileOutput, Vec<(String, String)>)> = if jobs == 1 {
        rs_files
            .iter()
            .map(|p| process_rs(root, p))
            .collect::<Result<_, _>>()?
    } else {
        let chunks: Vec<Vec<&PathBuf>> = (0..jobs)
            .map(|w| rs_files.iter().skip(w).step_by(jobs).collect())
            .collect();
        let results: Vec<Result<Vec<_>, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(|| chunk.iter().map(|p| process_rs(root, p)).collect()))
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(_) => Err("audit worker thread panicked".to_string()),
                })
                .collect()
        });
        let mut merged = Vec::new();
        for r in results {
            merged.extend(r?);
        }
        merged
    };
    for (out, registry) in outputs {
        report.findings.extend(out.findings);
        report.unsafe_inventory.extend(out.unsafe_inventory);
        registry_sources.extend(registry);
    }

    // Workspace-scoped rules.
    let mut ctx = WorkspaceCtx::default();
    for m in &manifests {
        ctx.manifests.push((rel_path(root, m), read(m)?));
    }
    let script = root.join("scripts_run_all.sh");
    if script.is_file() {
        report.files_scanned += 1;
        ctx.gate_script = Some(read(&script)?);
    }
    let md = root.join("EXPERIMENTS.md");
    if md.is_file() {
        report.files_scanned += 1;
        ctx.experiments_md = Some(read(&md)?);
    }
    registry_sources.sort();
    ctx.registry_names = registry_sources.into_iter().map(|(_, n)| n).collect();
    ctx.results_files = list_results(&root.join("results"))?;
    report.findings.extend(rules::check_workspace(&ctx));

    report.findings.sort();
    report.findings.dedup();
    report.unsafe_inventory.sort();
    Ok(report)
}

/// Lexes and checks one `.rs` file; experiment sources also yield their
/// registry names, keyed by path so parallel scheduling cannot reorder
/// them (the caller sorts by path before extracting the names).
fn process_rs(root: &Path, path: &Path) -> Result<(FileOutput, Vec<(String, String)>), String> {
    let rel = rel_path(root, path);
    let lexed = lexer::lex(&read(path)?);
    let out = rules::check_file(&rel, &lexed);
    let registry = if rel.starts_with("crates/bench/src/experiments/") {
        rules::registry_names_in(&lexed)
            .into_iter()
            .map(|name| (rel.clone(), name))
            .collect()
    } else {
        Vec::new()
    };
    Ok((out, registry))
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn walk(
    root: &Path,
    dir: &Path,
    rs: &mut Vec<PathBuf>,
    manifests: &mut Vec<PathBuf>,
) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&rel.as_str()) {
                continue;
            }
            walk(root, &path, rs, manifests)?;
        } else if rel.ends_with(".rs") {
            rs.push(path);
        } else if path.file_name().is_some_and(|n| n == "Cargo.toml") {
            manifests.push(path);
        }
    }
    Ok(())
}

fn list_results(dir: &Path) -> Result<Vec<String>, String> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        if entry.path().is_file() {
            files.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    files.sort();
    Ok(files)
}

/// Renders the deterministic findings report. Contains no timestamps or
/// machine state, so two clean runs are byte-identical — the property the
/// self-check test pins.
pub fn render(report: &ScanReport, applied: &baseline::Applied) -> String {
    let mut out = format!(
        "pcm-audit: {} files scanned, {} rules, {} finding(s) ({} baselined)\n",
        report.files_scanned,
        RULES.len(),
        applied.visible.len() + applied.baselined,
        applied.baselined,
    );
    for f in &applied.visible {
        out.push_str(&f.render());
        out.push('\n');
    }
    if !applied.exceeded.is_empty() {
        out.push_str("groups over their baselined count:\n");
        for e in &applied.exceeded {
            out.push_str(&format!("  {e}\n"));
        }
    }
    if !applied.stale.is_empty() {
        out.push_str("stale baseline entries (safe to tighten):\n");
        for s in &applied.stale {
            out.push_str(&format!("  {s}\n"));
        }
    }
    if report.unsafe_inventory.is_empty() {
        out.push_str("unsafe inventory: none\n");
    } else {
        out.push_str("unsafe inventory:\n");
        for u in &report.unsafe_inventory {
            out.push_str(&format!("  {u}\n"));
        }
    }
    if applied.visible.is_empty() {
        out.push_str("result: ok\n");
    } else {
        out.push_str(&format!(
            "result: FAIL ({} unbaselined finding(s))\n",
            applied.visible.len()
        ));
    }
    out
}
